//! `repro` — command-line driver for the reproduction.
//!
//! ```text
//! repro witness --class atomic|registers|oblivious|general|tas [--n N] [--f F] [--threads T]
//!               [--symmetry full|values|off] [--frontier layered|ws]
//! repro certify --construction set-boost|fd-boost|tas [--n N] [--k K]
//! repro hook    [--n N] [--f F] [--dot FILE] [--threads T] [--symmetry full|values|off]
//!               [--frontier layered|ws]
//! repro census  [--n N] [--f F] [--threads T] [--symmetry full|values|off] [--frontier layered|ws]
//! repro check EXPR --class atomic|registers|oblivious|general [--n N] [--f F]
//!                  [--ones K] [--threads T] [--symmetry full|values|off] [--frontier layered|ws]
//! repro audit   [--class atomic|registers|oblivious|general|mixed|tas|universal|flooding|
//!                        snapshot|fd-boost|set-boost|derived-fd|all|
//!                        broken-sym|broken-values|broken-tasks|broken-impure]
//!               [--n N] [--f F] [--budget STATES]
//! ```
//!
//! `check` evaluates a `;`-separated list of temporal properties over
//! the explored failure-free graph `G(C)` of the chosen doomed
//! candidate, using the fused batch evaluator (one forward and at most
//! one backward CSR pass for the whole list). Atoms: `bivalent`,
//! `univalent`, `zero_valent`, `one_valent`, `undecided`, `decided`,
//! `decided(v)`, `proc_decided(i)`, `safe`, `no_failures`, `failed(i)`,
//! `quiescent`; operators: `now`, `always`/`ag`/`invariant`,
//! `exists_path`/`ef`, `eventually`/`af`, `fair_eventually`/`af_fair`,
//! `leads_to`, and `!`, `&`, `|` with C-like precedence. Exit code: 0
//! if every property holds, 1 if any fails, 2 if any is unknown.
//!
//! `audit` runs the component-local static contract analyzer
//! (`analysis::audit`, DESIGN §2.6) over a substrate — or, with
//! `--class all` (the default), over every in-tree substrate — and
//! prints one machine-readable report per substrate: a header line
//! with the independence census, one `rule=… status=…` line per rule,
//! and one `VIOLATION rule=… component=… counterexample="…"` line per
//! recorded counterexample. No state-space exploration happens; the
//! analyzer only enumerates budget-capped *component-local* closures
//! (`--budget` caps states per component). The `broken-*` classes are
//! the deliberately faulty fixtures from `protocols::broken`, kept
//! in-tree so the analyzer's teeth stay testable. Exit code: 0 every
//! audited substrate clean, 1 any violation, 2 violation-free but
//! some rule unauditable.
//!
//! `--threads` sets the exploration worker count (0 = auto); every
//! result is bit-identical across thread counts.
//!
//! `--frontier ws` routes every exploration through the sharded
//! work-stealing frontier (DESIGN §2.1.5) instead of the
//! layer-synchronous default — same verdicts, censuses and property
//! evaluations, no layer-merge scaling ceiling. Defaults to the
//! `IOA_EXPLORE_FRONTIER` environment variable.
//!
//! `--symmetry full` explores the process-permutation quotient of
//! `G(C)` (orbit canonicalization) — same theorem verdicts and census
//! classifications with far fewer interned states on id-symmetric
//! candidates; falls back to the full graph on candidates that are
//! not. `--symmetry values` composes the 0 ↔ 1 value-relabeling group
//! on top (`S_n × S_vals`, DESIGN §2.1.6) on substrates whose every
//! component claims `value_symmetric`, degrading to `full` otherwise.
//! Defaults to the `SYMMETRY` environment variable (`full`/`values` to
//! enable), else off. Under an active quotient, `census` additionally
//! prints the orbit-size histogram — how many concrete states each
//! interned representative stands for.
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin repro -- witness --class oblivious --n 3 --f 1
//! cargo run --bin repro -- hook --n 2 --f 0 --dot /tmp/hook.dot
//! cargo run --bin repro -- certify --construction fd-boost --n 3
//! cargo run --bin repro -- check 'always(safe); ef(decided(0)) & ef(decided(1))' \
//!     --class atomic --n 2 --f 0
//! ```

use analysis::audit::{audit_automaton, audit_system, AuditConfig, AuditReport};
use analysis::graph::{census, to_dot};
use analysis::hook::{find_hook, HookOutcome};
use analysis::init::{find_bivalent_init_sym, InitOutcome};
use analysis::prop::{evaluate_batch, parse_props, system_vocab, SystemGraph, Verdict, Witness};
use analysis::resilience::{all_assignments, all_binary_assignments, certify, CertifyConfig};
use analysis::valence::ValenceMap;
use analysis::witness::{find_witness, Bounds};
use ioa::canon::SymmetryMode;
use protocols::set_boost::SetBoostParams;
use resilience_boosting::prelude::*;
use std::process::ExitCode;
use system::consensus::InputAssignment;
use system::process::ProcessAutomaton;
use system::sched::initialize;

/// Minimal argument parser: a subcommand, then positional operands and
/// `--key value` flag pairs in any order.
struct Args {
    cmd: String,
    positional: Vec<String>,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let cmd = it.next()?;
        let rest: Vec<String> = it.collect();
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            if let Some(key) = rest[i].strip_prefix("--") {
                let value = rest.get(i + 1)?.clone();
                flags.push((key.to_string(), value));
                i += 2;
            } else {
                positional.push(rest[i].clone());
                i += 1;
            }
        }
        Some(Args {
            cmd,
            positional,
            flags,
        })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{key} wants a number")))
            })
            .unwrap_or(default)
    }

    /// The exploration worker-thread count (`0` = auto).
    fn threads(&self) -> usize {
        self.usize_or("threads", 0)
    }

    /// The symmetry mode (`--symmetry full|values|off`, default from
    /// the `SYMMETRY` environment variable).
    fn symmetry(&self) -> SymmetryMode {
        match self.get("symmetry") {
            None => SymmetryMode::from_env(),
            Some("full") => SymmetryMode::Full,
            Some("values") => SymmetryMode::Values,
            Some("off") => SymmetryMode::Off,
            Some(other) => die(&format!("--symmetry wants full|values|off, got {other:?}")),
        }
    }

    /// `--frontier layered|ws`: pins the exploration frontier
    /// discipline for every exploration this invocation runs, by
    /// setting the process-global [`ioa::explore::FRONTIER_ENV`] knob
    /// (which `FrontierMode::Auto` consults) before any exploration
    /// starts. Unset, the environment's own value (or the layered
    /// default) applies. Verdicts, censuses and property evaluations
    /// are identical either way — the flag trades the layer-merge
    /// ceiling for work-stealing throughput.
    fn apply_frontier(&self) {
        match self.get("frontier") {
            None => {}
            Some(v @ ("layered" | "ws" | "worksteal" | "work-stealing")) => {
                std::env::set_var(ioa::explore::FRONTIER_ENV, v);
            }
            Some(other) => die(&format!("--frontier wants layered|ws, got {other:?}")),
        }
    }
}

/// A clean diagnostic exit for *user-input* errors where the usage
/// dump would drown the message (bad property expressions, unknown
/// atoms): one line on stderr, exit code 2 ("unknown"), no usage.
fn fail(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2)
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  \
         repro witness --class atomic|registers|oblivious|general|tas [--n N] [--f F] [--threads T] [--symmetry full|values|off] [--frontier layered|ws]\n  \
         repro certify --construction set-boost|fd-boost|tas [--n N] [--k K]\n  \
         repro hook [--n N] [--f F] [--dot FILE] [--threads T] [--symmetry full|values|off] [--frontier layered|ws]\n  \
         repro census [--n N] [--f F] [--threads T] [--symmetry full|values|off] [--frontier layered|ws]\n  \
         repro check EXPR --class atomic|registers|oblivious|general [--n N] [--f F] [--ones K] [--threads T] [--symmetry full|values|off] [--frontier layered|ws]\n  \
         repro audit [--class atomic|registers|oblivious|general|mixed|tas|universal|flooding|snapshot|fd-boost|set-boost|derived-fd|all|broken-sym|broken-values|broken-tasks|broken-impure] [--n N] [--f F] [--budget STATES]\n\
         \n\
         audit statically checks substrate contracts (task partition, determinism,\n  \
         symmetry honesty, value symmetry, effect purity) component-locally — no exploration.\n  \
         exit codes: 0 clean, 1 violation, 2 unauditable\n\
         \n\
         check evaluates ';'-separated properties over the explored graph, e.g.\n  \
         repro check 'always(safe); ef(decided(0)) & ef(decided(1))' --class atomic --n 2 --f 0\n\
         atoms: bivalent univalent zero_valent one_valent undecided decided decided(v)\n        \
         proc_decided(i) safe no_failures failed(i) quiescent\n\
         operators: now always|ag|invariant exists_path|ef eventually|af\n           \
         fair_eventually|af_fair leads_to  and ! & | with C-like precedence\n\
         exit codes: 0 all hold, 1 some property fails, 2 some verdict unknown"
    );
    std::process::exit(2)
}

fn witness_cmd(args: &Args) -> ExitCode {
    let n = args.usize_or("n", 2);
    let f = args.usize_or("f", 0);
    let class = args.get("class").unwrap_or("atomic");
    let bounds = Bounds {
        threads: args.threads(),
        symmetry: args.symmetry(),
        ..Bounds::default()
    };
    println!(
        "candidate: class={class}, n={n}, f={f} — claiming ({})-resilient consensus",
        f + 1
    );
    let headline = match class {
        "atomic" => {
            let sys = protocols::doomed::doomed_atomic(n, f);
            find_witness(&sys, f, bounds).map(|w| w.headline())
        }
        "registers" => {
            let sys = protocols::doomed::doomed_atomic_with_registers(n, f);
            find_witness(&sys, f, bounds).map(|w| w.headline())
        }
        "oblivious" => {
            let sys = protocols::doomed::doomed_oblivious(n, f);
            find_witness(&sys, f, bounds).map(|w| w.headline())
        }
        "general" => {
            let sys = protocols::doomed::doomed_general(n, f);
            find_witness(&sys, f, bounds).map(|w| w.headline())
        }
        "tas" => {
            if n != 2 {
                die("--class tas only supports --n 2");
            }
            let sys = protocols::tas_consensus::build(f);
            find_witness(&sys, f, bounds).map(|w| w.headline())
        }
        other => die(&format!("unknown class {other:?}")),
    };
    match headline {
        Ok(h) => {
            println!("witness: {h}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn certify_cmd(args: &Args) -> ExitCode {
    let construction = args.get("construction").unwrap_or("set-boost");
    let report = match construction {
        "set-boost" => {
            let n = args.usize_or("n", 4);
            let k = args.usize_or("k", 2);
            let sys = protocols::set_boost::build(SetBoostParams { n, k, k_prime: 1 });
            let domain: Vec<Val> = (0..n as i64).map(Val::Int).collect();
            let mut inputs = all_assignments(n, &domain);
            if inputs.len() > 512 {
                inputs.truncate(512);
                println!("(input sweep truncated to 512 assignments)");
            }
            let mut cfg = CertifyConfig::new(k, n - 1, inputs);
            cfg.max_steps = 100_000;
            println!("certifying {k}-set consensus at resilience {} …", n - 1);
            certify(&sys, &cfg)
        }
        "fd-boost" => {
            let n = args.usize_or("n", 3);
            let sys = protocols::fd_boost::build(n);
            let mut cfg = CertifyConfig::new(1, n - 1, all_binary_assignments(n));
            cfg.max_steps = 800_000;
            println!("certifying consensus at resilience {} …", n - 1);
            certify(&sys, &cfg)
        }
        "tas" => {
            let sys = protocols::tas_consensus::build(1);
            let mut cfg = CertifyConfig::new(1, 1, all_binary_assignments(2));
            cfg.max_steps = 100_000;
            println!("certifying 2-process consensus from wait-free test&set …");
            certify(&sys, &cfg)
        }
        other => die(&format!("unknown construction {other:?}")),
    };
    println!(
        "{} runs, {} violations → {}",
        report.runs,
        report.violations.len(),
        if report.certified() {
            "CERTIFIED"
        } else {
            "FAILED"
        }
    );
    if let Some(v) = report.violations.first() {
        println!("first violation: {v:?}");
    }
    if report.certified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn hook_cmd(args: &Args) -> ExitCode {
    let n = args.usize_or("n", 2);
    let f = args.usize_or("f", 0);
    let sys = protocols::doomed::doomed_atomic(n, f);
    let InitOutcome::Bivalent { assignment, map } =
        find_bivalent_init_sym(&sys, 2_000_000, args.threads(), args.symmetry())
            .unwrap_or_else(|e| die(&e.to_string()))
    else {
        die("no bivalent initialization (try the witness command)")
    };
    println!(
        "bivalent initialization: {assignment} ({} states)",
        map.state_count()
    );
    match find_hook(&sys, &map, 20_000) {
        HookOutcome::Hook(hook) => {
            println!(
                "hook: e={} e'={} v={:?} (α after {} tasks)",
                hook.e,
                hook.e_prime,
                hook.v,
                hook.alpha_tasks.len()
            );
            if let Some(path) = args.get("dot") {
                let dot = to_dot(&map, &hook.alpha, 3, Some(&hook));
                if let Err(e) = std::fs::write(path, dot) {
                    die(&format!("cannot write {path}: {e}"));
                }
                println!("wrote G(C) neighbourhood to {path} (render with: dot -Tsvg {path})");
            }
            ExitCode::SUCCESS
        }
        other => {
            println!("no hook: {other:?}");
            ExitCode::FAILURE
        }
    }
}

fn census_cmd(args: &Args) -> ExitCode {
    let n = args.usize_or("n", 3);
    let f = args.usize_or("f", 1);
    let sys = protocols::doomed::doomed_atomic(n, f);
    match find_bivalent_init_sym(&sys, 2_000_000, args.threads(), args.symmetry()) {
        Ok(InitOutcome::Bivalent { assignment, map }) => {
            println!("valence landscape of G(C) from {assignment}:");
            println!("  {}", census(&map));
            if let Some(group) = map.sym() {
                let mut hist: std::collections::BTreeMap<u64, usize> =
                    std::collections::BTreeMap::new();
                let mut mass: u64 = 0;
                for id in map.ids() {
                    let k = system::packed::orbit_size(group, map.resolve(id));
                    mass += k;
                    *hist.entry(k).or_insert(0) += 1;
                }
                let group_name = if group.values {
                    format!("S_{} × S_vals", group.n)
                } else {
                    format!("S_{}", group.n)
                };
                println!(
                    "orbit sizes under {group_name}: {} representative(s) covering {mass} \
                     orbit state(s) ({:.2}× compression)",
                    map.state_count(),
                    mass as f64 / map.state_count() as f64,
                );
                for (k, c) in &hist {
                    println!("  |orbit| = {k:>4}: {c} representative(s)");
                }
            }
            ExitCode::SUCCESS
        }
        Ok(other) => {
            println!("no bivalent initialization: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => die(&e.to_string()),
    }
}

/// Evaluates the parsed property batch over one candidate's `G(C)` and
/// prints verdicts plus replayable witnesses.
fn check_on<P: ProcessAutomaton>(
    sys: &system::build::CompleteSystem<P>,
    ones: usize,
    threads: usize,
    symmetry: SymmetryMode,
    expr: &str,
) -> ExitCode {
    let n = sys.process_count();
    let assignment = InputAssignment::monotone(n, ones);
    let root = initialize(sys, &assignment);
    let map = ValenceMap::build_with_symmetry(sys, root, 2_000_000, threads, symmetry)
        .unwrap_or_else(|e| fail(&e.to_string()));
    let graph = SystemGraph::new(sys, &map);
    let vocab = system_vocab::<P>(assignment.clone());
    // Bad expressions and unknown atoms are user input, not pipeline
    // failures: report the parse error alone and exit 2 (unknown).
    let props = parse_props(expr, &vocab).unwrap_or_else(|e| fail(&e.to_string()));
    println!(
        "G(C) from {assignment}: {} states, {} properties",
        map.state_count(),
        props.len()
    );
    let report = evaluate_batch(&graph, &props);
    println!(
        "passes: {} forward, {} backward (fused)",
        report.passes.forward, report.passes.backward
    );
    let mut worst = Verdict::Holds;
    for (p, ev) in props.iter().zip(&report.results) {
        let tag = match ev.verdict {
            Verdict::Holds => "HOLDS  ",
            Verdict::Fails => "FAILS  ",
            Verdict::Unknown => "UNKNOWN",
        };
        println!("{tag} {p}");
        if let Some(reason) = &ev.reason {
            println!("        ({reason})");
        }
        match &ev.witness {
            Some(Witness::Path(path)) => {
                // Under a symmetry quotient the raw path is not an
                // execution; lift_path conjugates each edge task back
                // to a concrete, replayable sequence (identity on full
                // maps).
                let (_, tasks) = graph.lift_path(path);
                println!(
                    "        path: {} states from the root, tasks: {}",
                    path.len(),
                    tasks
                        .iter()
                        .map(|t| t.to_string())
                        .collect::<Vec<_>>()
                        .join(" · ")
                );
            }
            Some(Witness::Lasso { path, cycle_start }) => {
                println!(
                    "        lasso: {} states, cycle re-enters at step {}",
                    path.len(),
                    cycle_start
                );
            }
            Some(Witness::Trace { offending, .. }) => {
                println!("        offending trace action: {offending}");
            }
            None => {}
        }
        worst = worst.and(ev.verdict);
    }
    match worst {
        Verdict::Holds => ExitCode::SUCCESS,
        Verdict::Fails => ExitCode::FAILURE,
        Verdict::Unknown => ExitCode::from(2),
    }
}

/// Every in-tree substrate the default `audit --class all` sweep
/// covers, with its smallest interesting parameterization.
const AUDIT_ALL: [&str; 12] = [
    "atomic",
    "registers",
    "oblivious",
    "general",
    "mixed",
    "tas",
    "universal",
    "flooding",
    "snapshot",
    "fd-boost",
    "set-boost",
    "derived-fd",
];

/// Builds and audits one substrate class. `n`/`f` override the class's
/// default parameterization when given (classes with structural
/// constraints — `tas` is 2-process, `set-boost` wants `n = 4` — keep
/// their own defaults).
fn audit_one(class: &str, n: Option<usize>, f: Option<usize>, cfg: &AuditConfig) -> AuditReport {
    use std::sync::Arc;
    let n_or = |d: usize| n.unwrap_or(d);
    let f_or = |d: usize| f.unwrap_or(d);
    match class {
        "atomic" => audit_system(
            &protocols::doomed::doomed_atomic(n_or(2), f_or(0)),
            "doomed-atomic",
            cfg,
        ),
        "registers" => audit_system(
            &protocols::doomed::doomed_atomic_with_registers(n_or(2), f_or(0)),
            "doomed-registers",
            cfg,
        ),
        "oblivious" => audit_system(
            &protocols::doomed::doomed_oblivious(n_or(2), f_or(0)),
            "doomed-tob",
            cfg,
        ),
        "general" => audit_system(
            &protocols::doomed::doomed_general(n_or(2), f_or(0)),
            "doomed-fd",
            cfg,
        ),
        "mixed" => audit_system(
            &protocols::doomed::doomed_mixed(n_or(2), f_or(0)),
            "doomed-mixed",
            cfg,
        ),
        "tas" => audit_system(
            &protocols::tas_consensus::build(f_or(1)),
            "test-and-set",
            cfg,
        ),
        "universal" => audit_system(
            &protocols::universal::build(Arc::new(spec::seq::TestAndSet), n_or(2)),
            "universal",
            cfg,
        ),
        "flooding" => audit_system(
            &protocols::message_passing::build_flood_all(n_or(2), f_or(1)),
            "flooding",
            cfg,
        ),
        "snapshot" => audit_system(&protocols::snapshot::build(n_or(2), 2), "snapshot", cfg),
        "fd-boost" => audit_system(&protocols::fd_boost::build(n_or(2)), "fd-boost", cfg),
        "set-boost" => audit_system(
            &protocols::set_boost::build(SetBoostParams {
                n: n_or(4),
                k: 2,
                k_prime: 1,
            }),
            "set-boost",
            cfg,
        ),
        "derived-fd" => audit_system(&protocols::derived_fd::build(n_or(2)), "derived-fd", cfg),
        "broken-sym" => audit_system(
            &protocols::broken::lying_symmetry(n_or(2), f_or(0)),
            "broken-sym",
            cfg,
        ),
        "broken-values" => audit_system(
            &protocols::broken::value_biased(n_or(2), f_or(0)),
            "broken-values",
            cfg,
        ),
        "broken-impure" => audit_system(
            &protocols::broken::impure_direct(n_or(2), f_or(0)),
            "broken-impure",
            cfg,
        ),
        "broken-tasks" => {
            audit_automaton(&protocols::broken::overlapping_tasks(), "broken-tasks", cfg)
        }
        other => die(&format!("unknown audit class {other:?}")),
    }
}

fn audit_cmd(args: &Args) -> ExitCode {
    let n = args.get("n").map(|_| args.usize_or("n", 0));
    let f = args.get("f").map(|_| args.usize_or("f", 0));
    let cfg = AuditConfig {
        max_component_states: args.usize_or("budget", AuditConfig::default().max_component_states),
        ..AuditConfig::default()
    };
    let class = args.get("class").unwrap_or("all");
    let reports: Vec<AuditReport> = if class == "all" {
        AUDIT_ALL.iter().map(|c| audit_one(c, n, f, &cfg)).collect()
    } else {
        vec![audit_one(class, n, f, &cfg)]
    };
    let mut worst = 0;
    for report in &reports {
        print!("{report}");
        worst = worst.max(report.exit_code());
    }
    let (substrates, violations) = (
        reports.len(),
        reports
            .iter()
            .map(|r| r.violations().count())
            .sum::<usize>(),
    );
    println!("audited {substrates} substrate(s): {violations} violation(s) → exit {worst}");
    match worst {
        0 => ExitCode::SUCCESS,
        1 => ExitCode::FAILURE,
        _ => ExitCode::from(2),
    }
}

fn check_cmd(args: &Args) -> ExitCode {
    let Some(expr) = args.positional.first() else {
        die("check wants a property expression, e.g. repro check 'always(safe)' --class atomic")
    };
    let n = args.usize_or("n", 2);
    let f = args.usize_or("f", 0);
    let ones = args.usize_or("ones", 1);
    if ones > n {
        die("--ones must be at most --n");
    }
    let threads = args.threads();
    let symmetry = args.symmetry();
    let class = args.get("class").unwrap_or("atomic");
    match class {
        "atomic" => check_on(
            &protocols::doomed::doomed_atomic(n, f),
            ones,
            threads,
            symmetry,
            expr,
        ),
        "registers" => check_on(
            &protocols::doomed::doomed_atomic_with_registers(n, f),
            ones,
            threads,
            symmetry,
            expr,
        ),
        "oblivious" => check_on(
            &protocols::doomed::doomed_oblivious(n, f),
            ones,
            threads,
            symmetry,
            expr,
        ),
        "general" => check_on(
            &protocols::doomed::doomed_general(n, f),
            ones,
            threads,
            symmetry,
            expr,
        ),
        other => die(&format!("unknown class {other:?}")),
    }
}

fn main() -> ExitCode {
    let Some(args) = Args::parse() else {
        die("missing subcommand");
    };
    args.apply_frontier();
    match args.cmd.as_str() {
        "witness" => witness_cmd(&args),
        "certify" => certify_cmd(&args),
        "hook" => hook_cmd(&args),
        "census" => census_cmd(&args),
        "check" => check_cmd(&args),
        "audit" => audit_cmd(&args),
        other => die(&format!("unknown command {other:?}")),
    }
}
