//! `repro` — command-line driver for the reproduction.
//!
//! ```text
//! repro witness --class atomic|registers|oblivious|general|tas [--n N] [--f F]
//! repro certify --construction set-boost|fd-boost|tas [--n N]
//! repro hook    [--n N] [--f F] [--dot FILE]
//! repro census  [--n N] [--f F]
//! ```
//!
//! Examples:
//!
//! ```sh
//! cargo run --bin repro -- witness --class oblivious --n 3 --f 1
//! cargo run --bin repro -- hook --n 2 --f 0 --dot /tmp/hook.dot
//! cargo run --bin repro -- certify --construction fd-boost --n 3
//! ```

use analysis::graph::{census, to_dot};
use analysis::hook::{find_hook, HookOutcome};
use analysis::init::{find_bivalent_init, InitOutcome};
use analysis::resilience::{all_assignments, all_binary_assignments, certify, CertifyConfig};
use analysis::witness::{find_witness, Bounds};
use protocols::set_boost::SetBoostParams;
use resilience_boosting::prelude::*;
use std::process::ExitCode;

/// Minimal flag parser: `--key value` pairs after the subcommand.
struct Args {
    cmd: String,
    flags: Vec<(String, String)>,
}

impl Args {
    fn parse() -> Option<Args> {
        let mut it = std::env::args().skip(1);
        let cmd = it.next()?;
        let rest: Vec<String> = it.collect();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < rest.len() {
            let key = rest.get(i)?.strip_prefix("--")?.to_string();
            let value = rest.get(i + 1)?.clone();
            flags.push((key, value));
            i += 2;
        }
        Some(Args { cmd, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn usize_or(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .map(|v| {
                v.parse()
                    .unwrap_or_else(|_| die(&format!("--{key} wants a number")))
            })
            .unwrap_or(default)
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage:\n  repro witness --class atomic|registers|oblivious|general|tas [--n N] [--f F]\n  \
         repro certify --construction set-boost|fd-boost|tas [--n N]\n  \
         repro hook [--n N] [--f F] [--dot FILE]\n  \
         repro census [--n N] [--f F]"
    );
    std::process::exit(2)
}

fn witness_cmd(args: &Args) -> ExitCode {
    let n = args.usize_or("n", 2);
    let f = args.usize_or("f", 0);
    let class = args.get("class").unwrap_or("atomic");
    println!(
        "candidate: class={class}, n={n}, f={f} — claiming ({})-resilient consensus",
        f + 1
    );
    let headline = match class {
        "atomic" => {
            let sys = protocols::doomed::doomed_atomic(n, f);
            find_witness(&sys, f, Bounds::default()).map(|w| w.headline())
        }
        "registers" => {
            let sys = protocols::doomed::doomed_atomic_with_registers(n, f);
            find_witness(&sys, f, Bounds::default()).map(|w| w.headline())
        }
        "oblivious" => {
            let sys = protocols::doomed::doomed_oblivious(n, f);
            find_witness(&sys, f, Bounds::default()).map(|w| w.headline())
        }
        "general" => {
            let sys = protocols::doomed::doomed_general(n, f);
            find_witness(&sys, f, Bounds::default()).map(|w| w.headline())
        }
        "tas" => {
            if n != 2 {
                die("--class tas only supports --n 2");
            }
            let sys = protocols::tas_consensus::build(f);
            find_witness(&sys, f, Bounds::default()).map(|w| w.headline())
        }
        other => die(&format!("unknown class {other:?}")),
    };
    match headline {
        Ok(h) => {
            println!("witness: {h}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("pipeline failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn certify_cmd(args: &Args) -> ExitCode {
    let construction = args.get("construction").unwrap_or("set-boost");
    let report = match construction {
        "set-boost" => {
            let n = args.usize_or("n", 4);
            let k = args.usize_or("k", 2);
            let sys = protocols::set_boost::build(SetBoostParams { n, k, k_prime: 1 });
            let domain: Vec<Val> = (0..n as i64).map(Val::Int).collect();
            let mut inputs = all_assignments(n, &domain);
            if inputs.len() > 512 {
                inputs.truncate(512);
                println!("(input sweep truncated to 512 assignments)");
            }
            let mut cfg = CertifyConfig::new(k, n - 1, inputs);
            cfg.max_steps = 100_000;
            println!("certifying {k}-set consensus at resilience {} …", n - 1);
            certify(&sys, &cfg)
        }
        "fd-boost" => {
            let n = args.usize_or("n", 3);
            let sys = protocols::fd_boost::build(n);
            let mut cfg = CertifyConfig::new(1, n - 1, all_binary_assignments(n));
            cfg.max_steps = 800_000;
            println!("certifying consensus at resilience {} …", n - 1);
            certify(&sys, &cfg)
        }
        "tas" => {
            let sys = protocols::tas_consensus::build(1);
            let mut cfg = CertifyConfig::new(1, 1, all_binary_assignments(2));
            cfg.max_steps = 100_000;
            println!("certifying 2-process consensus from wait-free test&set …");
            certify(&sys, &cfg)
        }
        other => die(&format!("unknown construction {other:?}")),
    };
    println!(
        "{} runs, {} violations → {}",
        report.runs,
        report.violations.len(),
        if report.certified() {
            "CERTIFIED"
        } else {
            "FAILED"
        }
    );
    if let Some(v) = report.violations.first() {
        println!("first violation: {v:?}");
    }
    if report.certified() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn hook_cmd(args: &Args) -> ExitCode {
    let n = args.usize_or("n", 2);
    let f = args.usize_or("f", 0);
    let sys = protocols::doomed::doomed_atomic(n, f);
    let InitOutcome::Bivalent { assignment, map } =
        find_bivalent_init(&sys, 2_000_000).unwrap_or_else(|e| die(&e.to_string()))
    else {
        die("no bivalent initialization (try the witness command)")
    };
    println!(
        "bivalent initialization: {assignment} ({} states)",
        map.state_count()
    );
    match find_hook(&sys, &map, 20_000) {
        HookOutcome::Hook(hook) => {
            println!(
                "hook: e={} e'={} v={:?} (α after {} tasks)",
                hook.e,
                hook.e_prime,
                hook.v,
                hook.alpha_tasks.len()
            );
            if let Some(path) = args.get("dot") {
                let dot = to_dot(&map, &hook.alpha, 3, Some(&hook));
                if let Err(e) = std::fs::write(path, dot) {
                    die(&format!("cannot write {path}: {e}"));
                }
                println!("wrote G(C) neighbourhood to {path} (render with: dot -Tsvg {path})");
            }
            ExitCode::SUCCESS
        }
        other => {
            println!("no hook: {other:?}");
            ExitCode::FAILURE
        }
    }
}

fn census_cmd(args: &Args) -> ExitCode {
    let n = args.usize_or("n", 3);
    let f = args.usize_or("f", 1);
    let sys = protocols::doomed::doomed_atomic(n, f);
    match find_bivalent_init(&sys, 2_000_000) {
        Ok(InitOutcome::Bivalent { assignment, map }) => {
            println!("valence landscape of G(C) from {assignment}:");
            println!("  {}", census(&map));
            ExitCode::SUCCESS
        }
        Ok(other) => {
            println!("no bivalent initialization: {other:?}");
            ExitCode::FAILURE
        }
        Err(e) => die(&e.to_string()),
    }
}

fn main() -> ExitCode {
    let Some(args) = Args::parse() else {
        die("missing subcommand");
    };
    match args.cmd.as_str() {
        "witness" => witness_cmd(&args),
        "certify" => certify_cmd(&args),
        "hook" => hook_cmd(&args),
        "census" => census_cmd(&args),
        other => die(&format!("unknown command {other:?}")),
    }
}
