//! # resilience-boosting
//!
//! An executable reproduction of *"The Impossibility of Boosting
//! Distributed Service Resilience"* (Attie, Guerraoui, Kuznetsov,
//! Lynch, Rajsbaum; ICDCS 2005 / Information and Computation 209
//! (2011) 927–950).
//!
//! The workspace builds the paper's entire formal apparatus — I/O
//! automata, sequential and service types, the canonical `f`-resilient
//! services of Figs. 1/4/8, the complete-system composition, and the
//! bivalence/hook/similarity proof machinery — and uses it to
//! machine-check both directions of the paper's results on concrete
//! finite systems:
//!
//! * **impossibility** (Theorems 2, 9, 10): for each service class, a
//!   candidate protocol claiming `(f+1)`-resilient consensus over
//!   `f`-resilient services is refuted by an
//!   [`analysis::witness::ImpossibilityWitness`] — a bivalent
//!   initialization, a hook, a similar state pair with opposite
//!   valences, and the concrete starving run;
//! * **possibility** (Sections 4 and 6.3): the k-set-consensus and
//!   failure-detector boosting constructions are certified resilient
//!   by exhaustive sweeps over inputs and failure patterns.
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md`
//! for the experiment index.
//!
//! # Quickstart
//!
//! ```
//! use resilience_boosting::prelude::*;
//!
//! // Theorem 2 on the smallest candidate: two processes over a
//! // 0-resilient consensus object, claiming 1-resilient consensus.
//! let sys = protocols::doomed::doomed_atomic(2, 0);
//! let witness = analysis::witness::find_witness(&sys, 0, Default::default()).unwrap();
//! println!("{}", witness.headline());
//! ```

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

pub use analysis;
pub use ioa;
pub use protocols;
pub use services;
pub use spec;
pub use system;

/// The most commonly used items across the workspace.
pub mod prelude {
    pub use analysis;
    pub use analysis::resilience::{all_binary_assignments, certify, CertifyConfig};
    pub use analysis::witness::{find_witness, Bounds, ImpossibilityWitness};
    pub use ioa::automaton::Automaton;
    pub use protocols;
    pub use services::{ArcService, Service, ServiceClass};
    pub use spec::{ProcId, SvcId, Val};
    pub use system::build::{CompleteSystem, SystemState};
    pub use system::consensus::InputAssignment;
    pub use system::sched::{initialize, run_fair, run_random, BranchPolicy, FairOutcome};
}
