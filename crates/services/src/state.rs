//! The state shape shared by every canonical service (paper Figs. 1,
//! 4, 8): a value `val ∈ V`, per-endpoint FIFO invocation and response
//! buffers, and the `failed` set of endpoints.

use spec::service_type::ResponseMap;
use spec::{Inv, ProcId, Resp, Val};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;

/// Thread-local census of deep [`SvcState`] clones.
///
/// Every `SvcState::clone()` is a deep copy of the buffer trees, which
/// is exactly the per-successor cost the component-interned
/// representation is designed to avoid. The counter lets benchmarks and
/// regression tests quantify that cost instead of guessing: reset it,
/// run a workload, read it back. Thread-local, so parallel exploration
/// workers count independently — sum across threads if needed, or run
/// the measured workload single-threaded.
pub mod clones {
    use std::cell::Cell;

    thread_local! {
        static DEEP_CLONES: Cell<u64> = const { Cell::new(0) };
    }

    /// Deep `SvcState` clones performed by this thread since the last
    /// [`reset`].
    #[must_use]
    pub fn count() -> u64 {
        DEEP_CLONES.with(Cell::get)
    }

    /// Zero this thread's clone counter.
    pub fn reset() {
        DEEP_CLONES.with(|c| c.set(0));
    }

    pub(super) fn bump() {
        DEEP_CLONES.with(|c| c.set(c.get() + 1));
    }
}

/// The state of a canonical service automaton.
///
/// `buffer(i)_c` in the paper denotes the pair
/// `⟨inv_buffer(i)_c, resp_buffer(i)_c⟩`; [`SvcState::buffer`] returns
/// exactly that pair, which is what the j-similarity definition of
/// Section 3.5 compares.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SvcState {
    /// The current value `val ∈ V`.
    pub val: Val,
    /// `inv_buffer(i)`: pending invocations from endpoint `i`, FIFO.
    pub inv_buf: BTreeMap<ProcId, VecDeque<Inv>>,
    /// `resp_buffer(i)`: pending responses to endpoint `i`, FIFO.
    pub resp_buf: BTreeMap<ProcId, VecDeque<Resp>>,
    /// The endpoints whose `fail_i` input has arrived.
    pub failed: BTreeSet<ProcId>,
}

// Manual impl so every deep copy of the buffer trees is counted; see
// [`clones`].
impl Clone for SvcState {
    fn clone(&self) -> Self {
        clones::bump();
        SvcState {
            val: self.val.clone(),
            inv_buf: self.inv_buf.clone(),
            resp_buf: self.resp_buf.clone(),
            failed: self.failed.clone(),
        }
    }
}

impl SvcState {
    /// A fresh state with value `val`, empty buffers for every endpoint
    /// in `endpoints`, and no failures.
    pub fn fresh<J: IntoIterator<Item = ProcId>>(val: Val, endpoints: J) -> Self {
        let mut inv_buf = BTreeMap::new();
        let mut resp_buf = BTreeMap::new();
        for i in endpoints {
            inv_buf.insert(i, VecDeque::new());
            resp_buf.insert(i, VecDeque::new());
        }
        SvcState {
            val,
            inv_buf,
            resp_buf,
            failed: BTreeSet::new(),
        }
    }

    /// The pending invocations from endpoint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an endpoint of this service.
    pub fn inv_buffer(&self, i: ProcId) -> &VecDeque<Inv> {
        self.inv_buf
            .get(&i)
            .unwrap_or_else(|| panic!("{i} is not an endpoint of this service"))
    }

    /// The pending responses to endpoint `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is not an endpoint of this service.
    pub fn resp_buffer(&self, i: ProcId) -> &VecDeque<Resp> {
        self.resp_buf
            .get(&i)
            .unwrap_or_else(|| panic!("{i} is not an endpoint of this service"))
    }

    /// The paper's `buffer(i)` pair `⟨inv_buffer(i), resp_buffer(i)⟩`.
    pub fn buffer(&self, i: ProcId) -> (&VecDeque<Inv>, &VecDeque<Resp>) {
        (self.inv_buffer(i), self.resp_buffer(i))
    }

    /// Returns a copy with `inv` appended to `inv_buffer(i)` — the
    /// effect of the invocation input action `a_{i,k}`.
    pub fn with_invocation(&self, i: ProcId, inv: Inv) -> SvcState {
        let mut st = self.clone();
        st.inv_buf
            .get_mut(&i)
            .unwrap_or_else(|| panic!("{i} is not an endpoint of this service"))
            .push_back(inv);
        st
    }

    /// Pops the head of `inv_buffer(i)`, if any. The emptiness check
    /// happens before the deep copy, so a `None` answer is free.
    pub fn pop_invocation(&self, i: ProcId) -> Option<(Inv, SvcState)> {
        self.inv_buf.get(&i)?.front()?;
        let mut st = self.clone();
        let inv = st.inv_buf.get_mut(&i)?.pop_front()?;
        Some((inv, st))
    }

    /// The head of `inv_buffer(i)` without copying anything, if any.
    ///
    /// Lets a service enumerate `perform` branches from the pending
    /// invocation by reference and clone the state once per branch,
    /// instead of cloning once to pop and again per branch.
    #[must_use]
    pub fn peek_invocation(&self, i: ProcId) -> Option<&Inv> {
        self.inv_buf.get(&i)?.front()
    }

    /// Pops the head of `resp_buffer(i)`, if any — the effect of the
    /// response output action `b_{i,k}`. The emptiness check happens
    /// before the deep copy, so a `None` answer is free.
    pub fn pop_response(&self, i: ProcId) -> Option<(Resp, SvcState)> {
        self.resp_buf.get(&i)?.front()?;
        let mut st = self.clone();
        let resp = st.resp_buf.get_mut(&i)?.pop_front()?;
        Some((resp, st))
    }

    /// Returns a copy with every response of `map` appended to the
    /// corresponding response buffer (the effect clause of the
    /// `perform`/`compute` steps in Figs. 4 and 8).
    ///
    /// Responses addressed to non-endpoints are a type error in the
    /// service definition and panic.
    pub fn with_responses(&self, map: &ResponseMap) -> SvcState {
        let mut st = self.clone();
        st.push_responses(map);
        st
    }

    /// Appends every response of `map` to the corresponding response
    /// buffer in place — the single-clone counterpart of
    /// [`SvcState::with_responses`].
    ///
    /// Responses addressed to non-endpoints are a type error in the
    /// service definition and panic.
    pub fn push_responses(&mut self, map: &ResponseMap) {
        for (i, resps) in map.iter() {
            let buf = self
                .resp_buf
                .get_mut(&i)
                .unwrap_or_else(|| panic!("response addressed to non-endpoint {i}"));
            buf.extend(resps.iter().cloned());
        }
    }

    /// Returns a copy with endpoint `i` marked failed — the effect of
    /// the `fail_i` input action.
    pub fn with_failure(&self, i: ProcId) -> SvcState {
        let mut st = self.clone();
        st.failed.insert(i);
        st
    }

    /// The number of failed endpoints.
    pub fn failure_count(&self) -> usize {
        self.failed.len()
    }
}

impl spec::RelabelValues for SvcState {
    /// The structural 0 ↔ 1 relabeling: the stored value and every
    /// buffered invocation/response are relabeled; endpoints and the
    /// failed set (process identities, not consensus values) are not.
    fn relabel_values(&self, vp: spec::ValuePerm) -> SvcState {
        if vp.is_identity() {
            return self.clone();
        }
        SvcState {
            val: self.val.relabel_values(vp),
            inv_buf: self
                .inv_buf
                .iter()
                .map(|(i, q)| (*i, q.iter().map(|inv| inv.relabel_values(vp)).collect()))
                .collect(),
            resp_buf: self
                .resp_buf
                .iter()
                .map(|(i, q)| (*i, q.iter().map(|r| r.relabel_values(vp)).collect()))
                .collect(),
            failed: self.failed.clone(),
        }
    }
}

impl fmt::Display for SvcState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "val={}", self.val)?;
        for (i, q) in &self.inv_buf {
            if !q.is_empty() {
                write!(f, " inv({i})={}", q.len())?;
            }
        }
        for (i, q) in &self.resp_buf {
            if !q.is_empty() {
                write!(f, " resp({i})={}", q.len())?;
            }
        }
        if !self.failed.is_empty() {
            write!(f, " failed={{")?;
            for (idx, i) in self.failed.iter().enumerate() {
                if idx > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{i}")?;
            }
            write!(f, "}}")?;
        }
        Ok(())
    }
}

// Compile-time audit: the parallel explorer in `ioa` moves successor
// system states (which embed `SvcState`s) from worker threads to the
// merging thread and shares services across the pool.
const _: () = {
    const fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<SvcState>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use spec::seq_type::Resp;

    fn state() -> SvcState {
        SvcState::fresh(Val::Int(0), [ProcId(0), ProcId(1)])
    }

    #[test]
    fn invocations_are_fifo_per_endpoint() {
        let st = state()
            .with_invocation(ProcId(0), Inv::nullary("a"))
            .with_invocation(ProcId(0), Inv::nullary("b"))
            .with_invocation(ProcId(1), Inv::nullary("c"));
        let (first, st2) = st.pop_invocation(ProcId(0)).unwrap();
        assert_eq!(first, Inv::nullary("a"));
        let (second, _) = st2.pop_invocation(ProcId(0)).unwrap();
        assert_eq!(second, Inv::nullary("b"));
        // P1's buffer is untouched.
        assert_eq!(st2.inv_buffer(ProcId(1)).len(), 1);
    }

    #[test]
    fn pop_on_empty_returns_none() {
        assert!(state().pop_invocation(ProcId(0)).is_none());
        assert!(state().pop_response(ProcId(1)).is_none());
    }

    #[test]
    fn response_map_application_appends() {
        let map = ResponseMap::broadcast([ProcId(0), ProcId(1)], Resp::sym("rcv"));
        let st = state().with_responses(&map).with_responses(&map);
        assert_eq!(st.resp_buffer(ProcId(0)).len(), 2);
        assert_eq!(st.resp_buffer(ProcId(1)).len(), 2);
    }

    #[test]
    #[should_panic(expected = "non-endpoint")]
    fn responses_to_non_endpoints_panic() {
        let map = ResponseMap::single(ProcId(9), Resp::sym("x"));
        let _ = state().with_responses(&map);
    }

    #[test]
    fn failures_accumulate() {
        let st = state().with_failure(ProcId(0)).with_failure(ProcId(0));
        assert_eq!(st.failure_count(), 1);
        let st = st.with_failure(ProcId(1));
        assert_eq!(st.failure_count(), 2);
    }

    #[test]
    fn display_mentions_nonempty_buffers() {
        let st = state()
            .with_invocation(ProcId(0), Inv::nullary("a"))
            .with_failure(ProcId(1));
        let s = st.to_string();
        assert!(s.contains("inv(P0)=1"));
        assert!(s.contains("failed={P1}"));
    }

    #[test]
    fn states_are_ordered_and_hashable() {
        use std::collections::BTreeSet;
        let mut set = BTreeSet::new();
        set.insert(state());
        set.insert(state().with_failure(ProcId(0)));
        set.insert(state());
        assert_eq!(set.len(), 2);
    }
}
