//! The canonical `f`-resilient general (failure-aware) service
//! (paper Fig. 8, Section 6.1).
//!
//! Identical to the failure-oblivious service of Fig. 4 except that the
//! `perform` and `compute` transition definitions pass the current
//! `failed` set to `δ1`/`δ2` — the service may act on knowledge of past
//! failures, which is what makes failure detectors expressible
//! (Section 6.2) and what forces Theorem 10's all-processes
//! connectivity requirement.

use crate::service::{Service, ServiceClass};
use crate::state::SvcState;
use spec::service_type::GeneralType;
use spec::{GlobalTaskId, Inv, ProcId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The canonical `f`-resilient general service of Fig. 8.
///
/// # Example
///
/// ```
/// use services::general::CanonicalGeneralService;
/// use services::service::Service;
/// use spec::fd::PerfectFd;
/// use spec::ProcId;
/// use std::sync::Arc;
///
/// let j = [ProcId(0), ProcId(1)];
/// let fd = CanonicalGeneralService::new(Arc::new(PerfectFd::new(j)), j, 1);
/// assert!(fd.class().is_failure_aware());
/// ```
#[derive(Clone, Debug)]
pub struct CanonicalGeneralService {
    typ: Arc<dyn GeneralType>,
    endpoints: BTreeSet<ProcId>,
    resilience: usize,
}

impl CanonicalGeneralService {
    /// The canonical `f`-resilient general service of type `typ` for
    /// endpoint set `endpoints`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    pub fn new<J: IntoIterator<Item = ProcId>>(
        typ: Arc<dyn GeneralType>,
        endpoints: J,
        resilience: usize,
    ) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(
            !endpoints.is_empty(),
            "general services require a nonempty endpoint set"
        );
        CanonicalGeneralService {
            typ,
            endpoints,
            resilience,
        }
    }

    /// The canonical wait-free variant (`f = |J| − 1`).
    pub fn wait_free<J: IntoIterator<Item = ProcId>>(
        typ: Arc<dyn GeneralType>,
        endpoints: J,
    ) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        let f = endpoints.len().saturating_sub(1);
        CanonicalGeneralService::new(typ, endpoints, f)
    }

    /// The underlying general service type.
    pub fn service_type(&self) -> &Arc<dyn GeneralType> {
        &self.typ
    }
}

impl Service for CanonicalGeneralService {
    fn class(&self) -> ServiceClass {
        ServiceClass::General
    }

    fn name(&self) -> String {
        format!(
            "{}-resilient {} ({} endpoints)",
            self.resilience,
            self.typ.name(),
            self.endpoints.len()
        )
    }

    fn endpoints(&self) -> &BTreeSet<ProcId> {
        &self.endpoints
    }

    fn resilience(&self) -> usize {
        self.resilience
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        self.typ.global_tasks()
    }

    fn initial_states(&self) -> Vec<SvcState> {
        self.typ
            .initial_values()
            .into_iter()
            .map(|v0| SvcState::fresh(v0, self.endpoints.iter().copied()))
            .collect()
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        self.typ.is_invocation(inv)
    }

    fn invocations(&self) -> Vec<Inv> {
        self.typ.invocations()
    }

    fn perform_all(&self, i: ProcId, st: &SvcState) -> Vec<SvcState> {
        // Fig. 8, perform: δ1 sees the current failed set.
        // The head invocation is read by reference so each branch pays
        // exactly one deep state clone.
        let Some(inv) = st.peek_invocation(i) else {
            return Vec::new();
        };
        self.typ
            .delta1(inv, i, &st.val, &st.failed)
            .into_iter()
            .map(|(map, v2)| {
                let mut st2 = st.clone();
                st2.inv_buf
                    .get_mut(&i)
                    .expect("peeked endpoint has a buffer")
                    .pop_front();
                st2.push_responses(&map);
                st2.val = v2;
                st2
            })
            .collect()
    }

    fn compute_all(&self, g: &GlobalTaskId, st: &SvcState) -> Vec<SvcState> {
        // Fig. 8, compute: δ2 sees the current failed set.
        self.typ
            .delta2(g, &st.val, &st.failed)
            .into_iter()
            .map(|(map, v2)| {
                let mut st2 = st.with_responses(&map);
                st2.val = v2;
                st2
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec::fd::{decode_suspect, EventuallyPerfectFd, PerfectFd};

    fn j3() -> [ProcId; 3] {
        [ProcId(0), ProcId(1), ProcId(2)]
    }

    #[test]
    fn perfect_fd_reports_current_failures() {
        let svc = CanonicalGeneralService::new(Arc::new(PerfectFd::new(j3())), j3(), 1);
        let st = svc.initial_states().remove(0);
        let st = svc.apply_fail(ProcId(2), &st);
        let st = svc
            .compute_all(&GlobalTaskId::for_endpoint(ProcId(0)), &st)
            .remove(0);
        let suspected = decode_suspect(st.resp_buffer(ProcId(0)).front().unwrap()).unwrap();
        assert_eq!(suspected, [ProcId(2)].into_iter().collect());
    }

    #[test]
    fn fd_compute_observes_failures_unlike_oblivious_services() {
        let svc = CanonicalGeneralService::new(Arc::new(PerfectFd::new(j3())), j3(), 2);
        let st0 = svc.initial_states().remove(0);
        let st1 = svc.apply_fail(ProcId(1), &st0);
        let g = GlobalTaskId::for_endpoint(ProcId(0));
        let before = svc.compute_all(&g, &st0).remove(0);
        let after = svc.compute_all(&g, &st1).remove(0);
        // Same val, different responses: the step depended on failures.
        assert_eq!(before.val, after.val);
        assert_ne!(before.resp_buffer(ProcId(0)), after.resp_buffer(ProcId(0)));
    }

    #[test]
    fn eventually_perfect_fd_stabilizes() {
        let svc = CanonicalGeneralService::new(Arc::new(EventuallyPerfectFd::new(j3())), j3(), 1);
        let st = svc.initial_states().remove(0);
        // imperfect mode: 2^3 = 8 possible suspicion outcomes.
        let outs = svc.compute_all(&GlobalTaskId::for_endpoint(ProcId(0)), &st);
        assert_eq!(outs.len(), 8);
        // stabilize, then outcomes are unique and accurate.
        let st = svc
            .compute_all(&EventuallyPerfectFd::stabilize_task(), &st)
            .remove(0);
        let outs = svc.compute_all(&GlobalTaskId::for_endpoint(ProcId(0)), &st);
        assert_eq!(outs.len(), 1);
    }

    #[test]
    fn fds_have_no_invocations() {
        let svc = CanonicalGeneralService::new(Arc::new(PerfectFd::new(j3())), j3(), 1);
        assert!(svc.invocations().is_empty());
        let st = svc.initial_states().remove(0);
        assert!(svc
            .enqueue_invocation(ProcId(0), &Inv::nullary("x"), &st)
            .is_none());
        assert!(svc.perform_all(ProcId(0), &st).is_empty());
    }

    #[test]
    fn wait_free_constructor() {
        let svc = CanonicalGeneralService::wait_free(Arc::new(PerfectFd::new(j3())), j3());
        assert_eq!(svc.resilience(), 2);
        assert!(svc.is_wait_free());
    }
}
