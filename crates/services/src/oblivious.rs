//! The canonical `f`-resilient failure-oblivious service
//! (paper Fig. 4, Section 5.1).
//!
//! Compared to the atomic object of Fig. 1, a failure-oblivious service
//! may: let a `perform` step's outcome depend on *which* endpoint's
//! buffer it services; deposit any number of responses into any subset
//! of response buffers; and take spontaneous `compute` steps driven by
//! global tasks. The defining constraint — no step depends on failure
//! events — is structural: `δ1`/`δ2` never see the `failed` set.

use crate::service::{Service, ServiceClass};
use crate::state::SvcState;
use spec::service_type::ObliviousType;
use spec::{GlobalTaskId, Inv, ProcId};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The canonical `f`-resilient failure-oblivious service of Fig. 4.
///
/// # Example
///
/// ```
/// use services::oblivious::CanonicalObliviousService;
/// use services::service::Service;
/// use spec::tob::TotallyOrderedBroadcast;
/// use spec::{ProcId, Val};
/// use std::sync::Arc;
///
/// let j = [ProcId(0), ProcId(1)];
/// let tob = TotallyOrderedBroadcast::new([Val::Sym("m")], j);
/// let svc = CanonicalObliviousService::new(Arc::new(tob), j, 1);
/// assert_eq!(svc.global_tasks().len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct CanonicalObliviousService {
    typ: Arc<dyn ObliviousType>,
    endpoints: BTreeSet<ProcId>,
    resilience: usize,
}

impl CanonicalObliviousService {
    /// The canonical `f`-resilient failure-oblivious service of type
    /// `typ` for endpoint set `endpoints`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    pub fn new<J: IntoIterator<Item = ProcId>>(
        typ: Arc<dyn ObliviousType>,
        endpoints: J,
        resilience: usize,
    ) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(
            !endpoints.is_empty(),
            "failure-oblivious services require a nonempty endpoint set"
        );
        CanonicalObliviousService {
            typ,
            endpoints,
            resilience,
        }
    }

    /// The canonical wait-free variant (`f = |J| − 1`).
    pub fn wait_free<J: IntoIterator<Item = ProcId>>(
        typ: Arc<dyn ObliviousType>,
        endpoints: J,
    ) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        let f = endpoints.len().saturating_sub(1);
        CanonicalObliviousService::new(typ, endpoints, f)
    }

    /// The underlying failure-oblivious service type.
    pub fn service_type(&self) -> &Arc<dyn ObliviousType> {
        &self.typ
    }
}

impl Service for CanonicalObliviousService {
    fn class(&self) -> ServiceClass {
        ServiceClass::FailureOblivious
    }

    fn name(&self) -> String {
        format!(
            "{}-resilient {} ({} endpoints)",
            self.resilience,
            self.typ.name(),
            self.endpoints.len()
        )
    }

    fn endpoints(&self) -> &BTreeSet<ProcId> {
        &self.endpoints
    }

    fn resilience(&self) -> usize {
        self.resilience
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        self.typ.global_tasks()
    }

    fn initial_states(&self) -> Vec<SvcState> {
        self.typ
            .initial_values()
            .into_iter()
            .map(|v0| SvcState::fresh(v0, self.endpoints.iter().copied()))
            .collect()
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        self.typ.is_invocation(inv)
    }

    fn invocations(&self) -> Vec<Inv> {
        self.typ.invocations()
    }

    fn perform_all(&self, i: ProcId, st: &SvcState) -> Vec<SvcState> {
        // Fig. 4, perform_{i,k}: pop the head of inv_buffer(i), pick
        // (B, v') ∈ δ1(head, i, val), set val := v' and append B(j) to
        // every resp_buffer(j).
        // The head invocation is read by reference so each branch pays
        // exactly one deep state clone.
        let Some(inv) = st.peek_invocation(i) else {
            return Vec::new();
        };
        self.typ
            .delta1(inv, i, &st.val)
            .into_iter()
            .map(|(map, v2)| {
                let mut st2 = st.clone();
                st2.inv_buf
                    .get_mut(&i)
                    .expect("peeked endpoint has a buffer")
                    .pop_front();
                st2.push_responses(&map);
                st2.val = v2;
                st2
            })
            .collect()
    }

    fn compute_all(&self, g: &GlobalTaskId, st: &SvcState) -> Vec<SvcState> {
        // Fig. 4, compute_{g,k}: pick (B, v') ∈ δ2(g, val).
        self.typ
            .delta2(g, &st.val)
            .into_iter()
            .map(|(map, v2)| {
                let mut st2 = st.with_responses(&map);
                st2.val = v2;
                st2
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec::tob::TotallyOrderedBroadcast;
    use spec::Val;

    fn tob_svc(f: usize) -> CanonicalObliviousService {
        let j = [ProcId(0), ProcId(1), ProcId(2)];
        CanonicalObliviousService::new(
            Arc::new(TotallyOrderedBroadcast::new(
                [Val::Sym("a"), Val::Sym("b")],
                j,
            )),
            j,
            f,
        )
    }

    #[test]
    fn bcast_then_compute_delivers_to_every_endpoint() {
        let svc = tob_svc(1);
        let st = svc.initial_states().remove(0);
        let st = svc
            .enqueue_invocation(
                ProcId(1),
                &TotallyOrderedBroadcast::bcast(Val::Sym("a")),
                &st,
            )
            .unwrap();
        // perform moves the message into msgs and answers nobody.
        let st = svc.perform_all(ProcId(1), &st).remove(0);
        assert!(st.resp_buf.values().all(|q| q.is_empty()));
        // compute pops msgs and responds to all three endpoints.
        let st = svc
            .compute_all(&TotallyOrderedBroadcast::delivery_task(), &st)
            .remove(0);
        for i in [0, 1, 2] {
            assert_eq!(
                st.resp_buffer(ProcId(i)).front(),
                Some(&TotallyOrderedBroadcast::rcv(Val::Sym("a"), ProcId(1)))
            );
        }
    }

    #[test]
    fn compute_is_total_even_on_empty_queue() {
        let svc = tob_svc(1);
        let st = svc.initial_states().remove(0);
        let outs = svc.compute_all(&TotallyOrderedBroadcast::delivery_task(), &st);
        assert_eq!(outs.len(), 1);
        assert_eq!(outs[0], st);
    }

    #[test]
    fn dummy_compute_needs_more_than_f_failures_or_all_failed() {
        let svc = tob_svc(1);
        let st = svc.initial_states().remove(0);
        assert!(!svc.dummy_compute_enabled(&st));
        let st1 = svc.apply_fail(ProcId(0), &st);
        assert!(!svc.dummy_compute_enabled(&st1)); // 1 failure ≤ f
        let st2 = svc.apply_fail(ProcId(1), &st1);
        assert!(svc.dummy_compute_enabled(&st2)); // 2 > f
    }

    #[test]
    fn dummy_compute_when_all_endpoints_failed() {
        // f = 2 = |J| - 1: two failures don't exceed f, but all three do
        // satisfy the failed = J clause.
        let svc = tob_svc(2);
        let mut st = svc.initial_states().remove(0);
        for i in [0, 1, 2] {
            assert!(!svc.dummy_compute_enabled(&st));
            st = svc.apply_fail(ProcId(i), &st);
        }
        assert!(svc.dummy_compute_enabled(&st));
    }

    #[test]
    fn total_order_is_global_across_senders() {
        let svc = tob_svc(1);
        let st = svc.initial_states().remove(0);
        let st = svc
            .enqueue_invocation(
                ProcId(0),
                &TotallyOrderedBroadcast::bcast(Val::Sym("a")),
                &st,
            )
            .unwrap();
        let st = svc
            .enqueue_invocation(
                ProcId(2),
                &TotallyOrderedBroadcast::bcast(Val::Sym("b")),
                &st,
            )
            .unwrap();
        // Perform P2's first: its message is ordered first.
        let st = svc.perform_all(ProcId(2), &st).remove(0);
        let st = svc.perform_all(ProcId(0), &st).remove(0);
        let st = svc
            .compute_all(&TotallyOrderedBroadcast::delivery_task(), &st)
            .remove(0);
        let st = svc
            .compute_all(&TotallyOrderedBroadcast::delivery_task(), &st)
            .remove(0);
        // Every endpoint sees b (from P2) then a (from P0).
        for i in [0, 1, 2] {
            let buf = st.resp_buffer(ProcId(i));
            assert_eq!(
                buf.iter().cloned().collect::<Vec<_>>(),
                vec![
                    TotallyOrderedBroadcast::rcv(Val::Sym("b"), ProcId(2)),
                    TotallyOrderedBroadcast::rcv(Val::Sym("a"), ProcId(0)),
                ]
            );
        }
    }

    #[test]
    fn wait_free_constructor() {
        let j = [ProcId(0), ProcId(1), ProcId(2)];
        let svc = CanonicalObliviousService::wait_free(
            Arc::new(TotallyOrderedBroadcast::new([Val::Sym("a")], j)),
            j,
        );
        assert_eq!(svc.resilience(), 2);
        assert!(svc.is_wait_free());
        assert_eq!(svc.class(), ServiceClass::FailureOblivious);
    }
}
