//! A single canonical service as a standalone I/O automaton.
//!
//! [`ServiceAutomaton`] adapts any [`Service`](crate::service::Service) to the `ioa::Automaton`
//! interface, with the exact action alphabet and task structure of the
//! paper's canonical automata (Figs. 1/4/8). Two uses:
//!
//! * **Theorem 11 (Appendix B)** — drive the canonical consensus
//!   object directly under fair schedules and check the axiomatic
//!   agreement/validity/modified-termination conditions;
//! * **atomicity checking** — a system implements an atomic object iff
//!   its traces are included in the canonical object's traces
//!   (Section 2.1.4 clause 2); `ioa::refine::check_trace_inclusion`
//!   against a `ServiceAutomaton` decides that for finite instances.

use crate::service::ArcService;
use crate::state::SvcState;
use ioa::automaton::{ActionKind, Automaton};
use spec::{GlobalTaskId, Inv, ProcId, Resp};

/// An action of a standalone canonical service automaton.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SvcAction {
    /// Invocation `a_i` arriving at endpoint `i` (input).
    Invoke(ProcId, Inv),
    /// `fail_i` (input).
    Fail(ProcId),
    /// Response `b_i` delivered at endpoint `i` (output).
    Respond(ProcId, Resp),
    /// `perform_i` (internal).
    Perform(ProcId),
    /// `compute_g` (internal).
    Compute(GlobalTaskId),
    /// `dummy_perform_i` (internal).
    DummyPerform(ProcId),
    /// `dummy_output_i` (internal).
    DummyOutput(ProcId),
    /// `dummy_compute_g` (internal).
    DummyCompute(GlobalTaskId),
}

/// A task of a standalone canonical service automaton (the `i-perform`,
/// `i-output` and `g-compute` tasks of Section 2.2.3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SvcTask {
    /// `i-perform`.
    Perform(ProcId),
    /// `i-output`.
    Output(ProcId),
    /// `g-compute`.
    Compute(GlobalTaskId),
}

/// A canonical service wrapped as an I/O automaton.
///
/// # Example
///
/// ```
/// use services::atomic::CanonicalAtomicObject;
/// use services::automaton::{ServiceAutomaton, SvcAction};
/// use ioa::automaton::Automaton;
/// use spec::seq::BinaryConsensus;
/// use spec::ProcId;
/// use std::sync::Arc;
///
/// let obj = CanonicalAtomicObject::wait_free(Arc::new(BinaryConsensus), [ProcId(0), ProcId(1)]);
/// let aut = ServiceAutomaton::new(Arc::new(obj));
/// let s = aut.initial_states().remove(0);
/// let s = aut
///     .apply_input(&s, &SvcAction::Invoke(ProcId(0), BinaryConsensus::init(1)))
///     .unwrap();
/// assert_eq!(s.inv_buffer(ProcId(0)).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceAutomaton {
    svc: ArcService,
}

impl ServiceAutomaton {
    /// Wraps a canonical service.
    pub fn new(svc: ArcService) -> Self {
        ServiceAutomaton { svc }
    }

    /// The wrapped service.
    pub fn service(&self) -> &ArcService {
        &self.svc
    }
}

impl Automaton for ServiceAutomaton {
    type State = SvcState;
    type Action = SvcAction;
    type Task = SvcTask;

    fn initial_states(&self) -> Vec<SvcState> {
        self.svc.initial_states()
    }

    fn tasks(&self) -> Vec<SvcTask> {
        let mut tasks = Vec::new();
        for i in self.svc.endpoints() {
            tasks.push(SvcTask::Perform(*i));
            tasks.push(SvcTask::Output(*i));
        }
        for g in self.svc.global_tasks() {
            tasks.push(SvcTask::Compute(g));
        }
        tasks
    }

    fn succ_all(&self, t: &SvcTask, s: &SvcState) -> Vec<(SvcAction, SvcState)> {
        match t {
            SvcTask::Perform(i) => {
                let mut out: Vec<(SvcAction, SvcState)> = self
                    .svc
                    .perform_all(*i, s)
                    .into_iter()
                    .map(|s2| (SvcAction::Perform(*i), s2))
                    .collect();
                if self.svc.dummy_perform_enabled(*i, s) {
                    out.push((SvcAction::DummyPerform(*i), s.clone()));
                }
                out
            }
            SvcTask::Output(i) => {
                let mut out = Vec::new();
                if let Some((resp, s2)) = self.svc.pop_response(*i, s) {
                    out.push((SvcAction::Respond(*i, resp), s2));
                }
                if self.svc.dummy_output_enabled(*i, s) {
                    out.push((SvcAction::DummyOutput(*i), s.clone()));
                }
                out
            }
            SvcTask::Compute(g) => {
                let mut out: Vec<(SvcAction, SvcState)> = self
                    .svc
                    .compute_all(g, s)
                    .into_iter()
                    .map(|s2| (SvcAction::Compute(g.clone()), s2))
                    .collect();
                if self.svc.dummy_compute_enabled(s) {
                    out.push((SvcAction::DummyCompute(g.clone()), s.clone()));
                }
                out
            }
        }
    }

    fn apply_input(&self, s: &SvcState, a: &SvcAction) -> Option<SvcState> {
        match a {
            SvcAction::Invoke(i, inv) => self.svc.enqueue_invocation(*i, inv, s),
            SvcAction::Fail(i) => Some(self.svc.apply_fail(*i, s)),
            _ => None,
        }
    }

    fn kind(&self, a: &SvcAction) -> ActionKind {
        match a {
            SvcAction::Invoke(..) | SvcAction::Fail(..) => ActionKind::Input,
            SvcAction::Respond(..) => ActionKind::Output,
            _ => ActionKind::Internal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atomic::CanonicalAtomicObject;
    use ioa::explore::reach;
    use ioa::fairness::{run_round_robin, RunOutcome};
    use spec::seq::BinaryConsensus;
    use std::sync::Arc;

    fn consensus_automaton(n: usize, f: usize) -> ServiceAutomaton {
        let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
        ServiceAutomaton::new(Arc::new(CanonicalAtomicObject::new(
            Arc::new(BinaryConsensus),
            endpoints,
            f,
        )))
    }

    #[test]
    fn invoke_perform_respond_cycle() {
        let aut = consensus_automaton(2, 1);
        let s = aut.initial_states().remove(0);
        let s = aut
            .apply_input(&s, &SvcAction::Invoke(ProcId(1), BinaryConsensus::init(0)))
            .unwrap();
        let (a, s) = aut.succ_det(&SvcTask::Perform(ProcId(1)), &s).unwrap();
        assert_eq!(a, SvcAction::Perform(ProcId(1)));
        let (a, _) = aut.succ_det(&SvcTask::Output(ProcId(1)), &s).unwrap();
        assert_eq!(a, SvcAction::Respond(ProcId(1), BinaryConsensus::decide(0)));
    }

    #[test]
    fn quiescent_without_work_or_failures() {
        let aut = consensus_automaton(2, 1);
        let s = aut.initial_states().remove(0);
        assert!(aut.applicable_tasks(&s).is_empty());
    }

    #[test]
    fn fair_run_responds_to_everyone_within_resilience() {
        let aut = consensus_automaton(3, 2);
        let mut s = aut.initial_states().remove(0);
        for i in 0..3 {
            s = aut
                .apply_input(&s, &SvcAction::Invoke(ProcId(i), BinaryConsensus::init(1)))
                .unwrap();
        }
        let run = run_round_robin(&aut, s, 1000, |_| false);
        assert_eq!(run.outcome, RunOutcome::Quiescent);
        let responses: Vec<_> = run
            .exec
            .steps()
            .iter()
            .filter(|st| matches!(st.action, SvcAction::Respond(..)))
            .collect();
        assert_eq!(responses.len(), 3);
    }

    #[test]
    fn silenced_object_may_loop_on_dummies() {
        let aut = consensus_automaton(2, 0);
        let mut s = aut.initial_states().remove(0);
        s = aut
            .apply_input(&s, &SvcAction::Invoke(ProcId(0), BinaryConsensus::init(1)))
            .unwrap();
        s = aut.apply_input(&s, &SvcAction::Fail(ProcId(1))).unwrap();
        // With |failed| > f, every task has a dummy branch.
        for t in aut.tasks() {
            let branches = aut.succ_all(&t, &s);
            assert!(
                branches.iter().any(|(a, _)| matches!(
                    a,
                    SvcAction::DummyPerform(_)
                        | SvcAction::DummyOutput(_)
                        | SvcAction::DummyCompute(_)
                )),
                "task {t:?} lacks a dummy branch"
            );
        }
    }

    #[test]
    fn reachable_space_is_finite() {
        let aut = consensus_automaton(2, 1);
        let mut s = aut.initial_states().remove(0);
        for i in 0..2 {
            s = aut
                .apply_input(
                    &s,
                    &SvcAction::Invoke(ProcId(i), BinaryConsensus::init(i as i64)),
                )
                .unwrap();
        }
        let reach = reach(&aut, vec![s], 10_000);
        assert!(!reach.truncated());
        assert!(reach.len() > 1);
    }
}
