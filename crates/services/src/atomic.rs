//! The canonical `f`-resilient atomic object (paper Fig. 1,
//! Section 2.1.3) and canonical reliable registers.
//!
//! The canonical atomic object of type `T` for endpoint set `J`,
//! resilience `f` and index `k` keeps the invocations and responses of
//! each endpoint in FIFO buffers, applies `T.δ` in `perform_{i,k}`
//! steps, and emits responses in `b_{i,k}` output steps. For every
//! `i ∈ J` it has an `i-perform` and an `i-output` task, each
//! containing a dummy action enabled once `i ∈ failed` or
//! `|failed| > f` — so after more than `f` failures the object may
//! legitimately fall silent forever while still never violating its
//! sequential type.

use crate::service::{Service, ServiceClass};
use crate::state::SvcState;
use spec::seq::ReadWrite;
use spec::seq_type::ArcSeqType;
use spec::{GlobalTaskId, Inv, ProcId, Val};
use std::collections::BTreeSet;
use std::sync::Arc;

/// The canonical `f`-resilient atomic object of Fig. 1.
///
/// # Example
///
/// ```
/// use services::atomic::CanonicalAtomicObject;
/// use services::service::Service;
/// use spec::seq::BinaryConsensus;
/// use spec::ProcId;
/// use std::sync::Arc;
///
/// let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), [ProcId(0), ProcId(1)], 0);
/// assert_eq!(obj.resilience(), 0);
/// assert!(!obj.is_wait_free());
/// ```
#[derive(Clone, Debug)]
pub struct CanonicalAtomicObject {
    typ: ArcSeqType,
    endpoints: BTreeSet<ProcId>,
    resilience: usize,
    class: ServiceClass,
}

impl CanonicalAtomicObject {
    /// The canonical `f`-resilient atomic object of sequential type
    /// `typ` for endpoint set `endpoints`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty (the definition requires a
    /// nonempty endpoint set).
    pub fn new<J: IntoIterator<Item = ProcId>>(
        typ: ArcSeqType,
        endpoints: J,
        resilience: usize,
    ) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(
            !endpoints.is_empty(),
            "atomic objects require a nonempty endpoint set"
        );
        CanonicalAtomicObject {
            typ,
            endpoints,
            resilience,
            class: ServiceClass::Atomic,
        }
    }

    /// The canonical *wait-free* atomic object: `f = |J| − 1`
    /// (Section 2.1.3's "wait-free (or, reliable)").
    pub fn wait_free<J: IntoIterator<Item = ProcId>>(typ: ArcSeqType, endpoints: J) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        let f = endpoints.len().saturating_sub(1);
        CanonicalAtomicObject::new(typ, endpoints, f)
    }

    /// A canonical reliable register (Section 2.2.2): the canonical
    /// wait-free atomic read/write object.
    pub fn register<J: IntoIterator<Item = ProcId>>(rw: ReadWrite, endpoints: J) -> Self {
        let mut obj = CanonicalAtomicObject::wait_free(Arc::new(rw), endpoints);
        obj.class = ServiceClass::Register;
        obj
    }

    /// The underlying sequential type.
    pub fn seq_type(&self) -> &ArcSeqType {
        &self.typ
    }
}

impl Service for CanonicalAtomicObject {
    fn class(&self) -> ServiceClass {
        self.class
    }

    fn name(&self) -> String {
        format!(
            "{}-resilient {} object ({} endpoints)",
            self.resilience,
            self.typ.name(),
            self.endpoints.len()
        )
    }

    fn endpoints(&self) -> &BTreeSet<ProcId> {
        &self.endpoints
    }

    fn resilience(&self) -> usize {
        self.resilience
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        Vec::new()
    }

    fn initial_states(&self) -> Vec<SvcState> {
        self.typ
            .initial_values()
            .into_iter()
            .map(|v0: Val| SvcState::fresh(v0, self.endpoints.iter().copied()))
            .collect()
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        self.typ.is_invocation(inv)
    }

    fn invocations(&self) -> Vec<Inv> {
        self.typ.invocations()
    }

    fn perform_all(&self, i: ProcId, st: &SvcState) -> Vec<SvcState> {
        // Fig. 1, perform_{i,k}: precondition inv_buffer(i) nonempty;
        // effect: (resp, val) := any element of δ((head, val));
        // resp_buffer(i) := append(resp_buffer(i), resp).
        // The head invocation is read by reference so each branch pays
        // exactly one deep state clone.
        let Some(inv) = st.peek_invocation(i) else {
            return Vec::new();
        };
        self.typ
            .delta(inv, &st.val)
            .into_iter()
            .map(|(resp, v2)| {
                let mut st2 = st.clone();
                st2.inv_buf
                    .get_mut(&i)
                    .expect("peeked endpoint has a buffer")
                    .pop_front();
                st2.val = v2;
                st2.resp_buf
                    .get_mut(&i)
                    .expect("endpoints keep response buffers")
                    .push_back(resp);
                st2
            })
            .collect()
    }

    fn compute_all(&self, g: &GlobalTaskId, _st: &SvcState) -> Vec<SvcState> {
        panic!("atomic objects have no compute steps, got task {g:?}")
    }

    fn endpoint_symmetric(&self) -> bool {
        // The Fig. 1 automaton treats every endpoint uniformly (FIFO
        // buffers indexed by i, identical dummies), so its symmetry is
        // exactly that of the underlying sequential type.
        self.typ.proc_oblivious()
    }

    fn value_symmetric(&self) -> bool {
        // The canonical automaton only moves invocations/responses
        // through buffers and applies δ — its value symmetry is exactly
        // that of the underlying sequential type.
        self.typ.value_symmetric()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec::seq::{BinaryConsensus, KSetConsensus};

    fn consensus_obj(f: usize) -> CanonicalAtomicObject {
        CanonicalAtomicObject::new(
            Arc::new(BinaryConsensus),
            [ProcId(0), ProcId(1), ProcId(2)],
            f,
        )
    }

    #[test]
    fn perform_consumes_invocation_and_produces_response() {
        let obj = consensus_obj(1);
        let st = obj.initial_states().remove(0);
        let st = obj
            .enqueue_invocation(ProcId(1), &BinaryConsensus::init(0), &st)
            .unwrap();
        let outs = obj.perform_all(ProcId(1), &st);
        assert_eq!(outs.len(), 1);
        let st2 = &outs[0];
        assert!(st2.inv_buffer(ProcId(1)).is_empty());
        assert_eq!(
            st2.resp_buffer(ProcId(1)).front(),
            Some(&BinaryConsensus::decide(0))
        );
        assert_eq!(st2.val, Val::set([Val::Int(0)]));
    }

    #[test]
    fn perform_without_invocation_is_disabled() {
        let obj = consensus_obj(1);
        let st = obj.initial_states().remove(0);
        assert!(obj.perform_all(ProcId(0), &st).is_empty());
    }

    #[test]
    fn dummy_enabled_after_own_failure_or_too_many_failures() {
        let obj = consensus_obj(1);
        let st = obj.initial_states().remove(0);
        assert!(!obj.dummy_perform_enabled(ProcId(0), &st));
        // P0 fails: P0's dummies enable, P1's do not.
        let st1 = obj.apply_fail(ProcId(0), &st);
        assert!(obj.dummy_perform_enabled(ProcId(0), &st1));
        assert!(!obj.dummy_perform_enabled(ProcId(1), &st1));
        // Second failure exceeds f = 1: everyone's dummies enable.
        let st2 = obj.apply_fail(ProcId(1), &st1);
        assert!(obj.dummy_output_enabled(ProcId(2), &st2));
    }

    #[test]
    fn fail_of_non_endpoint_is_invisible() {
        let obj = consensus_obj(0);
        let st = obj.initial_states().remove(0);
        let st2 = obj.apply_fail(ProcId(9), &st);
        assert_eq!(st, st2);
    }

    #[test]
    fn enqueue_rejects_non_endpoints_and_alien_invocations() {
        let obj = consensus_obj(0);
        let st = obj.initial_states().remove(0);
        assert!(obj
            .enqueue_invocation(ProcId(9), &BinaryConsensus::init(0), &st)
            .is_none());
        assert!(obj
            .enqueue_invocation(ProcId(0), &Inv::nullary("pop"), &st)
            .is_none());
    }

    #[test]
    fn wait_free_constructor_sets_f() {
        let obj = CanonicalAtomicObject::wait_free(
            Arc::new(BinaryConsensus),
            [ProcId(0), ProcId(1), ProcId(2), ProcId(3)],
        );
        assert_eq!(obj.resilience(), 3);
        assert!(obj.is_wait_free());
    }

    #[test]
    fn register_is_a_wait_free_read_write_object() {
        let reg = CanonicalAtomicObject::register(ReadWrite::binary(), [ProcId(0), ProcId(1)]);
        assert_eq!(reg.class(), ServiceClass::Register);
        assert!(reg.is_wait_free());
        let st = reg.initial_states().remove(0);
        let st = reg
            .enqueue_invocation(ProcId(0), &ReadWrite::write(Val::Int(1)), &st)
            .unwrap();
        let st = reg.perform_all(ProcId(0), &st).remove(0);
        assert_eq!(st.val, Val::Int(1));
    }

    #[test]
    fn nondeterministic_types_yield_multiple_outcomes() {
        let obj = CanonicalAtomicObject::new(
            Arc::new(KSetConsensus::new(2, 3)),
            [ProcId(0), ProcId(1)],
            1,
        );
        // Put W = {0} into the object first.
        let st = obj.initial_states().remove(0);
        let st = obj
            .enqueue_invocation(ProcId(0), &KSetConsensus::init(0), &st)
            .unwrap();
        let st = obj.perform_all(ProcId(0), &st).remove(0);
        // Now init(1) with |W| = 1 < k: may decide 0 or 1.
        let st = obj
            .enqueue_invocation(ProcId(1), &KSetConsensus::init(1), &st)
            .unwrap();
        assert_eq!(obj.perform_all(ProcId(1), &st).len(), 2);
    }

    #[test]
    #[should_panic(expected = "no compute steps")]
    fn compute_panics() {
        let obj = consensus_obj(0);
        let st = obj.initial_states().remove(0);
        let _ = obj.compute_all(&GlobalTaskId::named("g"), &st);
    }

    #[test]
    fn fifo_order_of_concurrent_same_endpoint_invocations() {
        // Fig. 1 preserves per-endpoint invocation order via the FIFO
        // inv_buffer: two writes from P0 must be performed in order.
        let reg = CanonicalAtomicObject::register(ReadWrite::binary(), [ProcId(0)]);
        let st = reg.initial_states().remove(0);
        let st = reg
            .enqueue_invocation(ProcId(0), &ReadWrite::write(Val::Int(1)), &st)
            .unwrap();
        let st = reg
            .enqueue_invocation(ProcId(0), &ReadWrite::write(Val::Int(0)), &st)
            .unwrap();
        let st = reg.perform_all(ProcId(0), &st).remove(0);
        assert_eq!(st.val, Val::Int(1));
        let st = reg.perform_all(ProcId(0), &st).remove(0);
        assert_eq!(st.val, Val::Int(0));
    }
}
