//! The object-safe interface shared by all canonical services.
//!
//! The `system` crate composes processes with a heterogeneous vector of
//! services; [`Service`] is the dynamic interface each canonical
//! automaton implements. Its methods mirror the task structure of the
//! paper's canonical automata:
//!
//! * `i-perform` task — [`Service::perform_all`] (the `perform_{i,k}`
//!   action) and [`Service::dummy_perform_enabled`]
//!   (`dummy_perform_{i,k}`);
//! * `i-output` task — popping `resp_buffer(i)` (the `b_{i,k}` actions,
//!   realized by [`SvcState::pop_response`]) and
//!   [`Service::dummy_output_enabled`] (`dummy_output_{i,k}`);
//! * `g-compute` tasks — [`Service::compute_all`] (the `compute_{g,k}`
//!   action) and [`Service::dummy_compute_enabled`]
//!   (`dummy_compute_{g,k}`), present only for failure-oblivious and
//!   general services.

use crate::state::SvcState;
use spec::{GlobalTaskId, Inv, ProcId};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// Which class of the paper's service hierarchy a canonical service
/// belongs to. The hierarchy is strict: atomic objects ⊂
/// failure-oblivious services ⊂ general services (Sections 5.1, 6.1),
/// and Theorem 10's connectivity requirement applies only to the
/// `General` class.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceClass {
    /// A canonical reliable (wait-free) read/write register — index set
    /// `R` in the paper.
    Register,
    /// A canonical resilient atomic object (Fig. 1) — index set `K`.
    Atomic,
    /// A canonical failure-oblivious service (Fig. 4) — index set `K`
    /// (or `K1` in Theorem 10).
    FailureOblivious,
    /// A canonical general, possibly failure-aware service (Fig. 8) —
    /// index set `K2` in Theorem 10.
    General,
}

impl ServiceClass {
    /// Whether states of this class may depend on failure events
    /// (only [`ServiceClass::General`] may).
    pub fn is_failure_aware(self) -> bool {
        matches!(self, ServiceClass::General)
    }

    /// Whether the k-similarity definitions of Sections 3.5/6.3 compare
    /// this service's state (they ignore general services).
    pub fn compared_by_similarity(self) -> bool {
        !self.is_failure_aware()
    }
}

impl fmt::Display for ServiceClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ServiceClass::Register => "register",
            ServiceClass::Atomic => "atomic",
            ServiceClass::FailureOblivious => "failure-oblivious",
            ServiceClass::General => "general",
        };
        write!(f, "{s}")
    }
}

/// A canonical `f`-resilient service: the dynamic interface over
/// [`SvcState`] consumed by the system composition.
pub trait Service: fmt::Debug + Send + Sync {
    /// The service's class in the paper's hierarchy.
    fn class(&self) -> ServiceClass;

    /// A short human-readable name.
    fn name(&self) -> String;

    /// The endpoint set `J`.
    fn endpoints(&self) -> &BTreeSet<ProcId>;

    /// The resilience level `f`.
    fn resilience(&self) -> usize;

    /// The global task names (empty for atomic objects and registers).
    fn global_tasks(&self) -> Vec<GlobalTaskId>;

    /// The start states (one per choice of initial value in `V0`).
    fn initial_states(&self) -> Vec<SvcState>;

    /// Whether `inv` is an invocation of the underlying type.
    fn is_invocation(&self, inv: &Inv) -> bool;

    /// All invocations of the underlying type.
    fn invocations(&self) -> Vec<Inv>;

    /// All outcomes of the (real) `perform_{i}` action: pop the head of
    /// `inv_buffer(i)` and apply the type's transition relation.
    /// Empty iff `inv_buffer(i)` is empty.
    fn perform_all(&self, i: ProcId, st: &SvcState) -> Vec<SvcState>;

    /// All outcomes of the (real) `compute_g` action. Total for every
    /// global task the service declares (δ2 is a total relation).
    fn compute_all(&self, g: &GlobalTaskId, st: &SvcState) -> Vec<SvcState>;

    /// Whether [`Service::perform_all`] would return a nonempty vector,
    /// without materializing any successor.
    ///
    /// Sound because the `perform_all` contract says "empty iff
    /// `inv_buffer(i)` is empty": the canonical automata's δ1 is a
    /// total relation on pending invocations, so enablement is exactly
    /// buffer non-emptiness.
    fn perform_enabled(&self, i: ProcId, st: &SvcState) -> bool {
        !st.inv_buffer(i).is_empty()
    }

    /// Whether popping `resp_buffer(i)` (the real `b_{i}` output) is
    /// enabled, without cloning the state.
    fn output_enabled(&self, i: ProcId, st: &SvcState) -> bool {
        !st.resp_buffer(i).is_empty()
    }

    /// Precondition of `dummy_perform_i` and `dummy_output_i` (Fig. 1):
    /// `i ∈ failed ∨ |failed| > f`.
    fn dummy_perform_enabled(&self, i: ProcId, st: &SvcState) -> bool {
        st.failed.contains(&i) || st.failure_count() > self.resilience()
    }

    /// Same precondition for the output dummy (Fig. 1 gives the two
    /// dummies identical preconditions).
    fn dummy_output_enabled(&self, i: ProcId, st: &SvcState) -> bool {
        self.dummy_perform_enabled(i, st)
    }

    /// Precondition of `dummy_compute_g` (Fig. 4):
    /// `|failed| > f ∨ failed = J`.
    fn dummy_compute_enabled(&self, st: &SvcState) -> bool {
        st.failure_count() > self.resilience() || st.failed == *self.endpoints()
    }

    /// Whether the service is wait-free (reliable): `f ≥ |J| − 1`
    /// (Section 2.1.3).
    fn is_wait_free(&self) -> bool {
        self.resilience() + 1 >= self.endpoints().len()
    }

    /// Applies the invocation input action `a_{i}`: appends to
    /// `inv_buffer(i)`. `None` if `i ∉ J` or `inv` is not an invocation
    /// of the type.
    fn enqueue_invocation(&self, i: ProcId, inv: &Inv, st: &SvcState) -> Option<SvcState> {
        if !self.endpoints().contains(&i) || !self.is_invocation(inv) {
            return None;
        }
        Some(st.with_invocation(i, inv.clone()))
    }

    /// Applies the response output action `b_{i}`: pops the head of
    /// `resp_buffer(i)`.
    fn pop_response(&self, i: ProcId, st: &SvcState) -> Option<(spec::Resp, SvcState)> {
        st.pop_response(i)
    }

    /// Applies the `fail_i` input action: records the failure iff
    /// `i ∈ J` (a `fail` of a non-endpoint is invisible to this
    /// service, Section 2.2.3).
    fn apply_fail(&self, i: ProcId, st: &SvcState) -> SvcState {
        if self.endpoints().contains(&i) {
            st.with_failure(i)
        } else {
            st.clone()
        }
    }

    /// Whether the service is *endpoint-symmetric*: relabeling endpoint
    /// `i` as `π(i)` in a state (all per-endpoint buffers and the failed
    /// set) commutes with every transition, because the underlying
    /// sequential type never bakes a `ProcId` into values or branches on
    /// the identity of the invoker. The `system::packed` orbit
    /// canonicalizer requires this of every service before it quotients
    /// by process-id permutation. Defaults to `false` — an explicit
    /// opt-in, like `ProcessAutomaton::id_symmetric` on the process
    /// side.
    fn endpoint_symmetric(&self) -> bool {
        false
    }

    /// Whether the service is *value-symmetric*: the structural 0 ↔ 1
    /// consensus-value relabeling (`spec::RelabelValues` on
    /// [`SvcState`]) commutes with every transition, because the
    /// underlying sequential type carries values without inspecting
    /// them asymmetrically. Together with
    /// `ProcessAutomaton::value_symmetric` this gates the composed
    /// `S_n × S_vals` quotient (`SymmetryMode::Values`); the claim is
    /// audited by the `value-symmetry` rule in `analysis::audit`.
    /// Defaults to `false` — an explicit opt-in, like
    /// [`Service::endpoint_symmetric`].
    fn value_symmetric(&self) -> bool {
        false
    }
}

/// A shared, dynamically typed canonical service.
pub type ArcService = Arc<dyn Service>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_predicates() {
        assert!(ServiceClass::General.is_failure_aware());
        assert!(!ServiceClass::Atomic.is_failure_aware());
        assert!(ServiceClass::Register.compared_by_similarity());
        assert!(!ServiceClass::General.compared_by_similarity());
    }

    #[test]
    fn class_display() {
        assert_eq!(
            ServiceClass::FailureOblivious.to_string(),
            "failure-oblivious"
        );
    }
}
