//! Canonical `f`-resilient services.
//!
//! This crate transcribes the paper's three canonical service automata
//! into executable form:
//!
//! * [`atomic::CanonicalAtomicObject`] — the canonical `f`-resilient
//!   atomic object of Fig. 1 (Section 2.1.3), including canonical
//!   reliable *registers* as the wait-free read/write special case;
//! * [`oblivious::CanonicalObliviousService`] — the canonical
//!   `f`-resilient failure-oblivious service of Fig. 4 (Section 5.1);
//! * [`general::CanonicalGeneralService`] — the canonical `f`-resilient
//!   general (failure-aware) service of Fig. 8 (Section 6.1).
//!
//! All three share the [`state::SvcState`] shape — a current value
//! `val`, two FIFO buffers per endpoint (`inv_buffer(i)`,
//! `resp_buffer(i)`) and the `failed` set — and implement the
//! object-safe [`service::Service`] interface consumed by the `system`
//! crate's composition. Resilience is encoded exactly as in the paper:
//! `dummy` actions become enabled once endpoint `i` has failed or more
//! than `f` endpoints have failed, which lets I/O-automaton fairness be
//! satisfied without the service ever responding again.
//!
//! # Example
//!
//! ```
//! use services::atomic::CanonicalAtomicObject;
//! use services::service::Service;
//! use spec::seq::BinaryConsensus;
//! use spec::ProcId;
//! use std::sync::Arc;
//!
//! // A 1-resilient 3-process consensus object.
//! let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), [ProcId(0), ProcId(1), ProcId(2)], 1);
//! let st = obj.initial_states().remove(0);
//! let st = obj.enqueue_invocation(ProcId(0), &BinaryConsensus::init(1), &st).unwrap();
//! let st = obj.perform_all(ProcId(0), &st).remove(0);
//! let (resp, _) = obj.pop_response(ProcId(0), &st).unwrap();
//! assert_eq!(resp, BinaryConsensus::decide(1));
//! ```

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

pub mod atomic;
pub mod automaton;
pub mod general;
pub mod oblivious;
pub mod service;
pub mod state;

pub use service::{ArcService, Service, ServiceClass};
pub use state::SvcState;
