//! Randomized-but-deterministic tests for the canonical services:
//! structural invariants of Fig. 1/4/8 automata under arbitrary event
//! sequences.
//!
//! Formerly proptest-based; rewritten onto the in-tree
//! [`ioa::rng::SplitMix64`] generator so the suite runs hermetically
//! (no registry dependency) and every case is replayable from its seed.

use ioa::rng::{RandomSource, SplitMix64};
use services::atomic::CanonicalAtomicObject;
use services::oblivious::CanonicalObliviousService;
use services::{Service, SvcState};
use spec::seq::{BinaryConsensus, ReadWrite};
use spec::tob::TotallyOrderedBroadcast;
use spec::{ProcId, Val};
use std::sync::Arc;

const CASES: usize = 64;

/// One abstract event fed to a service at a random endpoint.
#[derive(Clone, Debug)]
enum Ev {
    Invoke(usize, usize),
    Perform(usize),
    Output(usize),
    Compute,
    Fail(usize),
}

fn random_ev(g: &mut SplitMix64, n: usize, invs: usize) -> Ev {
    match g.gen_range(5) {
        0 => Ev::Invoke(g.gen_range(n), g.gen_range(invs)),
        1 => Ev::Perform(g.gen_range(n)),
        2 => Ev::Output(g.gen_range(n)),
        3 => Ev::Compute,
        _ => Ev::Fail(g.gen_range(n)),
    }
}

fn random_script(g: &mut SplitMix64, n: usize, invs: usize, max_len: usize) -> Vec<Ev> {
    (0..g.gen_range(max_len))
        .map(|_| random_ev(g, n, invs))
        .collect()
}

/// Drives a service through a script, maintaining a conservation model:
/// every invocation is pending, consumed, or already answered.
fn drive(svc: &dyn Service, script: &[Ev]) -> SvcState {
    let invs = svc.invocations();
    let mut st = svc.initial_states().remove(0);
    let mut invoked = vec![0usize; svc.endpoints().len()];
    let mut performed = vec![0usize; svc.endpoints().len()];
    for ev in script {
        match ev {
            Ev::Invoke(i, k) => {
                let p = ProcId(i % svc.endpoints().len());
                if let Some(st2) = svc.enqueue_invocation(p, &invs[k % invs.len()], &st) {
                    st = st2;
                    invoked[p.0] += 1;
                }
            }
            Ev::Perform(i) => {
                let p = ProcId(i % svc.endpoints().len());
                if let Some(st2) = svc.perform_all(p, &st).into_iter().next() {
                    st = st2;
                    performed[p.0] += 1;
                }
            }
            Ev::Output(i) => {
                let p = ProcId(i % svc.endpoints().len());
                if let Some((_, st2)) = svc.pop_response(p, &st) {
                    st = st2;
                }
            }
            Ev::Compute => {
                if let Some(g) = svc.global_tasks().first() {
                    if let Some(st2) = svc.compute_all(g, &st).into_iter().next() {
                        st = st2;
                    }
                }
            }
            Ev::Fail(i) => {
                let p = ProcId(i % svc.endpoints().len());
                st = svc.apply_fail(p, &st);
            }
        }
        // Conservation: pending = invoked − performed, per endpoint.
        for (idx, p) in svc.endpoints().iter().enumerate() {
            assert_eq!(
                st.inv_buffer(*p).len(),
                invoked[idx] - performed[idx],
                "invocation conservation broke at {p}"
            );
        }
    }
    st
}

#[test]
fn atomic_object_conserves_invocations() {
    let mut g = SplitMix64::seed_from_u64(0x5e4c_0001);
    for _ in 0..CASES {
        let script = random_script(&mut g, 3, 2, 60);
        let svc = CanonicalAtomicObject::new(
            Arc::new(BinaryConsensus),
            [ProcId(0), ProcId(1), ProcId(2)],
            1,
        );
        let st = drive(&svc, &script);
        // Consensus safety inside the object: val is ∅ or a singleton,
        // and all pending responses carry exactly that value.
        let chosen = st.val.as_set().unwrap();
        assert!(chosen.len() <= 1);
        for p in svc.endpoints() {
            for r in st.resp_buffer(*p) {
                let d = BinaryConsensus::decision(r).unwrap();
                assert_eq!(chosen.iter().next(), Some(&Val::Int(d)));
            }
        }
    }
}

#[test]
fn register_conserves_invocations_and_acks_every_write() {
    let mut g = SplitMix64::seed_from_u64(0x5e4c_0002);
    for _ in 0..CASES {
        let script = random_script(&mut g, 2, 3, 60);
        let svc = CanonicalAtomicObject::register(ReadWrite::binary(), [ProcId(0), ProcId(1)]);
        let st = drive(&svc, &script);
        // Register domain invariant: val stays in {0, 1}.
        assert!(st.val == Val::Int(0) || st.val == Val::Int(1));
    }
}

#[test]
fn dummy_enabling_is_monotone_in_failures() {
    let mut g = SplitMix64::seed_from_u64(0x5e4c_0003);
    for _ in 0..CASES {
        let fails: Vec<usize> = (0..g.gen_range(6)).map(|_| g.gen_range(3)).collect();
        let svc = CanonicalAtomicObject::new(
            Arc::new(BinaryConsensus),
            [ProcId(0), ProcId(1), ProcId(2)],
            1,
        );
        let mut st = svc.initial_states().remove(0);
        let mut prev_enabled: Vec<bool> = (0..3)
            .map(|i| svc.dummy_perform_enabled(ProcId(i), &st))
            .collect();
        for f in fails {
            st = svc.apply_fail(ProcId(f % 3), &st);
            let now: Vec<bool> = (0..3)
                .map(|i| svc.dummy_perform_enabled(ProcId(i), &st))
                .collect();
            for (before, after) in prev_enabled.iter().zip(&now) {
                assert!(!before || *after, "a dummy became disabled after a failure");
            }
            prev_enabled = now;
        }
    }
}

#[test]
fn tob_delivers_every_endpoint_the_same_prefix() {
    let mut g = SplitMix64::seed_from_u64(0x5e4c_0004);
    for _ in 0..CASES {
        let script = random_script(&mut g, 3, 2, 80);
        let j = [ProcId(0), ProcId(1), ProcId(2)];
        let svc = CanonicalObliviousService::new(
            Arc::new(TotallyOrderedBroadcast::new([Val::Int(0), Val::Int(1)], j)),
            j,
            1,
        );
        // Drive, but track the cumulative delivery sequence per endpoint
        // (deliveries = what enters resp buffers via compute).
        let invs = svc.invocations();
        let mut st = svc.initial_states().remove(0);
        let mut delivered: Vec<Vec<spec::seq_type::Resp>> = vec![Vec::new(); 3];
        for ev in &script {
            match ev {
                Ev::Invoke(i, k) => {
                    if let Some(st2) =
                        svc.enqueue_invocation(ProcId(i % 3), &invs[k % invs.len()], &st)
                    {
                        st = st2;
                    }
                }
                Ev::Perform(i) => {
                    if let Some(st2) = svc.perform_all(ProcId(i % 3), &st).into_iter().next() {
                        st = st2;
                    }
                }
                Ev::Compute => {
                    let gt = TotallyOrderedBroadcast::delivery_task();
                    let before: Vec<usize> =
                        (0..3).map(|i| st.resp_buffer(ProcId(i)).len()).collect();
                    let st2 = svc.compute_all(&gt, &st).into_iter().next().unwrap();
                    for i in 0..3 {
                        for idx in before[i]..st2.resp_buffer(ProcId(i)).len() {
                            delivered[i].push(st2.resp_buffer(ProcId(i))[idx].clone());
                        }
                    }
                    st = st2;
                }
                Ev::Output(i) => {
                    if let Some((_, st2)) = svc.pop_response(ProcId(i % 3), &st) {
                        st = st2;
                    }
                }
                Ev::Fail(i) => st = svc.apply_fail(ProcId(i % 3), &st),
            }
        }
        // Total order: all three cumulative delivery sequences are equal.
        assert_eq!(&delivered[0], &delivered[1]);
        assert_eq!(&delivered[1], &delivered[2]);
    }
}

#[test]
fn fail_is_idempotent_and_commutative() {
    for a in 0usize..3 {
        for b in 0usize..3 {
            let svc = CanonicalAtomicObject::new(
                Arc::new(BinaryConsensus),
                [ProcId(0), ProcId(1), ProcId(2)],
                0,
            );
            let st = svc.initial_states().remove(0);
            let ab = svc.apply_fail(ProcId(b), &svc.apply_fail(ProcId(a), &st));
            let ba = svc.apply_fail(ProcId(a), &svc.apply_fail(ProcId(b), &st));
            assert_eq!(&ab, &ba);
            let aa = svc.apply_fail(ProcId(a), &svc.apply_fail(ProcId(a), &st));
            assert_eq!(aa, svc.apply_fail(ProcId(a), &st));
        }
    }
}
