//! Property-based tests for the boosting constructions: safety under
//! random inputs, failure patterns and schedules.

use proptest::prelude::*;
use protocols::set_boost::{build, SetBoostParams};
use protocols::{doomed, fd_boost};
use spec::{ProcId, Val};
use std::collections::BTreeSet;
use system::consensus::{check_k_safety, InputAssignment};
use system::sched::{initialize, run_fair, run_random, BranchPolicy, FairOutcome};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn set_boost_never_exceeds_k_values(
        inputs in proptest::collection::vec(0i64..4, 4),
        seed in 0u64..10_000,
        kill in proptest::collection::btree_set(0usize..4, 0..4),
    ) {
        let sys = build(SetBoostParams { n: 4, k: 2, k_prime: 1 });
        let a = InputAssignment::of(
            inputs.iter().enumerate().map(|(i, v)| (ProcId(i), Val::Int(*v))),
        );
        let failures: Vec<(usize, ProcId)> =
            kill.iter().enumerate().map(|(idx, p)| (idx, ProcId(*p))).collect();
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &failures, 10_000, |_| false);
        for st in run.exec.states() {
            prop_assert_eq!(check_k_safety(&sys, st, &a, 2), None);
        }
    }

    #[test]
    fn set_boost_groups_agree_internally(
        inputs in proptest::collection::vec(0i64..4, 4),
    ) {
        let sys = build(SetBoostParams { n: 4, k: 2, k_prime: 1 });
        let a = InputAssignment::of(
            inputs.iter().enumerate().map(|(i, v)| (ProcId(i), Val::Int(*v))),
        );
        let run = run_fair(&sys, initialize(&sys, &a), BranchPolicy::Canonical, &[], 50_000, |st| {
            (0..4).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        prop_assert_eq!(&run.outcome, &FairOutcome::Stopped);
        let last = run.exec.last_state();
        // Within each group the service is 1-consensus: exact agreement.
        prop_assert_eq!(sys.decision(last, ProcId(0)), sys.decision(last, ProcId(1)));
        prop_assert_eq!(sys.decision(last, ProcId(2)), sys.decision(last, ProcId(3)));
    }

    #[test]
    fn fd_boost_deciders_always_agree(
        bits in proptest::collection::vec(any::<bool>(), 3),
        kill in proptest::collection::btree_set(0usize..3, 0..3),
        when in 0usize..15,
    ) {
        let sys = fd_boost::build(3);
        let a = InputAssignment::of(
            bits.iter().enumerate().map(|(i, b)| (ProcId(i), Val::Int(i64::from(*b)))),
        );
        let failures: Vec<(usize, ProcId)> =
            kill.iter().enumerate().map(|(idx, p)| (when + idx, ProcId(*p))).collect();
        let live: BTreeSet<usize> =
            (0..3).filter(|i| !kill.contains(i)).collect();
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::PreferDummy, &failures, 400_000, |st| {
            live.iter().all(|i| sys.decision(st, ProcId(*i)).is_some())
        });
        // Termination for all live processes…
        prop_assert_eq!(&run.outcome, &FairOutcome::Stopped);
        // …and agreement + validity among every decider.
        let last = run.exec.last_state();
        prop_assert_eq!(check_k_safety(&sys, last, &a, 1), None);
    }

    #[test]
    fn doomed_candidates_are_safe_below_their_resilience(
        bits in proptest::collection::vec(any::<bool>(), 3),
        seed in 0u64..10_000,
    ) {
        // The doomed systems are perfectly correct at their own level:
        // f = 1 object, at most one failure.
        let sys = doomed::doomed_atomic(3, 1);
        let a = InputAssignment::of(
            bits.iter().enumerate().map(|(i, b)| (ProcId(i), Val::Int(i64::from(*b)))),
        );
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &[(2, ProcId(0))], 10_000, |_| false);
        for st in run.exec.states() {
            prop_assert_eq!(check_k_safety(&sys, st, &a, 1), None);
        }
    }

    #[test]
    fn tob_consensus_is_safe_under_random_schedules(
        bits in proptest::collection::vec(any::<bool>(), 3),
        seed in 0u64..10_000,
    ) {
        let sys = doomed::doomed_oblivious(3, 2);
        let a = InputAssignment::of(
            bits.iter().enumerate().map(|(i, b)| (ProcId(i), Val::Int(i64::from(*b)))),
        );
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &[], 10_000, |_| false);
        for st in run.exec.states() {
            prop_assert_eq!(check_k_safety(&sys, st, &a, 1), None);
        }
    }
}
