//! Randomized-but-deterministic tests for the boosting constructions:
//! safety under random inputs, failure patterns and schedules.
//!
//! Formerly proptest-based; rewritten onto the in-tree
//! [`ioa::rng::SplitMix64`] generator so the suite runs hermetically
//! (no registry dependency) and every case is replayable from its seed.

use ioa::rng::{RandomSource, SplitMix64};
use protocols::set_boost::{build, SetBoostParams};
use protocols::{doomed, fd_boost};
use spec::{ProcId, Val};
use std::collections::BTreeSet;
use system::consensus::{check_k_safety, InputAssignment};
use system::sched::{initialize, run_fair, run_random, BranchPolicy, FairOutcome};

const CASES: usize = 32;

fn random_ints(g: &mut SplitMix64, n: usize, hi: i64) -> InputAssignment {
    InputAssignment::of((0..n).map(|i| (ProcId(i), Val::Int(g.gen_i64_range(0, hi)))))
}

fn random_bits(g: &mut SplitMix64, n: usize) -> InputAssignment {
    InputAssignment::of((0..n).map(|i| (ProcId(i), Val::Int(i64::from(g.gen_bool())))))
}

fn random_kill_set(g: &mut SplitMix64, n: usize) -> BTreeSet<usize> {
    let len = g.gen_range(n);
    (0..len).map(|_| g.gen_range(n)).collect()
}

#[test]
fn set_boost_never_exceeds_k_values() {
    let mut g = SplitMix64::seed_from_u64(0x9207_0001);
    for _ in 0..CASES {
        let a = random_ints(&mut g, 4, 4);
        let seed = g.next_u64();
        let kill = random_kill_set(&mut g, 4);
        let sys = build(SetBoostParams {
            n: 4,
            k: 2,
            k_prime: 1,
        });
        let failures: Vec<(usize, ProcId)> = kill
            .iter()
            .enumerate()
            .map(|(idx, p)| (idx, ProcId(*p)))
            .collect();
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &failures, 10_000, |_| false);
        for st in run.exec.states() {
            assert_eq!(check_k_safety(&sys, st, &a, 2), None);
        }
    }
}

#[test]
fn set_boost_groups_agree_internally() {
    let mut g = SplitMix64::seed_from_u64(0x9207_0002);
    for _ in 0..CASES {
        let a = random_ints(&mut g, 4, 4);
        let sys = build(SetBoostParams {
            n: 4,
            k: 2,
            k_prime: 1,
        });
        let run = run_fair(
            &sys,
            initialize(&sys, &a),
            BranchPolicy::Canonical,
            &[],
            50_000,
            |st| (0..4).all(|i| sys.decision(st, ProcId(i)).is_some()),
        );
        assert_eq!(&run.outcome, &FairOutcome::Stopped);
        let last = run.exec.last_state();
        // Within each group the service is 1-consensus: exact agreement.
        assert_eq!(sys.decision(last, ProcId(0)), sys.decision(last, ProcId(1)));
        assert_eq!(sys.decision(last, ProcId(2)), sys.decision(last, ProcId(3)));
    }
}

#[test]
fn fd_boost_deciders_always_agree() {
    let mut g = SplitMix64::seed_from_u64(0x9207_0003);
    for _ in 0..CASES {
        let a = random_bits(&mut g, 3);
        let kill = random_kill_set(&mut g, 3);
        let when = g.gen_range(15);
        let sys = fd_boost::build(3);
        let failures: Vec<(usize, ProcId)> = kill
            .iter()
            .enumerate()
            .map(|(idx, p)| (when + idx, ProcId(*p)))
            .collect();
        let live: BTreeSet<usize> = (0..3).filter(|i| !kill.contains(i)).collect();
        let s = initialize(&sys, &a);
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &failures,
            400_000,
            |st| live.iter().all(|i| sys.decision(st, ProcId(*i)).is_some()),
        );
        // Termination for all live processes…
        assert_eq!(&run.outcome, &FairOutcome::Stopped);
        // …and agreement + validity among every decider.
        let last = run.exec.last_state();
        assert_eq!(check_k_safety(&sys, last, &a, 1), None);
    }
}

#[test]
fn doomed_candidates_are_safe_below_their_resilience() {
    let mut g = SplitMix64::seed_from_u64(0x9207_0004);
    for _ in 0..CASES {
        // The doomed systems are perfectly correct at their own level:
        // f = 1 object, at most one failure.
        let a = random_bits(&mut g, 3);
        let seed = g.next_u64();
        let sys = doomed::doomed_atomic(3, 1);
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &[(2, ProcId(0))], 10_000, |_| false);
        for st in run.exec.states() {
            assert_eq!(check_k_safety(&sys, st, &a, 1), None);
        }
    }
}

#[test]
fn tob_consensus_is_safe_under_random_schedules() {
    let mut g = SplitMix64::seed_from_u64(0x9207_0005);
    for _ in 0..CASES {
        let a = random_bits(&mut g, 3);
        let seed = g.next_u64();
        let sys = doomed::doomed_oblivious(3, 2);
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &[], 10_000, |_| false);
        for st in run.exec.states() {
            assert_eq!(check_k_safety(&sys, st, &a, 1), None);
        }
    }
}
