//! The paper's Section 6.3 *union construction*, verbatim: a wait-free
//! `n`-process perfect failure detector implemented from 1-resilient
//! 2-process perfect failure detectors and wait-free registers.
//!
//! > "process i just listens to all failure detectors it is connected
//! > to and accumulates the set of suspected processes in a dedicated
//! > register. Periodically, it reads these dedicated registers and
//! > outputs the union of all sets of suspected processes."
//!
//! Each process loops forever: fold incoming pairwise suspicions into
//! a local set; publish that set in its dedicated register whenever it
//! grew; sweep all dedicated registers and emit `suspect(union)` as an
//! external output whenever the union grew. Accuracy is inherited from
//! the pairwise detectors (nobody is suspected before failing);
//! completeness holds because the failure of any `j` is observed by
//! the pairwise detector `{i, j}` of every live `i`.

use services::atomic::CanonicalAtomicObject;
use services::general::CanonicalGeneralService;
use spec::fd::{decode_suspect, suspect, FreshPerfectFd};
use spec::seq::ReadWrite;
use spec::seq_type::Resp;
use spec::{ProcId, SvcId, Val};
use std::collections::BTreeSet;
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// Encodes a suspicion set as a register value.
fn encode_set(s: &BTreeSet<ProcId>) -> Val {
    Val::set(s.iter().map(|p| Val::Int(p.0 as i64)))
}

/// Decodes a register value back into a suspicion set.
fn decode_set(v: &Val) -> BTreeSet<ProcId> {
    v.as_set()
        .map(|s| {
            s.iter()
                .filter_map(|x| x.as_int().map(|n| ProcId(n as usize)))
                .collect()
        })
        .unwrap_or_default()
}

/// The phase of a [`DerivedFdProcess`] within its publish/sweep cycle.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Deciding what to do next.
    Idle,
    /// Write of the local suspicion set issued; awaiting ack.
    AwaitWriteAck,
    /// Reading dedicated register `k`; awaiting the value.
    AwaitRead(usize),
}

/// The state of a [`DerivedFdProcess`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FdState {
    /// Suspicions heard directly from the pairwise detectors.
    pub local: BTreeSet<ProcId>,
    /// The suspicion set last written to the dedicated register.
    pub published: Option<BTreeSet<ProcId>>,
    /// Union accumulated during the current register sweep.
    pub sweep: BTreeSet<ProcId>,
    /// Next register index to read in the current sweep.
    pub cursor: usize,
    /// The union last emitted as a `suspect` output.
    pub emitted: Option<BTreeSet<ProcId>>,
    /// Intra-cycle phase.
    pub phase: Phase,
}

impl spec::RelabelValues for FdState {
    /// The failure-detector state carries process identities only — no
    /// consensus values anywhere — so the structural relabeling is the
    /// identity.
    fn relabel_values(&self, _vp: spec::ValuePerm) -> FdState {
        self.clone()
    }
}

/// The union-construction process: implements endpoint `i` of a
/// wait-free `n`-process perfect failure detector.
#[derive(Clone, Debug)]
pub struct DerivedFdProcess {
    n: usize,
    /// `reg_of[i]` = `P_i`'s dedicated suspicion register.
    reg_of: Vec<SvcId>,
    fd_services: BTreeSet<SvcId>,
}

impl ProcessAutomaton for DerivedFdProcess {
    type State = FdState;

    fn initial(&self, _i: ProcId) -> FdState {
        FdState {
            local: BTreeSet::new(),
            published: None,
            sweep: BTreeSet::new(),
            cursor: 0,
            emitted: None,
            phase: Phase::Idle,
        }
    }

    fn on_init(&self, _i: ProcId, st: &FdState, _v: &Val) -> FdState {
        // The derived detector has no invocations; inits are ignored.
        st.clone()
    }

    fn on_response(&self, _i: ProcId, st: &FdState, c: SvcId, resp: &Resp) -> FdState {
        if self.fd_services.contains(&c) {
            if let Some(sus) = decode_suspect(resp) {
                let mut st = st.clone();
                st.local.extend(sus);
                return st;
            }
            return st.clone();
        }
        match st.phase {
            Phase::AwaitWriteAck if resp == &ReadWrite::ack() => {
                let mut st = st.clone();
                st.phase = Phase::Idle;
                st
            }
            Phase::AwaitRead(k) if c == self.reg_of[k] => {
                let mut st = st.clone();
                st.sweep.extend(decode_set(&resp.0));
                st.cursor = k + 1;
                st.phase = Phase::Idle;
                st
            }
            _ => st.clone(),
        }
    }

    fn step(&self, i: ProcId, st: &FdState) -> (ProcAction, FdState) {
        if st.phase != Phase::Idle {
            return (ProcAction::Skip, st.clone());
        }
        // 1. Publish the local set whenever it grew.
        if st.published.as_ref() != Some(&st.local) {
            let mut st2 = st.clone();
            st2.published = Some(st.local.clone());
            st2.phase = Phase::AwaitWriteAck;
            return (
                ProcAction::Invoke(self.reg_of[i.0], ReadWrite::write(encode_set(&st.local))),
                st2,
            );
        }
        // 2. Sweep all dedicated registers.
        if st.cursor < self.n {
            let mut st2 = st.clone();
            st2.phase = Phase::AwaitRead(st.cursor);
            return (
                ProcAction::Invoke(self.reg_of[st.cursor], ReadWrite::read()),
                st2,
            );
        }
        // 3. Sweep complete: emit the union if it grew, restart.
        let union: BTreeSet<ProcId> = st.sweep.union(&st.local).copied().collect();
        let mut st2 = st.clone();
        st2.cursor = 0;
        st2.sweep = BTreeSet::new();
        if st.emitted.as_ref() != Some(&union) {
            st2.emitted = Some(union.clone());
            return (ProcAction::Output(suspect(&union)), st2);
        }
        (ProcAction::Skip, st2)
    }

    fn decision(&self, _st: &FdState) -> Option<Val> {
        None // failure detectors never decide
    }
}

/// Builds the Section 6.3 derived failure detector for `n` processes:
/// `n` dedicated wait-free registers (ids `0..n`) over the subset
/// domain, plus one 1-resilient edge-triggered perfect detector per
/// pair.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn build(n: usize) -> CompleteSystem<DerivedFdProcess> {
    assert!(
        n >= 2,
        "the pairwise construction needs at least two processes"
    );
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    // Register domain: all subsets of I (2^n values).
    let mut domain = Vec::with_capacity(1 << n);
    for mask in 0..(1u32 << n) {
        let s: BTreeSet<ProcId> = (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(ProcId)
            .collect();
        domain.push(encode_set(&s));
    }
    let initial = encode_set(&BTreeSet::new());
    let mut services: Vec<services::ArcService> = Vec::new();
    let reg_of: Vec<SvcId> = (0..n)
        .map(|r| {
            services.push(Arc::new(CanonicalAtomicObject::register(
                ReadWrite::with_domain(domain.clone(), initial.clone()),
                all.iter().copied(),
            )));
            SvcId(r)
        })
        .collect();
    let mut fd_services = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let id = SvcId(services.len());
            let pair = [ProcId(i), ProcId(j)];
            services.push(Arc::new(CanonicalGeneralService::new(
                Arc::new(FreshPerfectFd::new(pair)),
                pair,
                1,
            )));
            fd_services.insert(id);
        }
    }
    let sys = CompleteSystem::new(
        DerivedFdProcess {
            n,
            reg_of,
            fd_services,
        },
        n,
        services,
    );
    crate::contract_check(&sys, "derived-fd");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use system::sched::{run_fair, BranchPolicy};
    use system::Action;

    /// Collects the `suspect` outputs of each process along a run.
    fn outputs(
        run: &system::sched::FairRun<system::build::CompleteSystem<DerivedFdProcess>>,
        n: usize,
    ) -> Vec<Vec<BTreeSet<ProcId>>> {
        let mut out = vec![Vec::new(); n];
        for step in run.exec.steps() {
            if let Action::Output(i, r) = &step.action {
                out[i.0].push(decode_suspect(r).expect("outputs are suspect sets"));
            }
        }
        out
    }

    #[test]
    fn failure_free_detector_is_silent_after_the_empty_report() {
        let sys = build(3);
        let s = sys.single_initial_state();
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 50_000, |_| false);
        let outs = outputs(&run, 3);
        for o in &outs {
            // Exactly one output: the initial empty suspicion set.
            assert_eq!(o.len(), 1);
            assert!(o[0].is_empty());
        }
    }

    #[test]
    fn completeness_every_failure_is_eventually_reported_to_every_survivor() {
        let sys = build(3);
        let s = sys.single_initial_state();
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(5, ProcId(1))],
            100_000,
            |_| false,
        );
        let outs = outputs(&run, 3);
        for i in [0usize, 2] {
            let last = outs[i].last().expect("survivors keep reporting");
            assert!(
                last.contains(&ProcId(1)),
                "survivor P{i} never learned of P1's failure: {outs:?}"
            );
        }
    }

    #[test]
    fn accuracy_nobody_is_suspected_before_failing() {
        // Along the whole execution, every emitted suspicion set is a
        // subset of the processes failed at that point.
        let sys = build(3);
        let s = sys.single_initial_state();
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::Canonical,
            &[(7, ProcId(0)), (20, ProcId(2))],
            100_000,
            |_| false,
        );
        for step in run.exec.steps() {
            if let Action::Output(_, r) = &step.action {
                let suspected = decode_suspect(r).unwrap();
                assert!(
                    suspected.is_subset(&step.state.failed),
                    "false suspicion: {suspected:?} vs failed {:?}",
                    step.state.failed
                );
            }
        }
    }

    #[test]
    fn wait_free_two_failures_do_not_silence_the_survivor() {
        // The whole point: no single pairwise detector survives two
        // failures of ITS endpoints, but the survivor's own pairwise
        // detectors (1-resilient each, one endpoint alive) all keep
        // going — the derived detector is wait-free.
        let sys = build(3);
        let s = sys.single_initial_state();
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(0, ProcId(0)), (1, ProcId(1))],
            100_000,
            |_| false,
        );
        let outs = outputs(&run, 3);
        let last = outs[2].last().expect("survivor reports");
        assert_eq!(
            last,
            &[ProcId(0), ProcId(1)].into_iter().collect::<BTreeSet<_>>(),
            "survivor's final report must name both failures"
        );
    }
}
