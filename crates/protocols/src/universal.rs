//! The universality of consensus (Herlihy \[11\], the paper's stated
//! reason that consensus is *the* resilience benchmark, Section 1):
//! a wait-free atomic object of **any** deterministic sequential type
//! can be implemented from wait-free consensus services.
//!
//! This module implements the one-shot variant (each process performs
//! at most one operation, which is all the paper's consensus-centric
//! analyses need): a log of `n` wait-free multi-valued consensus
//! services agrees on the global linearization order; every process
//! replays the log on a local replica and answers its own operation
//! from the replica state at its winning slot.
//!
//! * **Atomicity** follows because all processes apply the same
//!   operation sequence to the same deterministic type: checked by
//!   finite-trace inclusion against the canonical atomic object.
//! * **Wait-freedom** follows because each slot's consensus service is
//!   wait-free and a process wins a slot after at most `n − 1` losses
//!   — each loss retires another process's unique operation.

use services::atomic::CanonicalAtomicObject;
use spec::seq::MultiValueConsensus;
use spec::seq_type::{ArcSeqType, Inv, Resp};
use spec::{ProcId, SvcId, Val};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// The phase of a [`UniversalProcess`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// No operation yet.
    Idle,
    /// Operation received; about to propose at the current slot.
    Proposing,
    /// Proposal issued at the current slot; awaiting its outcome.
    AwaitSlot,
    /// Response computed; about to announce it.
    Responding(Val),
    /// Done: the operation's response (recorded).
    Done(Val),
}

/// The state of a [`UniversalProcess`]: current slot, local replica of
/// the implemented object, own pending operation.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UniState {
    /// Protocol phase.
    pub phase: Phase,
    /// The next log slot to settle.
    pub slot: usize,
    /// The local replica value of the implemented type.
    pub replica: Val,
    /// The encoded pending operation (once `init` arrives).
    pub my_op: Option<i64>,
}

impl spec::RelabelValues for UniState {
    /// Structural 0 ↔ 1 relabeling: the replica value and any carried
    /// response are relabeled; the slot counter and the *encoded*
    /// pending operation (an opaque operation index, not a consensus
    /// value) are not.
    fn relabel_values(&self, vp: spec::ValuePerm) -> UniState {
        UniState {
            phase: match &self.phase {
                Phase::Idle => Phase::Idle,
                Phase::Proposing => Phase::Proposing,
                Phase::AwaitSlot => Phase::AwaitSlot,
                Phase::Responding(v) => Phase::Responding(v.relabel_values(vp)),
                Phase::Done(v) => Phase::Done(v.relabel_values(vp)),
            },
            slot: self.slot,
            replica: self.replica.relabel_values(vp),
            my_op: self.my_op,
        }
    }
}

/// The one-shot universal construction: `n` processes implement one
/// wait-free atomic object of type `typ` from `n` wait-free consensus
/// services (the log slots).
#[derive(Clone, Debug)]
pub struct UniversalProcess {
    typ: ArcSeqType,
    n: usize,
    /// `proposals[code]` = the `(proposer, invocation)` the code stands
    /// for; codes are what the log's consensus services agree on.
    proposals: Vec<(ProcId, Inv)>,
}

impl UniversalProcess {
    fn new(typ: ArcSeqType, n: usize) -> Self {
        let invs = typ.invocations();
        let mut proposals = Vec::with_capacity(n * invs.len());
        for i in 0..n {
            for inv in &invs {
                proposals.push((ProcId(i), inv.clone()));
            }
        }
        UniversalProcess { typ, n, proposals }
    }

    /// Encodes `(proposer, invocation)` as a consensus input.
    pub fn encode(&self, i: ProcId, inv: &Inv) -> Option<i64> {
        self.proposals
            .iter()
            .position(|(p, v)| *p == i && v == inv)
            .map(|idx| idx as i64)
    }

    /// Decodes a consensus decision back into `(proposer, invocation)`.
    pub fn decode(&self, code: i64) -> Option<&(ProcId, Inv)> {
        self.proposals.get(code as usize)
    }

    /// The external input that asks process `i` to perform `inv` on the
    /// implemented object.
    pub fn request(inv: &Inv) -> Val {
        inv.0.clone()
    }
}

impl ProcessAutomaton for UniversalProcess {
    type State = UniState;

    fn initial(&self, _i: ProcId) -> UniState {
        UniState {
            phase: Phase::Idle,
            slot: 0,
            replica: self.typ.initial_value(),
            my_op: None,
        }
    }

    fn on_init(&self, i: ProcId, st: &UniState, v: &Val) -> UniState {
        if st.phase != Phase::Idle {
            return st.clone();
        }
        let inv = Inv(v.clone());
        let Some(code) = self.encode(i, &inv) else {
            // Not an invocation of the implemented type: ignore.
            return st.clone();
        };
        let mut st = st.clone();
        st.my_op = Some(code);
        st.phase = Phase::Proposing;
        st
    }

    fn on_response(&self, i: ProcId, st: &UniState, c: SvcId, resp: &Resp) -> UniState {
        // Service c is the consensus object for slot c.
        if st.phase != Phase::AwaitSlot || c.0 != st.slot {
            return st.clone();
        }
        let Some(code) = MultiValueConsensus::decision(resp) else {
            return st.clone();
        };
        let (winner, inv) = self
            .decode(code)
            .expect("log holds encoded proposals")
            .clone();
        let (op_resp, replica2) = self.typ.delta_det(&inv, &st.replica);
        let mut st2 = st.clone();
        st2.replica = replica2;
        st2.slot += 1;
        if winner == i {
            // The slot linearized MY operation: its response comes from
            // the replica state right before this slot.
            st2.phase = Phase::Responding(op_resp.0);
        } else {
            st2.phase = Phase::Proposing;
        }
        st2
    }

    fn step(&self, _i: ProcId, st: &UniState) -> (ProcAction, UniState) {
        match &st.phase {
            Phase::Proposing => {
                if st.slot >= self.n {
                    // Cannot happen for one-shot operations (≤ n − 1
                    // losses), but stay total.
                    return (ProcAction::Skip, st.clone());
                }
                let code = st.my_op.expect("Proposing implies a pending op");
                let mut st2 = st.clone();
                st2.phase = Phase::AwaitSlot;
                (
                    ProcAction::Invoke(SvcId(st.slot), MultiValueConsensus::init(code)),
                    st2,
                )
            }
            Phase::Responding(v) => {
                let mut st2 = st.clone();
                st2.phase = Phase::Done(v.clone());
                (ProcAction::Decide(v.clone()), st2)
            }
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &UniState) -> Option<Val> {
        match &st.phase {
            Phase::Done(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the universal system: `n` processes implementing one
/// wait-free atomic object of type `typ` from `n` wait-free
/// multi-valued consensus services (one per log slot).
///
/// # Panics
///
/// Panics if `n` is zero or `typ` has no invocations.
pub fn build(typ: ArcSeqType, n: usize) -> CompleteSystem<UniversalProcess> {
    assert!(n > 0, "need at least one process");
    assert!(
        !typ.invocations().is_empty(),
        "the implemented type must have invocations"
    );
    let procs = UniversalProcess::new(typ, n);
    let domain = procs.proposals.len() as i64;
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    let services: Vec<services::ArcService> = (0..n)
        .map(|_| {
            Arc::new(CanonicalAtomicObject::wait_free(
                Arc::new(MultiValueConsensus::new(domain)),
                all.iter().copied(),
            )) as services::ArcService
        })
        .collect();
    let sys = CompleteSystem::new(procs, n, services);
    crate::contract_check(&sys, "universal");
    sys
}

/// Convenience: the canonical atomic object this system claims to
/// implement (for trace-inclusion checks).
pub fn specification(typ: ArcSeqType, n: usize) -> CanonicalAtomicObject {
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    CanonicalAtomicObject::wait_free(typ, all)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec::seq::{FetchAndAdd, FifoQueue, TestAndSet};
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

    fn run_all(
        sys: &CompleteSystem<UniversalProcess>,
        ops: &[(usize, Inv)],
        failures: &[(usize, ProcId)],
    ) -> Vec<Option<Val>> {
        let a = InputAssignment::of(
            ops.iter()
                .map(|(i, inv)| (ProcId(*i), UniversalProcess::request(inv))),
        );
        let s = initialize(sys, &a);
        let dead: std::collections::BTreeSet<usize> = failures.iter().map(|(_, p)| p.0).collect();
        let run = run_fair(sys, s, BranchPolicy::PreferDummy, failures, 200_000, |st| {
            ops.iter()
                .all(|(i, _)| dead.contains(i) || sys.decision(st, ProcId(*i)).is_some())
        });
        assert_eq!(
            run.outcome,
            FairOutcome::Stopped,
            "universal object must answer"
        );
        sys.decisions(run.exec.last_state())
    }

    #[test]
    fn test_and_set_has_one_winner() {
        let sys = build(Arc::new(TestAndSet), 3);
        let ops: Vec<(usize, Inv)> = (0..3).map(|i| (i, TestAndSet::test_and_set())).collect();
        let decisions = run_all(&sys, &ops, &[]);
        let winners = decisions
            .iter()
            .filter(|d| d.as_ref() == Some(&Val::Int(0)))
            .count();
        assert_eq!(winners, 1, "exactly one test&set winner: {decisions:?}");
    }

    #[test]
    fn counter_hands_out_distinct_tickets() {
        let sys = build(Arc::new(FetchAndAdd::modulo(16)), 3);
        let ops: Vec<(usize, Inv)> = (0..3).map(|i| (i, FetchAndAdd::fetch_add(1))).collect();
        let decisions = run_all(&sys, &ops, &[]);
        let mut tickets: Vec<i64> = decisions
            .iter()
            .map(|d| d.as_ref().unwrap().as_int().unwrap())
            .collect();
        tickets.sort_unstable();
        assert_eq!(
            tickets,
            vec![0, 1, 2],
            "fetch&add linearizes to distinct tickets"
        );
    }

    #[test]
    fn queue_dequeues_see_fifo_or_empty() {
        let sys = build(Arc::new(FifoQueue::bounded([Val::Int(7)].to_vec(), 4)), 2);
        let ops = vec![
            (0usize, FifoQueue::enq(Val::Int(7))),
            (1usize, FifoQueue::deq()),
        ];
        let decisions = run_all(&sys, &ops, &[]);
        // P1's deq linearizes before or after P0's enq: empty or 7.
        let deq = decisions[1].as_ref().unwrap();
        assert!(
            *deq == Val::Sym("empty") || *deq == Val::Int(7),
            "unexpected dequeue result {deq:?}"
        );
        assert_eq!(decisions[0].as_ref(), Some(&Val::Sym("ack")));
    }

    #[test]
    fn wait_free_survivor_is_answered_despite_max_failures() {
        let sys = build(Arc::new(TestAndSet), 3);
        let ops: Vec<(usize, Inv)> = (0..3).map(|i| (i, TestAndSet::test_and_set())).collect();
        // Kill P0 and P1 immediately: the log's consensus services are
        // wait-free, so P2 still linearizes and answers.
        let decisions = run_all(&sys, &ops, &[(0, ProcId(0)), (0, ProcId(1))]);
        assert!(decisions[2].is_some(), "survivor must be answered");
    }

    #[test]
    fn one_slot_per_process_suffices() {
        // Structural: the log has n slots and every process retires
        // after winning one.
        let sys = build(Arc::new(TestAndSet), 4);
        assert_eq!(sys.services().len(), 4);
        let ops: Vec<(usize, Inv)> = (0..4).map(|i| (i, TestAndSet::test_and_set())).collect();
        let decisions = run_all(&sys, &ops, &[]);
        assert!(decisions.iter().all(Option::is_some));
    }

    #[test]
    fn encode_decode_roundtrip() {
        let p = UniversalProcess::new(Arc::new(TestAndSet), 3);
        for i in 0..3 {
            for inv in [TestAndSet::test_and_set(), TestAndSet::reset()] {
                let code = p.encode(ProcId(i), &inv).unwrap();
                assert_eq!(p.decode(code), Some(&(ProcId(i), inv)));
            }
        }
        assert!(p.encode(ProcId(9), &TestAndSet::reset()).is_none());
    }
}
