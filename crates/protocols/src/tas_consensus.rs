//! Two-process wait-free consensus from test&set + registers — the
//! classic consensus-number-2 construction (Herlihy \[11\]), included
//! because it sharpens Theorem 2's reading: the theorem does *not* say
//! consensus is unimplementable, only that **resilience cannot be
//! boosted**. A *wait-free* test&set object yields wait-free 2-process
//! consensus (this module, certified); a 0-resilient test&set object
//! yields only 0-resilient consensus (the doomed variant, refuted by
//! the witness pipeline).
//!
//! Protocol (processes `P0`, `P1`; registers `r0`, `r1`; one test&set
//! object `T`):
//!
//! 1. `P_i` writes its input into `r_i`;
//! 2. `P_i` invokes `T.test_and_set()`;
//! 3. the winner (who read 0) decides its own input; the loser reads
//!    `r_{1−i}` and decides the winner's input.

use services::atomic::CanonicalAtomicObject;
use spec::seq::{ReadWrite, TestAndSet};
use spec::seq_type::Resp;
use spec::{ProcId, SvcId, Val};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// The phase of a [`TasConsensus`] process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting for `init(v)`.
    Idle,
    /// Holding `v`, about to publish it.
    Publish(Val),
    /// Write issued; awaiting ack.
    AwaitAck(Val),
    /// About to race on the test&set object.
    Race(Val),
    /// test&set invoked; awaiting the old value.
    AwaitRace(Val),
    /// Lost the race: reading the winner's register.
    ReadWinner,
    /// Read issued; awaiting the winner's value.
    AwaitWinner,
    /// Value determined; about to announce.
    Responding(Val),
    /// Decided.
    Decided(Val),
}

impl spec::RelabelValues for Phase {
    /// Structural 0 ↔ 1 relabeling of every carried value.
    fn relabel_values(&self, vp: spec::ValuePerm) -> Phase {
        match self {
            Phase::Idle => Phase::Idle,
            Phase::ReadWinner => Phase::ReadWinner,
            Phase::AwaitWinner => Phase::AwaitWinner,
            Phase::Publish(v) => Phase::Publish(v.relabel_values(vp)),
            Phase::AwaitAck(v) => Phase::AwaitAck(v.relabel_values(vp)),
            Phase::Race(v) => Phase::Race(v.relabel_values(vp)),
            Phase::AwaitRace(v) => Phase::AwaitRace(v.relabel_values(vp)),
            Phase::Responding(v) => Phase::Responding(v.relabel_values(vp)),
            Phase::Decided(v) => Phase::Decided(v.relabel_values(vp)),
        }
    }
}

/// The test&set consensus protocol for two processes.
///
/// Service layout: `regs[i]` is `P_i`'s input register; `tas` is the
/// shared test&set object.
#[derive(Clone, Debug)]
pub struct TasConsensus {
    regs: [SvcId; 2],
    tas: SvcId,
}

impl TasConsensus {
    /// A protocol instance over the given services.
    pub fn new(regs: [SvcId; 2], tas: SvcId) -> Self {
        TasConsensus { regs, tas }
    }
}

impl ProcessAutomaton for TasConsensus {
    type State = Phase;

    fn initial(&self, _i: ProcId) -> Phase {
        Phase::Idle
    }

    fn on_init(&self, _i: ProcId, st: &Phase, v: &Val) -> Phase {
        match st {
            Phase::Idle => Phase::Publish(v.clone()),
            other => other.clone(),
        }
    }

    fn on_response(&self, i: ProcId, st: &Phase, c: SvcId, resp: &Resp) -> Phase {
        match st {
            Phase::AwaitAck(v) if c == self.regs[i.0] && resp == &ReadWrite::ack() => {
                Phase::Race(v.clone())
            }
            Phase::AwaitRace(v) if c == self.tas => match resp.0.as_int() {
                Some(0) => Phase::Responding(v.clone()), // winner: own input
                Some(_) => Phase::ReadWinner,            // loser: fetch winner's
                None => st.clone(),
            },
            Phase::AwaitWinner if c == self.regs[1 - i.0] => {
                if resp.0 == Val::Sym("bot") {
                    // Cannot happen: the winner published before racing.
                    Phase::ReadWinner
                } else {
                    Phase::Responding(resp.0.clone())
                }
            }
            _ => st.clone(),
        }
    }

    fn step(&self, i: ProcId, st: &Phase) -> (ProcAction, Phase) {
        match st {
            Phase::Publish(v) => (
                ProcAction::Invoke(self.regs[i.0], ReadWrite::write(v.clone())),
                Phase::AwaitAck(v.clone()),
            ),
            Phase::Race(v) => (
                ProcAction::Invoke(self.tas, TestAndSet::test_and_set()),
                Phase::AwaitRace(v.clone()),
            ),
            Phase::ReadWinner => (
                ProcAction::Invoke(self.regs[1 - i.0], ReadWrite::read()),
                Phase::AwaitWinner,
            ),
            Phase::Responding(v) => (ProcAction::Decide(v.clone()), Phase::Decided(v.clone())),
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &Phase) -> Option<Val> {
        match st {
            Phase::Decided(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the test&set consensus system for two processes.
///
/// `tas_resilience` is the test&set object's resilience: `1` gives the
/// wait-free positive construction (consensus number 2); `0` gives the
/// doomed candidate Theorem 2 refutes.
pub fn build(tas_resilience: usize) -> CompleteSystem<TasConsensus> {
    let both = [ProcId(0), ProcId(1)];
    let services: Vec<services::ArcService> = vec![
        Arc::new(CanonicalAtomicObject::register(
            ReadWrite::values_with_bot(2),
            both,
        )),
        Arc::new(CanonicalAtomicObject::register(
            ReadWrite::values_with_bot(2),
            both,
        )),
        Arc::new(CanonicalAtomicObject::new(
            Arc::new(TestAndSet),
            both,
            tas_resilience,
        )),
    ];
    let sys = CompleteSystem::new(
        TasConsensus::new([SvcId(0), SvcId(1)], SvcId(2)),
        2,
        services,
    );
    crate::contract_check(&sys, "test-and-set");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::resilience::{all_binary_assignments, certify, CertifyConfig};
    use analysis::witness::{find_witness, Bounds, ImpossibilityWitness};
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

    #[test]
    fn wait_free_variant_is_certified_1_resilient() {
        // Consensus number 2: wait-free test&set + registers solve
        // wait-free (1-resilient) 2-process consensus.
        let sys = build(1);
        let mut cfg = CertifyConfig::new(1, 1, all_binary_assignments(2));
        cfg.max_steps = 100_000;
        let report = certify(&sys, &cfg);
        assert!(report.certified(), "{:?}", report.violations.first());
    }

    #[test]
    fn loser_adopts_the_winners_input() {
        let sys = build(1);
        let a = InputAssignment::of([(ProcId(0), Val::Int(1)), (ProcId(1), Val::Int(0))]);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..2).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        let vals = sys.decided_values(run.exec.last_state());
        assert_eq!(vals.len(), 1, "agreement: {vals:?}");
    }

    #[test]
    fn zero_resilient_variant_is_refuted_by_theorem_2() {
        // The same protocol over a 0-resilient test&set object cannot
        // be 1-resilient: the pipeline generates a witness, showing
        // Theorem 2 covers arbitrary atomic-object types, not just
        // consensus objects.
        let sys = build(0);
        let w = find_witness(&sys, 0, Bounds::default()).unwrap();
        assert!(
            matches!(w, ImpossibilityWitness::HookRefutation { .. }),
            "expected a hook refutation, got: {}",
            w.headline()
        );
    }

    #[test]
    fn survivor_decides_after_peer_crash_wait_free() {
        let sys = build(1);
        let a = InputAssignment::of([(ProcId(0), Val::Int(0)), (ProcId(1), Val::Int(1))]);
        let s = initialize(&sys, &a);
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(2, ProcId(0))],
            100_000,
            |st| sys.decision(st, ProcId(1)).is_some(),
        );
        assert_eq!(run.outcome, FairOutcome::Stopped);
    }
}
