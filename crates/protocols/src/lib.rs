//! Protocols: the paper's positive boosting constructions and the
//! doomed candidates its theorems refute.
//!
//! * [`set_boost`] — Section 4: wait-free `k`-set-consensus for `n`
//!   processes from `g = k/k'` wait-free `k'`-consensus services on
//!   disjoint endpoint groups. Boosting *is* possible below consensus.
//! * [`fd_boost`] — Section 6.3: consensus for any number of failures
//!   from 1-resilient 2-process perfect failure detectors (arbitrary
//!   connection pattern) plus wait-free registers, via a rotating
//!   coordinator.
//! * [`doomed`] — candidates that claim `(f+1)`-resilient consensus
//!   over `f`-resilient services, one per service class: they are fed
//!   to `analysis::witness::find_witness`, which reproduces the
//!   matching theorem's proof on them:
//!   - [`doomed::doomed_atomic`] / [`doomed::doomed_atomic_with_registers`]
//!     — Theorem 2 (atomic objects + registers);
//!   - [`doomed::doomed_oblivious`] — Theorem 9 (totally ordered
//!     broadcast, a failure-oblivious service);
//!   - [`doomed::doomed_general`] — Theorem 10 (an all-connected
//!     failure-aware perfect failure detector).
//!
//! # Example
//!
//! ```
//! use protocols::set_boost::{SetBoostParams, build};
//! // Wait-free 4-process 2-set consensus from two wait-free
//! // 2-process consensus services (the paper's concrete instance
//! // with n = 4).
//! let sys = build(SetBoostParams { n: 4, k: 2, k_prime: 1 });
//! assert_eq!(sys.services().len(), 2);
//! ```

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

pub mod broken;
pub mod derived_fd;
pub mod doomed;
pub mod fd_boost;
pub mod message_passing;
pub mod set_boost;
pub mod snapshot;
pub mod tas_consensus;
pub mod universal;

/// Construction-time contract audit, the `debug_assert` of substrate
/// assembly: with the `contract-checks` feature on, every builder in
/// this crate hands its freshly assembled system to the
/// `analysis::audit` component-local analyzer and panics on any
/// violation, so a substrate that lies about its contracts cannot even
/// be constructed in checked builds. Feature-off builds compile this to
/// nothing — substrate construction stays O(1) on release paths.
pub(crate) fn contract_check<P: system::process::ProcessAutomaton>(
    sys: &system::build::CompleteSystem<P>,
    name: &str,
) {
    #[cfg(feature = "contract-checks")]
    {
        let report =
            analysis::audit::audit_system(sys, name, &analysis::audit::AuditConfig::quick());
        assert!(
            !report.has_violations(),
            "substrate `{name}` failed its construction-time contract audit:\n{report}"
        );
    }
    #[cfg(not(feature = "contract-checks"))]
    {
        let _ = (sys, name);
    }
}
