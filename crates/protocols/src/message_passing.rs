//! Message passing as a special case of the service framework
//! (paper \[2\]: "Boosting Fault-Tolerance in Asynchronous Message
//! Passing Systems is Impossible", the technical report the journal
//! paper grew from).
//!
//! Channels are failure-oblivious services (`spec::channel`), so
//! Theorem 9 covers asynchronous message-passing systems directly.
//! [`build_flood_all`] is the classic flooding protocol: everyone
//! sends its input to everyone, waits for a value from **all** `n`
//! processes, and decides the minimum. It solves 0-resilient consensus
//! — and the witness pipeline refutes the claim that it (or anything
//! else over these services) reaches 1-resilience. Notably the
//! refutation here is *informational*, not service-silencing: all
//! pairwise channels stay perfectly live after the failure; the
//! survivor starves because the failed process's value can never
//! arrive — the message-passing face of the same theorem.

use services::oblivious::CanonicalObliviousService;
use spec::channel::PairChannel;
use spec::seq_type::Resp;
use spec::{ProcId, SvcId, Val};
use std::collections::BTreeMap;
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// The state of a [`FloodAll`] process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FloodState {
    /// Own input, once received.
    pub input: Option<Val>,
    /// Values heard so far, by sender (self included once sent).
    pub heard: BTreeMap<ProcId, Val>,
    /// Channels still to send on (indices into the peer list).
    pub next_send: usize,
    /// Recorded decision.
    pub decision: Option<Val>,
    /// Whether a send is in flight (channels answer nothing, so this
    /// clears immediately after the invoke step).
    pub announced: bool,
}

impl spec::RelabelValues for FloodState {
    /// Structural 0 ↔ 1 relabeling of the input, every heard value and
    /// the recorded decision; sender identities are untouched.
    fn relabel_values(&self, vp: spec::ValuePerm) -> FloodState {
        FloodState {
            input: self.input.relabel_values(vp),
            heard: self
                .heard
                .iter()
                .map(|(i, v)| (*i, v.relabel_values(vp)))
                .collect(),
            next_send: self.next_send,
            decision: self.decision.relabel_values(vp),
            announced: self.announced,
        }
    }
}

/// The flooding consensus protocol over a full mesh of pairwise
/// channels: send the input everywhere, collect all `n` values, decide
/// the minimum.
#[derive(Clone, Debug)]
pub struct FloodAll {
    n: usize,
    /// `chan[i][j]` = the channel service between `i` and `j`
    /// (symmetric, diagonal unused).
    chan: Vec<Vec<SvcId>>,
    /// `peer_by_svc[c]` = for each channel service, the pair it
    /// connects (to identify senders on receipt).
    pair_of: BTreeMap<SvcId, (ProcId, ProcId)>,
}

impl FloodAll {
    /// The sender behind a `rcv` on channel `c` at receiver `i`.
    fn sender(&self, c: SvcId, i: ProcId) -> Option<ProcId> {
        let (a, b) = *self.pair_of.get(&c)?;
        if i == a {
            Some(b)
        } else if i == b {
            Some(a)
        } else {
            None
        }
    }
}

impl ProcessAutomaton for FloodAll {
    type State = FloodState;

    fn initial(&self, _i: ProcId) -> FloodState {
        FloodState {
            input: None,
            heard: BTreeMap::new(),
            next_send: 0,
            decision: None,
            announced: false,
        }
    }

    fn on_init(&self, i: ProcId, st: &FloodState, v: &Val) -> FloodState {
        if st.input.is_some() {
            return st.clone();
        }
        let mut st = st.clone();
        st.input = Some(v.clone());
        st.heard.insert(i, v.clone());
        st
    }

    fn on_response(&self, i: ProcId, st: &FloodState, c: SvcId, resp: &Resp) -> FloodState {
        let Some(sender) = self.sender(c, i) else {
            return st.clone();
        };
        let Some(m) = PairChannel::decode_rcv(resp) else {
            return st.clone();
        };
        let mut st = st.clone();
        st.heard.entry(sender).or_insert_with(|| m.clone());
        st
    }

    fn step(&self, i: ProcId, st: &FloodState) -> (ProcAction, FloodState) {
        let Some(input) = &st.input else {
            return (ProcAction::Skip, st.clone());
        };
        // Phase 1: flood the input to every peer, one channel per step.
        let peers: Vec<ProcId> = (0..self.n).map(ProcId).filter(|p| *p != i).collect();
        if st.next_send < peers.len() {
            let peer = peers[st.next_send];
            let mut st2 = st.clone();
            st2.next_send += 1;
            return (
                ProcAction::Invoke(self.chan[i.0][peer.0], PairChannel::send(input.clone())),
                st2,
            );
        }
        // Phase 2: wait for all n values, then decide the minimum.
        if st.heard.len() == self.n && !st.announced {
            let min = st.heard.values().min().expect("n ≥ 1 values").clone();
            let mut st2 = st.clone();
            st2.decision = Some(min.clone());
            st2.announced = true;
            return (ProcAction::Decide(min), st2);
        }
        (ProcAction::Skip, st.clone())
    }

    fn decision(&self, st: &FloodState) -> Option<Val> {
        st.decision.clone()
    }
}

/// Builds the flooding system: `n` processes over a full mesh of
/// pairwise `f`-resilient channels carrying binary values.
///
/// # Panics
///
/// Panics if `n < 2`.
#[allow(clippy::needless_range_loop)] // symmetric matrix fill: indices ARE the data
pub fn build_flood_all(n: usize, f: usize) -> CompleteSystem<FloodAll> {
    assert!(n >= 2, "flooding needs at least two processes");
    let mut services: Vec<services::ArcService> = Vec::new();
    let mut chan = vec![vec![SvcId(usize::MAX); n]; n];
    let mut pair_of = BTreeMap::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let id = SvcId(services.len());
            let pair = [ProcId(i), ProcId(j)];
            services.push(Arc::new(CanonicalObliviousService::new(
                Arc::new(PairChannel::new(
                    ProcId(i),
                    ProcId(j),
                    [Val::Int(0), Val::Int(1)],
                )),
                pair,
                f,
            )));
            chan[i][j] = id;
            chan[j][i] = id;
            pair_of.insert(id, (ProcId(i), ProcId(j)));
        }
    }
    let sys = CompleteSystem::new(FloodAll { n, chan, pair_of }, n, services);
    crate::contract_check(&sys, "flooding");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::resilience::{all_binary_assignments, certify, CertifyConfig};
    use analysis::similarity::Refutation;
    use analysis::witness::{find_witness, Bounds, ImpossibilityWitness};
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

    #[test]
    fn failure_free_flooding_decides_the_minimum() {
        let sys = build_flood_all(3, 1);
        let a = InputAssignment::of([
            (ProcId(0), Val::Int(1)),
            (ProcId(1), Val::Int(0)),
            (ProcId(2), Val::Int(1)),
        ]);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..3).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        for i in 0..3 {
            assert_eq!(
                sys.decision(run.exec.last_state(), ProcId(i)),
                Some(Val::Int(0)),
                "everyone decides min of all inputs"
            );
        }
    }

    #[test]
    fn flooding_is_certified_0_resilient() {
        let sys = build_flood_all(2, 1);
        let cfg = CertifyConfig::new(1, 0, all_binary_assignments(2));
        let report = certify(&sys, &cfg);
        assert!(report.certified(), "{:?}", report.violations.first());
    }

    #[test]
    fn message_passing_boosting_is_refuted_informationally() {
        // Claim 1-resilience over 1-resilient (here: fully live)
        // channels. The witness starves a survivor even though NO
        // channel is ever silenced: the failed process's value simply
        // never enters the network — the original FLP flavour of the
        // theorem, recovered inside the service framework.
        let sys = build_flood_all(2, 1);
        let w = find_witness(&sys, 0, Bounds::default()).unwrap();
        match &w {
            ImpossibilityWitness::AdjacentRefutation { refutation, .. }
            | ImpossibilityWitness::HookRefutation { refutation, .. } => match refutation {
                Refutation::TerminationViolation { failed, run, .. } => {
                    assert_eq!(failed.len(), 1);
                    // The channels stay live towards the survivor: the
                    // only dummies in the starving run belong to the
                    // FAILED endpoint's own perform/output tasks
                    // (enabled by the `i ∈ failed` clause of Fig. 1);
                    // no delivery (compute) task is ever silenced and
                    // no dummy touches the survivor.
                    for step in run.exec.steps() {
                        match &step.action {
                            system::Action::DummyPerform(_, i)
                            | system::Action::DummyOutput(_, i) => {
                                assert!(
                                    failed.contains(i),
                                    "a live endpoint's task was silenced: {:?}",
                                    step.action
                                );
                            }
                            system::Action::DummyCompute(..) => {
                                panic!("a delivery task was silenced: {:?}", step.action)
                            }
                            _ => {}
                        }
                    }
                }
                other => panic!("expected a termination violation, got {other:?}"),
            },
            other => panic!("unexpected witness: {}", other.headline()),
        }
    }

    #[test]
    fn three_process_flooding_blocks_on_one_late_failure() {
        let sys = build_flood_all(3, 2);
        let a = InputAssignment::monotone(3, 1);
        let s = initialize(&sys, &a);
        // P2 dies before flooding anything: the other two wait forever.
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::Canonical,
            &[(0, ProcId(2))],
            100_000,
            |st| (0..2).all(|i| sys.decision(st, ProcId(i)).is_some()),
        );
        assert!(
            matches!(run.outcome, FairOutcome::Lasso(_)),
            "expected blocking, got {:?}",
            run.outcome
        );
    }
}
