//! Section 4: boosting *is* possible for k-set-consensus.
//!
//! The construction: take `n` endpoints, split them into `g = k/k'`
//! disjoint groups of `n' = n/g` endpoints each, and give each group
//! its own wait-free `k'`-consensus service. Each process forwards its
//! input to its group's service and decides the response. At most `k'`
//! distinct values come out of each of the `g` services, so at most
//! `k' · g = k` distinct values are decided overall — wait-free
//! (`f = n − 1`) `k`-set-consensus from services that are only
//! `(n' − 1)`-resilient. Since `n' − 1 < n − 1`, resilience has been
//! boosted — which Theorem 2 proves impossible for `k = 1`.
//!
//! The paper's concrete instance: `n` even, `n' = n/2`, `k = 2`,
//! `k' = 1` — wait-free `n`-process 2-set consensus from wait-free
//! `n/2`-process consensus services.

use services::atomic::CanonicalAtomicObject;
use spec::seq::{KSetConsensus, MultiValueConsensus};
use spec::seq_type::Resp;
use spec::{ProcId, SvcId, Val};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// Parameters of the Section 4 construction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SetBoostParams {
    /// Total number of endpoints `n`.
    pub n: usize,
    /// The overall agreement bound `k`.
    pub k: usize,
    /// The per-service agreement bound `k'` (with `k' | k` and
    /// `(k/k') | n`).
    pub k_prime: usize,
}

impl SetBoostParams {
    /// The number of groups `g = k/k'`.
    pub fn groups(&self) -> usize {
        self.k / self.k_prime
    }

    /// The group size `n' = n/g`.
    pub fn group_size(&self) -> usize {
        self.n / self.groups()
    }

    fn validate(&self) {
        assert!(
            self.k_prime >= 1 && self.k >= self.k_prime,
            "need 1 ≤ k' ≤ k"
        );
        assert_eq!(self.k % self.k_prime, 0, "k' must divide k");
        let g = self.groups();
        assert!(
            g >= 1 && self.n.is_multiple_of(g),
            "the group count must divide n"
        );
        assert!(self.group_size() >= 1, "groups must be nonempty");
        // The k-set-consensus side condition 0 < k < n.
        assert!(self.k < self.n, "k-set-consensus needs k < n");
    }
}

/// The phase of a [`GroupProcess`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Waiting for the external `init(v)`.
    Idle,
    /// Holding input `v`, about to invoke the group service.
    HasInput(Val),
    /// Invocation issued; awaiting the service's `decide`.
    Waiting,
    /// Response `v` received, about to announce it.
    Responding(Val),
    /// Decided `v`.
    Decided(Val),
}

impl spec::RelabelValues for Phase {
    /// Structural 0 ↔ 1 relabeling of the carried value.
    fn relabel_values(&self, vp: spec::ValuePerm) -> Phase {
        match self {
            Phase::Idle => Phase::Idle,
            Phase::Waiting => Phase::Waiting,
            Phase::HasInput(v) => Phase::HasInput(v.relabel_values(vp)),
            Phase::Responding(v) => Phase::Responding(v.relabel_values(vp)),
            Phase::Decided(v) => Phase::Decided(v.relabel_values(vp)),
        }
    }
}

/// The Section 4 process: forward the input to the group's service,
/// decide the response.
#[derive(Clone, Debug)]
pub struct GroupProcess {
    svc_of: Vec<SvcId>,
}

impl GroupProcess {
    /// A process family where process `i` talks to `svc_of[i]`.
    pub fn new(svc_of: Vec<SvcId>) -> Self {
        GroupProcess { svc_of }
    }

    /// The service process `i` is wired to.
    pub fn service_of(&self, i: ProcId) -> SvcId {
        self.svc_of[i.0]
    }
}

impl ProcessAutomaton for GroupProcess {
    type State = Phase;

    fn initial(&self, _i: ProcId) -> Phase {
        Phase::Idle
    }

    fn on_init(&self, _i: ProcId, st: &Phase, v: &Val) -> Phase {
        match st {
            Phase::Idle => Phase::HasInput(v.clone()),
            other => other.clone(),
        }
    }

    fn on_response(&self, i: ProcId, st: &Phase, c: SvcId, resp: &Resp) -> Phase {
        if c != self.svc_of[i.0] {
            return st.clone();
        }
        match (st, resp.name(), resp.arg()) {
            (Phase::Waiting, Some("decide"), Some(v)) => Phase::Responding(v.clone()),
            _ => st.clone(),
        }
    }

    fn step(&self, i: ProcId, st: &Phase) -> (ProcAction, Phase) {
        match st {
            Phase::HasInput(v) => {
                let v = v.as_int().expect("set-consensus inputs are ints");
                (
                    ProcAction::Invoke(self.svc_of[i.0], MultiValueConsensus::init(v)),
                    Phase::Waiting,
                )
            }
            Phase::Responding(v) => (ProcAction::Decide(v.clone()), Phase::Decided(v.clone())),
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &Phase) -> Option<Val> {
        match st {
            Phase::Decided(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the Section 4 system: `g` wait-free `k'`-consensus services
/// on disjoint groups of `n'` consecutive endpoints.
///
/// # Panics
///
/// Panics if the parameters violate the construction's side conditions
/// (`k' | k`, `(k/k') | n`, `k < n`).
pub fn build(params: SetBoostParams) -> CompleteSystem<GroupProcess> {
    params.validate();
    let g = params.groups();
    let n_prime = params.group_size();
    let mut services: Vec<services::ArcService> = Vec::with_capacity(g);
    let mut svc_of = vec![SvcId(0); params.n];
    for group in 0..g {
        let endpoints: Vec<ProcId> = (0..n_prime).map(|o| ProcId(group * n_prime + o)).collect();
        for i in &endpoints {
            svc_of[i.0] = SvcId(group);
        }
        // init(v) invocations carry the same payload for both types, so
        // GroupProcess works against either.
        let svc = if params.k_prime == 1 {
            CanonicalAtomicObject::wait_free(
                Arc::new(MultiValueConsensus::new(params.n as i64)),
                endpoints,
            )
        } else {
            CanonicalAtomicObject::wait_free(
                Arc::new(KSetConsensus::new(params.k_prime, params.n)),
                endpoints,
            )
        };
        services.push(Arc::new(svc));
    }
    let sys = CompleteSystem::new(GroupProcess::new(svc_of), params.n, services);
    crate::contract_check(&sys, "set-boost");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::resilience::{all_assignments, certify, CertifyConfig};
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

    #[test]
    fn paper_instance_n4_k2() {
        // Wait-free 4-process 2-set consensus from two wait-free
        // 2-process consensus services: f = 3 tolerated although each
        // service is only 1-resilient.
        let params = SetBoostParams {
            n: 4,
            k: 2,
            k_prime: 1,
        };
        assert_eq!(params.groups(), 2);
        assert_eq!(params.group_size(), 2);
        let sys = build(params);
        assert_eq!(sys.services().len(), 2);
        for svc in sys.services() {
            assert!(svc.is_wait_free());
            assert_eq!(svc.resilience(), 1);
        }
    }

    #[test]
    fn failure_free_run_yields_at_most_k_values() {
        let sys = build(SetBoostParams {
            n: 4,
            k: 2,
            k_prime: 1,
        });
        // All-distinct inputs: 0,1,2,3.
        let a = InputAssignment::of((0..4).map(|i| (ProcId(i), Val::Int(i as i64))));
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..4).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        let decided = sys.decided_values(run.exec.last_state());
        assert!(decided.len() <= 2, "decided {decided:?}");
        // Group structure: P0,P1 agree and P2,P3 agree.
        let last = run.exec.last_state();
        assert_eq!(sys.decision(last, ProcId(0)), sys.decision(last, ProcId(1)));
        assert_eq!(sys.decision(last, ProcId(2)), sys.decision(last, ProcId(3)));
    }

    #[test]
    fn wait_free_certification_of_the_boost() {
        // The headline positive result: certify resilience n−1 = 3 with
        // k-agreement k = 2 across every failure pattern — the boosted
        // level that Theorem 2 forbids for k = 1.
        let sys = build(SetBoostParams {
            n: 4,
            k: 2,
            k_prime: 1,
        });
        let domain: Vec<Val> = (0..4).map(Val::Int).collect();
        let mut cfg = CertifyConfig::new(2, 3, all_assignments(4, &domain));
        cfg.failure_timings = vec![0, 4];
        cfg.max_steps = 50_000;
        let report = certify(&sys, &cfg);
        assert!(
            report.certified(),
            "first violation: {:?}",
            report.violations.first()
        );
        assert!(report.runs >= 256 * 2);
    }

    #[test]
    fn k_prime_greater_than_one_uses_set_consensus_services() {
        // n = 6, k = 4, k' = 2: g = 2 groups of 3 with wait-free
        // 2-set-consensus services.
        let sys = build(SetBoostParams {
            n: 6,
            k: 4,
            k_prime: 2,
        });
        assert_eq!(sys.services().len(), 2);
        let a = InputAssignment::of((0..6).map(|i| (ProcId(i), Val::Int(i as i64))));
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..6).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        assert!(sys.decided_values(run.exec.last_state()).len() <= 4);
    }

    #[test]
    #[should_panic(expected = "k' must divide k")]
    fn rejects_indivisible_parameters() {
        let _ = build(SetBoostParams {
            n: 6,
            k: 3,
            k_prime: 2,
        });
    }

    #[test]
    #[should_panic(expected = "group count must divide n")]
    fn rejects_non_dividing_groups() {
        let _ = build(SetBoostParams {
            n: 5,
            k: 2,
            k_prime: 1,
        });
    }
}
