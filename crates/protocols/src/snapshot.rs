//! A double-collect atomic snapshot built from single-writer
//! registers — the standard "concurrently-accessible data structure"
//! substrate (paper Section 1's service examples), implemented from
//! weaker services and verified atomic.
//!
//! Each process owns one segment, stored in a dedicated wait-free
//! register. An **update** writes the register. A **scan** repeatedly
//! *collects* (reads all registers in order) until two consecutive
//! collects are identical; a clean double collect is linearizable at
//! any point between its two collects. With one-shot operations the
//! scan terminates in every fair execution (only finitely many writes
//! exist), so the one-shot object is wait-free; atomicity is checked
//! by exhaustive trace inclusion against the canonical snapshot object
//! in `tests/snapshot_atomicity.rs`.

use services::atomic::CanonicalAtomicObject;
use spec::seq::{ReadWrite, Snapshot};
use spec::seq_type::{Inv, Resp};
use spec::{ProcId, SvcId, Val};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// The phase of a [`SnapshotProcess`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// No operation yet.
    Idle,
    /// Updater: about to write `v` to the own register.
    Updating(Val),
    /// Updater: write issued, awaiting the ack.
    AwaitAck,
    /// Scanner: collecting; `round` distinguishes first/second collect.
    Collecting {
        /// `false` = first collect, `true` = second.
        second: bool,
        /// Next register index to read.
        cursor: usize,
    },
    /// Scanner: read issued at `cursor` of the current collect.
    AwaitRead {
        /// Which collect the pending read belongs to.
        second: bool,
        /// The index being read.
        cursor: usize,
    },
    /// Decided (updaters ack, scanners return the vector).
    Done(Val),
}

/// The state of a [`SnapshotProcess`].
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SnapState {
    /// Protocol phase.
    pub phase: Phase,
    /// First collect (scanners).
    pub first: Vec<Val>,
    /// Second collect under construction (scanners).
    pub second: Vec<Val>,
}

impl spec::RelabelValues for SnapState {
    /// Structural 0 ↔ 1 relabeling of the pending update value, the
    /// returned vector and both collects.
    fn relabel_values(&self, vp: spec::ValuePerm) -> SnapState {
        SnapState {
            phase: match &self.phase {
                Phase::Updating(v) => Phase::Updating(v.relabel_values(vp)),
                Phase::Done(v) => Phase::Done(v.relabel_values(vp)),
                other => other.clone(),
            },
            first: self.first.relabel_values(vp),
            second: self.second.relabel_values(vp),
        }
    }
}

/// The double-collect snapshot protocol: process `i` owns register
/// `i`; an `update(v)` input writes it, a `scan()` input runs double
/// collects.
#[derive(Clone, Debug)]
pub struct SnapshotProcess {
    n: usize,
}

impl SnapshotProcess {
    /// The external input asking process `i` to update its segment.
    pub fn update_request(v: Val) -> Val {
        Val::pair(Val::Sym("update"), v)
    }

    /// The external input asking process `i` to scan.
    pub fn scan_request() -> Val {
        Val::pair(Val::Sym("scan"), Val::Unit)
    }
}

impl ProcessAutomaton for SnapshotProcess {
    type State = SnapState;

    fn initial(&self, _i: ProcId) -> SnapState {
        SnapState {
            phase: Phase::Idle,
            first: Vec::new(),
            second: Vec::new(),
        }
    }

    fn on_init(&self, _i: ProcId, st: &SnapState, v: &Val) -> SnapState {
        if st.phase != Phase::Idle {
            return st.clone();
        }
        let Some((tag, payload)) = v.as_pair() else {
            return st.clone();
        };
        let mut st = st.clone();
        match tag.as_sym() {
            Some("update") => st.phase = Phase::Updating(payload.clone()),
            Some("scan") => {
                st.phase = Phase::Collecting {
                    second: false,
                    cursor: 0,
                }
            }
            _ => {}
        }
        st
    }

    fn on_response(&self, i: ProcId, st: &SnapState, c: SvcId, resp: &Resp) -> SnapState {
        match &st.phase {
            Phase::AwaitAck if c.0 == i.0 && resp == &ReadWrite::ack() => {
                let mut st2 = st.clone();
                st2.phase = Phase::Done(Val::Sym("ack"));
                st2
            }
            Phase::AwaitRead { second, cursor } if c.0 == *cursor => {
                let mut st2 = st.clone();
                if *second {
                    st2.second.push(resp.0.clone());
                } else {
                    st2.first.push(resp.0.clone());
                }
                st2.phase = Phase::Collecting {
                    second: *second,
                    cursor: cursor + 1,
                };
                st2
            }
            _ => st.clone(),
        }
    }

    fn step(&self, i: ProcId, st: &SnapState) -> (ProcAction, SnapState) {
        match &st.phase {
            Phase::Updating(v) => {
                let mut st2 = st.clone();
                st2.phase = Phase::AwaitAck;
                (
                    ProcAction::Invoke(SvcId(i.0), ReadWrite::write(v.clone())),
                    st2,
                )
            }
            Phase::Collecting { second, cursor } => {
                if *cursor < self.n {
                    // Keep collecting.
                    let mut st2 = st.clone();
                    st2.phase = Phase::AwaitRead {
                        second: *second,
                        cursor: *cursor,
                    };
                    (ProcAction::Invoke(SvcId(*cursor), ReadWrite::read()), st2)
                } else if !*second {
                    // First collect finished: start the second.
                    let mut st2 = st.clone();
                    st2.phase = Phase::Collecting {
                        second: true,
                        cursor: 0,
                    };
                    (ProcAction::Skip, st2)
                } else if st.first == st.second {
                    // Clean double collect: linearize and answer.
                    let snap = Val::Seq(st.first.clone());
                    let mut st2 = st.clone();
                    st2.phase = Phase::Done(snap.clone());
                    (ProcAction::Decide(snap), st2)
                } else {
                    // Dirty: retry with the second collect as the new
                    // first.
                    let mut st2 = st.clone();
                    st2.first = st2.second.clone();
                    st2.second = Vec::new();
                    st2.phase = Phase::Collecting {
                        second: true,
                        cursor: 0,
                    };
                    (ProcAction::Skip, st2)
                }
            }
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &SnapState) -> Option<Val> {
        match &st.phase {
            Phase::Done(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the double-collect snapshot system: `n` processes, `n`
/// single-writer wait-free registers over `{⊥} ∪ {0, …, m−1}`.
///
/// # Panics
///
/// Panics if `n` is zero.
pub fn build(n: usize, m: i64) -> CompleteSystem<SnapshotProcess> {
    assert!(n > 0, "need at least one process");
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    let services: Vec<services::ArcService> = (0..n)
        .map(|_| {
            Arc::new(CanonicalAtomicObject::register(
                ReadWrite::values_with_bot(m),
                all.iter().copied(),
            )) as services::ArcService
        })
        .collect();
    let sys = CompleteSystem::new(SnapshotProcess { n }, n, services);
    crate::contract_check(&sys, "snapshot");
    sys
}

/// The canonical snapshot object this system implements (for trace
/// inclusion): `n` segments over `{⊥} ∪ {0, …, m−1}`, initial `⊥`.
pub fn specification(n: usize, m: i64) -> CanonicalAtomicObject {
    let mut domain = vec![Val::Sym("bot")];
    domain.extend((0..m).map(Val::Int));
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    CanonicalAtomicObject::wait_free(Arc::new(Snapshot::new(n, domain, Val::Sym("bot"))), all)
}

/// Translates the system's external actions into canonical snapshot
/// actions (`update` requests at process `i` target segment `i`).
pub fn spec_invocation(i: ProcId, request: &Val) -> Option<Inv> {
    let (tag, payload) = request.as_pair()?;
    match tag.as_sym() {
        Some("update") => Some(Snapshot::update(i.0, payload.clone())),
        Some("scan") => Some(Snapshot::scan()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, run_random, BranchPolicy, FairOutcome};

    fn drive(
        sys: &CompleteSystem<SnapshotProcess>,
        a: &InputAssignment,
        seed: Option<u64>,
    ) -> Vec<Option<Val>> {
        let n = sys.process_count();
        let s = initialize(sys, a);
        let stop = |st: &system::build::SystemState<SnapState>| {
            (0..n).all(|i| a.input(ProcId(i)).is_none() || sys.decision(st, ProcId(i)).is_some())
        };
        let run = match seed {
            None => run_fair(sys, s, BranchPolicy::Canonical, &[], 200_000, stop),
            Some(seed) => run_random(sys, s, seed, &[], 200_000, stop),
        };
        assert_eq!(
            run.outcome,
            FairOutcome::Stopped,
            "one-shot snapshot terminates"
        );
        sys.decisions(run.exec.last_state())
    }

    #[test]
    fn scan_sees_completed_updates() {
        let sys = build(2, 2);
        let a = InputAssignment::of([
            (ProcId(0), SnapshotProcess::update_request(Val::Int(1))),
            (ProcId(1), SnapshotProcess::scan_request()),
        ]);
        for seed in 0..20u64 {
            let d = drive(&sys, &a, Some(seed));
            assert_eq!(d[0], Some(Val::Sym("ack")));
            let snap = d[1].as_ref().unwrap().as_seq().unwrap().clone();
            // P1's own segment is untouched; P0's is ⊥ or 1 depending
            // on linearization.
            assert_eq!(snap[1], Val::Sym("bot"));
            assert!(snap[0] == Val::Sym("bot") || snap[0] == Val::Int(1));
        }
    }

    #[test]
    fn three_processes_two_writers_one_scanner() {
        let sys = build(3, 2);
        let a = InputAssignment::of([
            (ProcId(0), SnapshotProcess::update_request(Val::Int(0))),
            (ProcId(1), SnapshotProcess::update_request(Val::Int(1))),
            (ProcId(2), SnapshotProcess::scan_request()),
        ]);
        for seed in 0..20u64 {
            let d = drive(&sys, &a, Some(seed));
            let snap = d[2].as_ref().unwrap().as_seq().unwrap().clone();
            assert!(snap[0] == Val::Sym("bot") || snap[0] == Val::Int(0));
            assert!(snap[1] == Val::Sym("bot") || snap[1] == Val::Int(1));
            assert_eq!(snap[2], Val::Sym("bot"));
        }
    }

    #[test]
    fn pure_scan_returns_the_initial_vector() {
        let sys = build(2, 2);
        let a = InputAssignment::of([(ProcId(1), SnapshotProcess::scan_request())]);
        let d = drive(&sys, &a, None);
        assert_eq!(d[1], Some(Val::seq([Val::Sym("bot"), Val::Sym("bot")])));
    }

    #[test]
    fn spec_invocation_translation() {
        assert_eq!(
            spec_invocation(ProcId(1), &SnapshotProcess::update_request(Val::Int(0))),
            Some(Snapshot::update(1, Val::Int(0)))
        );
        assert_eq!(
            spec_invocation(ProcId(0), &SnapshotProcess::scan_request()),
            Some(Snapshot::scan())
        );
        assert_eq!(spec_invocation(ProcId(0), &Val::Unit), None);
    }
}
