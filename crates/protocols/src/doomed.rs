//! Doomed candidates: systems claiming `(f+1)`-resilient consensus
//! from `f`-resilient services — one per service class of the paper's
//! hierarchy.
//!
//! Each builder returns a system that solves `f`-resilient consensus
//! perfectly well (its failure-free and ≤ f-failure behaviour is
//! correct) but *cannot* reach `f + 1`; `analysis::witness::find_witness`
//! reproduces the matching theorem's proof on it:
//!
//! | builder | services | theorem |
//! |---|---|---|
//! | [`doomed_atomic`] | one `f`-resilient consensus object | Theorem 2 |
//! | [`doomed_atomic_with_registers`] | the object + per-process reliable registers | Theorem 2 |
//! | [`doomed_oblivious`] | one `f`-resilient totally ordered broadcast | Theorem 9 |
//! | [`doomed_general`] | one all-connected `f`-resilient perfect failure detector + registers | Theorem 10 |

use crate::fd_boost::RotatingCoordinator;
use services::atomic::CanonicalAtomicObject;
use services::general::CanonicalGeneralService;
use services::oblivious::CanonicalObliviousService;
use spec::fd::FreshPerfectFd;
use spec::seq::{BinaryConsensus, ReadWrite};
use spec::seq_type::Resp;
use spec::tob::TotallyOrderedBroadcast;
use spec::{ProcId, SvcId, Val};
use std::collections::BTreeSet;
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::direct::DirectConsensus;
use system::process::{ProcAction, ProcessAutomaton};

/// Theorem 2's minimal candidate: the direct protocol over a single
/// `f`-resilient binary consensus object shared by all `n` processes.
pub fn doomed_atomic(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    let sys = CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)]);
    crate::contract_check(&sys, "doomed-atomic");
    sys
}

/// The phase of a [`RegisterThenObject`] process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RegPhase {
    /// Waiting for `init(v)`.
    Idle,
    /// Holding `v`, about to publish it in the process's register.
    Publishing(Val),
    /// Write issued, awaiting the ack (still holding `v`).
    AwaitAck(Val),
    /// About to invoke the consensus object with `v`.
    Proposing(Val),
    /// Awaiting the object's decision.
    Waiting,
    /// Response `v` received, about to announce it.
    Responding(Val),
    /// Decided `v`.
    Decided(Val),
}

impl spec::RelabelValues for RegPhase {
    /// Structural 0 ↔ 1 relabeling: the carried value is relabeled,
    /// the phase tag is not.
    fn relabel_values(&self, vp: spec::ValuePerm) -> RegPhase {
        match self {
            RegPhase::Idle => RegPhase::Idle,
            RegPhase::Waiting => RegPhase::Waiting,
            RegPhase::Publishing(v) => RegPhase::Publishing(v.relabel_values(vp)),
            RegPhase::AwaitAck(v) => RegPhase::AwaitAck(v.relabel_values(vp)),
            RegPhase::Proposing(v) => RegPhase::Proposing(v.relabel_values(vp)),
            RegPhase::Responding(v) => RegPhase::Responding(v.relabel_values(vp)),
            RegPhase::Decided(v) => RegPhase::Decided(v.relabel_values(vp)),
        }
    }
}

/// Theorem 2's richer candidate: each process first publishes its
/// input in a dedicated reliable register, then runs the direct
/// protocol over the shared `f`-resilient consensus object — the shape
/// that exercises the register cases (Claim 5) of the Lemma 8
/// analysis.
#[derive(Clone, Debug)]
pub struct RegisterThenObject {
    object: SvcId,
    reg_of: Vec<SvcId>,
}

impl ProcessAutomaton for RegisterThenObject {
    type State = RegPhase;

    fn initial(&self, _i: ProcId) -> RegPhase {
        RegPhase::Idle
    }

    fn on_init(&self, _i: ProcId, st: &RegPhase, v: &Val) -> RegPhase {
        match st {
            RegPhase::Idle => RegPhase::Publishing(v.clone()),
            other => other.clone(),
        }
    }

    fn on_response(&self, i: ProcId, st: &RegPhase, c: SvcId, resp: &Resp) -> RegPhase {
        match st {
            RegPhase::AwaitAck(v) if c == self.reg_of[i.0] && resp == &ReadWrite::ack() => {
                RegPhase::Proposing(v.clone())
            }
            RegPhase::Waiting if c == self.object => match BinaryConsensus::decision(resp) {
                Some(w) => RegPhase::Responding(Val::Int(w)),
                None => st.clone(),
            },
            _ => st.clone(),
        }
    }

    fn step(&self, i: ProcId, st: &RegPhase) -> (ProcAction, RegPhase) {
        match st {
            RegPhase::Publishing(v) => (
                ProcAction::Invoke(self.reg_of[i.0], ReadWrite::write(v.clone())),
                RegPhase::AwaitAck(v.clone()),
            ),
            RegPhase::Proposing(v) => {
                let v = v.as_int().expect("binary input");
                (
                    ProcAction::Invoke(self.object, BinaryConsensus::init(v)),
                    RegPhase::Waiting,
                )
            }
            RegPhase::Responding(v) => {
                (ProcAction::Decide(v.clone()), RegPhase::Decided(v.clone()))
            }
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &RegPhase) -> Option<Val> {
        match st {
            RegPhase::Decided(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the [`RegisterThenObject`] candidate: service 0 is the
/// `f`-resilient consensus object; services `1..=n` are per-process
/// wait-free binary registers (all-connected, per Section 2.2's
/// registers).
pub fn doomed_atomic_with_registers(n: usize, f: usize) -> CompleteSystem<RegisterThenObject> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let mut services: Vec<services::ArcService> = vec![Arc::new(CanonicalAtomicObject::new(
        Arc::new(BinaryConsensus),
        endpoints.clone(),
        f,
    ))];
    let reg_of: Vec<SvcId> = (0..n)
        .map(|i| {
            services.push(Arc::new(CanonicalAtomicObject::register(
                ReadWrite::binary(),
                endpoints.iter().copied(),
            )));
            SvcId(1 + i)
        })
        .collect();
    let sys = CompleteSystem::new(
        RegisterThenObject {
            object: SvcId(0),
            reg_of,
        },
        n,
        services,
    );
    crate::contract_check(&sys, "doomed-registers");
    sys
}

/// The phase of a [`TobConsensus`] process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TobPhase {
    /// Waiting for `init(v)`.
    Idle,
    /// Holding `v`, about to broadcast it.
    HasInput(Val),
    /// Broadcast issued; will announce once the first ordered message
    /// is known.
    AwaitDelivery,
    /// Decided `v`.
    Decided(Val),
}

/// The state of a [`TobConsensus`] process: the phase plus the first
/// message this process has seen in the total delivery order.
///
/// The first message is tracked in *every* phase — deliveries can
/// overtake a process that has not finished broadcasting yet, and the
/// globally-first message is the decision, not the first message seen
/// while waiting.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TobState {
    /// The protocol phase.
    pub phase: TobPhase,
    /// The first ordered message observed so far.
    pub first: Option<Val>,
}

impl spec::RelabelValues for TobState {
    /// Structural 0 ↔ 1 relabeling of the held input/decision and the
    /// first ordered message.
    fn relabel_values(&self, vp: spec::ValuePerm) -> TobState {
        TobState {
            phase: match &self.phase {
                TobPhase::Idle => TobPhase::Idle,
                TobPhase::AwaitDelivery => TobPhase::AwaitDelivery,
                TobPhase::HasInput(v) => TobPhase::HasInput(v.relabel_values(vp)),
                TobPhase::Decided(v) => TobPhase::Decided(v.relabel_values(vp)),
            },
            first: self.first.relabel_values(vp),
        }
    }
}

/// Theorem 9's candidate: consensus over a single `f`-resilient
/// totally ordered broadcast service. Every process broadcasts its
/// input; the *first message in the total order* is everyone's
/// decision — agreement follows from the total order, validity from
/// messages being inputs, and failure-free termination from fairness
/// of the `perform` and delivery tasks. Boosting it to `f + 1` is what
/// Theorem 9 forbids.
#[derive(Clone, Debug)]
pub struct TobConsensus {
    tob: SvcId,
}

impl ProcessAutomaton for TobConsensus {
    type State = TobState;

    fn initial(&self, _i: ProcId) -> TobState {
        TobState {
            phase: TobPhase::Idle,
            first: None,
        }
    }

    fn on_init(&self, _i: ProcId, st: &TobState, v: &Val) -> TobState {
        match st.phase {
            TobPhase::Idle => TobState {
                phase: TobPhase::HasInput(v.clone()),
                first: st.first.clone(),
            },
            _ => st.clone(),
        }
    }

    fn on_response(&self, _i: ProcId, st: &TobState, c: SvcId, resp: &Resp) -> TobState {
        if c != self.tob || st.first.is_some() {
            return st.clone();
        }
        match TotallyOrderedBroadcast::decode_rcv(resp) {
            Some((m, _sender)) => TobState {
                phase: st.phase.clone(),
                first: Some(m),
            },
            None => st.clone(),
        }
    }

    fn step(&self, _i: ProcId, st: &TobState) -> (ProcAction, TobState) {
        match (&st.phase, &st.first) {
            (TobPhase::HasInput(v), _) => (
                ProcAction::Invoke(self.tob, TotallyOrderedBroadcast::bcast(v.clone())),
                TobState {
                    phase: TobPhase::AwaitDelivery,
                    first: st.first.clone(),
                },
            ),
            (TobPhase::AwaitDelivery, Some(m)) => (
                ProcAction::Decide(m.clone()),
                TobState {
                    phase: TobPhase::Decided(m.clone()),
                    first: st.first.clone(),
                },
            ),
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &TobState) -> Option<Val> {
        match &st.phase {
            TobPhase::Decided(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the Theorem 9 candidate: one `f`-resilient totally ordered
/// broadcast service over the binary message alphabet, shared by all
/// `n` processes.
pub fn doomed_oblivious(n: usize, f: usize) -> CompleteSystem<TobConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let tob = TotallyOrderedBroadcast::new([Val::Int(0), Val::Int(1)], endpoints.iter().copied());
    let svc = CanonicalObliviousService::new(Arc::new(tob), endpoints, f);
    let sys = CompleteSystem::new(TobConsensus { tob: SvcId(0) }, n, vec![Arc::new(svc)]);
    crate::contract_check(&sys, "doomed-tob");
    sys
}

/// The phase of a [`MixedConsensus`] process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MixedPhase {
    /// Waiting for `init(v)`.
    Idle,
    /// Holding `v`, about to broadcast it.
    HasInput(Val),
    /// Broadcast issued; awaiting the first ordered message.
    AwaitOrder,
    /// First ordered value `m` known; about to propose it to the
    /// consensus object.
    Propose(Val),
    /// Proposal issued; awaiting the object's decision.
    AwaitObject,
    /// Response `v` received, about to announce it.
    Responding(Val),
    /// Decided `v`.
    Decided(Val),
}

/// The state of a [`MixedConsensus`] process.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MixedState {
    /// Protocol phase.
    pub phase: MixedPhase,
    /// First ordered message seen (tracked in every phase).
    pub first: Option<Val>,
}

impl spec::RelabelValues for MixedState {
    /// Structural 0 ↔ 1 relabeling of every carried value.
    fn relabel_values(&self, vp: spec::ValuePerm) -> MixedState {
        MixedState {
            phase: match &self.phase {
                MixedPhase::Idle => MixedPhase::Idle,
                MixedPhase::AwaitOrder => MixedPhase::AwaitOrder,
                MixedPhase::AwaitObject => MixedPhase::AwaitObject,
                MixedPhase::HasInput(v) => MixedPhase::HasInput(v.relabel_values(vp)),
                MixedPhase::Propose(v) => MixedPhase::Propose(v.relabel_values(vp)),
                MixedPhase::Responding(v) => MixedPhase::Responding(v.relabel_values(vp)),
                MixedPhase::Decided(v) => MixedPhase::Decided(v.relabel_values(vp)),
            },
            first: self.first.relabel_values(vp),
        }
    }
}

/// A two-stage candidate spanning TWO service classes at once: inputs
/// are funneled through an `f`-resilient totally ordered broadcast
/// (stage 1: everyone adopts the first ordered message) and then
/// through an `f`-resilient consensus object (stage 2: tie-break, here
/// trivially unanimous). Either service alone already solves
/// `f`-resilient consensus; chaining them changes nothing — Theorem 9
/// refutes the combination the same way, with the hook free to pivot
/// on either service.
#[derive(Clone, Debug)]
pub struct MixedConsensus {
    tob: SvcId,
    object: SvcId,
}

impl ProcessAutomaton for MixedConsensus {
    type State = MixedState;

    fn initial(&self, _i: ProcId) -> MixedState {
        MixedState {
            phase: MixedPhase::Idle,
            first: None,
        }
    }

    fn on_init(&self, _i: ProcId, st: &MixedState, v: &Val) -> MixedState {
        match st.phase {
            MixedPhase::Idle => MixedState {
                phase: MixedPhase::HasInput(v.clone()),
                first: st.first.clone(),
            },
            _ => st.clone(),
        }
    }

    fn on_response(&self, _i: ProcId, st: &MixedState, c: SvcId, resp: &Resp) -> MixedState {
        if c == self.tob && st.first.is_none() {
            if let Some((m, _)) = TotallyOrderedBroadcast::decode_rcv(resp) {
                return MixedState {
                    phase: st.phase.clone(),
                    first: Some(m),
                };
            }
        }
        if c == self.object && st.phase == MixedPhase::AwaitObject {
            if let Some(w) = BinaryConsensus::decision(resp) {
                return MixedState {
                    phase: MixedPhase::Responding(Val::Int(w)),
                    first: st.first.clone(),
                };
            }
        }
        st.clone()
    }

    fn step(&self, _i: ProcId, st: &MixedState) -> (ProcAction, MixedState) {
        match (&st.phase, &st.first) {
            (MixedPhase::HasInput(v), _) => (
                ProcAction::Invoke(self.tob, TotallyOrderedBroadcast::bcast(v.clone())),
                MixedState {
                    phase: MixedPhase::AwaitOrder,
                    first: st.first.clone(),
                },
            ),
            (MixedPhase::AwaitOrder, Some(m)) => (
                ProcAction::Skip,
                MixedState {
                    phase: MixedPhase::Propose(m.clone()),
                    first: st.first.clone(),
                },
            ),
            (MixedPhase::Propose(m), _) => {
                let v = m.as_int().expect("binary message");
                (
                    ProcAction::Invoke(self.object, BinaryConsensus::init(v)),
                    MixedState {
                        phase: MixedPhase::AwaitObject,
                        first: st.first.clone(),
                    },
                )
            }
            (MixedPhase::Responding(v), _) => (
                ProcAction::Decide(v.clone()),
                MixedState {
                    phase: MixedPhase::Decided(v.clone()),
                    first: st.first.clone(),
                },
            ),
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &MixedState) -> Option<Val> {
        match &st.phase {
            MixedPhase::Decided(v) => Some(v.clone()),
            _ => None,
        }
    }
}

/// Builds the mixed-class candidate: service 0 is an `f`-resilient
/// totally ordered broadcast, service 1 an `f`-resilient consensus
/// object, both shared by all `n` processes.
pub fn doomed_mixed(n: usize, f: usize) -> CompleteSystem<MixedConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let tob = TotallyOrderedBroadcast::new([Val::Int(0), Val::Int(1)], endpoints.iter().copied());
    let services: Vec<services::ArcService> = vec![
        Arc::new(CanonicalObliviousService::new(
            Arc::new(tob),
            endpoints.clone(),
            f,
        )),
        Arc::new(CanonicalAtomicObject::new(
            Arc::new(BinaryConsensus),
            endpoints,
            f,
        )),
    ];
    let sys = CompleteSystem::new(
        MixedConsensus {
            tob: SvcId(0),
            object: SvcId(1),
        },
        n,
        services,
    );
    crate::contract_check(&sys, "doomed-mixed");
    sys
}

/// Builds the Theorem 10 candidate: the rotating-coordinator protocol
/// of Section 6.3, but wired to a *single* `f`-resilient perfect
/// failure detector connected to **all** processes (plus the wait-free
/// round-registers). With `f + 1` failures the all-connected detector
/// is silenceable, and with it every round of the protocol — the exact
/// reason Theorem 10 needs its connectivity assumption, and the exact
/// difference from [`crate::fd_boost::build`].
pub fn doomed_general(n: usize, f: usize) -> CompleteSystem<RotatingCoordinator> {
    assert!(n >= 2, "need at least two processes");
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    let mut services: Vec<services::ArcService> = Vec::new();
    let reg_of: Vec<SvcId> = (0..n)
        .map(|r| {
            services.push(Arc::new(CanonicalAtomicObject::register(
                ReadWrite::values_with_bot(2),
                all.iter().copied(),
            )));
            SvcId(r)
        })
        .collect();
    let fd_id = SvcId(services.len());
    services.push(Arc::new(CanonicalGeneralService::new(
        Arc::new(FreshPerfectFd::new(all.iter().copied())),
        all.iter().copied(),
        f,
    )));
    let fd_services: BTreeSet<SvcId> = [fd_id].into_iter().collect();
    let sys = CompleteSystem::new(
        RotatingCoordinator::new(n, reg_of, fd_services),
        n,
        services,
    );
    crate::contract_check(&sys, "doomed-fd");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::resilience::{all_binary_assignments, certify, CertifyConfig};
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

    #[test]
    fn doomed_atomic_solves_consensus_at_its_own_level() {
        let sys = doomed_atomic(3, 1);
        let cfg = CertifyConfig::new(1, 1, all_binary_assignments(3));
        let report = certify(&sys, &cfg);
        assert!(report.certified(), "{:?}", report.violations.first());
    }

    #[test]
    fn doomed_atomic_with_registers_runs_and_decides() {
        let sys = doomed_atomic_with_registers(2, 0);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..2).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        let vals = sys.decided_values(run.exec.last_state());
        assert_eq!(vals.len(), 1, "agreement: {vals:?}");
    }

    #[test]
    fn doomed_oblivious_decides_the_first_ordered_message() {
        let sys = doomed_oblivious(3, 1);
        let a = InputAssignment::of([
            (ProcId(0), Val::Int(0)),
            (ProcId(1), Val::Int(1)),
            (ProcId(2), Val::Int(1)),
        ]);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..3).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        let vals = sys.decided_values(run.exec.last_state());
        assert_eq!(vals.len(), 1, "total order forces agreement: {vals:?}");
    }

    #[test]
    fn doomed_oblivious_certified_at_its_own_level() {
        let sys = doomed_oblivious(2, 0);
        let cfg = CertifyConfig::new(1, 0, all_binary_assignments(2));
        let report = certify(&sys, &cfg);
        assert!(report.certified(), "{:?}", report.violations.first());
    }

    #[test]
    fn doomed_mixed_decides_failure_free_and_is_certified() {
        let sys = doomed_mixed(2, 0);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 100_000, |st| {
            (0..2).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        assert_eq!(sys.decided_values(run.exec.last_state()).len(), 1);
        let cfg = CertifyConfig::new(1, 0, all_binary_assignments(2));
        let report = certify(&sys, &cfg);
        assert!(report.certified(), "{:?}", report.violations.first());
    }

    #[test]
    fn doomed_mixed_is_refuted_across_both_classes() {
        use analysis::witness::{find_witness, Bounds, ImpossibilityWitness};
        let sys = doomed_mixed(2, 0);
        let w = find_witness(&sys, 0, Bounds::default()).unwrap();
        assert!(
            matches!(w, ImpossibilityWitness::HookRefutation { .. }),
            "expected a hook refutation, got: {}",
            w.headline()
        );
    }

    #[test]
    fn doomed_general_decides_failure_free() {
        let sys = doomed_general(2, 0);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 200_000, |st| {
            (0..2).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        let vals = sys.decided_values(run.exec.last_state());
        assert_eq!(vals.len(), 1, "agreement: {vals:?}");
    }

    #[test]
    fn doomed_general_starves_at_f_plus_1_failures() {
        // Fail the first coordinator: the 0-resilient all-connected FD
        // may fall silent, so the survivor can neither read a value nor
        // ever suspect — exactly Theorem 10's scenario.
        let sys = doomed_general(2, 0);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(0, ProcId(0))],
            200_000,
            |st| sys.decision(st, ProcId(1)).is_some(),
        );
        assert!(
            matches!(run.outcome, FairOutcome::Lasso(_)),
            "expected starvation, got {:?}",
            run.outcome
        );
    }

    #[test]
    fn fd_boost_twin_does_not_starve_in_the_same_scenario() {
        // The control for the previous test: identical protocol, but
        // pairwise 1-resilient detectors — the survivor is informed and
        // decides. Connection pattern is the whole difference.
        let sys = crate::fd_boost::build(2);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(0, ProcId(0))],
            200_000,
            |st| sys.decision(st, ProcId(1)).is_some(),
        );
        assert_eq!(run.outcome, FairOutcome::Stopped);
    }
}
