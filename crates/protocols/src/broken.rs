//! Deliberately broken substrates — the negative fixtures for the
//! `analysis::audit` contract analyzer.
//!
//! Each fixture violates exactly one contract an optimization layer
//! trusts, in the most tempting way a real substrate could get it
//! wrong:
//!
//! * [`lying_symmetry`] — a process family that *claims*
//!   `id_symmetric` while `P0` special-cases its own input (rule
//!   `symmetry-honesty`): the flag that would silently corrupt a
//!   quotient sweep;
//! * [`impure_direct`] — a process family whose `step` consults a
//!   hidden global counter (rule `effect-purity`): the impurity that
//!   would make effect-cache memoization unsound;
//! * [`overlapping_tasks`] — a bare automaton whose declared tasks do
//!   not partition its actions (rule `task-partition`): a duplicate
//!   task, an action emitted by two tasks, and a vocabulary action
//!   owned by a task `tasks()` never declares;
//! * [`value_biased`] — a process family that *claims*
//!   `value_symmetric` while sticking every input to `0` (rule
//!   `value-symmetry`): the flag that would let the composed
//!   `S_n × S_vals` quotient merge 0-deciding and 1-deciding futures.
//!
//! None of these call [`crate::contract_check`] — being constructible
//! is their job; being *caught* is the auditor's, pinned by
//! `tests/audit_differential.rs` at the workspace root.

use ioa::automaton::{ActionKind, Automaton};
use services::atomic::CanonicalAtomicObject;
use spec::seq::BinaryConsensus;
use spec::{ProcId, Resp, SvcId, Val};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::direct::{DirectConsensus, Phase};
use system::process::{ProcAction, ProcessAutomaton};

/// A direct-consensus family that claims [`id_symmetric`] while `P0`
/// quietly overrides every input with `0`.
///
/// This is precisely the lie the orbit canonicalizer cannot survive:
/// permuting `P0 ↔ P1` no longer commutes with `on_init`, so orbit
/// representatives conflate states with genuinely different futures.
/// The `symmetry-honesty` rule catches it component-locally (one
/// `on_init` comparison on the `Idle` state), long before any quotient
/// sweep runs.
///
/// [`id_symmetric`]: ProcessAutomaton::id_symmetric
#[derive(Clone, Debug)]
pub struct BiasedDirect {
    inner: DirectConsensus,
}

impl ProcessAutomaton for BiasedDirect {
    type State = Phase;

    fn initial(&self, i: ProcId) -> Phase {
        self.inner.initial(i)
    }

    fn on_init(&self, i: ProcId, st: &Phase, v: &Val) -> Phase {
        // The lie: P0 ignores its real input and always proposes 0.
        if i == ProcId(0) {
            self.inner.on_init(i, st, &Val::Int(0))
        } else {
            self.inner.on_init(i, st, v)
        }
    }

    fn on_response(&self, i: ProcId, st: &Phase, c: SvcId, resp: &Resp) -> Phase {
        self.inner.on_response(i, st, c, resp)
    }

    fn step(&self, i: ProcId, st: &Phase) -> (ProcAction, Phase) {
        self.inner.step(i, st)
    }

    fn decision(&self, st: &Phase) -> Option<Val> {
        self.inner.decision(st)
    }

    fn id_symmetric(&self) -> bool {
        // False claim: on_init branches on the process id.
        true
    }
}

/// The lying-symmetry candidate: [`BiasedDirect`] over a single honest
/// (endpoint-symmetric) `f`-resilient binary consensus object.
#[must_use]
pub fn lying_symmetry(n: usize, f: usize) -> CompleteSystem<BiasedDirect> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(
        BiasedDirect {
            inner: DirectConsensus::new(SvcId(0)),
        },
        n,
        vec![Arc::new(obj)],
    )
}

/// A direct-consensus family whose `step` reads a hidden mutable
/// counter: consecutive evaluations of the *same* state disagree.
///
/// This is the impurity that silently breaks effect-cache memoization
/// (the cached first evaluation would be replayed forever, the second
/// evaluation's behavior never observed) and makes `succ_det`
/// unstable. The `effect-purity` rule's dual evaluation flags it on
/// any state with an enabled non-skip step.
#[derive(Debug)]
pub struct ImpureDirect {
    inner: DirectConsensus,
    calls: AtomicU64,
}

impl ProcessAutomaton for ImpureDirect {
    type State = Phase;

    fn initial(&self, i: ProcId) -> Phase {
        self.inner.initial(i)
    }

    fn on_init(&self, i: ProcId, st: &Phase, v: &Val) -> Phase {
        self.inner.on_init(i, st, v)
    }

    fn on_response(&self, i: ProcId, st: &Phase, c: SvcId, resp: &Resp) -> Phase {
        self.inner.on_response(i, st, c, resp)
    }

    fn step(&self, i: ProcId, st: &Phase) -> (ProcAction, Phase) {
        // The impurity: every second call refuses to act. A state-only
        // function of `st` this is not.
        let parity = self.calls.fetch_add(1, Ordering::Relaxed) % 2;
        if parity == 1 {
            (ProcAction::Skip, st.clone())
        } else {
            self.inner.step(i, st)
        }
    }

    fn decision(&self, st: &Phase) -> Option<Val> {
        self.inner.decision(st)
    }
}

/// The impure-effect candidate: [`ImpureDirect`] over a single honest
/// `f`-resilient binary consensus object. Claims no symmetry — the
/// only contract it breaks is effect purity (and the determinization
/// stability that follows from it).
#[must_use]
pub fn impure_direct(n: usize, f: usize) -> CompleteSystem<ImpureDirect> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(
        ImpureDirect {
            inner: DirectConsensus::new(SvcId(0)),
            calls: AtomicU64::new(0),
        },
        n,
        vec![Arc::new(obj)],
    )
}

/// A bare task-structured automaton whose tasks fail to partition its
/// actions in all three possible ways:
///
/// * `tasks()` declares `"alpha"` twice (a duplicate task);
/// * the action `"shared"` is emitted by both `"alpha"` and `"beta"`,
///   but owned (per [`Automaton::action_owner`]) only by `"alpha"`;
/// * the vocabulary action `"orphan"` is owned by `"ghost"`, a task
///   `tasks()` never declares.
///
/// Audited through [`Automaton`] introspection hooks alone (it is not
/// a composed system), so it pins the generic `audit_automaton` path.
#[derive(Debug)]
pub struct OverlappingTasks;

impl Automaton for OverlappingTasks {
    type State = u8;
    type Action = &'static str;
    type Task = &'static str;

    fn initial_states(&self) -> Vec<u8> {
        vec![0]
    }

    fn tasks(&self) -> Vec<&'static str> {
        vec!["alpha", "beta", "alpha"]
    }

    fn succ_all(&self, t: &&'static str, s: &u8) -> Vec<(&'static str, u8)> {
        match (*t, *s) {
            // Both tasks emit "shared" from state 0 — the overlap.
            ("alpha", 0) => vec![("shared", 1)],
            ("beta", 0) => vec![("shared", 2)],
            ("beta", 1) => vec![("beta-step", 2)],
            _ => vec![],
        }
    }

    fn apply_input(&self, _s: &u8, _a: &&'static str) -> Option<u8> {
        None
    }

    fn kind(&self, _a: &&'static str) -> ActionKind {
        ActionKind::Internal
    }

    fn action_owner(&self, a: &&'static str) -> Option<&'static str> {
        match *a {
            "shared" => Some("alpha"),
            "beta-step" => Some("beta"),
            // Owned by a task that tasks() never declares.
            "orphan" => Some("ghost"),
            _ => None,
        }
    }

    fn action_vocabulary(&self) -> Vec<&'static str> {
        vec!["shared", "beta-step", "orphan"]
    }
}

/// The overlapping-tasks fixture.
#[must_use]
pub fn overlapping_tasks() -> OverlappingTasks {
    OverlappingTasks
}

/// A direct-consensus family that claims [`value_symmetric`] while
/// quietly sticking every input to `0`.
///
/// This is precisely the lie the composed `S_n × S_vals` quotient
/// cannot survive: relabeling 0 ↔ 1 no longer commutes with `on_init`
/// (the relabeled input `1` is forced to `0`, but the relabeled image
/// of the original transition holds `1`), so value-orbit
/// representatives would conflate states whose futures decide
/// *different* values. The `value-symmetry` rule catches it
/// component-locally on the `Idle` state, and
/// `analysis::audit::effective_symmetry` degrades `SYMMETRY=values` to
/// `full` for this system — the honest process-id quotient survives.
///
/// [`value_symmetric`]: ProcessAutomaton::value_symmetric
#[derive(Clone, Debug)]
pub struct StickyZeroDirect {
    inner: DirectConsensus,
}

impl ProcessAutomaton for StickyZeroDirect {
    type State = Phase;

    fn initial(&self, i: ProcId) -> Phase {
        self.inner.initial(i)
    }

    fn on_init(&self, i: ProcId, st: &Phase, _v: &Val) -> Phase {
        // The lie: every input is silently replaced by 0.
        self.inner.on_init(i, st, &Val::Int(0))
    }

    fn on_response(&self, i: ProcId, st: &Phase, c: SvcId, resp: &Resp) -> Phase {
        self.inner.on_response(i, st, c, resp)
    }

    fn step(&self, i: ProcId, st: &Phase) -> (ProcAction, Phase) {
        self.inner.step(i, st)
    }

    fn decision(&self, st: &Phase) -> Option<Val> {
        self.inner.decision(st)
    }

    fn id_symmetric(&self) -> bool {
        // Honest: every process sticks to 0 identically.
        true
    }

    fn value_symmetric(&self) -> bool {
        // False claim: on_init collapses 0 and 1.
        true
    }
}

/// The value-biased candidate: [`StickyZeroDirect`] over a single
/// honest (value-symmetric) `f`-resilient binary consensus object.
#[must_use]
pub fn value_biased(n: usize, f: usize) -> CompleteSystem<StickyZeroDirect> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(
        StickyZeroDirect {
            inner: DirectConsensus::new(SvcId(0)),
        },
        n,
        vec![Arc::new(obj)],
    )
}
