//! Section 6.3: boosting *is* possible with failure-aware services
//! under arbitrary connection patterns.
//!
//! Every pair of processes shares a 1-resilient 2-process perfect
//! failure detector; each process accumulates the suspicions it hears,
//! which — because the pairwise detectors are wait-free for their two
//! endpoints and perfectly accurate — gives every live process a
//! wait-free perfect failure detector over all `n` processes (the
//! paper's union construction). On top of that derived detector, a
//! classic rotating-coordinator protocol over wait-free registers
//! solves consensus for *any* number of failures:
//!
//! * round `r` (for `r = 0, …, n−1`): the coordinator `P_r` writes its
//!   current estimate into register `reg_r` and moves on; every other
//!   process repeatedly reads `reg_r` until it either sees a value
//!   (adopt it) or suspects `P_r` (skip the round);
//! * after round `n−1`, decide the current estimate.
//!
//! Accuracy of `P` means a correct coordinator is never skipped, so
//! the first correct coordinator's round homogenizes all estimates;
//! completeness means a crashed coordinator is eventually suspected,
//! so no round blocks. The same process automaton, wired to a *single*
//! all-connected `f`-resilient detector instead, is Theorem 10's
//! doomed candidate ([`crate::doomed::doomed_general`]) — the only
//! difference between possible and impossible is the connection
//! pattern.

use services::atomic::CanonicalAtomicObject;
use services::general::CanonicalGeneralService;
use spec::fd::{decode_suspect, FreshPerfectFd};
use spec::seq::ReadWrite;
use spec::seq_type::Resp;
use spec::{ProcId, SvcId, Val};
use std::collections::BTreeSet;
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::{ProcAction, ProcessAutomaton};

/// The phase of a [`RotatingCoordinator`] process within its current
/// round.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// No input yet.
    Idle,
    /// Ready to act in the current round.
    Ready,
    /// Coordinator: write issued, waiting for the ack.
    AwaitWriteAck,
    /// Reader: read issued, waiting for the value.
    AwaitRead,
    /// Decided.
    Decided,
}

/// The per-process state of the rotating-coordinator protocol.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoordState {
    /// The current estimate (`None` before `init`).
    pub estimate: Option<Val>,
    /// The current round `r ∈ 0..=n`.
    pub round: usize,
    /// Processes this process has (accurately) heard are failed.
    pub suspected: BTreeSet<ProcId>,
    /// The intra-round phase.
    pub phase: Phase,
    /// The recorded decision (Section 2.2.1 technicality).
    pub decision: Option<Val>,
}

impl spec::RelabelValues for CoordState {
    /// Structural 0 ↔ 1 relabeling of the estimate and the recorded
    /// decision; rounds, suspicions and the phase carry no values.
    fn relabel_values(&self, vp: spec::ValuePerm) -> CoordState {
        CoordState {
            estimate: self.estimate.relabel_values(vp),
            round: self.round,
            suspected: self.suspected.clone(),
            phase: self.phase.clone(),
            decision: self.decision.relabel_values(vp),
        }
    }
}

impl CoordState {
    fn fresh() -> Self {
        CoordState {
            estimate: None,
            round: 0,
            suspected: BTreeSet::new(),
            phase: Phase::Idle,
            decision: None,
        }
    }
}

/// The rotating-coordinator consensus protocol over one round-register
/// per process and a set of failure-detector services.
///
/// `reg_of[r]` is the register coordinated by `P_r`; `fd_services`
/// lists every service whose `suspect` responses this process should
/// fold into its suspicion set — the all-pairs detectors in the
/// Section 6.3 construction, or the single all-connected detector in
/// the Theorem 10 candidate.
#[derive(Clone, Debug)]
pub struct RotatingCoordinator {
    n: usize,
    reg_of: Vec<SvcId>,
    fd_services: BTreeSet<SvcId>,
}

impl RotatingCoordinator {
    /// A protocol instance for `n` processes.
    pub fn new(n: usize, reg_of: Vec<SvcId>, fd_services: BTreeSet<SvcId>) -> Self {
        assert_eq!(reg_of.len(), n, "one round-register per process");
        RotatingCoordinator {
            n,
            reg_of,
            fd_services,
        }
    }
}

impl ProcessAutomaton for RotatingCoordinator {
    type State = CoordState;

    fn initial(&self, _i: ProcId) -> CoordState {
        CoordState::fresh()
    }

    fn on_init(&self, _i: ProcId, st: &CoordState, v: &Val) -> CoordState {
        if st.phase != Phase::Idle {
            return st.clone();
        }
        let mut st = st.clone();
        st.estimate = Some(v.clone());
        st.phase = Phase::Ready;
        st
    }

    fn on_response(&self, _i: ProcId, st: &CoordState, c: SvcId, resp: &Resp) -> CoordState {
        // Failure-detector responses fold into the suspicion set
        // regardless of phase.
        if self.fd_services.contains(&c) {
            if let Some(sus) = decode_suspect(resp) {
                let mut st = st.clone();
                st.suspected.extend(sus);
                return st;
            }
            return st.clone();
        }
        // Register responses only matter for the register of the
        // current round.
        if st.round >= self.n || c != self.reg_of[st.round] {
            return st.clone();
        }
        match st.phase {
            Phase::AwaitWriteAck => {
                if resp == &ReadWrite::ack() {
                    let mut st = st.clone();
                    st.round += 1;
                    st.phase = Phase::Ready;
                    return st;
                }
                st.clone()
            }
            Phase::AwaitRead => {
                let mut st2 = st.clone();
                if resp.0 == Val::Sym("bot") {
                    // Nothing written yet: go around (re-read or skip).
                    st2.phase = Phase::Ready;
                } else {
                    st2.estimate = Some(resp.0.clone());
                    st2.round += 1;
                    st2.phase = Phase::Ready;
                }
                st2
            }
            _ => st.clone(),
        }
    }

    fn step(&self, i: ProcId, st: &CoordState) -> (ProcAction, CoordState) {
        match st.phase {
            Phase::Ready => {
                if st.round >= self.n {
                    let v = st.estimate.clone().expect("Ready implies an estimate");
                    let mut st2 = st.clone();
                    st2.phase = Phase::Decided;
                    st2.decision = Some(v.clone());
                    return (ProcAction::Decide(v), st2);
                }
                let r = st.round;
                if ProcId(r) == i {
                    // Coordinator: publish the estimate.
                    let v = st.estimate.clone().expect("Ready implies an estimate");
                    let mut st2 = st.clone();
                    st2.phase = Phase::AwaitWriteAck;
                    (ProcAction::Invoke(self.reg_of[r], ReadWrite::write(v)), st2)
                } else if st.suspected.contains(&ProcId(r)) {
                    // Accurately suspected coordinator: skip the round.
                    let mut st2 = st.clone();
                    st2.round += 1;
                    (ProcAction::Skip, st2)
                } else {
                    // Poll the coordinator's register.
                    let mut st2 = st.clone();
                    st2.phase = Phase::AwaitRead;
                    (ProcAction::Invoke(self.reg_of[r], ReadWrite::read()), st2)
                }
            }
            _ => (ProcAction::Skip, st.clone()),
        }
    }

    fn decision(&self, st: &CoordState) -> Option<Val> {
        st.decision.clone()
    }
}

/// Builds the Section 6.3 system for `n` processes and binary inputs:
/// `n` wait-free round-registers (ids `0..n`) plus one 1-resilient
/// 2-process edge-triggered perfect failure detector per pair
/// (ids `n..n + C(n,2)`).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn build(n: usize) -> CompleteSystem<RotatingCoordinator> {
    assert!(
        n >= 2,
        "the pairwise construction needs at least two processes"
    );
    let all: Vec<ProcId> = (0..n).map(ProcId).collect();
    let mut services: Vec<services::ArcService> = Vec::new();
    let reg_of: Vec<SvcId> = (0..n)
        .map(|r| {
            services.push(Arc::new(CanonicalAtomicObject::register(
                ReadWrite::values_with_bot(2),
                all.iter().copied(),
            )));
            SvcId(r)
        })
        .collect();
    let mut fd_services = BTreeSet::new();
    for i in 0..n {
        for j in (i + 1)..n {
            let id = SvcId(services.len());
            let pair = [ProcId(i), ProcId(j)];
            services.push(Arc::new(CanonicalGeneralService::new(
                Arc::new(FreshPerfectFd::new(pair)),
                pair,
                1,
            )));
            fd_services.insert(id);
        }
    }
    let sys = CompleteSystem::new(
        RotatingCoordinator::new(n, reg_of, fd_services),
        n,
        services,
    );
    crate::contract_check(&sys, "fd-boost");
    sys
}

#[cfg(test)]
mod tests {
    use super::*;
    use analysis::resilience::{all_binary_assignments, certify, CertifyConfig};
    use system::consensus::InputAssignment;
    use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

    #[test]
    fn topology_is_registers_plus_pairwise_fds() {
        let sys = build(4);
        assert_eq!(sys.services().len(), 4 + 6);
        use services::ServiceClass;
        let classes: Vec<ServiceClass> = sys.services().iter().map(|s| s.class()).collect();
        assert_eq!(
            classes
                .iter()
                .filter(|c| **c == ServiceClass::Register)
                .count(),
            4
        );
        assert_eq!(
            classes
                .iter()
                .filter(|c| **c == ServiceClass::General)
                .count(),
            6
        );
        // Every FD has exactly 2 endpoints and tolerates 1 failure.
        for s in sys
            .services()
            .iter()
            .filter(|s| s.class() == ServiceClass::General)
        {
            assert_eq!(s.endpoints().len(), 2);
            assert_eq!(s.resilience(), 1);
            assert!(s.is_wait_free());
        }
    }

    #[test]
    fn failure_free_run_decides_the_first_coordinator_value() {
        let sys = build(3);
        let a = InputAssignment::of([
            (ProcId(0), Val::Int(1)),
            (ProcId(1), Val::Int(0)),
            (ProcId(2), Val::Int(0)),
        ]);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 200_000, |st| {
            (0..3).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        // Failure-free, P0 is the first correct coordinator: its input
        // wins every round.
        for i in 0..3 {
            assert_eq!(
                sys.decision(run.exec.last_state(), ProcId(i)),
                Some(Val::Int(1))
            );
        }
    }

    #[test]
    fn survives_coordinator_crash_mid_protocol() {
        let sys = build(3);
        let a = InputAssignment::of([
            (ProcId(0), Val::Int(1)),
            (ProcId(1), Val::Int(0)),
            (ProcId(2), Val::Int(0)),
        ]);
        let s = initialize(&sys, &a);
        // P0 (first coordinator) dies immediately: the survivors must
        // still decide — and agree.
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(0, ProcId(0))],
            400_000,
            |st| (1..3).all(|i| sys.decision(st, ProcId(i)).is_some()),
        );
        assert_eq!(run.outcome, FairOutcome::Stopped, "survivors must decide");
        let last = run.exec.last_state();
        assert_eq!(sys.decision(last, ProcId(1)), sys.decision(last, ProcId(2)));
    }

    #[test]
    fn certified_wait_free_consensus_n3() {
        // The headline: consensus certified at resilience n−1 = 2 from
        // 1-resilient services — impossible per Theorem 10 only when
        // failure-aware services must connect to everybody.
        let sys = build(3);
        let mut cfg = CertifyConfig::new(1, 2, all_binary_assignments(3));
        cfg.failure_timings = vec![0, 7];
        cfg.max_steps = 400_000;
        let report = certify(&sys, &cfg);
        assert!(
            report.certified(),
            "first violation: {:?}",
            report.violations.first()
        );
    }
}
