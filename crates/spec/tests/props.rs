//! Randomized-but-deterministic tests for the specification layer: the
//! sequential types' algebraic laws under arbitrary operation
//! sequences.
//!
//! Formerly proptest-based; rewritten onto the in-tree
//! [`ioa::rng::SplitMix64`] generator so the suite runs hermetically
//! (no registry dependency) and every case is replayable from its seed.

use ioa::rng::{RandomSource, SplitMix64};
use spec::seq::{
    BinaryConsensus, CompareAndSwap, FetchAndAdd, FifoQueue, KSetConsensus, MultiValueConsensus,
    ReadWrite, TestAndSet,
};
use spec::seq_type::{Inv, SeqType};
use spec::Val;

const CASES: usize = 64;

/// Applies a sequence of invocation indices to a type, checking
/// totality (δ nonempty) at every step; returns the value trajectory.
fn drive(t: &dyn SeqType, script: &[usize]) -> Vec<Val> {
    let invs = t.invocations();
    let mut v = t.initial_value();
    let mut trajectory = vec![v.clone()];
    for idx in script {
        let inv = &invs[idx % invs.len()];
        let outs = t.delta(inv, &v);
        assert!(!outs.is_empty(), "δ must be total at {inv:?}/{v:?}");
        let (_, v2) = t.delta_det(inv, &v);
        v = v2;
        trajectory.push(v.clone());
    }
    trajectory
}

fn int_vec(g: &mut SplitMix64, len: usize, lo: i64, hi: i64) -> Vec<i64> {
    (0..len).map(|_| g.gen_i64_range(lo, hi)).collect()
}

#[test]
fn consensus_value_is_write_once() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0001);
    for _ in 0..CASES {
        let script: Vec<usize> = (0..g.gen_range(30)).map(|_| g.gen_range(2)).collect();
        let t = BinaryConsensus;
        let traj = drive(&t, &script);
        // Once the set is nonempty it never changes again.
        let mut fixed: Option<&Val> = None;
        for v in &traj {
            let s = v.as_set().unwrap();
            match (&fixed, s.is_empty()) {
                (None, false) => fixed = Some(v),
                (Some(w), _) => assert_eq!(*w, v),
                _ => {}
            }
        }
    }
}

#[test]
fn multi_consensus_decision_matches_first_input() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0002);
    for _ in 0..CASES {
        let first = g.gen_i64_range(0, 5);
        let rest_len = g.gen_range(20);
        let rest = int_vec(&mut g, rest_len, 0, 5);
        let t = MultiValueConsensus::new(5);
        let (d, mut v) = t.delta_det(&MultiValueConsensus::init(first), &t.initial_value());
        assert_eq!(MultiValueConsensus::decision(&d), Some(first));
        for x in rest {
            let (d, v2) = t.delta_det(&MultiValueConsensus::init(x), &v);
            assert_eq!(MultiValueConsensus::decision(&d), Some(first));
            v = v2;
        }
    }
}

#[test]
fn kset_w_is_bounded_and_decisions_come_from_w() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0003);
    for _ in 0..CASES {
        let script_len = 1 + g.gen_range(24);
        let script = int_vec(&mut g, script_len, 0, 6);
        let k = 1 + g.gen_range(3);
        let t = KSetConsensus::new(k, 6);
        let mut v = t.initial_value();
        for x in &script {
            let outs = t.delta(&KSetConsensus::init(*x), &v);
            assert!(!outs.is_empty());
            for (resp, v2) in &outs {
                let w2 = v2.as_set().unwrap();
                assert!(w2.len() <= k, "W grew past k");
                let d = KSetConsensus::decision(resp).unwrap();
                assert!(w2.contains(&Val::Int(d)), "decision outside W∪{{v}}");
            }
            v = t.delta_det(&KSetConsensus::init(*x), &v).1;
        }
    }
}

#[test]
fn register_read_after_write_returns_the_write() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0004);
    for _ in 0..CASES {
        let write_len = 1 + g.gen_range(14);
        let writes = int_vec(&mut g, write_len, 0, 2);
        let t = ReadWrite::binary();
        let mut v = t.initial_value();
        for w in writes {
            let (_, v2) = t.delta_det(&ReadWrite::write(Val::Int(w)), &v);
            let (r, v3) = t.delta_det(&ReadWrite::read(), &v2);
            assert_eq!(r.0, Val::Int(w));
            assert_eq!(&v3, &v2);
            v = v3;
        }
    }
}

#[test]
fn test_and_set_has_a_unique_winner_per_epoch() {
    for callers in 1usize..8 {
        let t = TestAndSet;
        let mut v = t.initial_value();
        let mut winners = 0;
        for _ in 0..callers {
            let (r, v2) = t.delta_det(&TestAndSet::test_and_set(), &v);
            if r.0 == Val::Int(0) {
                winners += 1;
            }
            v = v2;
        }
        assert_eq!(winners, 1);
    }
}

#[test]
fn cas_succeeds_iff_expected_matches() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0005);
    for _ in 0..CASES {
        let ops: Vec<(i64, i64)> = (0..g.gen_range(20))
            .map(|_| (g.gen_i64_range(0, 3), g.gen_i64_range(0, 3)))
            .collect();
        let domain: Vec<Val> = (0..3).map(Val::Int).collect();
        let t = CompareAndSwap::with_domain(domain, Val::Int(0));
        let mut v = t.initial_value();
        for (e, n) in ops {
            let (old, v2) = t.delta_det(&CompareAndSwap::cas(Val::Int(e), Val::Int(n)), &v);
            assert_eq!(&old.0, &v);
            if v == Val::Int(e) {
                assert_eq!(&v2, &Val::Int(n));
            } else {
                assert_eq!(&v2, &v);
            }
            v = v2;
        }
    }
}

#[test]
fn counter_tracks_modular_sum() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0006);
    for _ in 0..CASES {
        let delta_len = g.gen_range(25);
        let deltas = int_vec(&mut g, delta_len, -5, 6);
        let t = FetchAndAdd::modulo(7);
        let mut v = t.initial_value();
        let mut expected = 0i64;
        for d in deltas {
            let (_, v2) = t.delta_det(&FetchAndAdd::fetch_add(d), &v);
            expected = (expected + d).rem_euclid(7);
            assert_eq!(&v2, &Val::Int(expected));
            v = v2;
        }
    }
}

#[test]
fn queue_is_fifo_under_arbitrary_interleaving() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0007);
    for _ in 0..CASES {
        // Some(v) = enq(v), None = deq. A model VecDeque must agree.
        let ops: Vec<Option<i64>> = (0..g.gen_range(25))
            .map(|_| {
                if g.gen_bool() {
                    Some(g.gen_i64_range(0, 3))
                } else {
                    None
                }
            })
            .collect();
        let t = FifoQueue::bounded((0..3).map(Val::Int), 8);
        let mut v = t.initial_value();
        let mut model: std::collections::VecDeque<i64> = Default::default();
        for op in ops {
            match op {
                Some(x) => {
                    let (r, v2) = t.delta_det(&FifoQueue::enq(Val::Int(x)), &v);
                    if model.len() < 8 {
                        model.push_back(x);
                        assert_eq!(r.0, Val::Sym("ack"));
                    } else {
                        assert_eq!(r.0, Val::Sym("full"));
                    }
                    v = v2;
                }
                None => {
                    let (r, v2) = t.delta_det(&FifoQueue::deq(), &v);
                    match model.pop_front() {
                        Some(x) => assert_eq!(r.0, Val::Int(x)),
                        None => assert_eq!(r.0, Val::Sym("empty")),
                    }
                    v = v2;
                }
            }
        }
    }
}

#[test]
fn deterministic_types_have_singleton_delta_everywhere() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0008);
    for _ in 0..CASES {
        let script: Vec<usize> = (0..g.gen_range(15)).map(|_| g.gen_range(8)).collect();
        let types: Vec<Box<dyn SeqType>> = vec![
            Box::new(BinaryConsensus),
            Box::new(ReadWrite::binary()),
            Box::new(TestAndSet),
            Box::new(MultiValueConsensus::new(3)),
        ];
        for t in &types {
            let traj = drive(t.as_ref(), &script);
            for v in &traj {
                for inv in t.invocations() {
                    assert_eq!(t.delta(&inv, v).len(), 1, "{} not deterministic", t.name());
                }
            }
        }
    }
}

#[test]
fn val_ordering_is_consistent_with_equality() {
    let mut g = SplitMix64::seed_from_u64(0x59ec_0009);
    for _ in 0..CASES {
        let a = g.gen_i64_range(-10, 10);
        let b = g.gen_i64_range(-10, 10);
        let (x, y) = (Val::Int(a), Val::Int(b));
        assert_eq!(x == y, a == b);
        assert_eq!(x < y, a < b);
        let s1 = Val::set([x.clone(), y.clone()]);
        let s2 = Val::set([y, x]);
        assert_eq!(s1, s2, "sets are order-insensitive");
    }
}

/// A regression: `Inv`/`Resp` payload accessors survive nesting (used
/// by the FD suspect encoding).
#[test]
fn nested_payload_accessors() {
    let inv = Inv::op("cas", Val::pair(Val::Int(1), Val::Int(2)));
    let (e, n) = inv.arg().unwrap().as_pair().unwrap();
    assert_eq!((e.as_int(), n.as_int()), (Some(1), Some(2)));
}

#[test]
fn snapshot_scan_agrees_with_a_model_vector() {
    use spec::seq::Snapshot;
    let mut g = SplitMix64::seed_from_u64(0x59ec_000a);
    for _ in 0..CASES {
        let ops: Vec<(usize, i64)> = (0..g.gen_range(20))
            .map(|_| (g.gen_range(3), g.gen_i64_range(0, 2)))
            .collect();
        let t = Snapshot::new(3, [Val::Int(0), Val::Int(1)], Val::Int(0));
        let mut v = t.initial_value();
        let mut model = [0i64; 3];
        for (idx, x) in ops {
            let (_, v2) = t.delta_det(&Snapshot::update(idx, Val::Int(x)), &v);
            model[idx] = x;
            v = v2;
            let (snap, _) = t.delta_det(&Snapshot::scan(), &v);
            let expected = Val::seq(model.iter().map(|m| Val::Int(*m)));
            assert_eq!(snap.0, expected);
        }
    }
}

#[test]
fn sticky_bit_is_monotone() {
    use spec::seq::StickyBit;
    let mut g = SplitMix64::seed_from_u64(0x59ec_000b);
    for _ in 0..CASES {
        let write_len = 1 + g.gen_range(14);
        let writes = int_vec(&mut g, write_len, 0, 2);
        let t = StickyBit;
        let mut v = t.initial_value();
        let mut stuck: Option<i64> = None;
        for w in writes {
            let (r, v2) = t.delta_det(&StickyBit::write(w), &v);
            match stuck {
                None => {
                    stuck = Some(w);
                    assert_eq!(&r.0, &Val::Int(w));
                }
                Some(s) => assert_eq!(&r.0, &Val::Int(s)),
            }
            v = v2;
        }
    }
}

#[test]
fn channel_directions_are_independent_fifos() {
    use spec::channel::PairChannel;
    use spec::service_type::ObliviousType;
    use spec::ProcId;
    let mut g = SplitMix64::seed_from_u64(0x59ec_000c);
    for _ in 0..CASES {
        let sends: Vec<(bool, i64)> = (0..g.gen_range(20))
            .map(|_| (g.gen_bool(), g.gen_i64_range(0, 2)))
            .collect();
        let ch = PairChannel::new(ProcId(0), ProcId(1), [Val::Int(0), Val::Int(1)]);
        let mut v = ch.initial_value();
        let mut model_ab: Vec<i64> = Vec::new();
        let mut model_ba: Vec<i64> = Vec::new();
        for (from_a, m) in &sends {
            let sender = if *from_a { ProcId(0) } else { ProcId(1) };
            let (_, v2) = ch
                .delta1(&PairChannel::send(Val::Int(*m)), sender, &v)
                .remove(0);
            if *from_a {
                model_ab.push(*m);
            } else {
                model_ba.push(*m);
            }
            v = v2;
        }
        // Drain towards P1 (the a→b queue) and compare with the model.
        let mut received = Vec::new();
        loop {
            let (resp, v2) = ch
                .delta2(&PairChannel::delivery_to(ProcId(1)), &v)
                .remove(0);
            if resp.is_empty() {
                break;
            }
            let m = PairChannel::decode_rcv(&resp.for_endpoint(ProcId(1))[0])
                .unwrap()
                .as_int()
                .unwrap();
            received.push(m);
            v = v2;
        }
        assert_eq!(received, model_ab);
        // The b→a queue is untouched by draining a→b.
        let mut received_a = Vec::new();
        loop {
            let (resp, v2) = ch
                .delta2(&PairChannel::delivery_to(ProcId(0)), &v)
                .remove(0);
            if resp.is_empty() {
                break;
            }
            let m = PairChannel::decode_rcv(&resp.for_endpoint(ProcId(0))[0])
                .unwrap()
                .as_int()
                .unwrap();
            received_a.push(m);
            v = v2;
        }
        assert_eq!(received_a, model_ba);
    }
}
