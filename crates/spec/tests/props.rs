//! Property-based tests for the specification layer: the sequential
//! types' algebraic laws under arbitrary operation sequences.

use proptest::prelude::*;
use spec::seq::{
    BinaryConsensus, CompareAndSwap, FetchAndAdd, FifoQueue, KSetConsensus, MultiValueConsensus,
    ReadWrite, TestAndSet,
};
use spec::seq_type::{Inv, SeqType};
use spec::Val;

/// Applies a sequence of invocation indices to a type, checking
/// totality (δ nonempty) at every step; returns the value trajectory.
fn drive(t: &dyn SeqType, script: &[usize]) -> Vec<Val> {
    let invs = t.invocations();
    let mut v = t.initial_value();
    let mut trajectory = vec![v.clone()];
    for idx in script {
        let inv = &invs[idx % invs.len()];
        let outs = t.delta(inv, &v);
        assert!(!outs.is_empty(), "δ must be total at {inv:?}/{v:?}");
        let (_, v2) = t.delta_det(inv, &v);
        v = v2;
        trajectory.push(v.clone());
    }
    trajectory
}

proptest! {
    #[test]
    fn consensus_value_is_write_once(script in proptest::collection::vec(0usize..2, 0..30)) {
        let t = BinaryConsensus;
        let traj = drive(&t, &script);
        // Once the set is nonempty it never changes again.
        let mut fixed: Option<&Val> = None;
        for v in &traj {
            let s = v.as_set().unwrap();
            match (&fixed, s.is_empty()) {
                (None, false) => fixed = Some(v),
                (Some(w), _) => prop_assert_eq!(*w, v),
                _ => {}
            }
        }
    }

    #[test]
    fn multi_consensus_decision_matches_first_input(
        first in 0i64..5,
        rest in proptest::collection::vec(0i64..5, 0..20),
    ) {
        let t = MultiValueConsensus::new(5);
        let (d, mut v) = t.delta_det(&MultiValueConsensus::init(first), &t.initial_value());
        prop_assert_eq!(MultiValueConsensus::decision(&d), Some(first));
        for x in rest {
            let (d, v2) = t.delta_det(&MultiValueConsensus::init(x), &v);
            prop_assert_eq!(MultiValueConsensus::decision(&d), Some(first));
            v = v2;
        }
    }

    #[test]
    fn kset_w_is_bounded_and_decisions_come_from_w(
        script in proptest::collection::vec(0i64..6, 1..25),
        k in 1usize..4,
    ) {
        let t = KSetConsensus::new(k, 6);
        let mut v = t.initial_value();
        for x in &script {
            let outs = t.delta(&KSetConsensus::init(*x), &v);
            prop_assert!(!outs.is_empty());
            for (resp, v2) in &outs {
                let w2 = v2.as_set().unwrap();
                prop_assert!(w2.len() <= k, "W grew past k");
                let d = KSetConsensus::decision(resp).unwrap();
                prop_assert!(w2.contains(&Val::Int(d)), "decision outside W∪{{v}}");
            }
            v = t.delta_det(&KSetConsensus::init(*x), &v).1;
        }
    }

    #[test]
    fn register_read_after_write_returns_the_write(
        writes in proptest::collection::vec(0i64..2, 1..15),
    ) {
        let t = ReadWrite::binary();
        let mut v = t.initial_value();
        for w in writes {
            let (_, v2) = t.delta_det(&ReadWrite::write(Val::Int(w)), &v);
            let (r, v3) = t.delta_det(&ReadWrite::read(), &v2);
            prop_assert_eq!(r.0, Val::Int(w));
            prop_assert_eq!(&v3, &v2);
            v = v3;
        }
    }

    #[test]
    fn test_and_set_has_a_unique_winner_per_epoch(
        callers in 1usize..8,
    ) {
        let t = TestAndSet;
        let mut v = t.initial_value();
        let mut winners = 0;
        for _ in 0..callers {
            let (r, v2) = t.delta_det(&TestAndSet::test_and_set(), &v);
            if r.0 == Val::Int(0) {
                winners += 1;
            }
            v = v2;
        }
        prop_assert_eq!(winners, 1);
    }

    #[test]
    fn cas_succeeds_iff_expected_matches(
        ops in proptest::collection::vec((0i64..3, 0i64..3), 0..20),
    ) {
        let domain: Vec<Val> = (0..3).map(Val::Int).collect();
        let t = CompareAndSwap::with_domain(domain, Val::Int(0));
        let mut v = t.initial_value();
        for (e, n) in ops {
            let (old, v2) = t.delta_det(&CompareAndSwap::cas(Val::Int(e), Val::Int(n)), &v);
            prop_assert_eq!(&old.0, &v);
            if v == Val::Int(e) {
                prop_assert_eq!(&v2, &Val::Int(n));
            } else {
                prop_assert_eq!(&v2, &v);
            }
            v = v2;
        }
    }

    #[test]
    fn counter_tracks_modular_sum(
        deltas in proptest::collection::vec(-5i64..6, 0..25),
    ) {
        let t = FetchAndAdd::modulo(7);
        let mut v = t.initial_value();
        let mut expected = 0i64;
        for d in deltas {
            let (_, v2) = t.delta_det(&FetchAndAdd::fetch_add(d), &v);
            expected = (expected + d).rem_euclid(7);
            prop_assert_eq!(&v2, &Val::Int(expected));
            v = v2;
        }
    }

    #[test]
    fn queue_is_fifo_under_arbitrary_interleaving(
        ops in proptest::collection::vec(proptest::option::of(0i64..3), 0..25),
    ) {
        // Some(v) = enq(v), None = deq. A model VecDeque must agree.
        let t = FifoQueue::bounded((0..3).map(Val::Int), 8);
        let mut v = t.initial_value();
        let mut model: std::collections::VecDeque<i64> = Default::default();
        for op in ops {
            match op {
                Some(x) => {
                    let (r, v2) = t.delta_det(&FifoQueue::enq(Val::Int(x)), &v);
                    if model.len() < 8 {
                        model.push_back(x);
                        prop_assert_eq!(r.0, Val::Sym("ack"));
                    } else {
                        prop_assert_eq!(r.0, Val::Sym("full"));
                    }
                    v = v2;
                }
                None => {
                    let (r, v2) = t.delta_det(&FifoQueue::deq(), &v);
                    match model.pop_front() {
                        Some(x) => prop_assert_eq!(r.0, Val::Int(x)),
                        None => prop_assert_eq!(r.0, Val::Sym("empty")),
                    }
                    v = v2;
                }
            }
        }
    }

    #[test]
    fn deterministic_types_have_singleton_delta_everywhere(
        script in proptest::collection::vec(0usize..8, 0..15),
    ) {
        let types: Vec<Box<dyn SeqType>> = vec![
            Box::new(BinaryConsensus),
            Box::new(ReadWrite::binary()),
            Box::new(TestAndSet),
            Box::new(MultiValueConsensus::new(3)),
        ];
        for t in &types {
            let traj = drive(t.as_ref(), &script);
            for v in &traj {
                for inv in t.invocations() {
                    prop_assert_eq!(t.delta(&inv, v).len(), 1, "{} not deterministic", t.name());
                }
            }
        }
    }

    #[test]
    fn val_ordering_is_consistent_with_equality(
        a in -10i64..10,
        b in -10i64..10,
    ) {
        let (x, y) = (Val::Int(a), Val::Int(b));
        prop_assert_eq!(x == y, a == b);
        prop_assert_eq!(x < y, a < b);
        let s1 = Val::set([x.clone(), y.clone()]);
        let s2 = Val::set([y, x]);
        prop_assert_eq!(s1, s2, "sets are order-insensitive");
    }
}

/// A non-proptest regression: `Inv`/`Resp` payload accessors survive
/// nesting (used by the FD suspect encoding).
#[test]
fn nested_payload_accessors() {
    let inv = Inv::op("cas", Val::pair(Val::Int(1), Val::Int(2)));
    let (e, n) = inv.arg().unwrap().as_pair().unwrap();
    assert_eq!((e.as_int(), n.as_int()), (Some(1), Some(2)));
}

proptest! {
    #[test]
    fn snapshot_scan_agrees_with_a_model_vector(
        ops in proptest::collection::vec((0usize..3, 0i64..2), 0..20),
    ) {
        use spec::seq::Snapshot;
        let t = Snapshot::new(3, [Val::Int(0), Val::Int(1)], Val::Int(0));
        let mut v = t.initial_value();
        let mut model = [0i64; 3];
        for (idx, x) in ops {
            let (_, v2) = t.delta_det(&Snapshot::update(idx, Val::Int(x)), &v);
            model[idx] = x;
            v = v2;
            let (snap, _) = t.delta_det(&Snapshot::scan(), &v);
            let expected = Val::seq(model.iter().map(|m| Val::Int(*m)));
            prop_assert_eq!(snap.0, expected);
        }
    }

    #[test]
    fn sticky_bit_is_monotone(
        writes in proptest::collection::vec(0i64..2, 1..15),
    ) {
        use spec::seq::StickyBit;
        let t = StickyBit;
        let mut v = t.initial_value();
        let mut stuck: Option<i64> = None;
        for w in writes {
            let (r, v2) = t.delta_det(&StickyBit::write(w), &v);
            match stuck {
                None => {
                    stuck = Some(w);
                    prop_assert_eq!(&r.0, &Val::Int(w));
                }
                Some(s) => prop_assert_eq!(&r.0, &Val::Int(s)),
            }
            v = v2;
        }
    }

    #[test]
    fn channel_directions_are_independent_fifos(
        sends in proptest::collection::vec((any::<bool>(), 0i64..2), 0..20),
    ) {
        use spec::channel::PairChannel;
        use spec::service_type::ObliviousType;
        use spec::ProcId;
        let ch = PairChannel::new(ProcId(0), ProcId(1), [Val::Int(0), Val::Int(1)]);
        let mut v = ch.initial_value();
        let mut model_ab: Vec<i64> = Vec::new();
        let mut model_ba: Vec<i64> = Vec::new();
        for (from_a, m) in &sends {
            let sender = if *from_a { ProcId(0) } else { ProcId(1) };
            let (_, v2) = ch
                .delta1(&PairChannel::send(Val::Int(*m)), sender, &v)
                .remove(0);
            if *from_a {
                model_ab.push(*m);
            } else {
                model_ba.push(*m);
            }
            v = v2;
        }
        // Drain towards P1 (the a→b queue) and compare with the model.
        let mut received = Vec::new();
        loop {
            let (resp, v2) = ch.delta2(&PairChannel::delivery_to(ProcId(1)), &v).remove(0);
            if resp.is_empty() {
                break;
            }
            let m = PairChannel::decode_rcv(&resp.for_endpoint(ProcId(1))[0])
                .unwrap()
                .as_int()
                .unwrap();
            received.push(m);
            v = v2;
        }
        prop_assert_eq!(received, model_ab);
        // The b→a queue is untouched by draining a→b.
        let mut received_a = Vec::new();
        loop {
            let (resp, v2) = ch.delta2(&PairChannel::delivery_to(ProcId(0)), &v).remove(0);
            if resp.is_empty() {
                break;
            }
            let m = PairChannel::decode_rcv(&resp.for_endpoint(ProcId(0))[0])
                .unwrap()
                .as_int()
                .unwrap();
            received_a.push(m);
            v = v2;
        }
        prop_assert_eq!(received_a, model_ba);
    }
}
