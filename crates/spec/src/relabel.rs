//! The consensus-value relabeling group `S_vals` (the 0 ↔ 1 swap).
//!
//! The paper's indistinguishability arguments are symmetric not only in
//! process identities but in the consensus values themselves: relabeling
//! every occurrence of input/decision value `0` as `1` (and vice versa)
//! maps executions to executions whenever the substrate never inspects
//! the values it carries. [`ValuePerm`] is that two-element group, and
//! [`RelabelValues`] is the structural action of a `ValuePerm` on the
//! workspace's data — values, invocations, responses, service states,
//! process states. Composed with the process-permutation group
//! `S_n` (see `ioa::canon::Perm`) it yields the full `S_n × S_vals`
//! symmetry the quotient explorer reduces by under
//! `SymmetryMode::Values`.
//!
//! The action is *structural*: it recursively swaps `Val::Int(0)` and
//! `Val::Int(1)` inside sets, sequences, maps and pairs, leaving every
//! other leaf alone. Whether that structural action is a genuine
//! automorphism of a given substrate is a *contract*
//! (`SeqType::value_symmetric`, `Service::value_symmetric`,
//! `ProcessAutomaton::value_symmetric`), default-off and audited by the
//! `value-symmetry` rule in `analysis::audit`.

use crate::value::Val;

/// An element of the value-relabeling group: identity or the 0 ↔ 1
/// swap. The group is `Z/2`: [`ValuePerm::Swap`] is an involution and
/// composition is exclusive-or.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ValuePerm {
    /// Leave every value alone.
    #[default]
    Id,
    /// Swap every (nested) occurrence of `Int(0)` and `Int(1)`.
    Swap,
}

impl ValuePerm {
    /// Group composition. `Z/2` is abelian and every element is its
    /// own inverse, so this is simply exclusive-or.
    #[must_use]
    pub fn compose(self, other: ValuePerm) -> ValuePerm {
        if self == other {
            ValuePerm::Id
        } else {
            ValuePerm::Swap
        }
    }

    /// The inverse element (every element of `Z/2` is an involution).
    #[must_use]
    pub fn inverse(self) -> ValuePerm {
        self
    }

    /// Whether this is the identity.
    #[must_use]
    pub fn is_identity(self) -> bool {
        self == ValuePerm::Id
    }

    /// Applies the relabeling to one value.
    #[must_use]
    pub fn apply(self, v: &Val) -> Val {
        match self {
            ValuePerm::Id => v.clone(),
            ValuePerm::Swap => v.relabel_values(self),
        }
    }
}

impl std::fmt::Display for ValuePerm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValuePerm::Id => write!(f, "id"),
            ValuePerm::Swap => write!(f, "0↔1"),
        }
    }
}

/// Data a [`ValuePerm`] acts on structurally.
///
/// Implementations must form a group action: relabeling by
/// [`ValuePerm::Id`] is the identity and relabeling twice by
/// [`ValuePerm::Swap`] round-trips. The provided impls recurse through
/// [`Val`]'s containers; component-state impls (service states, process
/// phases) relabel exactly their value-carrying fields.
pub trait RelabelValues {
    /// The image of `self` under `vp`.
    #[must_use]
    fn relabel_values(&self, vp: ValuePerm) -> Self;
}

impl RelabelValues for Val {
    fn relabel_values(&self, vp: ValuePerm) -> Val {
        if vp.is_identity() {
            return self.clone();
        }
        match self {
            Val::Int(0) => Val::Int(1),
            Val::Int(1) => Val::Int(0),
            Val::Unit | Val::Bool(_) | Val::Int(_) | Val::Sym(_) | Val::Str(_) => self.clone(),
            Val::Set(s) => Val::Set(s.iter().map(|v| v.relabel_values(vp)).collect()),
            Val::Seq(s) => Val::Seq(s.iter().map(|v| v.relabel_values(vp)).collect()),
            Val::Map(m) => Val::Map(
                m.iter()
                    .map(|(k, v)| (k.relabel_values(vp), v.relabel_values(vp)))
                    .collect(),
            ),
            Val::Pair(a, b) => Val::pair(a.relabel_values(vp), b.relabel_values(vp)),
        }
    }
}

impl RelabelValues for crate::seq_type::Inv {
    fn relabel_values(&self, vp: ValuePerm) -> Self {
        crate::seq_type::Inv(self.0.relabel_values(vp))
    }
}

impl RelabelValues for crate::seq_type::Resp {
    fn relabel_values(&self, vp: ValuePerm) -> Self {
        crate::seq_type::Resp(self.0.relabel_values(vp))
    }
}

// Value-free scalar states (toy/test automata use small integers as
// states); the relabeling acts trivially.
macro_rules! impl_relabel_trivial {
    ($($t:ty),* $(,)?) => {$(
        impl RelabelValues for $t {
            fn relabel_values(&self, _vp: ValuePerm) -> Self {
                self.clone()
            }
        }
    )*};
}

impl_relabel_trivial!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, ());

impl<T: RelabelValues> RelabelValues for Vec<T> {
    fn relabel_values(&self, vp: ValuePerm) -> Self {
        self.iter().map(|v| v.relabel_values(vp)).collect()
    }
}

impl<T: RelabelValues> RelabelValues for Option<T> {
    fn relabel_values(&self, vp: ValuePerm) -> Self {
        self.as_ref().map(|v| v.relabel_values(vp))
    }
}

impl<A: RelabelValues, B: RelabelValues> RelabelValues for (A, B) {
    fn relabel_values(&self, vp: ValuePerm) -> Self {
        (self.0.relabel_values(vp), self.1.relabel_values(vp))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swap_is_an_involution() {
        let vals = [
            Val::Int(0),
            Val::Int(1),
            Val::Int(7),
            Val::Sym("read"),
            Val::set([Val::Int(0), Val::Int(2)]),
            Val::pair(Val::Sym("init"), Val::Int(1)),
            Val::map([(Val::Int(0), Val::Int(1))]),
            Val::seq([Val::Int(1), Val::Unit]),
        ];
        for v in &vals {
            let once = v.relabel_values(ValuePerm::Swap);
            assert_eq!(&once.relabel_values(ValuePerm::Swap), v, "{v}");
            assert_eq!(&v.relabel_values(ValuePerm::Id), v);
        }
    }

    #[test]
    fn swap_recurses_and_leaves_other_leaves_alone() {
        let v = Val::pair(Val::Sym("decide"), Val::set([Val::Int(0), Val::Int(5)]));
        assert_eq!(
            v.relabel_values(ValuePerm::Swap),
            Val::pair(Val::Sym("decide"), Val::set([Val::Int(1), Val::Int(5)]))
        );
    }

    #[test]
    fn composition_is_xor() {
        use ValuePerm::{Id, Swap};
        assert_eq!(Id.compose(Id), Id);
        assert_eq!(Id.compose(Swap), Swap);
        assert_eq!(Swap.compose(Id), Swap);
        assert_eq!(Swap.compose(Swap), Id);
        assert_eq!(Swap.inverse(), Swap);
        assert!(Id.is_identity() && !Swap.is_identity());
    }

    #[test]
    fn display_names_the_swap() {
        assert_eq!(ValuePerm::Id.to_string(), "id");
        assert_eq!(ValuePerm::Swap.to_string(), "0↔1");
    }
}
