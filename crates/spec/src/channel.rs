//! Reliable point-to-point channels as failure-oblivious services.
//!
//! The paper's results originate in a technical report on *message
//! passing* systems (\[2\]: "Boosting Fault-Tolerance in Asynchronous
//! Message Passing Systems is Impossible"); the journal version's
//! service framework subsumes that model because a reliable FIFO
//! channel is a failure-oblivious service: `send(m)` invocations
//! enqueue, spontaneous `compute` steps deliver `rcv(m)` responses to
//! the peer, and nothing depends on failure events.
//!
//! [`PairChannel`] is the bidirectional channel between two endpoints;
//! `protocols::message_passing` builds full pairwise networks from it.

use crate::ids::{GlobalTaskId, ProcId};
use crate::seq_type::{Inv, Resp};
use crate::service_type::{ObliviousType, ResponseMap};
use crate::value::Val;

/// A bidirectional reliable FIFO channel between endpoints `a` and
/// `b`, carrying messages from a finite alphabet.
///
/// The value is a pair of queues `(a→b, b→a)`. `δ1(send(m), i, ·)`
/// appends to `i`'s outgoing queue; the two global delivery tasks
/// (named by the *receiving* endpoint) pop the corresponding queue and
/// deliver `rcv(m)` to that endpoint.
///
/// # Example
///
/// ```
/// use spec::channel::PairChannel;
/// use spec::service_type::ObliviousType;
/// use spec::{ProcId, Val};
///
/// let ch = PairChannel::new(ProcId(0), ProcId(1), [Val::Int(7)]);
/// let v = ch.initial_value();
/// let (_, v) = ch.delta1(&PairChannel::send(Val::Int(7)), ProcId(0), &v).remove(0);
/// let (resps, _) = ch
///     .delta2(&PairChannel::delivery_to(ProcId(1)), &v)
///     .remove(0);
/// assert_eq!(resps.for_endpoint(ProcId(1)).len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct PairChannel {
    a: ProcId,
    b: ProcId,
    alphabet: Vec<Val>,
}

impl PairChannel {
    /// A channel between `a` and `b` over `alphabet`.
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn new<M: IntoIterator<Item = Val>>(a: ProcId, b: ProcId, alphabet: M) -> Self {
        assert_ne!(a, b, "a channel connects two distinct endpoints");
        PairChannel {
            a,
            b,
            alphabet: alphabet.into_iter().collect(),
        }
    }

    /// The `send(m)` invocation.
    pub fn send(m: Val) -> Inv {
        Inv::op("send", m)
    }

    /// The `rcv(m)` response.
    pub fn rcv(m: Val) -> Resp {
        Resp::op("rcv", m)
    }

    /// Decodes a `rcv(m)` response.
    pub fn decode_rcv(resp: &Resp) -> Option<&Val> {
        if resp.name() == Some("rcv") {
            resp.arg()
        } else {
            None
        }
    }

    /// The delivery task feeding endpoint `to`.
    pub fn delivery_to(to: ProcId) -> GlobalTaskId {
        GlobalTaskId::for_endpoint(to)
    }

    /// The two endpoints.
    pub fn endpoints(&self) -> (ProcId, ProcId) {
        (self.a, self.b)
    }

    fn queues(val: &Val) -> (&Vec<Val>, &Vec<Val>) {
        let (ab, ba) = val.as_pair().expect("channel value is a queue pair");
        (
            ab.as_seq().expect("a→b queue"),
            ba.as_seq().expect("b→a queue"),
        )
    }
}

impl ObliviousType for PairChannel {
    fn name(&self) -> &str {
        "reliable FIFO channel"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::pair(Val::empty_seq(), Val::empty_seq())]
    }

    fn invocations(&self) -> Vec<Inv> {
        self.alphabet
            .iter()
            .cloned()
            .map(PairChannel::send)
            .collect()
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        vec![
            PairChannel::delivery_to(self.a),
            PairChannel::delivery_to(self.b),
        ]
    }

    fn delta1(&self, inv: &Inv, i: ProcId, val: &Val) -> Vec<(ResponseMap, Val)> {
        assert_eq!(
            inv.name(),
            Some("send"),
            "not a channel invocation: {inv:?}"
        );
        let m = inv.arg().expect("send carries a message").clone();
        let (ab, ba) = PairChannel::queues(val);
        let (mut ab, mut ba) = (ab.clone(), ba.clone());
        if i == self.a {
            ab.push(m);
        } else if i == self.b {
            ba.push(m);
        } else {
            panic!("{i} is not an endpoint of this channel");
        }
        vec![(ResponseMap::empty(), Val::pair(Val::Seq(ab), Val::Seq(ba)))]
    }

    fn delta2(&self, g: &GlobalTaskId, val: &Val) -> Vec<(ResponseMap, Val)> {
        let GlobalTaskId::Endpoint(to) = g else {
            panic!("channel delivery tasks are per-endpoint, got {g:?}")
        };
        let (ab, ba) = PairChannel::queues(val);
        // The queue *feeding* `to`.
        let (feeding, other, to_is_b) = if *to == self.b {
            (ab, ba, true)
        } else if *to == self.a {
            (ba, ab, false)
        } else {
            panic!("{to} is not an endpoint of this channel")
        };
        match feeding.split_first() {
            Some((head, rest)) => {
                let rest = Val::Seq(rest.to_vec());
                let other = Val::Seq(other.clone());
                let val2 = if to_is_b {
                    Val::pair(rest, other)
                } else {
                    Val::pair(other, rest)
                };
                vec![(
                    ResponseMap::single(*to, PairChannel::rcv(head.clone())),
                    val2,
                )]
            }
            None => vec![(ResponseMap::empty(), val.clone())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ch() -> PairChannel {
        PairChannel::new(ProcId(0), ProcId(2), [Val::Int(1), Val::Int(2)])
    }

    #[test]
    fn messages_flow_in_both_directions_independently() {
        let c = ch();
        let v = c.initial_value();
        let (_, v) = c
            .delta1(&PairChannel::send(Val::Int(1)), ProcId(0), &v)
            .remove(0);
        let (_, v) = c
            .delta1(&PairChannel::send(Val::Int(2)), ProcId(2), &v)
            .remove(0);
        // Deliver to P2 (from P0).
        let (r, v) = c.delta2(&PairChannel::delivery_to(ProcId(2)), &v).remove(0);
        assert_eq!(r.for_endpoint(ProcId(2)), &[PairChannel::rcv(Val::Int(1))]);
        // Deliver to P0 (from P2).
        let (r, v) = c.delta2(&PairChannel::delivery_to(ProcId(0)), &v).remove(0);
        assert_eq!(r.for_endpoint(ProcId(0)), &[PairChannel::rcv(Val::Int(2))]);
        assert_eq!(v, c.initial_value());
    }

    #[test]
    fn fifo_per_direction() {
        let c = ch();
        let v = c.initial_value();
        let (_, v) = c
            .delta1(&PairChannel::send(Val::Int(1)), ProcId(0), &v)
            .remove(0);
        let (_, v) = c
            .delta1(&PairChannel::send(Val::Int(2)), ProcId(0), &v)
            .remove(0);
        let (r1, v) = c.delta2(&PairChannel::delivery_to(ProcId(2)), &v).remove(0);
        let (r2, _) = c.delta2(&PairChannel::delivery_to(ProcId(2)), &v).remove(0);
        assert_eq!(r1.for_endpoint(ProcId(2)), &[PairChannel::rcv(Val::Int(1))]);
        assert_eq!(r2.for_endpoint(ProcId(2)), &[PairChannel::rcv(Val::Int(2))]);
    }

    #[test]
    fn empty_delivery_is_a_noop() {
        let c = ch();
        let outs = c.delta2(&PairChannel::delivery_to(ProcId(0)), &c.initial_value());
        assert_eq!(outs.len(), 1);
        assert!(outs[0].0.is_empty());
        assert_eq!(outs[0].1, c.initial_value());
    }

    #[test]
    fn rcv_roundtrip() {
        let r = PairChannel::rcv(Val::Int(2));
        assert_eq!(PairChannel::decode_rcv(&r), Some(&Val::Int(2)));
        assert_eq!(PairChannel::decode_rcv(&Resp::sym("ack")), None);
    }

    #[test]
    #[should_panic(expected = "not an endpoint")]
    fn foreign_senders_are_rejected() {
        let c = ch();
        let _ = c.delta1(
            &PairChannel::send(Val::Int(1)),
            ProcId(7),
            &c.initial_value(),
        );
    }

    #[test]
    #[should_panic(expected = "two distinct endpoints")]
    fn self_channels_are_rejected() {
        let _ = PairChannel::new(ProcId(1), ProcId(1), [Val::Int(0)]);
    }
}
