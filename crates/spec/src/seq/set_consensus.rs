//! The k-set-consensus sequential type (paper Section 2.1.2, third
//! example).
//!
//! For `0 < k < n`: `V` is the set of subsets of `{0, …, n−1}` with at
//! most `k` elements, `V0 = {∅}`, and
//!
//! ```text
//! δ = {((init(v), W), (decide(v'), W ∪ {v})) : |W| < k, v' ∈ W ∪ {v}}
//!   ∪ {((init(v), W), (decide(v'), W))      : |W| = k, v' ∈ W}
//! ```
//!
//! The first `k` values are remembered and every operation returns one of
//! them. This type is **nondeterministic** — which is exactly why the
//! paper's definition of sequential types allows nondeterministic `δ`,
//! and why k-set-consensus escapes the impossibility theorems
//! (Section 4).

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;
use std::collections::BTreeSet;

/// The nondeterministic k-set-consensus sequential type with inputs in
/// `{0, …, n−1}`.
///
/// # Example
///
/// ```
/// use spec::seq::KSetConsensus;
/// use spec::seq_type::SeqType;
///
/// let t = KSetConsensus::new(2, 4);
/// // From ∅, init(3) can only decide 3.
/// let outs = t.delta(&KSetConsensus::init(3), &t.initial_value());
/// assert_eq!(outs.len(), 1);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KSetConsensus {
    k: usize,
    n: usize,
}

impl KSetConsensus {
    /// A k-set-consensus type over inputs `{0, …, n−1}`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < k < n` (the paper's side condition).
    pub fn new(k: usize, n: usize) -> Self {
        assert!(
            0 < k && k < n,
            "k-set-consensus requires 0 < k < n, got k={k}, n={n}"
        );
        KSetConsensus { k, n }
    }

    /// The agreement bound `k`.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The input-domain size `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The `init(v)` invocation.
    pub fn init(v: i64) -> Inv {
        Inv::op("init", Val::Int(v))
    }

    /// The `decide(v)` response.
    pub fn decide(v: i64) -> Resp {
        Resp::op("decide", Val::Int(v))
    }

    /// Extracts the decided value from a `decide(v)` response.
    pub fn decision(resp: &Resp) -> Option<i64> {
        if resp.name() == Some("decide") {
            resp.arg().and_then(Val::as_int)
        } else {
            None
        }
    }
}

impl SeqType for KSetConsensus {
    fn name(&self) -> &str {
        "k-set-consensus"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::empty_set()]
    }

    fn invocations(&self) -> Vec<Inv> {
        (0..self.n as i64).map(KSetConsensus::init).collect()
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        assert_eq!(
            inv.name(),
            Some("init"),
            "not a set-consensus invocation: {inv:?}"
        );
        let v = inv
            .arg()
            .and_then(Val::as_int)
            .expect("init carries an int");
        let w = val.as_set().expect("set-consensus value is a set W");
        if w.len() < self.k {
            // ((init(v), W), (decide(v'), W ∪ {v})), v' ∈ W ∪ {v}
            let mut w2: BTreeSet<Val> = w.clone();
            w2.insert(Val::Int(v));
            w2.iter()
                .map(|vp| {
                    let d = vp.as_int().expect("members of W are ints");
                    (KSetConsensus::decide(d), Val::Set(w2.clone()))
                })
                .collect()
        } else {
            // ((init(v), W), (decide(v'), W)), v' ∈ W
            w.iter()
                .map(|vp| {
                    let d = vp.as_int().expect("members of W are ints");
                    (KSetConsensus::decide(d), val.clone())
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remembers_at_most_k_values() {
        let t = KSetConsensus::new(2, 4);
        let v0 = t.initial_value();
        let (_, v1) = t.delta_det(&KSetConsensus::init(0), &v0);
        let (_, v2) = t.delta_det(&KSetConsensus::init(1), &v1);
        assert_eq!(v2.as_set().unwrap().len(), 2);
        // Third distinct input does not grow W.
        let (_, v3) = t.delta_det(&KSetConsensus::init(3), &v2);
        assert_eq!(v3, v2);
    }

    #[test]
    fn full_w_responses_are_exactly_w() {
        let t = KSetConsensus::new(2, 4);
        let w = Val::set([Val::Int(0), Val::Int(1)]);
        let outs = t.delta(&KSetConsensus::init(3), &w);
        let decisions: Vec<i64> = outs
            .iter()
            .map(|(r, _)| KSetConsensus::decision(r).unwrap())
            .collect();
        assert_eq!(decisions, vec![0, 1]);
    }

    #[test]
    fn nondeterministic_once_w_nonempty() {
        let t = KSetConsensus::new(2, 4);
        // |W| = 1 < k: init(2) may decide 0 or 2.
        let w = Val::set([Val::Int(0)]);
        let outs = t.delta(&KSetConsensus::init(2), &w);
        assert_eq!(outs.len(), 2);
        assert!(!t.is_deterministic(3));
    }

    #[test]
    fn determinized_view_picks_least() {
        let t = KSetConsensus::new(2, 4);
        let w = Val::set([Val::Int(1)]);
        let (r, _) = t.delta_det(&KSetConsensus::init(3), &w);
        // decide(1) < decide(3) lexicographically on the payload.
        assert_eq!(KSetConsensus::decision(&r), Some(1));
    }

    #[test]
    #[should_panic(expected = "0 < k < n")]
    fn rejects_degenerate_parameters() {
        let _ = KSetConsensus::new(3, 3);
    }
}
