//! Multi-valued consensus: the binary consensus sequential type of
//! Section 2.1.2 generalized to an arbitrary finite input domain.
//!
//! Section 4's boosting construction uses `k'`-consensus services over
//! inputs `{0, …, n−1}`; for `k' = 1` those are (multi-valued)
//! consensus objects. Exactly as in the binary type, the first value is
//! remembered and returned by every operation; the type stays
//! deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic consensus sequential type over inputs
/// `{0, …, m−1}`.
///
/// # Example
///
/// ```
/// use spec::seq::MultiValueConsensus;
/// use spec::seq_type::SeqType;
///
/// let t = MultiValueConsensus::new(4);
/// let (d, v) = t.delta_det(&MultiValueConsensus::init(3), &t.initial_value());
/// assert_eq!(d, MultiValueConsensus::decide(3));
/// let (d, _) = t.delta_det(&MultiValueConsensus::init(0), &v);
/// assert_eq!(d, MultiValueConsensus::decide(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MultiValueConsensus {
    m: i64,
}

impl MultiValueConsensus {
    /// A consensus type over inputs `{0, …, m−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `m < 1`.
    pub fn new(m: i64) -> Self {
        assert!(m >= 1, "consensus needs a nonempty input domain");
        MultiValueConsensus { m }
    }

    /// The `init(v)` invocation.
    pub fn init(v: i64) -> Inv {
        Inv::op("init", Val::Int(v))
    }

    /// The `decide(v)` response.
    pub fn decide(v: i64) -> Resp {
        Resp::op("decide", Val::Int(v))
    }

    /// Extracts the decided value from a `decide(v)` response.
    pub fn decision(resp: &Resp) -> Option<i64> {
        if resp.name() == Some("decide") {
            resp.arg().and_then(Val::as_int)
        } else {
            None
        }
    }

    /// The input-domain size `m`.
    pub fn domain_size(&self) -> i64 {
        self.m
    }
}

impl SeqType for MultiValueConsensus {
    fn name(&self) -> &str {
        "multi-valued consensus"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::empty_set()]
    }

    fn invocations(&self) -> Vec<Inv> {
        (0..self.m).map(MultiValueConsensus::init).collect()
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        assert_eq!(
            inv.name(),
            Some("init"),
            "not a consensus invocation: {inv:?}"
        );
        let v = inv
            .arg()
            .and_then(Val::as_int)
            .expect("init carries an int");
        let chosen = val.as_set().expect("consensus value is a set");
        match chosen.iter().next() {
            Some(first) => {
                let w = first.as_int().expect("chosen value is an int");
                vec![(MultiValueConsensus::decide(w), val.clone())]
            }
            None => vec![(MultiValueConsensus::decide(v), Val::set([Val::Int(v)]))],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_value_wins_over_the_full_domain() {
        let t = MultiValueConsensus::new(5);
        let (d, v) = t.delta_det(&MultiValueConsensus::init(4), &t.initial_value());
        assert_eq!(MultiValueConsensus::decision(&d), Some(4));
        for later in 0..5 {
            let (d, v2) = t.delta_det(&MultiValueConsensus::init(later), &v);
            assert_eq!(MultiValueConsensus::decision(&d), Some(4));
            assert_eq!(v2, v);
        }
    }

    #[test]
    fn deterministic() {
        assert!(MultiValueConsensus::new(3).is_deterministic(3));
    }

    #[test]
    #[should_panic(expected = "nonempty input domain")]
    fn rejects_empty_domain() {
        let _ = MultiValueConsensus::new(0);
    }
}
