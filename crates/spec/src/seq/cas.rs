//! The compare&swap sequential type (listed among the paper's examples
//! of atomic objects, Section 1).
//!
//! `cas(expected, new)` replaces the value with `new` iff the current
//! value equals `expected`, and returns the old value either way.
//! Deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic compare&swap sequential type over a finite domain.
///
/// # Example
///
/// ```
/// use spec::seq::CompareAndSwap;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = CompareAndSwap::with_domain([Val::Int(0), Val::Int(1)], Val::Int(0));
/// let (old, v) = t.delta_det(&CompareAndSwap::cas(Val::Int(0), Val::Int(1)), &t.initial_value());
/// assert_eq!(old.0, Val::Int(0));
/// assert_eq!(v, Val::Int(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompareAndSwap {
    domain: Vec<Val>,
    initial: Val,
}

impl CompareAndSwap {
    /// A compare&swap type over an explicit finite domain.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not in `domain`.
    pub fn with_domain<I: IntoIterator<Item = Val>>(domain: I, initial: Val) -> Self {
        let domain: Vec<Val> = domain.into_iter().collect();
        assert!(
            domain.contains(&initial),
            "initial value {initial:?} must be in the CAS domain"
        );
        CompareAndSwap { domain, initial }
    }

    /// The `cas(expected, new)` invocation.
    pub fn cas(expected: Val, new: Val) -> Inv {
        Inv::op("cas", Val::pair(expected, new))
    }

    /// The `read()` invocation.
    pub fn read() -> Inv {
        Inv::nullary("read")
    }
}

impl SeqType for CompareAndSwap {
    fn name(&self) -> &str {
        "compare&swap"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![self.initial.clone()]
    }

    fn invocations(&self) -> Vec<Inv> {
        let mut invs = vec![CompareAndSwap::read()];
        for e in &self.domain {
            for n in &self.domain {
                invs.push(CompareAndSwap::cas(e.clone(), n.clone()));
            }
        }
        invs
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        match inv.name() {
            Some("read") => vec![(Resp(val.clone()), val.clone())],
            Some("cas") => {
                let (expected, new) = inv
                    .arg()
                    .and_then(Val::as_pair)
                    .expect("cas carries (expected, new)");
                let next = if val == expected {
                    new.clone()
                } else {
                    val.clone()
                };
                vec![(Resp(val.clone()), next)]
            }
            _ => panic!("not a compare&swap invocation: {inv:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> CompareAndSwap {
        CompareAndSwap::with_domain([Val::Int(0), Val::Int(1), Val::Int(2)], Val::Int(0))
    }

    #[test]
    fn successful_cas_swaps() {
        let (old, v) = t().delta_det(&CompareAndSwap::cas(Val::Int(0), Val::Int(2)), &Val::Int(0));
        assert_eq!(old.0, Val::Int(0));
        assert_eq!(v, Val::Int(2));
    }

    #[test]
    fn failed_cas_leaves_value() {
        let (old, v) = t().delta_det(&CompareAndSwap::cas(Val::Int(1), Val::Int(2)), &Val::Int(0));
        assert_eq!(old.0, Val::Int(0));
        assert_eq!(v, Val::Int(0));
    }

    #[test]
    fn read_is_passive() {
        let (r, v) = t().delta_det(&CompareAndSwap::read(), &Val::Int(2));
        assert_eq!(r.0, Val::Int(2));
        assert_eq!(v, Val::Int(2));
    }

    #[test]
    fn deterministic_and_total() {
        let t = t();
        assert!(t.is_deterministic(2));
        assert_eq!(t.invocations().len(), 1 + 9);
    }
}
