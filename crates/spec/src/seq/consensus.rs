//! The binary consensus sequential type (paper Section 2.1.2, second
//! example).
//!
//! `V = {∅, {0}, {1}}`, `V0 = {∅}`, `invs = {init(v) : v ∈ {0,1}}`,
//! `resps = {decide(v) : v ∈ {0,1}}`, and
//! `δ = {((init(v), ∅), (decide(v), {v}))}
//!    ∪ {((init(v), {v'}), (decide(v'), {v'}))}`:
//! the first value is remembered and returned by every operation.
//! This type is deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic binary consensus sequential type.
///
/// # Example
///
/// ```
/// use spec::seq::BinaryConsensus;
/// use spec::seq_type::SeqType;
///
/// let t = BinaryConsensus;
/// let (d, v) = t.delta_det(&BinaryConsensus::init(0), &t.initial_value());
/// assert_eq!(d, BinaryConsensus::decide(0));
/// // A later init(1) still decides 0.
/// let (d, _) = t.delta_det(&BinaryConsensus::init(1), &v);
/// assert_eq!(d, BinaryConsensus::decide(0));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BinaryConsensus;

impl BinaryConsensus {
    /// The `init(v)` invocation, `v ∈ {0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not binary.
    pub fn init(v: i64) -> Inv {
        assert!(v == 0 || v == 1, "binary consensus input must be 0 or 1");
        Inv::op("init", Val::Int(v))
    }

    /// The `decide(v)` response.
    pub fn decide(v: i64) -> Resp {
        Resp::op("decide", Val::Int(v))
    }

    /// Extracts the decided value from a `decide(v)` response.
    pub fn decision(resp: &Resp) -> Option<i64> {
        if resp.name() == Some("decide") {
            resp.arg().and_then(Val::as_int)
        } else {
            None
        }
    }
}

impl SeqType for BinaryConsensus {
    fn name(&self) -> &str {
        "binary consensus"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::empty_set()]
    }

    fn invocations(&self) -> Vec<Inv> {
        vec![BinaryConsensus::init(0), BinaryConsensus::init(1)]
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        assert_eq!(
            inv.name(),
            Some("init"),
            "not a consensus invocation: {inv:?}"
        );
        let v = inv.arg().and_then(Val::as_int).expect("init carries 0/1");
        let chosen = val.as_set().expect("consensus value is a set");
        match chosen.iter().next() {
            // ((init(v), {v'}), (decide(v'), {v'}))
            Some(first) => {
                let w = first.as_int().expect("chosen value is an int");
                vec![(BinaryConsensus::decide(w), val.clone())]
            }
            // ((init(v), ∅), (decide(v), {v}))
            None => vec![(BinaryConsensus::decide(v), Val::set([Val::Int(v)]))],
        }
    }

    fn proc_oblivious(&self) -> bool {
        // Values are sets of ints, invocations/responses carry ints —
        // no process identity anywhere.
        true
    }

    fn value_symmetric(&self) -> bool {
        // First-value-wins never inspects which value it stores:
        // relabeling 0 ↔ 1 in the invocation and the chosen set
        // commutes with δ.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_value_wins() {
        let t = BinaryConsensus;
        let (d0, v) = t.delta_det(&BinaryConsensus::init(1), &t.initial_value());
        assert_eq!(d0, BinaryConsensus::decide(1));
        assert_eq!(v, Val::set([Val::Int(1)]));
        let (d1, v2) = t.delta_det(&BinaryConsensus::init(0), &v);
        assert_eq!(d1, BinaryConsensus::decide(1));
        assert_eq!(v2, v, "value is stable once set");
    }

    #[test]
    fn deterministic_per_paper() {
        assert!(BinaryConsensus.is_deterministic(4));
    }

    #[test]
    fn decision_extraction() {
        assert_eq!(
            BinaryConsensus::decision(&BinaryConsensus::decide(1)),
            Some(1)
        );
        assert_eq!(BinaryConsensus::decision(&Resp::sym("ack")), None);
    }

    #[test]
    #[should_panic(expected = "must be 0 or 1")]
    fn rejects_nonbinary_inputs() {
        let _ = BinaryConsensus::init(2);
    }

    #[test]
    fn two_invocations_total() {
        assert_eq!(BinaryConsensus.invocations().len(), 2);
        assert!(BinaryConsensus.is_invocation(&BinaryConsensus::init(0)));
    }
}
