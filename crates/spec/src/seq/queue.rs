//! The FIFO queue sequential type (the paper's "queue" example of an
//! atomic object, Section 1).
//!
//! `enq(v)` appends; `deq()` removes and returns the head, or returns
//! `empty` if the queue is empty. The queue is capacity-bounded so that
//! exhaustive exploration stays finite: an `enq` on a full queue
//! responds `full` and leaves the state unchanged. Deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic bounded FIFO queue.
///
/// # Example
///
/// ```
/// use spec::seq::FifoQueue;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = FifoQueue::bounded([Val::Int(0), Val::Int(1)], 2);
/// let (_, v) = t.delta_det(&FifoQueue::enq(Val::Int(1)), &t.initial_value());
/// let (head, _) = t.delta_det(&FifoQueue::deq(), &v);
/// assert_eq!(head.0, Val::Int(1));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FifoQueue {
    domain: Vec<Val>,
    capacity: usize,
}

impl FifoQueue {
    /// A queue of elements from `domain` holding at most `capacity`
    /// items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn bounded<I: IntoIterator<Item = Val>>(domain: I, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        FifoQueue {
            domain: domain.into_iter().collect(),
            capacity,
        }
    }

    /// The `enq(v)` invocation.
    pub fn enq(v: Val) -> Inv {
        Inv::op("enq", v)
    }

    /// The `deq()` invocation.
    pub fn deq() -> Inv {
        Inv::nullary("deq")
    }
}

impl SeqType for FifoQueue {
    fn name(&self) -> &str {
        "FIFO queue"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::empty_seq()]
    }

    fn invocations(&self) -> Vec<Inv> {
        let mut invs = vec![FifoQueue::deq()];
        invs.extend(self.domain.iter().cloned().map(FifoQueue::enq));
        invs
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        let items = val.as_seq().expect("queue value is a sequence");
        match inv.name() {
            Some("enq") => {
                let v = inv.arg().expect("enq carries a value").clone();
                if items.len() >= self.capacity {
                    vec![(Resp::sym("full"), val.clone())]
                } else {
                    let mut items = items.clone();
                    items.push(v);
                    vec![(Resp::sym("ack"), Val::Seq(items))]
                }
            }
            Some("deq") => match items.split_first() {
                Some((head, rest)) => {
                    vec![(Resp(head.clone()), Val::Seq(rest.to_vec()))]
                }
                None => vec![(Resp::sym("empty"), val.clone())],
            },
            _ => panic!("not a queue invocation: {inv:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> FifoQueue {
        FifoQueue::bounded([Val::Int(0), Val::Int(1)], 2)
    }

    #[test]
    fn fifo_order() {
        let q = t();
        let (_, v) = q.delta_det(&FifoQueue::enq(Val::Int(0)), &q.initial_value());
        let (_, v) = q.delta_det(&FifoQueue::enq(Val::Int(1)), &v);
        let (h0, v) = q.delta_det(&FifoQueue::deq(), &v);
        let (h1, v) = q.delta_det(&FifoQueue::deq(), &v);
        assert_eq!(h0.0, Val::Int(0));
        assert_eq!(h1.0, Val::Int(1));
        assert_eq!(v, Val::empty_seq());
    }

    #[test]
    fn deq_on_empty_reports_empty() {
        let q = t();
        let (r, v) = q.delta_det(&FifoQueue::deq(), &q.initial_value());
        assert_eq!(r, Resp::sym("empty"));
        assert_eq!(v, q.initial_value());
    }

    #[test]
    fn enq_on_full_reports_full() {
        let q = t();
        let (_, v) = q.delta_det(&FifoQueue::enq(Val::Int(0)), &q.initial_value());
        let (_, v) = q.delta_det(&FifoQueue::enq(Val::Int(0)), &v);
        let (r, v2) = q.delta_det(&FifoQueue::enq(Val::Int(1)), &v);
        assert_eq!(r, Resp::sym("full"));
        assert_eq!(v2, v);
    }

    #[test]
    fn deterministic() {
        assert!(t().is_deterministic(3));
    }
}
