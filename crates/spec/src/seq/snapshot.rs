//! The atomic snapshot sequential type — the standard formalization of
//! the "concurrently-accessible data structures" the paper's
//! introduction lists among services (Section 1).
//!
//! The value is a vector of `m` segments. `update(idx, v)` overwrites
//! one segment and acks; `scan()` returns the entire vector
//! atomically. Deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic atomic snapshot type with `m` segments over a
/// finite per-segment domain.
///
/// # Example
///
/// ```
/// use spec::seq::Snapshot;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = Snapshot::new(2, [Val::Int(0), Val::Int(1)], Val::Int(0));
/// let (_, v) = t.delta_det(&Snapshot::update(1, Val::Int(1)), &t.initial_value());
/// let (snap, _) = t.delta_det(&Snapshot::scan(), &v);
/// assert_eq!(snap.0, Val::seq([Val::Int(0), Val::Int(1)]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    segments: usize,
    domain: Vec<Val>,
    initial: Val,
}

impl Snapshot {
    /// A snapshot with `segments` slots over `domain`, each starting at
    /// `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `segments` is zero or `initial ∉ domain`.
    pub fn new<D: IntoIterator<Item = Val>>(segments: usize, domain: D, initial: Val) -> Self {
        let domain: Vec<Val> = domain.into_iter().collect();
        assert!(segments > 0, "a snapshot needs at least one segment");
        assert!(
            domain.contains(&initial),
            "initial segment value must be in the domain"
        );
        Snapshot {
            segments,
            domain,
            initial,
        }
    }

    /// The `update(idx, v)` invocation.
    pub fn update(idx: usize, v: Val) -> Inv {
        Inv::op("update", Val::pair(Val::Int(idx as i64), v))
    }

    /// The `scan()` invocation.
    pub fn scan() -> Inv {
        Inv::nullary("scan")
    }

    /// The number of segments.
    pub fn segments(&self) -> usize {
        self.segments
    }
}

impl SeqType for Snapshot {
    fn name(&self) -> &str {
        "atomic snapshot"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::seq(std::iter::repeat_n(
            self.initial.clone(),
            self.segments,
        ))]
    }

    fn invocations(&self) -> Vec<Inv> {
        let mut invs = vec![Snapshot::scan()];
        for idx in 0..self.segments {
            for v in &self.domain {
                invs.push(Snapshot::update(idx, v.clone()));
            }
        }
        invs
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        match inv.name() {
            Some("scan") => vec![(Resp(val.clone()), val.clone())],
            Some("update") => {
                let (idx, v) = inv.arg().and_then(Val::as_pair).expect("update payload");
                let idx = idx.as_int().expect("segment index") as usize;
                let mut segs = val.as_seq().expect("snapshot value").clone();
                assert!(idx < segs.len(), "segment {idx} out of range");
                segs[idx] = v.clone();
                vec![(Resp::sym("ack"), Val::Seq(segs))]
            }
            _ => panic!("not a snapshot invocation: {inv:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Snapshot {
        Snapshot::new(3, [Val::Int(0), Val::Int(1)], Val::Int(0))
    }

    #[test]
    fn scan_returns_the_whole_vector() {
        let t = t();
        let (_, v) = t.delta_det(&Snapshot::update(2, Val::Int(1)), &t.initial_value());
        let (snap, v2) = t.delta_det(&Snapshot::scan(), &v);
        assert_eq!(snap.0, Val::seq([Val::Int(0), Val::Int(0), Val::Int(1)]));
        assert_eq!(v2, v);
    }

    #[test]
    fn updates_are_per_segment() {
        let t = t();
        let (_, v) = t.delta_det(&Snapshot::update(0, Val::Int(1)), &t.initial_value());
        let (_, v) = t.delta_det(&Snapshot::update(1, Val::Int(1)), &v);
        assert_eq!(v, Val::seq([Val::Int(1), Val::Int(1), Val::Int(0)]));
    }

    #[test]
    fn deterministic() {
        assert!(t().is_deterministic(2));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_segment() {
        let t = t();
        let _ = t.delta(&Snapshot::update(9, Val::Int(0)), &t.initial_value());
    }
}
