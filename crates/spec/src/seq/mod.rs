//! Concrete sequential types.
//!
//! The three examples from paper Section 2.1.2 — [`ReadWrite`],
//! [`BinaryConsensus`] and [`KSetConsensus`] — plus the standard shared
//! objects the introduction lists as examples of atomic services:
//! [`TestAndSet`], [`CompareAndSwap`], [`FetchAndAdd`] and [`FifoQueue`].

mod cas;
mod consensus;
mod counter;
mod multi_consensus;
mod queue;
mod read_write;
mod set_consensus;
mod snapshot;
mod sticky;
mod test_and_set;

pub use cas::CompareAndSwap;
pub use consensus::BinaryConsensus;
pub use counter::FetchAndAdd;
pub use multi_consensus::MultiValueConsensus;
pub use queue::FifoQueue;
pub use read_write::ReadWrite;
pub use set_consensus::KSetConsensus;
pub use snapshot::Snapshot;
pub use sticky::StickyBit;
pub use test_and_set::TestAndSet;
