//! The fetch&add counter sequential type (the paper's "counter" example
//! of an atomic object, Section 1).
//!
//! `fetch_add(d)` returns the old value and adds `d`; `read()` returns
//! the current value. The counter is bounded to keep exhaustive
//! exploration finite: arithmetic is modulo `modulus`. Deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic bounded fetch&add counter.
///
/// # Example
///
/// ```
/// use spec::seq::FetchAndAdd;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = FetchAndAdd::modulo(8);
/// let (old, v) = t.delta_det(&FetchAndAdd::fetch_add(3), &t.initial_value());
/// assert_eq!(old.0, Val::Int(0));
/// assert_eq!(v, Val::Int(3));
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FetchAndAdd {
    modulus: i64,
}

impl FetchAndAdd {
    /// A counter with values in `{0, …, modulus−1}`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 1`.
    pub fn modulo(modulus: i64) -> Self {
        assert!(modulus >= 1, "counter modulus must be positive");
        FetchAndAdd { modulus }
    }

    /// The `fetch_add(d)` invocation.
    pub fn fetch_add(d: i64) -> Inv {
        Inv::op("fetch_add", Val::Int(d))
    }

    /// The `read()` invocation.
    pub fn read() -> Inv {
        Inv::nullary("read")
    }
}

impl SeqType for FetchAndAdd {
    fn name(&self) -> &str {
        "fetch&add counter"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::Int(0)]
    }

    fn invocations(&self) -> Vec<Inv> {
        vec![FetchAndAdd::read(), FetchAndAdd::fetch_add(1)]
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        match inv.name() {
            Some("read") => true,
            Some("fetch_add") => inv.arg().is_some_and(|a| a.as_int().is_some()),
            _ => false,
        }
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        let cur = val.as_int().expect("counter value is an int");
        match inv.name() {
            Some("read") => vec![(Resp(val.clone()), val.clone())],
            Some("fetch_add") => {
                let d = inv
                    .arg()
                    .and_then(Val::as_int)
                    .expect("fetch_add carries d");
                let next = (cur + d).rem_euclid(self.modulus);
                vec![(Resp(val.clone()), Val::Int(next))]
            }
            _ => panic!("not a counter invocation: {inv:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_add_returns_old_value() {
        let t = FetchAndAdd::modulo(10);
        let (old, v) = t.delta_det(&FetchAndAdd::fetch_add(1), &Val::Int(4));
        assert_eq!(old.0, Val::Int(4));
        assert_eq!(v, Val::Int(5));
    }

    #[test]
    fn wraps_at_modulus() {
        let t = FetchAndAdd::modulo(4);
        let (_, v) = t.delta_det(&FetchAndAdd::fetch_add(3), &Val::Int(3));
        assert_eq!(v, Val::Int(2));
    }

    #[test]
    fn negative_deltas_wrap_euclidean() {
        let t = FetchAndAdd::modulo(4);
        let (_, v) = t.delta_det(&FetchAndAdd::fetch_add(-5), &Val::Int(0));
        assert_eq!(v, Val::Int(3));
    }

    #[test]
    fn deterministic() {
        assert!(FetchAndAdd::modulo(3).is_deterministic(4));
    }
}
