//! The test&set sequential type (listed among the paper's examples of
//! atomic objects, Section 1).
//!
//! `V = {0, 1}`, `V0 = {0}`; `test_and_set()` returns the old value and
//! sets the value to `1`; `reset()` clears it. Deterministic.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic test&set sequential type.
///
/// # Example
///
/// ```
/// use spec::seq::TestAndSet;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = TestAndSet;
/// let (won, v) = t.delta_det(&TestAndSet::test_and_set(), &t.initial_value());
/// assert_eq!(won.0, Val::Int(0)); // first caller sees 0: it wins
/// let (lost, _) = t.delta_det(&TestAndSet::test_and_set(), &v);
/// assert_eq!(lost.0, Val::Int(1));
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TestAndSet;

impl TestAndSet {
    /// The `test&set()` invocation.
    pub fn test_and_set() -> Inv {
        Inv::nullary("test_and_set")
    }

    /// The `reset()` invocation.
    pub fn reset() -> Inv {
        Inv::nullary("reset")
    }
}

impl SeqType for TestAndSet {
    fn name(&self) -> &str {
        "test&set"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::Int(0)]
    }

    fn invocations(&self) -> Vec<Inv> {
        vec![TestAndSet::test_and_set(), TestAndSet::reset()]
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        match inv.name() {
            Some("test_and_set") => vec![(Resp(val.clone()), Val::Int(1))],
            Some("reset") => vec![(Resp::sym("ack"), Val::Int(0))],
            _ => panic!("not a test&set invocation: {inv:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_one_winner_between_resets() {
        let t = TestAndSet;
        let (r0, v) = t.delta_det(&TestAndSet::test_and_set(), &t.initial_value());
        let (r1, v) = t.delta_det(&TestAndSet::test_and_set(), &v);
        let (r2, _) = t.delta_det(&TestAndSet::test_and_set(), &v);
        assert_eq!(r0.0, Val::Int(0));
        assert_eq!(r1.0, Val::Int(1));
        assert_eq!(r2.0, Val::Int(1));
    }

    #[test]
    fn reset_reopens_the_race() {
        let t = TestAndSet;
        let (_, v) = t.delta_det(&TestAndSet::test_and_set(), &t.initial_value());
        let (_, v) = t.delta_det(&TestAndSet::reset(), &v);
        let (r, _) = t.delta_det(&TestAndSet::test_and_set(), &v);
        assert_eq!(r.0, Val::Int(0));
    }

    #[test]
    fn deterministic() {
        assert!(TestAndSet.is_deterministic(4));
    }
}
