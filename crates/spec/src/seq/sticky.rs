//! The sticky bit (write-once register) sequential type.
//!
//! A classic consensus-universal object (Plotkin): the first `write`
//! sticks forever and every later operation reports the stuck value.
//! It is the read/write face of the consensus type — included to show
//! that Theorem 2's reach is about *power*, not syntax: an object whose
//! interface is just reads and writes still cannot be boosted once it
//! is strong enough to solve consensus.

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic sticky bit: `⊥` until the first `write(v)`, then
/// `v` forever.
///
/// # Example
///
/// ```
/// use spec::seq::StickyBit;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = StickyBit;
/// let (first, v) = t.delta_det(&StickyBit::write(1), &t.initial_value());
/// assert_eq!(first.0, Val::Int(1)); // the write reports the stuck value
/// let (second, _) = t.delta_det(&StickyBit::write(0), &v);
/// assert_eq!(second.0, Val::Int(1)); // later writes lose
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StickyBit;

impl StickyBit {
    /// The `write(v)` invocation, `v ∈ {0, 1}`.
    ///
    /// # Panics
    ///
    /// Panics unless `v` is binary.
    pub fn write(v: i64) -> Inv {
        assert!(v == 0 || v == 1, "sticky bit values are binary");
        Inv::op("write", Val::Int(v))
    }

    /// The `read()` invocation.
    pub fn read() -> Inv {
        Inv::nullary("read")
    }
}

impl SeqType for StickyBit {
    fn name(&self) -> &str {
        "sticky bit"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![Val::Sym("bot")]
    }

    fn invocations(&self) -> Vec<Inv> {
        vec![StickyBit::read(), StickyBit::write(0), StickyBit::write(1)]
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        match inv.name() {
            Some("read") => vec![(Resp(val.clone()), val.clone())],
            Some("write") => {
                let v = inv.arg().expect("write carries a value").clone();
                if *val == Val::Sym("bot") {
                    // First write sticks and is echoed back.
                    vec![(Resp(v.clone()), v)]
                } else {
                    // Stuck: report the winner.
                    vec![(Resp(val.clone()), val.clone())]
                }
            }
            _ => panic!("not a sticky-bit invocation: {inv:?}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_write_sticks() {
        let t = StickyBit;
        let (r, v) = t.delta_det(&StickyBit::write(0), &t.initial_value());
        assert_eq!(r.0, Val::Int(0));
        let (r, v2) = t.delta_det(&StickyBit::write(1), &v);
        assert_eq!(r.0, Val::Int(0));
        assert_eq!(v2, v);
    }

    #[test]
    fn read_before_any_write_reports_bot() {
        let t = StickyBit;
        let (r, _) = t.delta_det(&StickyBit::read(), &t.initial_value());
        assert_eq!(r.0, Val::Sym("bot"));
    }

    #[test]
    fn deterministic() {
        assert!(StickyBit.is_deterministic(3));
    }

    #[test]
    fn sticky_bit_solves_consensus_sequentially() {
        // The write's echo IS a consensus decision: whoever writes
        // first wins, everyone learns the winner.
        let t = StickyBit;
        let (d0, v) = t.delta_det(&StickyBit::write(1), &t.initial_value());
        let (d1, _) = t.delta_det(&StickyBit::write(0), &v);
        assert_eq!(d0, d1, "both writers learn the same decision");
    }
}
