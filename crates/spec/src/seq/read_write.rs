//! The read/write sequential type (paper Section 2.1.2, first example).
//!
//! `V` is a set of values, `V0 = {v0}`, `invs = {read} ∪ {write(v)}`,
//! `resps = V ∪ {ack}`, and
//! `δ = {((read, v), (v, v))} ∪ {((write(v), v'), (ack, v))}`.
//! This type is deterministic; canonical *registers* are canonical
//! wait-free atomic objects of this type (Section 2.1.3).

use crate::seq_type::{Inv, Resp, SeqType};
use crate::value::Val;

/// The deterministic read/write sequential type over a finite domain.
///
/// # Example
///
/// ```
/// use spec::seq::ReadWrite;
/// use spec::seq_type::SeqType;
/// use spec::Val;
///
/// let t = ReadWrite::binary();
/// assert_eq!(t.initial_value(), Val::Int(0));
/// assert!(t.is_deterministic(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReadWrite {
    domain: Vec<Val>,
    initial: Val,
}

impl ReadWrite {
    /// A read/write type over an explicit finite `domain` with initial
    /// value `initial`.
    ///
    /// # Panics
    ///
    /// Panics if `initial` is not in `domain` (the initial value must be
    /// an element of `V`).
    pub fn with_domain<I: IntoIterator<Item = Val>>(domain: I, initial: Val) -> Self {
        let domain: Vec<Val> = domain.into_iter().collect();
        assert!(
            domain.contains(&initial),
            "initial value {initial:?} must be in the register domain"
        );
        ReadWrite { domain, initial }
    }

    /// A binary register over `{0, 1}` initialized to `0`.
    pub fn binary() -> Self {
        ReadWrite::with_domain([Val::Int(0), Val::Int(1)], Val::Int(0))
    }

    /// A register over `{0, …, n−1} ∪ {⊥}` initialized to `⊥`
    /// (`⊥ = Sym("bot")`), the shape most protocols in `protocols` use.
    pub fn values_with_bot(n: i64) -> Self {
        let mut domain = vec![Val::Sym("bot")];
        domain.extend((0..n).map(Val::Int));
        ReadWrite::with_domain(domain, Val::Sym("bot"))
    }

    /// The `read` invocation.
    pub fn read() -> Inv {
        Inv::nullary("read")
    }

    /// The `write(v)` invocation.
    pub fn write(v: Val) -> Inv {
        Inv::op("write", v)
    }

    /// The `ack` response to a write.
    pub fn ack() -> Resp {
        Resp::sym("ack")
    }

    /// The register domain `V`.
    pub fn domain(&self) -> &[Val] {
        &self.domain
    }
}

impl SeqType for ReadWrite {
    fn name(&self) -> &str {
        "read/write"
    }

    fn initial_values(&self) -> Vec<Val> {
        vec![self.initial.clone()]
    }

    fn invocations(&self) -> Vec<Inv> {
        let mut invs = vec![ReadWrite::read()];
        invs.extend(self.domain.iter().cloned().map(ReadWrite::write));
        invs
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        match inv.name() {
            Some("read") => inv.arg() == Some(&Val::Unit),
            Some("write") => inv.arg().is_some_and(|a| self.domain.contains(a)),
            _ => false,
        }
    }

    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)> {
        match inv.name() {
            // ((read, v), (v, v))
            Some("read") => vec![(Resp(val.clone()), val.clone())],
            // ((write(v), v'), (ack, v))
            Some("write") => {
                let v = inv.arg().expect("write carries a value").clone();
                vec![(ReadWrite::ack(), v)]
            }
            _ => panic!("not a read/write invocation: {inv:?}"),
        }
    }

    fn proc_oblivious(&self) -> bool {
        // Register contents are plain domain values; reads and writes
        // never mention the invoker.
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_returns_current_value_unchanged() {
        let t = ReadWrite::binary();
        let (r, v) = t.delta_det(&ReadWrite::read(), &Val::Int(1));
        assert_eq!(r, Resp(Val::Int(1)));
        assert_eq!(v, Val::Int(1));
    }

    #[test]
    fn write_overwrites_and_acks() {
        let t = ReadWrite::binary();
        let (r, v) = t.delta_det(&ReadWrite::write(Val::Int(1)), &Val::Int(0));
        assert_eq!(r, ReadWrite::ack());
        assert_eq!(v, Val::Int(1));
    }

    #[test]
    fn deterministic_per_paper() {
        assert!(ReadWrite::binary().is_deterministic(4));
    }

    #[test]
    fn recognizes_only_domain_writes() {
        let t = ReadWrite::binary();
        assert!(t.is_invocation(&ReadWrite::write(Val::Int(0))));
        assert!(!t.is_invocation(&ReadWrite::write(Val::Int(7))));
        assert!(t.is_invocation(&ReadWrite::read()));
        assert!(!t.is_invocation(&Inv::nullary("pop")));
    }

    #[test]
    fn values_with_bot_starts_at_bot() {
        let t = ReadWrite::values_with_bot(2);
        assert_eq!(t.initial_value(), Val::Sym("bot"));
        assert_eq!(t.invocations().len(), 1 + 3); // read + write{⊥,0,1}
    }

    #[test]
    #[should_panic(expected = "must be in the register domain")]
    fn initial_must_be_in_domain() {
        let _ = ReadWrite::with_domain([Val::Int(0)], Val::Int(9));
    }
}
