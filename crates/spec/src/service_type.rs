//! Failure-oblivious and general (failure-aware) service types.
//!
//! Paper Section 5.1 defines a *failure-oblivious service type*
//! `U = ⟨V, V0, invs, resps, glob, δ1, δ2⟩` where, with `ResponseMap`
//! the set of mappings from the endpoint set `J` to finite sequences of
//! responses:
//!
//! * `δ1 ⊆ (invs × J × V) × (ResponseMap × V)` drives `perform` steps —
//!   processing the head of one endpoint's invocation buffer may deposit
//!   responses into *any* subset of the response buffers;
//! * `δ2 ⊆ (glob × V) × (ResponseMap × V)` drives spontaneous `compute`
//!   steps. Both relations are total.
//!
//! Section 6.1 generalizes to *general service types* whose `δ1`/`δ2`
//! additionally observe the current `failed ⊆ I` set.
//!
//! This module provides the two traits, the paper's embeddings
//! (sequential type → failure-oblivious type → general type:
//! [`ObliviousFromSeq`] and [`GeneralFromOblivious`]), and the
//! [`ResponseMap`] plumbing.

use crate::ids::{GlobalTaskId, ProcId};
use crate::seq_type::{ArcSeqType, Inv, Resp};
use crate::value::Val;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// A mapping from endpoints to finite sequences of responses — the
/// result of one `perform` or `compute` step (paper Section 5.1).
///
/// Endpoints absent from the map receive the empty sequence.
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ResponseMap(pub BTreeMap<ProcId, Vec<Resp>>);

impl ResponseMap {
    /// The response map assigning every endpoint the empty sequence.
    pub fn empty() -> Self {
        ResponseMap::default()
    }

    /// A response map that delivers a single response to a single
    /// endpoint (the atomic-object shape, Section 5.1's embedding).
    pub fn single(i: ProcId, resp: Resp) -> Self {
        ResponseMap(BTreeMap::from([(i, vec![resp])]))
    }

    /// A response map that delivers the same response to every endpoint
    /// in `to` (the totally-ordered-broadcast shape, Fig. 7).
    pub fn broadcast<I: IntoIterator<Item = ProcId>>(to: I, resp: Resp) -> Self {
        ResponseMap(to.into_iter().map(|i| (i, vec![resp.clone()])).collect())
    }

    /// The sequence of responses destined for endpoint `i`.
    pub fn for_endpoint(&self, i: ProcId) -> &[Resp] {
        self.0.get(&i).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Whether no endpoint receives any response.
    pub fn is_empty(&self) -> bool {
        self.0.values().all(Vec::is_empty)
    }

    /// Iterates over `(endpoint, responses)` pairs with nonempty
    /// response sequences.
    pub fn iter(&self) -> impl Iterator<Item = (ProcId, &[Resp])> {
        self.0
            .iter()
            .filter(|(_, v)| !v.is_empty())
            .map(|(i, v)| (*i, v.as_slice()))
    }
}

impl fmt::Display for ResponseMap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (idx, (i, rs)) in self.iter().enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}: [")?;
            for (jdx, r) in rs.iter().enumerate() {
                if jdx > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{r}")?;
            }
            write!(f, "]")?;
        }
        write!(f, "}}")
    }
}

/// A failure-oblivious service type `U` (paper Section 5.1).
///
/// The key constraint — *failure obliviousness* — is enforced by the
/// trait shape itself: neither `δ1` nor `δ2` receives the failed set.
pub trait ObliviousType: fmt::Debug + Send + Sync {
    /// A short human-readable name.
    fn name(&self) -> &str;

    /// The set `V0` of initial values. Nonempty.
    fn initial_values(&self) -> Vec<Val>;

    /// The invocation set, finitely enumerated.
    fn invocations(&self) -> Vec<Inv>;

    /// Whether `inv ∈ U.invs`.
    fn is_invocation(&self, inv: &Inv) -> bool {
        self.invocations().contains(inv)
    }

    /// The global task names `glob`.
    fn global_tasks(&self) -> Vec<GlobalTaskId>;

    /// `δ1`: all outcomes of performing `inv` invoked at endpoint `i`
    /// with current value `val`. Total.
    fn delta1(&self, inv: &Inv, i: ProcId, val: &Val) -> Vec<(ResponseMap, Val)>;

    /// `δ2`: all outcomes of running global task `g` with current value
    /// `val`. Total.
    fn delta2(&self, g: &GlobalTaskId, val: &Val) -> Vec<(ResponseMap, Val)>;

    /// The canonical initial value (least element of `V0`).
    ///
    /// # Panics
    ///
    /// Panics if the implementation violates the nonemptiness of `V0`.
    fn initial_value(&self) -> Val {
        self.initial_values()
            .into_iter()
            .min()
            .expect("service type must have a nonempty V0")
    }
}

/// A general (potentially failure-aware) service type (paper
/// Section 6.1): `δ1`/`δ2` may observe the failed set.
pub trait GeneralType: fmt::Debug + Send + Sync {
    /// A short human-readable name.
    fn name(&self) -> &str;

    /// The set `V0` of initial values. Nonempty.
    fn initial_values(&self) -> Vec<Val>;

    /// The invocation set, finitely enumerated (empty for failure
    /// detectors, Section 6.2).
    fn invocations(&self) -> Vec<Inv>;

    /// Whether `inv ∈ U.invs`.
    fn is_invocation(&self, inv: &Inv) -> bool {
        self.invocations().contains(inv)
    }

    /// The global task names `glob`.
    fn global_tasks(&self) -> Vec<GlobalTaskId>;

    /// `δ1` with the current failed set (Fig. 8, perform).
    fn delta1(
        &self,
        inv: &Inv,
        i: ProcId,
        val: &Val,
        failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)>;

    /// `δ2` with the current failed set (Fig. 8, compute).
    fn delta2(
        &self,
        g: &GlobalTaskId,
        val: &Val,
        failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)>;

    /// The canonical initial value (least element of `V0`).
    ///
    /// # Panics
    ///
    /// Panics if the implementation violates the nonemptiness of `V0`.
    fn initial_value(&self) -> Val {
        self.initial_values()
            .into_iter()
            .min()
            .expect("service type must have a nonempty V0")
    }
}

/// The paper's first embedding (Section 5.1): every sequential type `T`
/// induces a failure-oblivious type `U` with `glob = ∅`, `δ2 = ∅`, and
/// `δ1((a, i, v)) = {(B, v') : ∃b. δ((a,v),(b,v')), B = i ↦ [b]}`.
///
/// # Example
///
/// ```
/// use spec::service_type::{ObliviousFromSeq, ObliviousType};
/// use spec::seq::BinaryConsensus;
/// use spec::{ProcId, Val};
/// use std::sync::Arc;
///
/// let u = ObliviousFromSeq::new(Arc::new(BinaryConsensus));
/// assert!(u.global_tasks().is_empty());
/// let outs = u.delta1(&BinaryConsensus::init(1), ProcId(0), &Val::empty_set());
/// assert_eq!(outs.len(), 1);
/// ```
#[derive(Clone, Debug)]
pub struct ObliviousFromSeq {
    seq: ArcSeqType,
}

impl ObliviousFromSeq {
    /// Wraps a sequential type as a failure-oblivious service type.
    pub fn new(seq: ArcSeqType) -> Self {
        ObliviousFromSeq { seq }
    }

    /// The underlying sequential type.
    pub fn seq_type(&self) -> &ArcSeqType {
        &self.seq
    }
}

impl ObliviousType for ObliviousFromSeq {
    fn name(&self) -> &str {
        self.seq.name()
    }

    fn initial_values(&self) -> Vec<Val> {
        self.seq.initial_values()
    }

    fn invocations(&self) -> Vec<Inv> {
        self.seq.invocations()
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        self.seq.is_invocation(inv)
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        Vec::new()
    }

    fn delta1(&self, inv: &Inv, i: ProcId, val: &Val) -> Vec<(ResponseMap, Val)> {
        self.seq
            .delta(inv, val)
            .into_iter()
            .map(|(b, v2)| (ResponseMap::single(i, b), v2))
            .collect()
    }

    fn delta2(&self, g: &GlobalTaskId, _val: &Val) -> Vec<(ResponseMap, Val)> {
        panic!("sequential types have no global tasks, got {g:?}")
    }
}

/// The paper's second embedding (Section 6.1): every failure-oblivious
/// type induces a general type whose `δ1`/`δ2` ignore the failed set.
#[derive(Clone, Debug)]
pub struct GeneralFromOblivious {
    oblivious: Arc<dyn ObliviousType>,
}

impl GeneralFromOblivious {
    /// Wraps a failure-oblivious type as a (degenerate) general type.
    pub fn new(oblivious: Arc<dyn ObliviousType>) -> Self {
        GeneralFromOblivious { oblivious }
    }
}

impl GeneralType for GeneralFromOblivious {
    fn name(&self) -> &str {
        self.oblivious.name()
    }

    fn initial_values(&self) -> Vec<Val> {
        self.oblivious.initial_values()
    }

    fn invocations(&self) -> Vec<Inv> {
        self.oblivious.invocations()
    }

    fn is_invocation(&self, inv: &Inv) -> bool {
        self.oblivious.is_invocation(inv)
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        self.oblivious.global_tasks()
    }

    fn delta1(
        &self,
        inv: &Inv,
        i: ProcId,
        val: &Val,
        _failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        self.oblivious.delta1(inv, i, val)
    }

    fn delta2(
        &self,
        g: &GlobalTaskId,
        val: &Val,
        _failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        self.oblivious.delta2(g, val)
    }
}

/// Convenience: wraps a [`SeqType`](crate::seq_type::SeqType) directly as a [`GeneralType`] by
/// composing both embeddings.
pub fn general_from_seq(seq: ArcSeqType) -> GeneralFromOblivious {
    GeneralFromOblivious::new(Arc::new(ObliviousFromSeq::new(seq)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::{BinaryConsensus, ReadWrite};

    #[test]
    fn response_map_single_targets_one_endpoint() {
        let m = ResponseMap::single(ProcId(1), Resp::sym("ack"));
        assert_eq!(m.for_endpoint(ProcId(1)), &[Resp::sym("ack")]);
        assert!(m.for_endpoint(ProcId(0)).is_empty());
        assert!(!m.is_empty());
    }

    #[test]
    fn response_map_broadcast_targets_all() {
        let m = ResponseMap::broadcast([ProcId(0), ProcId(2)], Resp::sym("rcv"));
        assert_eq!(m.iter().count(), 2);
        assert_eq!(m.for_endpoint(ProcId(2)), &[Resp::sym("rcv")]);
    }

    #[test]
    fn response_map_display() {
        let m = ResponseMap::single(ProcId(0), Resp::sym("ack"));
        assert_eq!(m.to_string(), "{P0: [ack]}");
        assert_eq!(ResponseMap::empty().to_string(), "{}");
    }

    #[test]
    fn oblivious_embedding_routes_response_to_invoker() {
        let u = ObliviousFromSeq::new(Arc::new(BinaryConsensus));
        let outs = u.delta1(&BinaryConsensus::init(0), ProcId(3), &Val::empty_set());
        assert_eq!(outs.len(), 1);
        let (map, v2) = &outs[0];
        assert_eq!(map.for_endpoint(ProcId(3)), &[BinaryConsensus::decide(0)]);
        assert_eq!(*v2, Val::set([Val::Int(0)]));
    }

    #[test]
    #[should_panic(expected = "no global tasks")]
    fn oblivious_embedding_has_no_delta2() {
        let u = ObliviousFromSeq::new(Arc::new(ReadWrite::binary()));
        let _ = u.delta2(&GlobalTaskId::named("g"), &Val::Int(0));
    }

    #[test]
    fn general_embedding_ignores_failures() {
        let g = general_from_seq(Arc::new(ReadWrite::binary()));
        let failed: BTreeSet<ProcId> = [ProcId(0)].into_iter().collect();
        let a = g.delta1(&ReadWrite::read(), ProcId(0), &Val::Int(1), &failed);
        let b = g.delta1(
            &ReadWrite::read(),
            ProcId(0),
            &Val::Int(1),
            &BTreeSet::new(),
        );
        assert_eq!(a, b);
        assert_eq!(g.name(), "read/write");
    }
}
