//! Specification layer for the resilience-boosting reproduction.
//!
//! This crate holds the *mathematical vocabulary* of the paper
//! "The Impossibility of Boosting Distributed Service Resilience"
//! (Attie, Guerraoui, Kuznetsov, Lynch, Rajsbaum; Information and
//! Computation 209 (2011) 927–950):
//!
//! * [`value::Val`] — a universal, totally ordered, hashable value algebra.
//!   Every piece of service state, every invocation and every response in
//!   the workspace is a `Val`, which makes whole system states `Eq + Hash +
//!   Ord` and therefore explorable by the model-checking machinery.
//! * [`seq_type::SeqType`] — *sequential types* `⟨V, V0, invs, resps, δ⟩`
//!   (paper Section 2.1.2), with the read/write, binary consensus and
//!   k-set-consensus examples from the paper plus further standard types
//!   (test&set, compare&swap, fetch&add, FIFO queue).
//! * [`service_type`] — *failure-oblivious service types*
//!   `⟨V, V0, invs, resps, glob, δ1, δ2⟩` (Section 5.1) and *general
//!   (failure-aware) service types* (Section 6.1), together with the
//!   paper's embeddings: every sequential type induces a failure-oblivious
//!   type, and every failure-oblivious type induces a general type.
//! * [`tob`] — the totally ordered broadcast service type (Figs. 5–7).
//! * [`fd`] — the perfect failure detector `P` (Fig. 9) and the eventually
//!   perfect failure detector `◇P` (Figs. 10–11) as general service types.
//!
//! # Example
//!
//! ```
//! use spec::seq_type::SeqType;
//! use spec::seq::BinaryConsensus;
//!
//! let t = BinaryConsensus;
//! // The first init() fixes the value; later operations return it.
//! let (resp, v1) = t.delta_det(&BinaryConsensus::init(1), &t.initial_value());
//! assert_eq!(resp, BinaryConsensus::decide(1));
//! let (resp, _) = t.delta_det(&BinaryConsensus::init(0), &v1);
//! assert_eq!(resp, BinaryConsensus::decide(1));
//! ```

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

pub mod channel;
pub mod fd;
pub mod ids;
pub mod relabel;
pub mod seq;
pub mod seq_type;
pub mod service_type;
pub mod tob;
pub mod value;

pub use ids::{GlobalTaskId, ProcId, SvcId};
pub use relabel::{RelabelValues, ValuePerm};
pub use seq_type::{Inv, Resp, SeqType};
pub use value::Val;
