//! Index newtypes for the paper's three (disjoint) index sets.
//!
//! The paper (Section 2.2) fixes finite index sets `I` for processes,
//! `K` for resilient services and `R` for registers. We use [`ProcId`]
//! for elements of `I` and [`SvcId`] for elements of `K ∪ R` (whether a
//! given service is a register is recorded by its service class, not by
//! the index type). [`GlobalTaskId`] names the elements of a service
//! type's `glob` set (Section 5.1).

use std::fmt;

/// A process index `i ∈ I` (also called an *endpoint*, Section 2.1.3).
///
/// # Example
///
/// ```
/// use spec::ProcId;
/// let p = ProcId(2);
/// assert_eq!(format!("{p}"), "P2");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ProcId(pub usize);

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "P{}", self.0)
    }
}

/// A service index `c ∈ K ∪ R` — a resilient atomic object, a
/// failure-oblivious service, a general service, or a reliable register.
///
/// # Example
///
/// ```
/// use spec::SvcId;
/// let s = SvcId(0);
/// assert_eq!(format!("{s}"), "S0");
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SvcId(pub usize);

impl fmt::Display for SvcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The name of a *global task* `g ∈ glob` of a failure-oblivious or
/// general service type (paper Section 5.1).
///
/// Global tasks drive the service's `compute` steps. For the perfect
/// failure detector (Fig. 9) `glob = J`, so we provide
/// [`GlobalTaskId::for_endpoint`]; for totally ordered broadcast
/// (Fig. 7) `glob = {g}`, a single anonymous task.
///
/// # Example
///
/// ```
/// use spec::{GlobalTaskId, ProcId};
/// let g = GlobalTaskId::for_endpoint(ProcId(1));
/// assert_eq!(format!("{g}"), "g(P1)");
/// assert_eq!(format!("{}", GlobalTaskId::named("bg")), "g(bg)");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GlobalTaskId {
    /// A task associated with a single endpoint (e.g. the suspicion
    /// generator for endpoint `i` in the failure detectors of Section 6.2).
    Endpoint(ProcId),
    /// A free-standing named task (e.g. the message-delivery task of
    /// totally ordered broadcast, or `◇P`'s stabilization task `g`).
    Named(&'static str),
}

impl GlobalTaskId {
    /// The per-endpoint global task for endpoint `i`.
    pub fn for_endpoint(i: ProcId) -> Self {
        GlobalTaskId::Endpoint(i)
    }

    /// A named global task.
    pub fn named(name: &'static str) -> Self {
        GlobalTaskId::Named(name)
    }
}

impl fmt::Display for GlobalTaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GlobalTaskId::Endpoint(i) => write!(f, "g({i})"),
            GlobalTaskId::Named(n) => write!(f, "g({n})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn proc_ids_order_by_index() {
        assert!(ProcId(0) < ProcId(1));
        assert!(ProcId(1) < ProcId(10));
    }

    #[test]
    fn svc_ids_are_hashable_set_members() {
        let s: BTreeSet<SvcId> = [SvcId(3), SvcId(1), SvcId(3)].into_iter().collect();
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().next(), Some(&SvcId(1)));
    }

    #[test]
    fn global_task_variants_are_distinct() {
        let a = GlobalTaskId::for_endpoint(ProcId(0));
        let b = GlobalTaskId::named("bg");
        assert_ne!(a, b);
        assert_eq!(a, GlobalTaskId::Endpoint(ProcId(0)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(ProcId(7).to_string(), "P7");
        assert_eq!(SvcId(7).to_string(), "S7");
    }
}
