//! Sequential types (paper Section 2.1.2).
//!
//! A *sequential type* `T = ⟨V, V0, invs, resps, δ⟩` consists of a value
//! set `V`, initial values `V0 ⊆ V`, invocation and response sets, and a
//! total binary relation `δ` from `invs × V` to `resps × V`. The paper
//! allows `V0` and `δ` to be nondeterministic (which is necessary to
//! express k-set-consensus, Section 2.1.2) and restricts to deterministic
//! types for the impossibility proofs (Section 3.1, assumption (ii)).
//!
//! [`SeqType`] exposes both views: [`SeqType::delta`] returns *all*
//! `(response, value)` outcomes, and [`SeqType::delta_det`] returns the
//! canonical least outcome — the determinization used by the hook and
//! valence machinery, corresponding to the paper's "remove transitions
//! until deterministic" argument.

use crate::value::Val;
use std::fmt;
use std::sync::Arc;

/// An invocation `a ∈ T.invs`, e.g. `(write, 3)` or `(init, 1)`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Inv(pub Val);

impl Inv {
    /// An invocation with an operation name and an argument.
    pub fn op(name: &'static str, arg: Val) -> Inv {
        Inv(Val::pair(Val::Sym(name), arg))
    }

    /// A zero-argument invocation.
    pub fn nullary(name: &'static str) -> Inv {
        Inv(Val::pair(Val::Sym(name), Val::Unit))
    }

    /// The operation name, if this invocation was built by [`Inv::op`] or
    /// [`Inv::nullary`].
    pub fn name(&self) -> Option<&'static str> {
        self.0.as_pair().and_then(|(n, _)| n.as_sym())
    }

    /// The argument, if this invocation was built by [`Inv::op`].
    pub fn arg(&self) -> Option<&Val> {
        self.0.as_pair().map(|(_, a)| a)
    }
}

impl fmt::Display for Inv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.name(), self.arg()) {
            (Some(n), Some(Val::Unit)) => write!(f, "{n}()"),
            (Some(n), Some(a)) => write!(f, "{n}({a})"),
            _ => write!(f, "{}", self.0),
        }
    }
}

/// A response `b ∈ T.resps`, e.g. `ack` or `(decide, 1)`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Resp(pub Val);

impl Resp {
    /// A response with a name and a payload.
    pub fn op(name: &'static str, arg: Val) -> Resp {
        Resp(Val::pair(Val::Sym(name), arg))
    }

    /// A bare symbolic response such as `ack`.
    pub fn sym(name: &'static str) -> Resp {
        Resp(Val::Sym(name))
    }

    /// The operation name, if this response was built by [`Resp::op`].
    pub fn name(&self) -> Option<&'static str> {
        match &self.0 {
            Val::Sym(s) => Some(s),
            v => v.as_pair().and_then(|(n, _)| n.as_sym()),
        }
    }

    /// The payload, if this response was built by [`Resp::op`].
    pub fn arg(&self) -> Option<&Val> {
        self.0.as_pair().map(|(_, a)| a)
    }
}

impl fmt::Display for Resp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.name(), self.arg()) {
            (Some(n), Some(a)) => write!(f, "{n}({a})"),
            _ => write!(f, "{}", self.0),
        }
    }
}

/// A sequential type `T = ⟨V, V0, invs, resps, δ⟩` (paper Section 2.1.2).
///
/// Implementations must guarantee *totality*: for every invocation
/// recognized by [`SeqType::is_invocation`] and every reachable value,
/// [`SeqType::delta`] returns at least one outcome.
///
/// # Example
///
/// ```
/// use spec::seq_type::{Inv, SeqType};
/// use spec::seq::ReadWrite;
/// use spec::Val;
///
/// let t = ReadWrite::with_domain([Val::Int(0), Val::Int(1)], Val::Int(0));
/// let (ack, v) = t.delta_det(&ReadWrite::write(Val::Int(1)), &t.initial_value());
/// assert_eq!(v, Val::Int(1));
/// let (resp, _) = t.delta_det(&ReadWrite::read(), &v);
/// assert_eq!(resp.0, Val::Int(1));
/// # let _ = (ack, Inv::nullary("read"));
/// ```
pub trait SeqType: fmt::Debug + Send + Sync {
    /// A short human-readable name, e.g. `"read/write"`.
    fn name(&self) -> &str;

    /// The set `V0` of initial values. Nonempty.
    fn initial_values(&self) -> Vec<Val>;

    /// All invocations of the type, for exhaustive exploration.
    ///
    /// Types with unbounded invocation sets restrict to a finite,
    /// constructor-specified domain; the paper's proofs only ever need
    /// the finitely many invocations a finite system can issue.
    fn invocations(&self) -> Vec<Inv>;

    /// Whether `inv` belongs to `T.invs`.
    fn is_invocation(&self, inv: &Inv) -> bool {
        self.invocations().contains(inv)
    }

    /// The transition relation `δ`: all `(b, v')` with `((a, v), (b, v'))
    /// ∈ δ`.
    ///
    /// Totality: nonempty whenever `is_invocation(inv)` and `val ∈ V`.
    fn delta(&self, inv: &Inv, val: &Val) -> Vec<(Resp, Val)>;

    /// The canonical initial value: least element of `V0`.
    ///
    /// # Panics
    ///
    /// Panics if the implementation violates the nonemptiness of `V0`.
    fn initial_value(&self) -> Val {
        self.initial_values()
            .into_iter()
            .min()
            .expect("sequential type must have a nonempty V0")
    }

    /// The determinized transition function (Section 3.1, assumption
    /// (ii)): the least `(b, v')` outcome of `δ`.
    ///
    /// # Panics
    ///
    /// Panics if `δ` is not total for `(inv, val)` — that would violate
    /// the definition of a sequential type.
    fn delta_det(&self, inv: &Inv, val: &Val) -> (Resp, Val) {
        self.delta(inv, val)
            .into_iter()
            .min()
            .unwrap_or_else(|| panic!("δ not total for {inv:?} at {val:?} in {}", self.name()))
    }

    /// Whether the type is *process-oblivious*: no value in `V`, no
    /// invocation and no response ever embeds a `ProcId`, so relabeling
    /// the processes of a system leaves every `δ` outcome untouched.
    /// Canonical services built over a process-oblivious type are
    /// endpoint-symmetric, which the `system::packed` orbit
    /// canonicalizer requires before quotienting by process-id
    /// permutation. Defaults to `false`; value-only types (binary
    /// consensus, read/write registers) opt in.
    fn proc_oblivious(&self) -> bool {
        false
    }

    /// Whether the type is *value-symmetric*: relabeling the binary
    /// consensus values `0 ↔ 1` (structurally, via
    /// [`crate::relabel::RelabelValues`]) in an invocation and in the
    /// stored value commutes with `δ` — the type carries values without
    /// ever inspecting them asymmetrically. Canonical services over a
    /// value-symmetric type may be quotiented by the composed
    /// `S_n × S_vals` group (`SymmetryMode::Values`); the claim is
    /// audited by the `value-symmetry` rule in `analysis::audit`.
    /// Defaults to `false`; value-oblivious types (binary consensus)
    /// opt in.
    fn value_symmetric(&self) -> bool {
        false
    }

    /// Whether the type is deterministic: `|V0| = 1` and `δ` is a mapping
    /// over the reachable values.
    ///
    /// The default implementation checks `V0` and every invocation at
    /// every value reachable within `depth` operations.
    fn is_deterministic(&self, depth: usize) -> bool {
        if self.initial_values().len() != 1 {
            return false;
        }
        let mut frontier = self.initial_values();
        let mut seen: std::collections::BTreeSet<Val> = frontier.iter().cloned().collect();
        for _ in 0..depth {
            let mut next = Vec::new();
            for v in &frontier {
                for inv in self.invocations() {
                    let outs = self.delta(&inv, v);
                    if outs.len() != 1 {
                        return false;
                    }
                    let (_, v2) = &outs[0];
                    if seen.insert(v2.clone()) {
                        next.push(v2.clone());
                    }
                }
            }
            if next.is_empty() {
                break;
            }
            frontier = next;
        }
        true
    }
}

/// A shared, dynamically typed sequential type.
pub type ArcSeqType = Arc<dyn SeqType>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inv_display_and_accessors() {
        let i = Inv::op("write", Val::Int(3));
        assert_eq!(i.name(), Some("write"));
        assert_eq!(i.arg(), Some(&Val::Int(3)));
        assert_eq!(i.to_string(), "write(3)");
        assert_eq!(Inv::nullary("read").to_string(), "read()");
    }

    #[test]
    fn resp_display_and_accessors() {
        let r = Resp::op("decide", Val::Int(1));
        assert_eq!(r.name(), Some("decide"));
        assert_eq!(r.arg(), Some(&Val::Int(1)));
        assert_eq!(r.to_string(), "decide(1)");
        assert_eq!(Resp::sym("ack").to_string(), "ack");
        assert_eq!(Resp::sym("ack").name(), Some("ack"));
    }

    #[test]
    fn inv_and_resp_are_ordered() {
        assert!(Inv::op("a", Val::Int(0)) < Inv::op("b", Val::Int(0)));
        assert!(Resp::op("x", Val::Int(0)) < Resp::op("x", Val::Int(1)));
    }
}
