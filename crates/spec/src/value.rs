//! A universal value algebra.
//!
//! The paper's services range over arbitrary value sets `V`; to keep the
//! whole workspace model-checkable we represent every value — service
//! state, invocation payloads, responses, process-visible data — as a
//! single inductive type [`Val`] that is `Clone + Eq + Ord + Hash`.
//! Entire system states are then totally ordered and hashable, which is
//! what the exploration and valence machinery in the `analysis` crate
//! relies on.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A universal, totally ordered, hashable value.
///
/// `Val` plays the role of "an element of some value set `V`" throughout
/// the reproduction. The constructors mirror the structures the paper's
/// examples need: the read/write type stores a bare value, binary
/// consensus stores a set (`∅`, `{0}`, `{1}`), k-set-consensus stores a
/// bounded set `W`, totally ordered broadcast stores a sequence of
/// (message, sender) pairs, and `◇P` stores a symbolic mode.
///
/// # Example
///
/// ```
/// use spec::Val;
/// let w = Val::set([Val::Int(0), Val::Int(2)]);
/// assert!(w.as_set().unwrap().contains(&Val::Int(2)));
/// assert_eq!(format!("{w}"), "{0, 2}");
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val {
    /// The unit/trivial value (e.g. `P`'s single internal state `v̄`).
    #[default]
    Unit,
    /// A boolean.
    Bool(bool),
    /// A (bounded, signed) integer.
    Int(i64),
    /// A static symbol, used for operation names and modes
    /// (e.g. `"read"`, `"ack"`, `"perfect"`).
    Sym(&'static str),
    /// An owned string, for dynamically generated labels.
    Str(String),
    /// A finite set.
    Set(BTreeSet<Val>),
    /// A finite sequence.
    Seq(Vec<Val>),
    /// A finite map.
    Map(BTreeMap<Val, Val>),
    /// An ordered pair.
    Pair(Box<Val>, Box<Val>),
}

impl Val {
    /// Builds a [`Val::Set`] from an iterator.
    pub fn set<I: IntoIterator<Item = Val>>(items: I) -> Val {
        Val::Set(items.into_iter().collect())
    }

    /// Builds a [`Val::Seq`] from an iterator.
    pub fn seq<I: IntoIterator<Item = Val>>(items: I) -> Val {
        Val::Seq(items.into_iter().collect())
    }

    /// Builds a [`Val::Map`] from key/value pairs.
    pub fn map<I: IntoIterator<Item = (Val, Val)>>(items: I) -> Val {
        Val::Map(items.into_iter().collect())
    }

    /// Builds a [`Val::Pair`].
    pub fn pair(a: Val, b: Val) -> Val {
        Val::Pair(Box::new(a), Box::new(b))
    }

    /// The empty set.
    pub fn empty_set() -> Val {
        Val::Set(BTreeSet::new())
    }

    /// The empty sequence.
    pub fn empty_seq() -> Val {
        Val::Seq(Vec::new())
    }

    /// Returns the integer payload, if this is a [`Val::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Val::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the set payload, if this is a [`Val::Set`].
    pub fn as_set(&self) -> Option<&BTreeSet<Val>> {
        match self {
            Val::Set(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the sequence payload, if this is a [`Val::Seq`].
    pub fn as_seq(&self) -> Option<&Vec<Val>> {
        match self {
            Val::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the map payload, if this is a [`Val::Map`].
    pub fn as_map(&self) -> Option<&BTreeMap<Val, Val>> {
        match self {
            Val::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns the components, if this is a [`Val::Pair`].
    pub fn as_pair(&self) -> Option<(&Val, &Val)> {
        match self {
            Val::Pair(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Returns the symbol, if this is a [`Val::Sym`].
    pub fn as_sym(&self) -> Option<&'static str> {
        match self {
            Val::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns a map entry (for record-structured state).
    pub fn field(&self, key: &Val) -> Option<&Val> {
        self.as_map().and_then(|m| m.get(key))
    }

    /// Returns a copy of this map with `key` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not a [`Val::Map`] — record updates on
    /// non-records are always programming errors in this workspace.
    pub fn with_field(&self, key: Val, value: Val) -> Val {
        match self {
            Val::Map(m) => {
                let mut m = m.clone();
                m.insert(key, value);
                Val::Map(m)
            }
            other => panic!("with_field on non-map value {other:?}"),
        }
    }

    /// A structural size measure (number of constructors), useful for
    /// bounding state growth in property tests.
    pub fn size(&self) -> usize {
        match self {
            Val::Unit | Val::Bool(_) | Val::Int(_) | Val::Sym(_) | Val::Str(_) => 1,
            Val::Set(s) => 1 + s.iter().map(Val::size).sum::<usize>(),
            Val::Seq(s) => 1 + s.iter().map(Val::size).sum::<usize>(),
            Val::Map(m) => 1 + m.iter().map(|(k, v)| k.size() + v.size()).sum::<usize>(),
            Val::Pair(a, b) => 1 + a.size() + b.size(),
        }
    }
}

impl From<bool> for Val {
    fn from(b: bool) -> Self {
        Val::Bool(b)
    }
}

impl From<i64> for Val {
    fn from(n: i64) -> Self {
        Val::Int(n)
    }
}

impl From<&'static str> for Val {
    fn from(s: &'static str) -> Self {
        Val::Sym(s)
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Unit => write!(f, "()"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Int(n) => write!(f, "{n}"),
            Val::Sym(s) => write!(f, "{s}"),
            Val::Str(s) => write!(f, "{s:?}"),
            Val::Set(s) => {
                write!(f, "{{")?;
                for (idx, v) in s.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}")
            }
            Val::Seq(s) => {
                write!(f, "[")?;
                for (idx, v) in s.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Val::Map(m) => {
                write!(f, "{{|")?;
                for (idx, (k, v)) in m.iter().enumerate() {
                    if idx > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k} -> {v}")?;
                }
                write!(f, "|}}")
            }
            Val::Pair(a, b) => write!(f, "({a}, {b})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn ordering_is_total_across_variants() {
        let vals = [
            Val::Unit,
            Val::Bool(false),
            Val::Int(-1),
            Val::Sym("a"),
            Val::empty_set(),
            Val::empty_seq(),
        ];
        for a in &vals {
            for b in &vals {
                // Total order: exactly one of <, ==, > must hold.
                let lt = a < b;
                let eq = a == b;
                let gt = a > b;
                assert_eq!(
                    1,
                    usize::from(lt) + usize::from(eq) + usize::from(gt),
                    "{a:?} vs {b:?}"
                );
            }
        }
    }

    #[test]
    fn equal_values_hash_equal() {
        let mut h = HashSet::new();
        h.insert(Val::set([Val::Int(1), Val::Int(2)]));
        assert!(h.contains(&Val::set([Val::Int(2), Val::Int(1)])));
    }

    #[test]
    fn with_field_updates_a_record() {
        let rec = Val::map([(Val::Sym("pc"), Val::Int(0))]);
        let rec2 = rec.with_field(Val::Sym("pc"), Val::Int(1));
        assert_eq!(rec.field(&Val::Sym("pc")), Some(&Val::Int(0)));
        assert_eq!(rec2.field(&Val::Sym("pc")), Some(&Val::Int(1)));
    }

    #[test]
    #[should_panic(expected = "with_field on non-map")]
    fn with_field_panics_on_non_map() {
        let _ = Val::Int(3).with_field(Val::Unit, Val::Unit);
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(
            Val::pair(Val::Sym("write"), Val::Int(3)).to_string(),
            "(write, 3)"
        );
        assert_eq!(Val::seq([Val::Int(1), Val::Int(2)]).to_string(), "[1, 2]");
    }

    #[test]
    fn size_counts_constructors() {
        assert_eq!(Val::Unit.size(), 1);
        assert_eq!(Val::pair(Val::Int(0), Val::Int(1)).size(), 3);
        assert_eq!(Val::set([Val::Int(0), Val::Int(1)]).size(), 3);
    }

    #[test]
    fn conversions() {
        assert_eq!(Val::from(true), Val::Bool(true));
        assert_eq!(Val::from(4i64), Val::Int(4));
        assert_eq!(Val::from("x"), Val::Sym("x"));
        assert_eq!(Val::default(), Val::Unit);
    }
}
