//! Failure detectors as general (failure-aware) service types
//! (paper Section 6.2, Figs. 9–11).
//!
//! Failure detectors have *no invocations*: their only inputs are
//! `fail_i` actions, and they spontaneously emit `suspect(J')` responses
//! through `compute` steps driven by global tasks.
//!
//! * [`PerfectFd`] — the perfect failure detector `P` (Fig. 9): the
//!   single internal state is trivial; for each endpoint `i ∈ J = glob`,
//!   the global task `i` deposits `suspect(failed)` — recent, accurate
//!   information — into `i`'s response buffer.
//! * [`EventuallyPerfectFd`] — the eventually perfect failure detector
//!   `◇P` (Figs. 10–11): a `mode ∈ {imperfect, perfect}` state variable;
//!   while `imperfect` the service may emit *arbitrary* suspicion sets;
//!   a background task `g` eventually switches `mode` to `perfect`,
//!   after which suspicions are recent and accurate.

use crate::ids::{GlobalTaskId, ProcId};
use crate::seq_type::{Inv, Resp};
use crate::service_type::{GeneralType, ResponseMap};
use crate::value::Val;
use std::collections::BTreeSet;

/// Encodes a suspicion set `J' ⊆ J` as a `suspect(J')` response.
pub fn suspect(set: &BTreeSet<ProcId>) -> Resp {
    Resp::op(
        "suspect",
        Val::set(set.iter().map(|p| Val::Int(p.0 as i64))),
    )
}

/// Decodes a `suspect(J')` response into the suspicion set.
pub fn decode_suspect(resp: &Resp) -> Option<BTreeSet<ProcId>> {
    if resp.name() != Some("suspect") {
        return None;
    }
    resp.arg()?
        .as_set()?
        .iter()
        .map(|v| v.as_int().map(|n| ProcId(n as usize)))
        .collect()
}

/// The perfect failure detector `P` (paper Section 6.2.1, Fig. 9).
///
/// # Example
///
/// ```
/// use spec::fd::{decode_suspect, PerfectFd};
/// use spec::service_type::GeneralType;
/// use spec::{GlobalTaskId, ProcId};
/// use std::collections::BTreeSet;
///
/// let p = PerfectFd::new([ProcId(0), ProcId(1)]);
/// let failed: BTreeSet<ProcId> = [ProcId(1)].into_iter().collect();
/// let outs = p.delta2(&GlobalTaskId::for_endpoint(ProcId(0)), &p.initial_value(), &failed);
/// let (map, _) = &outs[0];
/// assert_eq!(decode_suspect(&map.for_endpoint(ProcId(0))[0]), Some(failed));
/// ```
#[derive(Clone, Debug)]
pub struct PerfectFd {
    endpoints: BTreeSet<ProcId>,
}

impl PerfectFd {
    /// A perfect failure detector for endpoint set `J`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    pub fn new<J: IntoIterator<Item = ProcId>>(endpoints: J) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(!endpoints.is_empty(), "P requires a nonempty endpoint set");
        PerfectFd { endpoints }
    }

    /// The endpoint set `J`.
    pub fn endpoints(&self) -> &BTreeSet<ProcId> {
        &self.endpoints
    }
}

impl GeneralType for PerfectFd {
    fn name(&self) -> &str {
        "perfect failure detector P"
    }

    fn initial_values(&self) -> Vec<Val> {
        // Fig. 9: V contains only the trivial state v̄.
        vec![Val::Unit]
    }

    fn invocations(&self) -> Vec<Inv> {
        Vec::new()
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        // glob = J: one suspicion-generating task per endpoint.
        self.endpoints
            .iter()
            .map(|i| GlobalTaskId::for_endpoint(*i))
            .collect()
    }

    fn delta1(
        &self,
        inv: &Inv,
        _i: ProcId,
        _val: &Val,
        _failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        panic!("P has no invocations, got {inv:?}")
    }

    fn delta2(
        &self,
        g: &GlobalTaskId,
        val: &Val,
        failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        // Fig. 9: δ2(i, v̄, failed) puts suspect(failed) into i's buffer.
        let GlobalTaskId::Endpoint(i) = g else {
            panic!("P's global tasks are per-endpoint, got {g:?}")
        };
        let visible: BTreeSet<ProcId> = failed.intersection(&self.endpoints).copied().collect();
        vec![(ResponseMap::single(*i, suspect(&visible)), val.clone())]
    }
}

/// The eventually perfect failure detector `◇P` (paper Section 6.2.2,
/// Figs. 10–11).
///
/// While `mode = imperfect`, each endpoint task may emit any suspicion
/// set over `J` (full nondeterminism); the background task `g` flips
/// `mode` to `perfect`, after which behaviour coincides with `P`.
/// Because `g` is a task, I/O-automaton fairness guarantees that `mode`
/// eventually becomes `perfect` in every fair execution — exactly the
/// "eventually" of `◇P`.
#[derive(Clone, Debug)]
pub struct EventuallyPerfectFd {
    endpoints: BTreeSet<ProcId>,
}

/// `◇P`'s mode values (Fig. 10).
pub mod mode {
    use crate::value::Val;

    /// The initial, unconstrained mode.
    pub fn imperfect() -> Val {
        Val::Sym("imperfect")
    }

    /// The stabilized, accurate mode.
    pub fn perfect() -> Val {
        Val::Sym("perfect")
    }
}

impl EventuallyPerfectFd {
    /// An eventually perfect failure detector for endpoint set `J`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    pub fn new<J: IntoIterator<Item = ProcId>>(endpoints: J) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(!endpoints.is_empty(), "◇P requires a nonempty endpoint set");
        EventuallyPerfectFd { endpoints }
    }

    /// The background stabilization task `g` (Fig. 11).
    pub fn stabilize_task() -> GlobalTaskId {
        GlobalTaskId::named("stabilize")
    }

    /// All subsets of the endpoint set, in canonical order — the
    /// suspicion sets an `imperfect` detector may emit.
    fn all_subsets(&self) -> Vec<BTreeSet<ProcId>> {
        let items: Vec<ProcId> = self.endpoints.iter().copied().collect();
        let mut subsets = Vec::with_capacity(1 << items.len());
        for mask in 0..(1u32 << items.len()) {
            let s: BTreeSet<ProcId> = items
                .iter()
                .enumerate()
                .filter(|(idx, _)| mask & (1 << idx) != 0)
                .map(|(_, p)| *p)
                .collect();
            subsets.push(s);
        }
        subsets
    }
}

impl GeneralType for EventuallyPerfectFd {
    fn name(&self) -> &str {
        "eventually perfect failure detector ◇P"
    }

    fn initial_values(&self) -> Vec<Val> {
        // Fig. 10: mode is initially imperfect.
        vec![mode::imperfect()]
    }

    fn invocations(&self) -> Vec<Inv> {
        Vec::new()
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        // glob = J ∪ {g}.
        let mut tasks: Vec<GlobalTaskId> = self
            .endpoints
            .iter()
            .map(|i| GlobalTaskId::for_endpoint(*i))
            .collect();
        tasks.push(EventuallyPerfectFd::stabilize_task());
        tasks
    }

    fn delta1(
        &self,
        inv: &Inv,
        _i: ProcId,
        _val: &Val,
        _failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        panic!("◇P has no invocations, got {inv:?}")
    }

    fn delta2(
        &self,
        g: &GlobalTaskId,
        val: &Val,
        failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        match g {
            // Fig. 11, background task: switch mode to perfect.
            GlobalTaskId::Named("stabilize") => {
                vec![(ResponseMap::empty(), mode::perfect())]
            }
            // Fig. 11, per-endpoint suspicion generation.
            GlobalTaskId::Endpoint(i) => {
                if *val == mode::perfect() {
                    let visible: BTreeSet<ProcId> =
                        failed.intersection(&self.endpoints).copied().collect();
                    vec![(ResponseMap::single(*i, suspect(&visible)), val.clone())]
                } else {
                    // imperfect: any suspicion set is allowed.
                    self.all_subsets()
                        .into_iter()
                        .map(|s| (ResponseMap::single(*i, suspect(&s)), val.clone()))
                        .collect()
                }
            }
            other => panic!("unknown ◇P global task {other:?}"),
        }
    }
}

/// An *edge-triggered* perfect failure detector: behaviourally a
/// perfect failure detector (every report is recent and accurate),
/// but each endpoint is only notified when its suspicion set would
/// *change*.
///
/// The canonical `P` of Fig. 9 re-sends `suspect(failed)` forever,
/// which makes the composed system's reachable state space infinite
/// (response buffers grow without bound) and exhaustive valence
/// analysis impossible. `FreshPerfectFd` keeps, per endpoint, the last
/// suspicion set delivered (in `val`) and emits only on change — the
/// same information content with a finite state space. Every trace of
/// this service is a trace of canonical `P` restricted to
/// change-points, and the protocols in `protocols::fd_boost` /
/// `protocols::doomed` only consume the *latest* suspicion set, for
/// which the two detectors are interchangeable.
#[derive(Clone, Debug)]
pub struct FreshPerfectFd {
    endpoints: BTreeSet<ProcId>,
}

impl FreshPerfectFd {
    /// An edge-triggered perfect failure detector for endpoint set `J`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    pub fn new<J: IntoIterator<Item = ProcId>>(endpoints: J) -> Self {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(!endpoints.is_empty(), "P requires a nonempty endpoint set");
        FreshPerfectFd { endpoints }
    }

    /// The endpoint set `J`.
    pub fn endpoints(&self) -> &BTreeSet<ProcId> {
        &self.endpoints
    }

    fn encode_last(set: &BTreeSet<ProcId>) -> Val {
        Val::set(set.iter().map(|p| Val::Int(p.0 as i64)))
    }
}

impl GeneralType for FreshPerfectFd {
    fn name(&self) -> &str {
        "edge-triggered perfect failure detector P"
    }

    fn initial_values(&self) -> Vec<Val> {
        // val: endpoint ↦ last suspicion set sent (all initially ∅,
        // and ∅ counts as already-sent so the failure-free system is
        // quiescent).
        let empty = Val::empty_set();
        vec![Val::map(
            self.endpoints
                .iter()
                .map(|i| (Val::Int(i.0 as i64), empty.clone())),
        )]
    }

    fn invocations(&self) -> Vec<Inv> {
        Vec::new()
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        self.endpoints
            .iter()
            .map(|i| GlobalTaskId::for_endpoint(*i))
            .collect()
    }

    fn delta1(
        &self,
        inv: &Inv,
        _i: ProcId,
        _val: &Val,
        _failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        panic!("P has no invocations, got {inv:?}")
    }

    fn delta2(
        &self,
        g: &GlobalTaskId,
        val: &Val,
        failed: &BTreeSet<ProcId>,
    ) -> Vec<(ResponseMap, Val)> {
        let GlobalTaskId::Endpoint(i) = g else {
            panic!("P's global tasks are per-endpoint, got {g:?}")
        };
        let visible: BTreeSet<ProcId> = failed.intersection(&self.endpoints).copied().collect();
        let key = Val::Int(i.0 as i64);
        let last = val
            .field(&key)
            .expect("every endpoint has a last-sent entry");
        let fresh = FreshPerfectFd::encode_last(&visible);
        if *last == fresh {
            // Nothing new: no-op compute (δ2 stays total).
            vec![(ResponseMap::empty(), val.clone())]
        } else {
            vec![(
                ResponseMap::single(*i, suspect(&visible)),
                val.with_field(key, fresh),
            )]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn j() -> BTreeSet<ProcId> {
        [ProcId(0), ProcId(1)].into_iter().collect()
    }

    #[test]
    fn p_reports_exactly_the_failed_endpoints() {
        let p = PerfectFd::new(j());
        let failed: BTreeSet<ProcId> = [ProcId(1), ProcId(9)].into_iter().collect();
        let outs = p.delta2(&GlobalTaskId::for_endpoint(ProcId(0)), &Val::Unit, &failed);
        assert_eq!(outs.len(), 1);
        let got = decode_suspect(&outs[0].0.for_endpoint(ProcId(0))[0]).unwrap();
        // P9 is not an endpoint of this detector, so it is not reported.
        assert_eq!(got, [ProcId(1)].into_iter().collect());
    }

    #[test]
    fn p_has_no_invocations_and_one_task_per_endpoint() {
        let p = PerfectFd::new(j());
        assert!(p.invocations().is_empty());
        assert_eq!(p.global_tasks().len(), 2);
    }

    #[test]
    fn ep_imperfect_mode_may_suspect_anything() {
        let ep = EventuallyPerfectFd::new(j());
        let outs = ep.delta2(
            &GlobalTaskId::for_endpoint(ProcId(0)),
            &mode::imperfect(),
            &BTreeSet::new(),
        );
        // 2 endpoints → 4 possible suspicion sets.
        assert_eq!(outs.len(), 4);
    }

    #[test]
    fn ep_perfect_mode_is_accurate() {
        let ep = EventuallyPerfectFd::new(j());
        let failed: BTreeSet<ProcId> = [ProcId(0)].into_iter().collect();
        let outs = ep.delta2(
            &GlobalTaskId::for_endpoint(ProcId(1)),
            &mode::perfect(),
            &failed,
        );
        assert_eq!(outs.len(), 1);
        let got = decode_suspect(&outs[0].0.for_endpoint(ProcId(1))[0]).unwrap();
        assert_eq!(got, failed);
    }

    #[test]
    fn ep_stabilize_switches_mode() {
        let ep = EventuallyPerfectFd::new(j());
        let outs = ep.delta2(
            &EventuallyPerfectFd::stabilize_task(),
            &mode::imperfect(),
            &BTreeSet::new(),
        );
        assert_eq!(outs, vec![(ResponseMap::empty(), mode::perfect())]);
    }

    #[test]
    fn fresh_p_is_quiescent_without_failures() {
        let p = FreshPerfectFd::new(j());
        let v0 = p.initial_value();
        let outs = p.delta2(
            &GlobalTaskId::for_endpoint(ProcId(0)),
            &v0,
            &BTreeSet::new(),
        );
        assert_eq!(outs.len(), 1);
        assert!(outs[0].0.is_empty());
        assert_eq!(outs[0].1, v0);
    }

    #[test]
    fn fresh_p_reports_each_change_once() {
        let p = FreshPerfectFd::new(j());
        let v0 = p.initial_value();
        let failed: BTreeSet<ProcId> = [ProcId(1)].into_iter().collect();
        let g = GlobalTaskId::for_endpoint(ProcId(0));
        // First compute after the failure: report it.
        let (map, v1) = p.delta2(&g, &v0, &failed).remove(0);
        assert_eq!(
            decode_suspect(&map.for_endpoint(ProcId(0))[0]),
            Some(failed.clone())
        );
        // Second compute: quiescent again.
        let (map2, v2) = p.delta2(&g, &v1, &failed).remove(0);
        assert!(map2.is_empty());
        assert_eq!(v2, v1);
    }

    #[test]
    fn fresh_p_reports_per_endpoint_independently() {
        let p = FreshPerfectFd::new(j());
        let v0 = p.initial_value();
        let failed: BTreeSet<ProcId> = [ProcId(0)].into_iter().collect();
        // Endpoint 0 learns; endpoint 1's last-sent is unchanged.
        let (_, v1) = p
            .delta2(&GlobalTaskId::for_endpoint(ProcId(0)), &v0, &failed)
            .remove(0);
        let (map, _) = p
            .delta2(&GlobalTaskId::for_endpoint(ProcId(1)), &v1, &failed)
            .remove(0);
        assert!(!map.is_empty(), "endpoint 1 still has to hear the news");
    }

    #[test]
    fn suspect_roundtrip() {
        let s: BTreeSet<ProcId> = [ProcId(2), ProcId(5)].into_iter().collect();
        assert_eq!(decode_suspect(&suspect(&s)), Some(s));
        assert_eq!(decode_suspect(&Resp::sym("ack")), None);
    }
}
