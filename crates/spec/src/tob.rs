//! Totally ordered broadcast as a failure-oblivious service type
//! (paper Section 5.2, Figs. 5–7).
//!
//! The value `V` consists of a single `msgs` queue of `(message, sender)`
//! pairs (Fig. 5). `δ1` (Fig. 6) moves `bcast(m)` invocations from an
//! endpoint's invocation buffer onto the tail of `msgs`, producing no
//! responses. `δ2` (Fig. 7) has a single global task `g` that pops the
//! head of `msgs` and delivers `rcv(m, i)` to *every* endpoint — which is
//! exactly what an atomic object cannot express (one invocation, many
//! responses), the paper's motivation for the failure-oblivious class.

use crate::ids::{GlobalTaskId, ProcId};
use crate::seq_type::{Inv, Resp};
use crate::service_type::{ObliviousType, ResponseMap};
use crate::value::Val;
use std::collections::BTreeSet;

/// The totally ordered broadcast service type for a message alphabet `M`
/// and endpoint set `J`.
///
/// # Example
///
/// ```
/// use spec::tob::TotallyOrderedBroadcast;
/// use spec::service_type::ObliviousType;
/// use spec::{ProcId, Val};
///
/// let j = [ProcId(0), ProcId(1)];
/// let tob = TotallyOrderedBroadcast::new([Val::Sym("m")], j);
/// // bcast(m) at P1 enqueues (m, P1) and answers nobody.
/// let outs = tob.delta1(&TotallyOrderedBroadcast::bcast(Val::Sym("m")), ProcId(1), &tob.initial_value());
/// assert_eq!(outs.len(), 1);
/// assert!(outs[0].0.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct TotallyOrderedBroadcast {
    alphabet: Vec<Val>,
    endpoints: BTreeSet<ProcId>,
}

impl TotallyOrderedBroadcast {
    /// A TOB type for message alphabet `alphabet` and endpoint set
    /// `endpoints`.
    ///
    /// # Panics
    ///
    /// Panics if `endpoints` is empty.
    pub fn new<M, J>(alphabet: M, endpoints: J) -> Self
    where
        M: IntoIterator<Item = Val>,
        J: IntoIterator<Item = ProcId>,
    {
        let endpoints: BTreeSet<ProcId> = endpoints.into_iter().collect();
        assert!(
            !endpoints.is_empty(),
            "TOB requires a nonempty endpoint set"
        );
        TotallyOrderedBroadcast {
            alphabet: alphabet.into_iter().collect(),
            endpoints,
        }
    }

    /// The `bcast(m)` invocation.
    pub fn bcast(m: Val) -> Inv {
        Inv::op("bcast", m)
    }

    /// The `rcv(m, i)` response: receipt of message `m` from sender `i`.
    pub fn rcv(m: Val, sender: ProcId) -> Resp {
        Resp::op("rcv", Val::pair(m, Val::Int(sender.0 as i64)))
    }

    /// Decodes a `rcv(m, i)` response into `(message, sender)`.
    pub fn decode_rcv(resp: &Resp) -> Option<(Val, ProcId)> {
        if resp.name() != Some("rcv") {
            return None;
        }
        let (m, i) = resp.arg()?.as_pair()?;
        Some((m.clone(), ProcId(i.as_int()? as usize)))
    }

    /// The single global delivery task `g` (Fig. 7).
    pub fn delivery_task() -> GlobalTaskId {
        GlobalTaskId::named("deliver")
    }

    /// The endpoint set `J`.
    pub fn endpoints(&self) -> &BTreeSet<ProcId> {
        &self.endpoints
    }
}

impl ObliviousType for TotallyOrderedBroadcast {
    fn name(&self) -> &str {
        "totally ordered broadcast"
    }

    fn initial_values(&self) -> Vec<Val> {
        // Fig. 5: msgs is initially the empty queue.
        vec![Val::empty_seq()]
    }

    fn invocations(&self) -> Vec<Inv> {
        self.alphabet
            .iter()
            .cloned()
            .map(TotallyOrderedBroadcast::bcast)
            .collect()
    }

    fn global_tasks(&self) -> Vec<GlobalTaskId> {
        vec![TotallyOrderedBroadcast::delivery_task()]
    }

    fn delta1(&self, inv: &Inv, i: ProcId, val: &Val) -> Vec<(ResponseMap, Val)> {
        // Fig. 6: append (m, i) to msgs; B(j) empty for all j.
        assert_eq!(inv.name(), Some("bcast"), "not a TOB invocation: {inv:?}");
        let m = inv.arg().expect("bcast carries a message").clone();
        let mut msgs = val.as_seq().expect("TOB value is the msgs queue").clone();
        msgs.push(Val::pair(m, Val::Int(i.0 as i64)));
        vec![(ResponseMap::empty(), Val::Seq(msgs))]
    }

    fn delta2(&self, g: &GlobalTaskId, val: &Val) -> Vec<(ResponseMap, Val)> {
        assert_eq!(
            *g,
            TotallyOrderedBroadcast::delivery_task(),
            "TOB has a single global task"
        );
        let msgs = val.as_seq().expect("TOB value is the msgs queue");
        match msgs.split_first() {
            // Fig. 7 case (a): pop the head, deliver rcv(m, i) to every j ∈ J.
            Some((head, rest)) => {
                let (m, sender) = head.as_pair().expect("msgs holds (m, i) pairs");
                let sender = ProcId(sender.as_int().expect("sender is an index") as usize);
                let resp = TotallyOrderedBroadcast::rcv(m.clone(), sender);
                vec![(
                    ResponseMap::broadcast(self.endpoints.iter().copied(), resp),
                    Val::Seq(rest.to_vec()),
                )]
            }
            // Fig. 7 case (b): msgs empty — no-op.
            None => vec![(ResponseMap::empty(), val.clone())],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tob() -> TotallyOrderedBroadcast {
        TotallyOrderedBroadcast::new(
            [Val::Sym("a"), Val::Sym("b")],
            [ProcId(0), ProcId(1), ProcId(2)],
        )
    }

    #[test]
    fn bcast_enqueues_in_order() {
        let t = tob();
        let (_, v) = t
            .delta1(
                &TotallyOrderedBroadcast::bcast(Val::Sym("a")),
                ProcId(2),
                &t.initial_value(),
            )
            .pop()
            .unwrap();
        let (_, v) = t
            .delta1(
                &TotallyOrderedBroadcast::bcast(Val::Sym("b")),
                ProcId(0),
                &v,
            )
            .pop()
            .unwrap();
        assert_eq!(
            v,
            Val::seq([
                Val::pair(Val::Sym("a"), Val::Int(2)),
                Val::pair(Val::Sym("b"), Val::Int(0)),
            ])
        );
    }

    #[test]
    fn delivery_broadcasts_head_to_all_endpoints() {
        let t = tob();
        let v = Val::seq([Val::pair(Val::Sym("a"), Val::Int(1))]);
        let outs = t.delta2(&TotallyOrderedBroadcast::delivery_task(), &v);
        assert_eq!(outs.len(), 1);
        let (map, v2) = &outs[0];
        assert_eq!(*v2, Val::empty_seq());
        for i in [0, 1, 2] {
            assert_eq!(
                map.for_endpoint(ProcId(i)),
                &[TotallyOrderedBroadcast::rcv(Val::Sym("a"), ProcId(1))]
            );
        }
    }

    #[test]
    fn delivery_on_empty_queue_is_a_noop() {
        let t = tob();
        let outs = t.delta2(
            &TotallyOrderedBroadcast::delivery_task(),
            &t.initial_value(),
        );
        assert_eq!(outs.len(), 1);
        assert!(outs[0].0.is_empty());
        assert_eq!(outs[0].1, t.initial_value());
    }

    #[test]
    fn rcv_roundtrip() {
        let r = TotallyOrderedBroadcast::rcv(Val::Sym("a"), ProcId(2));
        assert_eq!(
            TotallyOrderedBroadcast::decode_rcv(&r),
            Some((Val::Sym("a"), ProcId(2)))
        );
        assert_eq!(TotallyOrderedBroadcast::decode_rcv(&Resp::sym("ack")), None);
    }

    #[test]
    fn invocation_set_is_the_alphabet() {
        assert_eq!(tob().invocations().len(), 2);
        assert!(tob().is_invocation(&TotallyOrderedBroadcast::bcast(Val::Sym("a"))));
        assert!(!tob().is_invocation(&TotallyOrderedBroadcast::bcast(Val::Sym("zz"))));
    }

    #[test]
    #[should_panic(expected = "nonempty endpoint set")]
    fn rejects_empty_endpoint_set() {
        let _ = TotallyOrderedBroadcast::new([Val::Sym("a")], []);
    }
}
