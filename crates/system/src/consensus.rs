//! The consensus problem as execution predicates
//! (paper Section 2.2.4).
//!
//! The paper defines "solving `f`-resilient consensus" operationally
//! (implementing the canonical `f`-resilient consensus object) and
//! proves (Appendix B, Theorem 11) that this implies the axiomatic
//! conditions:
//!
//! * **Agreement** — no two processes decide on different values;
//! * **Validity** — any value decided on is the initial value of some
//!   process;
//! * **Modified termination** — in every fair execution with at most
//!   `f` failures, every nonfaulty process that receives an input
//!   eventually decides.
//!
//! Because decisions are recorded in process states (Section 2.2.1),
//! agreement and validity are state predicates; termination is a
//! property of a fair run and is checked by the schedulers/lasso
//! machinery.

use crate::build::{CompleteSystem, SystemState};
use crate::process::ProcessAutomaton;
use spec::{ProcId, Val};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// An assignment of consensus inputs to processes: the initialization
/// of an input-first execution (Section 3.2).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct InputAssignment(pub BTreeMap<ProcId, Val>);

impl InputAssignment {
    /// Every process in `0..n` gets input `1` iff its index is below
    /// `ones` — the monotone initializations `α_0, …, α_n` walked by
    /// the Lemma 4 proof.
    pub fn monotone(n: usize, ones: usize) -> Self {
        InputAssignment(
            (0..n)
                .map(|i| (ProcId(i), Val::Int(i64::from(i < ones))))
                .collect(),
        )
    }

    /// An explicit assignment.
    pub fn of<I: IntoIterator<Item = (ProcId, Val)>>(items: I) -> Self {
        InputAssignment(items.into_iter().collect())
    }

    /// The input of process `i`, if assigned.
    pub fn input(&self, i: ProcId) -> Option<&Val> {
        self.0.get(&i)
    }

    /// The set of values that occur as inputs.
    pub fn values(&self) -> BTreeSet<Val> {
        self.0.values().cloned().collect()
    }
}

impl fmt::Display for InputAssignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (idx, (i, v)) in self.0.iter().enumerate() {
            if idx > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{i}←{v}")?;
        }
        write!(f, "⟩")
    }
}

/// A violation of a consensus safety condition, with the witnessing
/// processes/values.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SafetyViolation {
    /// Two processes decided different values.
    Agreement {
        /// First decider and its value.
        a: (ProcId, Val),
        /// Second decider and its conflicting value.
        b: (ProcId, Val),
    },
    /// A process decided a value nobody proposed.
    Validity {
        /// The offending decider.
        process: ProcId,
        /// The decided value.
        decided: Val,
        /// The proposed input values.
        inputs: BTreeSet<Val>,
    },
}

impl fmt::Display for SafetyViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SafetyViolation::Agreement { a, b } => write!(
                f,
                "agreement violated: {} decided {} but {} decided {}",
                a.0, a.1, b.0, b.1
            ),
            SafetyViolation::Validity {
                process,
                decided,
                inputs,
            } => write!(
                f,
                "validity violated: {process} decided {decided}, proposed values {inputs:?}"
            ),
        }
    }
}

/// Checks agreement and validity of the decisions recorded in `s`
/// against the inputs of `assignment`. `None` means no violation.
pub fn check_safety<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    s: &SystemState<P::State>,
    assignment: &InputAssignment,
) -> Option<SafetyViolation> {
    check_k_safety(sys, s, assignment, 1)
}

/// The k-set-consensus generalization: at most `k` distinct decided
/// values (k-agreement) and every decided value proposed (validity).
/// `k = 1` is consensus.
pub fn check_k_safety<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    s: &SystemState<P::State>,
    assignment: &InputAssignment,
    k: usize,
) -> Option<SafetyViolation> {
    let inputs = assignment.values();
    let mut deciders: Vec<(ProcId, Val)> = Vec::new();
    for i in 0..sys.process_count() {
        if let Some(v) = sys.decision(s, ProcId(i)) {
            if !inputs.contains(&v) {
                return Some(SafetyViolation::Validity {
                    process: ProcId(i),
                    decided: v,
                    inputs,
                });
            }
            deciders.push((ProcId(i), v));
        }
    }
    let distinct: BTreeSet<&Val> = deciders.iter().map(|(_, v)| v).collect();
    if distinct.len() > k {
        // Report the first clashing pair for k = 1; for k > 1 report
        // two of the > k distinct values.
        let mut seen: BTreeMap<&Val, ProcId> = BTreeMap::new();
        for (i, v) in &deciders {
            for (w, j) in &seen {
                if *w != v && distinct.len() > k {
                    return Some(SafetyViolation::Agreement {
                        a: (*j, (*w).clone()),
                        b: (*i, v.clone()),
                    });
                }
            }
            seen.entry(v).or_insert(*i);
        }
    }
    None
}

/// Which processes have decided in `s`.
pub fn deciders<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    s: &SystemState<P::State>,
) -> BTreeSet<ProcId> {
    (0..sys.process_count())
        .map(ProcId)
        .filter(|i| sys.decision(s, *i).is_some())
        .collect()
}

/// Whether every nonfaulty process that received an input has decided
/// in `s` — the *goal state* of the modified termination condition.
pub fn all_obliged_decided<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    s: &SystemState<P::State>,
    assignment: &InputAssignment,
) -> bool {
    (0..sys.process_count()).map(ProcId).all(|i| {
        s.failed.contains(&i) || assignment.input(i).is_none() || sys.decision(s, i).is_some()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::CompleteSystem;
    use crate::process::direct::DirectConsensus;
    use services::atomic::CanonicalAtomicObject;
    use spec::seq::BinaryConsensus;
    use spec::SvcId;
    use std::sync::Arc;

    fn sys() -> CompleteSystem<DirectConsensus> {
        let obj =
            CanonicalAtomicObject::wait_free(Arc::new(BinaryConsensus), [ProcId(0), ProcId(1)]);
        CompleteSystem::new(DirectConsensus::new(SvcId(0)), 2, vec![Arc::new(obj)])
    }

    fn decided_state(
        sys: &CompleteSystem<DirectConsensus>,
        decisions: &[Option<i64>],
    ) -> SystemState<crate::process::direct::Phase> {
        let mut s = sys.single_initial_state();
        for (i, d) in decisions.iter().enumerate() {
            if let Some(v) = d {
                s.procs[i] = crate::process::direct::Phase::Decided(Val::Int(*v));
            }
        }
        s
    }

    #[test]
    fn monotone_assignments() {
        let a = InputAssignment::monotone(3, 2);
        assert_eq!(a.input(ProcId(0)), Some(&Val::Int(1)));
        assert_eq!(a.input(ProcId(1)), Some(&Val::Int(1)));
        assert_eq!(a.input(ProcId(2)), Some(&Val::Int(0)));
        assert_eq!(a.values().len(), 2);
    }

    #[test]
    fn agreement_violation_detected() {
        let sys = sys();
        let s = decided_state(&sys, &[Some(0), Some(1)]);
        let a = InputAssignment::monotone(2, 1);
        match check_safety(&sys, &s, &a) {
            Some(SafetyViolation::Agreement { .. }) => {}
            other => panic!("expected agreement violation, got {other:?}"),
        }
    }

    #[test]
    fn validity_violation_detected() {
        let sys = sys();
        let s = decided_state(&sys, &[Some(1), None]);
        let a = InputAssignment::monotone(2, 0); // everyone proposed 0
        match check_safety(&sys, &s, &a) {
            Some(SafetyViolation::Validity { decided, .. }) => {
                assert_eq!(decided, Val::Int(1));
            }
            other => panic!("expected validity violation, got {other:?}"),
        }
    }

    #[test]
    fn unanimous_decisions_are_safe() {
        let sys = sys();
        let s = decided_state(&sys, &[Some(1), Some(1)]);
        let a = InputAssignment::monotone(2, 1);
        assert_eq!(check_safety(&sys, &s, &a), None);
    }

    #[test]
    fn k_agreement_tolerates_k_values() {
        let sys = sys();
        let s = decided_state(&sys, &[Some(0), Some(1)]);
        let a = InputAssignment::monotone(2, 1);
        assert_eq!(check_k_safety(&sys, &s, &a, 2), None);
        assert!(check_k_safety(&sys, &s, &a, 1).is_some());
    }

    #[test]
    fn termination_goal_accounts_for_failures_and_missing_inputs() {
        let sys = sys();
        let a = InputAssignment::of([(ProcId(0), Val::Int(0))]); // P1 got no input
        let s = decided_state(&sys, &[Some(0), None]);
        assert!(all_obliged_decided(&sys, &s, &a));
        let a2 = InputAssignment::monotone(2, 0);
        let s2 = decided_state(&sys, &[Some(0), None]);
        assert!(!all_obliged_decided(&sys, &s2, &a2));
        // ... unless P1 failed.
        let mut s3 = s2;
        s3.failed.insert(ProcId(1));
        assert!(all_obliged_decided(&sys, &s3, &a2));
    }

    #[test]
    fn deciders_set() {
        let sys = sys();
        let s = decided_state(&sys, &[None, Some(1)]);
        assert_eq!(deciders(&sys, &s), [ProcId(1)].into_iter().collect());
    }
}
