//! Human-readable rendering of executions of the complete system.
//!
//! The analysis pipeline's outputs (hooks, refutation runs) are
//! executions; these helpers turn them into the step-by-step listings
//! shown by the examples and the `repro` CLI.

use crate::build::CompleteSystem;
use crate::process::ProcessAutomaton;
use ioa::execution::Execution;
use std::fmt::Write as _;

/// Renders an execution as numbered action lines, eliding runs of
/// internal no-progress steps. At most `limit` lines are produced;
/// a trailing marker reports elision.
pub fn render_execution<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    exec: &Execution<CompleteSystem<P>>,
    limit: usize,
) -> String {
    let mut out = String::new();
    let mut shown = 0usize;
    let mut elided = 0usize;
    for (idx, step) in exec.steps().iter().enumerate() {
        let dummy = step.action.is_dummy();
        if shown >= limit || (dummy && shown + 1 >= limit) {
            elided += 1;
            continue;
        }
        let _ = writeln!(out, "  {idx:>4}  {}", step.action);
        shown += 1;
    }
    if elided > 0 {
        let _ = writeln!(out, "  … {elided} further steps elided");
    }
    let decisions = sys.decisions(exec.last_state());
    let _ = writeln!(out, "  final decisions: {decisions:?}");
    out
}

/// Renders the externally visible trace (inits, fails, decides) only.
pub fn render_trace<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    exec: &Execution<CompleteSystem<P>>,
) -> String {
    let mut out = String::new();
    for a in exec.trace(sys) {
        let _ = writeln!(out, "  {a}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::InputAssignment;
    use crate::process::direct::DirectConsensus;
    use crate::sched::{initialize, run_fair, BranchPolicy};
    use services::atomic::CanonicalAtomicObject;
    use spec::seq::BinaryConsensus;
    use spec::{ProcId, SvcId};
    use std::sync::Arc;

    fn run() -> (
        CompleteSystem<DirectConsensus>,
        Execution<CompleteSystem<DirectConsensus>>,
    ) {
        let obj =
            CanonicalAtomicObject::wait_free(Arc::new(BinaryConsensus), [ProcId(0), ProcId(1)]);
        let sys = CompleteSystem::new(DirectConsensus::new(SvcId(0)), 2, vec![Arc::new(obj)]);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let r = run_fair(&sys, s, BranchPolicy::Canonical, &[], 10_000, |st| {
            (0..2).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        (sys, r.exec)
    }

    #[test]
    fn rendering_mentions_decides_and_final_state() {
        let (sys, exec) = run();
        let text = render_execution(&sys, &exec, 100);
        assert!(text.contains("decide"));
        assert!(text.contains("final decisions"));
    }

    #[test]
    fn limit_elides_steps() {
        let (sys, exec) = run();
        let text = render_execution(&sys, &exec, 2);
        assert!(text.contains("elided"));
    }

    #[test]
    fn trace_contains_only_external_actions() {
        let (sys, exec) = run();
        let text = render_trace(&sys, &exec);
        assert!(text.contains("decide"));
        assert!(!text.contains("perform"));
    }
}
