//! The complete system `C` (paper Section 2.2.3): the parallel
//! composition of processes `P_i (i ∈ I)`, resilient services
//! `S_k (k ∈ K)` and reliable registers `S_r (r ∈ R)`, with the
//! process/service communication actions hidden.
//!
//! [`CompleteSystem`] implements [`ioa::Automaton`], so the kernel's
//! exploration, fairness and refinement machinery operates on it
//! directly. The composition is built natively (rather than by folding
//! `ioa::compose::Compose`) so that system states stay flat and
//! hashing stays cheap — the semantics is the standard n-ary I/O
//! automaton composition.

use crate::action::{Action, Participant, Task};
use crate::process::{ProcAction, ProcessAutomaton};
use ioa::automaton::{ActionKind, Automaton};
use services::{ArcService, SvcState};
use spec::{Inv, ProcId, SvcId, Val};
use std::collections::BTreeSet;
use std::fmt;

/// Thread-local census of deep [`SystemState`] clones.
///
/// Every `SystemState::clone()` deep-copies one state per process and
/// per service plus the failed set — the dominating per-successor cost
/// the component-interned representation ([`crate::packed`]) avoids.
/// Reset, run a workload, read back; thread-local, so parallel
/// exploration workers count independently.
pub mod clones {
    use std::cell::Cell;

    thread_local! {
        static DEEP_CLONES: Cell<u64> = const { Cell::new(0) };
    }

    /// Deep `SystemState` clones performed by this thread since the
    /// last [`reset`].
    #[must_use]
    pub fn count() -> u64 {
        DEEP_CLONES.with(Cell::get)
    }

    /// Zero this thread's clone counter.
    pub fn reset() {
        DEEP_CLONES.with(|c| c.set(0));
    }

    pub(super) fn bump() {
        DEEP_CLONES.with(|c| c.set(c.get() + 1));
    }
}

/// A global state of the complete system: one state per process, one
/// per service, plus the global failed set.
///
/// The failed set is also mirrored into each service's own `failed`
/// variable (that is how the canonical automata of Figs. 1/4/8 track
/// it); the global copy makes predicates over the whole system cheap.
#[derive(Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SystemState<PS> {
    /// Process states, indexed by `ProcId`.
    pub procs: Vec<PS>,
    /// Service states, indexed by `SvcId`.
    pub services: Vec<SvcState>,
    /// Processes whose `fail_i` input has occurred.
    pub failed: BTreeSet<ProcId>,
}

// Manual impl so every deep copy of the component vectors is counted;
// see [`clones`].
impl<PS: Clone> Clone for SystemState<PS> {
    fn clone(&self) -> Self {
        clones::bump();
        SystemState {
            procs: self.procs.clone(),
            services: self.services.clone(),
            failed: self.failed.clone(),
        }
    }
}

/// How one transition changes a system state, relative to its source:
/// at most one process slot and one service slot are touched, and
/// dummies touch nothing. This is the crux of the component-interned
/// representation — a successor is its source plus a `Delta`, so the
/// packed automaton rebuilds only the touched component(s) while the
/// deep automaton clones and patches.
#[derive(Debug)]
pub(crate) enum Delta<PS> {
    /// The action changes no state (failed-process steps, dummies).
    Stutter,
    /// Process `i` moves to a new local state.
    Proc(ProcId, PS),
    /// Service `c` moves to a new service state.
    Svc(SvcId, SvcState),
    /// An invoke or respond touches one process and one service.
    ProcSvc(ProcId, PS, SvcId, SvcState),
}

/// The outcome of a (non-failed) process's single task from one local
/// state, *before* any service is consulted: either a purely local
/// action with the process's next state, or an invocation that still
/// has to be enqueued on the target service.
///
/// This is the factored form of [`CompleteSystem::proc_effect`] that
/// the transition-effect cache keys on the process component alone —
/// an `Invoke` outcome is combined with a separately-cached service
/// enqueue ([`CompleteSystem::enqueue_effect`]), so neither half is
/// re-evaluated once seen.
#[derive(Debug)]
pub(crate) enum ProcStep<PS> {
    /// A local action (`ProcStep`/`Decide`/`Output`) moving the process
    /// to the carried state; no service is touched.
    Local(Action, PS),
    /// An invocation of the named service: the invocation to enqueue
    /// plus the process's next state.
    Invoke(SvcId, Inv, PS),
}

/// Read-only access to the components of a system state, however the
/// state is materialized — deep ([`SystemState`]) or packed by
/// component id ([`crate::packed::PackedState`]). The single transition
/// enumeration [`CompleteSystem::succ_effects`] is written against this
/// view, which is what guarantees the two representations expose
/// bit-identical transition structure.
pub(crate) trait StateView<PS> {
    /// Process `i`'s local state.
    fn proc(&self, i: ProcId) -> &PS;
    /// Service `c`'s state.
    fn svc(&self, c: SvcId) -> &SvcState;
    /// Whether `fail_i` has occurred.
    fn is_failed(&self, i: ProcId) -> bool;
}

impl<PS> StateView<PS> for SystemState<PS> {
    fn proc(&self, i: ProcId) -> &PS {
        &self.procs[i.0]
    }

    fn svc(&self, c: SvcId) -> &SvcState {
        &self.services[c.0]
    }

    fn is_failed(&self, i: ProcId) -> bool {
        self.failed.contains(&i)
    }
}

impl<PS: fmt::Debug> fmt::Display for SystemState<PS> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, p) in self.procs.iter().enumerate() {
            writeln!(f, "  P{i}: {p:?}")?;
        }
        for (c, s) in self.services.iter().enumerate() {
            writeln!(f, "  S{c}: {s}")?;
        }
        if !self.failed.is_empty() {
            writeln!(f, "  failed: {:?}", self.failed)?;
        }
        Ok(())
    }
}

// Compile-time audit: the layer-synchronous parallel explorer shares
// `CompleteSystem<P>` across scoped workers and sends
// `SystemState<P::State>` values back to the merging thread, so both
// must be `Send + Sync` for every in-tree process family. `ArcService`
// qualifies because `Service: Send + Sync`.
const _: () = {
    const fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<SystemState<crate::process::direct::Phase>>();
    is_send_sync::<CompleteSystem<crate::process::direct::DirectConsensus>>();
    is_send_sync::<Action>();
    is_send_sync::<Task>();
    is_send_sync::<ArcService>();
};

/// The complete system `C` for process family `P`, `n = |I|` processes
/// and a vector of canonical services (the paper's `K ∪ R`, with the
/// class of each service distinguishing registers from resilient
/// objects).
#[derive(Clone, Debug)]
pub struct CompleteSystem<P> {
    procs: P,
    n: usize,
    services: Vec<ArcService>,
    /// Memo slot for the symmetry-honesty gate
    /// (`analysis::audit::effective_symmetry`): the gate's verdict is a
    /// pure function of the (immutable) composition, so it is computed
    /// at most once per system instance. The pair is (process-id
    /// symmetry trusted, value symmetry trusted) — the gate degrades
    /// stepwise `Values → Full → Off` off these two bits. Lives here —
    /// not in a cache keyed by address in `analysis` — because an
    /// address-keyed memo would go stale when an allocation is reused.
    symmetry_audit: std::sync::OnceLock<(bool, bool)>,
}

impl<P: ProcessAutomaton> CompleteSystem<P> {
    /// Composes `n` processes (described by `procs`) with `services`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero, or if some service names an endpoint
    /// outside `{P0, …, P(n−1)}`.
    pub fn new(procs: P, n: usize, services: Vec<ArcService>) -> Self {
        assert!(n > 0, "a system needs at least one process");
        for (c, s) in services.iter().enumerate() {
            for i in s.endpoints() {
                assert!(
                    i.0 < n,
                    "service S{c} has endpoint {i} outside the process set"
                );
            }
        }
        CompleteSystem {
            procs,
            n,
            services,
            symmetry_audit: std::sync::OnceLock::new(),
        }
    }

    /// The memo slot for the symmetry-honesty audit gate. The analysis
    /// layer fills it on first use; the bits mean (claimed process-id
    /// symmetry survived the audit, claimed value symmetry survived
    /// the audit).
    pub fn symmetry_audit_cache(&self) -> &std::sync::OnceLock<(bool, bool)> {
        &self.symmetry_audit
    }

    /// The number of processes `n = |I|`.
    pub fn process_count(&self) -> usize {
        self.n
    }

    /// All process ids `I`.
    pub fn process_ids(&self) -> impl Iterator<Item = ProcId> {
        (0..self.n).map(ProcId)
    }

    /// The services, indexed by `SvcId`.
    pub fn services(&self) -> &[ArcService] {
        &self.services
    }

    /// The service with index `c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of range.
    pub fn service(&self, c: SvcId) -> &ArcService {
        &self.services[c.0]
    }

    /// The process family.
    pub fn process_automaton(&self) -> &P {
        &self.procs
    }

    /// The unique initial state when every service type has a unique
    /// initial value (determinism assumption (ii) of Section 3.1).
    ///
    /// # Panics
    ///
    /// Panics if some service has several initial values.
    pub fn single_initial_state(&self) -> SystemState<P::State> {
        let states = self.initial_states();
        assert_eq!(
            states.len(),
            1,
            "system has nondeterministic initial values; use initial_states()"
        );
        states.into_iter().next().expect("checked length 1")
    }

    /// The decision recorded by process `i` in `s`, if any.
    pub fn decision(&self, s: &SystemState<P::State>, i: ProcId) -> Option<Val> {
        self.procs.decision(&s.procs[i.0])
    }

    /// All decisions recorded in `s`, indexed by process.
    pub fn decisions(&self, s: &SystemState<P::State>) -> Vec<Option<Val>> {
        (0..self.n)
            .map(|i| self.procs.decision(&s.procs[i]))
            .collect()
    }

    /// The distinct decision values present in `s`.
    pub fn decided_values(&self, s: &SystemState<P::State>) -> BTreeSet<Val> {
        self.decisions(s).into_iter().flatten().collect()
    }

    /// The participants of a `fail_i` action in this topology: `P_i`
    /// plus every service with `i ∈ J_c` (Section 2.2.3).
    pub fn fail_participants(&self, i: ProcId) -> Vec<Participant> {
        let mut ps = vec![Participant::Proc(i)];
        for (c, s) in self.services.iter().enumerate() {
            if s.endpoints().contains(&i) {
                ps.push(Participant::Svc(SvcId(c)));
            }
        }
        ps
    }

    /// Applies the `fail_i` input to a state (convenience wrapper over
    /// [`Automaton::apply_input`]).
    pub fn fail(&self, s: &SystemState<P::State>, i: ProcId) -> SystemState<P::State> {
        self.apply_input(s, &Action::Fail(i))
            .expect("fail is always an input")
    }

    /// Applies the `init(v)_i` input to a state.
    pub fn init(&self, s: &SystemState<P::State>, i: ProcId, v: Val) -> SystemState<P::State> {
        self.apply_input(s, &Action::Init(i, v))
            .expect("init is always an input")
    }

    /// The process-local half of `P_i`'s single task from local state
    /// `pst`: what the process does, before any service is consulted.
    /// Depends on `pst` alone, which is what lets the effect cache key
    /// it on the process component id.
    pub(crate) fn proc_step(&self, i: ProcId, pst: &P::State) -> ProcStep<P::State> {
        let (act, pst2) = self.procs.step(i, pst);
        match act {
            ProcAction::Skip => ProcStep::Local(Action::ProcStep(i), pst2),
            ProcAction::Decide(val) => {
                debug_assert_eq!(
                    self.procs.decision(&pst2),
                    Some(val.clone()),
                    "decide(v) must record v in the process state (Section 2.2.1)"
                );
                ProcStep::Local(Action::Decide(i, val), pst2)
            }
            ProcAction::Output(r) => ProcStep::Local(Action::Output(i, r), pst2),
            ProcAction::Invoke(c, inv) => {
                assert!(
                    c.0 < self.services.len(),
                    "process {i} invoked unknown service {c}"
                );
                ProcStep::Invoke(c, inv, pst2)
            }
        }
    }

    /// The service half of an invocation: enqueue `inv` from `P_i` on
    /// service `c` in service state `st`. Depends on `(inv, st)` alone
    /// — the effect cache keys it on the service component id (the
    /// invocation being determined by the cached process step).
    pub(crate) fn enqueue_effect(&self, i: ProcId, c: SvcId, inv: &Inv, st: &SvcState) -> SvcState {
        self.services[c.0]
            .enqueue_invocation(i, inv, st)
            .unwrap_or_else(|| panic!("process {i} issued invalid invocation {inv:?} on {c}"))
    }

    /// The transition of the single process task of `P_i`, as a delta
    /// against the viewed state.
    fn proc_effect<V: StateView<P::State>>(&self, i: ProcId, v: &V) -> (Action, Delta<P::State>) {
        if v.is_failed(i) {
            // Failed processes keep a dummy action enabled but never an
            // output (Section 2.2.1).
            return (Action::ProcStep(i), Delta::Stutter);
        }
        match self.proc_step(i, v.proc(i)) {
            ProcStep::Local(a, pst2) => (a, Delta::Proc(i, pst2)),
            ProcStep::Invoke(c, inv, pst2) => {
                let st2 = self.enqueue_effect(i, c, &inv, v.svc(c));
                (Action::Invoke(i, c, inv), Delta::ProcSvc(i, pst2, c, st2))
            }
        }
    }

    /// All transitions of task `t` from the viewed state, as
    /// `(action, delta)` pairs — the single branch enumeration shared
    /// by the deep automaton ([`Automaton::succ_all`] below) and the
    /// packed one ([`crate::packed::PackedSystem`]). Branch order is
    /// the canonical order the explorer's determinism contract depends
    /// on: real branches in the service's δ order, then the dummy.
    pub(crate) fn succ_effects<V: StateView<P::State>>(
        &self,
        t: &Task,
        v: &V,
    ) -> Vec<(Action, Delta<P::State>)> {
        match t {
            Task::Proc(i) => vec![self.proc_effect(*i, v)],
            Task::Perform(c, i) => {
                let svc = &self.services[c.0];
                let st = v.svc(*c);
                let mut out: Vec<(Action, Delta<P::State>)> = svc
                    .perform_all(*i, st)
                    .into_iter()
                    .map(|st2| (Action::Perform(*c, *i), Delta::Svc(*c, st2)))
                    .collect();
                if svc.dummy_perform_enabled(*i, st) {
                    out.push((Action::DummyPerform(*c, *i), Delta::Stutter));
                }
                out
            }
            Task::Output(c, i) => {
                let svc = &self.services[c.0];
                let st = v.svc(*c);
                let mut out = Vec::new();
                if let Some((resp, st2)) = svc.pop_response(*i, st) {
                    // The response is simultaneously an input to P_i
                    // (inputs are always enabled, even after failure).
                    let p2 = self.procs.on_response(*i, v.proc(*i), *c, &resp);
                    out.push((
                        Action::Respond(*c, *i, resp),
                        Delta::ProcSvc(*i, p2, *c, st2),
                    ));
                }
                if svc.dummy_output_enabled(*i, st) {
                    out.push((Action::DummyOutput(*c, *i), Delta::Stutter));
                }
                out
            }
            Task::Compute(c, g) => {
                let svc = &self.services[c.0];
                let st = v.svc(*c);
                let mut out: Vec<(Action, Delta<P::State>)> = svc
                    .compute_all(g, st)
                    .into_iter()
                    .map(|st2| (Action::Compute(*c, g.clone()), Delta::Svc(*c, st2)))
                    .collect();
                if svc.dummy_compute_enabled(st) {
                    out.push((Action::DummyCompute(*c, g.clone()), Delta::Stutter));
                }
                out
            }
        }
    }

    /// Materializes a delta against a deep state: one clone, then patch
    /// the touched slot(s).
    fn apply_delta(&self, s: &SystemState<P::State>, d: Delta<P::State>) -> SystemState<P::State> {
        let mut s2 = s.clone();
        match d {
            Delta::Stutter => {}
            Delta::Proc(i, p) => s2.procs[i.0] = p,
            Delta::Svc(c, st) => s2.services[c.0] = st,
            Delta::ProcSvc(i, p, c, st) => {
                s2.procs[i.0] = p;
                s2.services[c.0] = st;
            }
        }
        s2
    }

    /// Exact task enablement without materializing any successor.
    ///
    /// This must agree with `!succ_all(t, s).is_empty()` on every
    /// state — not merely over-approximate it — because the schedulers
    /// use it to build candidate sets whose size feeds the RNG stream
    /// of reproducible random runs. The case analysis:
    ///
    /// * `Proc` tasks always have exactly one branch (a failed process
    ///   stutters);
    /// * `Perform`/`Output` are enabled iff the relevant buffer is
    ///   nonempty (the documented [`services::Service`] contract) or
    ///   the dummy precondition holds;
    /// * `Compute` is total: δ2 is a total relation for every global
    ///   task the service declares.
    pub(crate) fn applicable_view<V: StateView<P::State>>(&self, t: &Task, v: &V) -> bool {
        match t {
            Task::Proc(_) | Task::Compute(..) => true,
            Task::Perform(c, i) => {
                let svc = &self.services[c.0];
                let st = v.svc(*c);
                svc.perform_enabled(*i, st) || svc.dummy_perform_enabled(*i, st)
            }
            Task::Output(c, i) => {
                let svc = &self.services[c.0];
                let st = v.svc(*c);
                svc.output_enabled(*i, st) || svc.dummy_output_enabled(*i, st)
            }
        }
    }
}

impl<P: ProcessAutomaton> Automaton for CompleteSystem<P> {
    type State = SystemState<P::State>;
    type Action = Action;
    type Task = Task;

    fn initial_states(&self) -> Vec<Self::State> {
        // Cross product over each service's V0 choices.
        let procs: Vec<P::State> = (0..self.n).map(|i| self.procs.initial(ProcId(i))).collect();
        let mut states: Vec<Vec<SvcState>> = vec![Vec::new()];
        for svc in &self.services {
            let choices = svc.initial_states();
            let mut next = Vec::with_capacity(states.len() * choices.len());
            for prefix in &states {
                for choice in &choices {
                    let mut p = prefix.clone();
                    p.push(choice.clone());
                    next.push(p);
                }
            }
            states = next;
        }
        states
            .into_iter()
            .map(|services| SystemState {
                procs: procs.clone(),
                services,
                failed: BTreeSet::new(),
            })
            .collect()
    }

    fn tasks(&self) -> Vec<Task> {
        let mut tasks: Vec<Task> = (0..self.n).map(|i| Task::Proc(ProcId(i))).collect();
        for (c, svc) in self.services.iter().enumerate() {
            let c = SvcId(c);
            for i in svc.endpoints() {
                tasks.push(Task::Perform(c, *i));
                tasks.push(Task::Output(c, *i));
            }
            for g in svc.global_tasks() {
                tasks.push(Task::Compute(c, g));
            }
        }
        tasks
    }

    fn succ_all(&self, t: &Task, s: &Self::State) -> Vec<(Action, Self::State)> {
        // One shared branch enumeration (succ_effects), then each delta
        // is materialized with exactly one deep clone.
        self.succ_effects(t, s)
            .into_iter()
            .map(|(a, d)| (a, self.apply_delta(s, d)))
            .collect()
    }

    fn applicable(&self, t: &Task, s: &Self::State) -> bool {
        // Exact, allocation-free enablement — see `applicable_view`.
        self.applicable_view(t, s)
    }

    fn apply_input(&self, s: &Self::State, a: &Action) -> Option<Self::State> {
        match a {
            Action::Init(i, v) => {
                let mut s2 = s.clone();
                s2.procs[i.0] = self.procs.on_init(*i, &s.procs[i.0], v);
                Some(s2)
            }
            Action::Fail(i) => {
                let mut s2 = s.clone();
                s2.failed.insert(*i);
                for (c, svc) in self.services.iter().enumerate() {
                    s2.services[c] = svc.apply_fail(*i, &s2.services[c]);
                }
                Some(s2)
            }
            _ => None,
        }
    }

    fn kind(&self, a: &Action) -> ActionKind {
        match a {
            Action::Init(..) | Action::Fail(..) => ActionKind::Input,
            Action::Decide(..) | Action::Output(..) => ActionKind::Output,
            _ => ActionKind::Internal,
        }
    }

    fn action_owner(&self, a: &Action) -> Option<Task> {
        a.task_owner()
    }

    fn action_vocabulary(&self) -> Vec<Action> {
        // A finite sample of the composed signature: every label family
        // whose parameters are structurally enumerable (process ids,
        // service topology, declared invocations/global tasks, the
        // audit input sample). Value-parameterized outputs (`decide`,
        // responses) are omitted — the vocabulary need not be
        // exhaustive, only genuine — but every task is covered via its
        // dummy or step action.
        let mut vocab = Vec::new();
        for i in 0..self.n {
            let i = ProcId(i);
            vocab.push(Action::ProcStep(i));
            vocab.push(Action::Fail(i));
            for v in self.procs.audit_inputs() {
                vocab.push(Action::Init(i, v));
            }
        }
        for (c, svc) in self.services.iter().enumerate() {
            let c = SvcId(c);
            for i in svc.endpoints() {
                for inv in svc.invocations() {
                    vocab.push(Action::Invoke(*i, c, inv));
                }
                vocab.push(Action::Perform(c, *i));
                vocab.push(Action::DummyPerform(c, *i));
                vocab.push(Action::DummyOutput(c, *i));
            }
            for g in svc.global_tasks() {
                vocab.push(Action::Compute(c, g.clone()));
                vocab.push(Action::DummyCompute(c, g));
            }
        }
        vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::direct::DirectConsensus;
    use ioa::fairness::run_round_robin;
    use services::atomic::CanonicalAtomicObject;
    use spec::seq::BinaryConsensus;
    use std::sync::Arc;

    fn direct_system(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
        let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
        CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
    }

    #[test]
    fn composition_has_expected_tasks() {
        let sys = direct_system(3, 1);
        let tasks = sys.tasks();
        // 3 process tasks + 3 perform + 3 output, no compute.
        assert_eq!(tasks.len(), 9);
    }

    #[test]
    fn process_tasks_are_always_applicable() {
        let sys = direct_system(2, 0);
        let s0 = sys.single_initial_state();
        for i in 0..2 {
            assert!(sys.applicable(&Task::Proc(ProcId(i)), &s0));
        }
        // Service tasks are not (no pending work, no failures).
        assert!(!sys.applicable(&Task::Perform(SvcId(0), ProcId(0)), &s0));
        assert!(!sys.applicable(&Task::Output(SvcId(0), ProcId(0)), &s0));
    }

    #[test]
    fn failure_free_round_robin_run_decides_unanimously() {
        let sys = direct_system(3, 2);
        let mut s = sys.single_initial_state();
        for i in 0..3 {
            s = sys.init(&s, ProcId(i), Val::Int(1));
        }
        let run = run_round_robin(&sys, s, 10_000, |st: &SystemState<_>| {
            (0..3).all(|i| sys.decision(st, ProcId(i)).is_some())
        });
        assert!(run.stopped_at.is_some(), "outcome: {:?}", run.outcome);
        let final_state = run.exec.last_state();
        for i in 0..3 {
            assert_eq!(sys.decision(final_state, ProcId(i)), Some(Val::Int(1)));
        }
    }

    #[test]
    fn first_input_to_reach_the_object_wins() {
        let sys = direct_system(2, 1);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(0));
        s = sys.init(&s, ProcId(1), Val::Int(1));
        // Drive P1 manually first: invoke, perform, respond, decide.
        let (_, s) = sys.succ_det(&Task::Proc(ProcId(1)), &s).unwrap();
        let (_, s) = sys
            .succ_det(&Task::Perform(SvcId(0), ProcId(1)), &s)
            .unwrap();
        let (_, s) = sys
            .succ_det(&Task::Output(SvcId(0), ProcId(1)), &s)
            .unwrap();
        let (a, s) = sys.succ_det(&Task::Proc(ProcId(1)), &s).unwrap();
        assert_eq!(a, Action::Decide(ProcId(1), Val::Int(1)));
        // Now P0 must also decide 1.
        let (_, s) = sys.succ_det(&Task::Proc(ProcId(0)), &s).unwrap();
        let (_, s) = sys
            .succ_det(&Task::Perform(SvcId(0), ProcId(0)), &s)
            .unwrap();
        let (_, s) = sys
            .succ_det(&Task::Output(SvcId(0), ProcId(0)), &s)
            .unwrap();
        let (a, _) = sys.succ_det(&Task::Proc(ProcId(0)), &s).unwrap();
        assert_eq!(a, Action::Decide(ProcId(0), Val::Int(1)));
    }

    #[test]
    fn exceeding_resilience_enables_dummies_and_may_silence_the_object() {
        // f = 0 object shared by 2 processes: one failure exceeds f.
        let sys = direct_system(2, 0);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(0));
        s = sys.init(&s, ProcId(1), Val::Int(1));
        // P1 invokes, then fails.
        let (_, s) = sys.succ_det(&Task::Proc(ProcId(1)), &s).unwrap();
        let s = sys.fail(&s, ProcId(1));
        // The perform task for P1 now offers both the real perform and
        // the dummy.
        let succ = sys.succ_all(&Task::Perform(SvcId(0), ProcId(1)), &s);
        assert_eq!(succ.len(), 2);
        assert!(succ.iter().any(|(a, _)| a.is_dummy()));
        // P0's tasks at the object are also dummy-enabled (|failed| > f).
        let s2 = {
            // give P0 a pending invocation so perform has a real branch
            let (_, s2) = sys.succ_det(&Task::Proc(ProcId(0)), &s).unwrap();
            s2
        };
        let succ0 = sys.succ_all(&Task::Perform(SvcId(0), ProcId(0)), &s2);
        assert!(succ0.iter().any(|(a, _)| a.is_dummy()));
        assert!(succ0.iter().any(|(a, _)| !a.is_dummy()));
    }

    #[test]
    fn failed_processes_only_take_dummy_steps() {
        let sys = direct_system(2, 1);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(1));
        let s = sys.fail(&s, ProcId(0));
        // P0 has input pending but is failed: its step is a dummy, not
        // the invoke.
        let (a, s2) = sys.succ_det(&Task::Proc(ProcId(0)), &s).unwrap();
        assert_eq!(a, Action::ProcStep(ProcId(0)));
        assert_eq!(s2, s);
    }

    #[test]
    fn fail_participants_follow_topology() {
        let sys = direct_system(3, 1);
        let ps = sys.fail_participants(ProcId(1));
        assert_eq!(
            ps,
            vec![Participant::Proc(ProcId(1)), Participant::Svc(SvcId(0))]
        );
    }

    #[test]
    fn one_failure_under_wait_free_object_still_terminates_for_survivor() {
        // Wait-free (f = 1) object with 2 processes: P1 fails, P0 must
        // still decide under the fair round-robin schedule, because the
        // real perform/output branches stay canonical (succ_det prefers
        // the non-dummy branch).
        let sys = direct_system(2, 1);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(0));
        s = sys.init(&s, ProcId(1), Val::Int(1));
        let s = sys.fail(&s, ProcId(1));
        let run = run_round_robin(&sys, s, 10_000, |st: &SystemState<_>| {
            sys.decision(st, ProcId(0)).is_some()
        });
        assert!(run.stopped_at.is_some());
        assert_eq!(
            sys.decision(run.exec.last_state(), ProcId(0)),
            Some(Val::Int(0))
        );
    }

    #[test]
    fn silenced_object_yields_fair_nondeciding_lasso() {
        // f = 0 object, P1 fails after P0 invoked: under the
        // dummy-preferring adversary the object never answers P0.
        // With succ_det (real-first) the object WOULD answer; here we
        // check that the dummy branch exists so the adversary CAN
        // starve P0 — the full adversarial run lives in `analysis`.
        let sys = direct_system(2, 0);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(0));
        let (_, s) = sys.succ_det(&Task::Proc(ProcId(0)), &s).unwrap();
        let s = sys.fail(&s, ProcId(1));
        let succ = sys.succ_all(&Task::Perform(SvcId(0), ProcId(0)), &s);
        // Both the real perform and the dummy are offered: resilience
        // exceeded means the object MAY stall but is not forced to.
        assert_eq!(succ.len(), 2);
        // Round-robin with the dummy-preferring variant never decides:
        // emulate by stepping only dummies for the object.
        let (a, s2) = succ
            .into_iter()
            .find(|(a, _)| a.is_dummy())
            .expect("dummy branch");
        assert_eq!(a, Action::DummyPerform(SvcId(0), ProcId(0)));
        assert_eq!(s2, s, "dummy steps do not change state");
    }

    #[test]
    #[should_panic(expected = "outside the process set")]
    fn rejects_out_of_range_endpoints() {
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), [ProcId(0), ProcId(5)], 0);
        let _ = CompleteSystem::new(DirectConsensus::new(SvcId(0)), 2, vec![Arc::new(obj)]);
    }

    #[test]
    fn initial_states_cross_product_over_v0() {
        // Two registers with binary domains have singleton V0 each →
        // exactly one initial state.
        let sys = direct_system(2, 1);
        assert_eq!(sys.initial_states().len(), 1);
    }
}
