//! The transition-effect cache behind [`crate::packed::PackedSystem`].
//!
//! PR 3's effect core ([`crate::build::CompleteSystem::succ_effects`])
//! reports every transition as a delta touching at most one process and
//! one service component — and each half of that delta is a pure
//! function of the touched component's value, never of the rest of the
//! system state. Since components are interned
//! ([`ioa::store::Interner`]), "value" collapses to a dense
//! [`CompId`](ioa::store::CompId): the effect of `Task::Proc(i)` from
//! process component `pc` is the same in *every* system state whose
//! slot `i` holds `pc`. This module memoizes exactly that — per-task
//! tables keyed by component id(s), storing already-**interned** result
//! ids — so a warm successor expansion is a table lookup plus an
//! id-splice into the packed state, with no `succ_effects` re-run and
//! no component re-interning.
//!
//! Key structure (mirroring the effect factorization in
//! [`crate::build`]):
//!
//! * `Task::Proc(i)` — level 1 keyed by the process component
//!   ([`ProcStepEntry`]); an `Invoke` outcome adds level 2 keyed by
//!   `(proc comp, svc comp)` for the service enqueue.
//! * `Task::Perform(c, i)` / `Task::Compute(c, g)` — keyed by the
//!   service component; stores the full branch list ([`BranchEntry`])
//!   in the canonical δ order, dummy flag last.
//! * `Task::Output(c, i)` — level 1 keyed by the service component (the
//!   pop outcome, [`PopEntry`]); level 2 keyed by
//!   `(svc comp, proc comp)` for `on_response`.
//!
//! # Why the cache preserves bit-identical exploration
//!
//! Every cached value is a deterministic function of its key (the
//! paper's Section 3.1 determinism assumptions make process steps,
//! enqueues and `on_response` functions; the canonical services' δ
//! branch *lists* are likewise functions of the state), and interning
//! is idempotent within a run — re-interning an equal component returns
//! the same id. A concurrent writer therefore always writes the value
//! any other thread would have computed, so last-write-wins races are
//! benign and no per-worker merge step is needed: the tables are shared
//! read-mostly maps behind [`RwLock`]s, safe for the layer-synchronous
//! parallel explorer's scoped workers. The differential suite pins
//! cached-vs-uncached bit-identity across thread counts.
//!
//! Hit/miss accounting is per *expansion* (one `succ_all` call): a hit
//! means the whole expansion was served from the tables.

use ioa::automaton::CacheStats;
use ioa::store::BuildFxHasher;
use spec::{GlobalTaskId, Inv, Resp, SvcId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

use crate::action::Action;

/// Level-1 entry for `Task::Proc(i)`: the process's step outcome from
/// one process component, with the successor component already
/// interned.
#[derive(Clone, Debug)]
pub(crate) enum ProcStepEntry {
    /// A local action; `1` is the process's new component id.
    Local(Action, u32),
    /// An invocation: target service, invocation value, and the
    /// process's new component id. The service's side lives in the
    /// level-2 enqueue table.
    Invoke(SvcId, Inv, u32),
}

/// Entry for `Task::Perform` / `Task::Compute`: the full branch list
/// from one service component — new service component ids in the
/// canonical δ order, then whether the dummy branch follows.
#[derive(Clone, Debug)]
pub(crate) struct BranchEntry {
    /// Interned successor components of the real branches, in δ order.
    pub real: Box<[u32]>,
    /// Whether the dummy (stutter) branch is enabled after them.
    pub dummy: bool,
}

/// Level-1 entry for `Task::Output(c, i)`: the pop outcome from one
/// service component.
#[derive(Clone, Debug)]
pub(crate) struct PopEntry {
    /// The popped response and the service's new component id, when
    /// `resp_buffer(i)` is nonempty.
    pub resp: Option<(Resp, u32)>,
    /// Whether the dummy output branch is enabled.
    pub dummy: bool,
}

/// Lock stripes per table (power of two). The tables are already split
/// per task, but the work-stealing explorer (DESIGN §2.1.5) has every
/// worker hammering the *same* task tables concurrently; striping by
/// key hash splits each table's lock `STRIPES` ways so publication
/// stops serializing on one writer lock. Key→value semantics are
/// untouched: a key always routes to the same stripe.
const STRIPES: usize = 8;

/// A slot table keyed by a dense component id: the read-mostly map for
/// level-1 keys, striped by the key's low bits. Indexing by `CompId`
/// directly (instead of hashing) makes a warm lookup one bounds check
/// and one clone; consecutive component ids land on distinct stripes.
#[derive(Debug)]
struct SlotTable<T> {
    stripes: Box<[RwLock<Vec<Option<T>>>]>,
}

// Manual impl: a derive would demand `T: Default` although the initial
// stripe vectors are simply empty.
impl<T> Default for SlotTable<T> {
    fn default() -> Self {
        SlotTable {
            stripes: (0..STRIPES).map(|_| RwLock::new(Vec::new())).collect(),
        }
    }
}

impl<T: Clone> SlotTable<T> {
    #[inline]
    fn split(key: u32) -> (usize, usize) {
        ((key as usize) % STRIPES, (key as usize) / STRIPES)
    }

    fn get(&self, key: u32) -> Option<T> {
        let (stripe, idx) = Self::split(key);
        let slots = self.stripes[stripe]
            .read()
            .expect("effect cache lock poisoned");
        slots.get(idx).and_then(Clone::clone)
    }

    fn put(&self, key: u32, value: T) {
        let (stripe, idx) = Self::split(key);
        let mut slots = self.stripes[stripe]
            .write()
            .expect("effect cache lock poisoned");
        if slots.len() <= idx {
            slots.resize_with(idx + 1, || None);
        }
        // Racing writers store the identical value (see module docs).
        slots[idx] = Some(value);
    }
}

/// One stripe of a [`PairTable`]: pair key -> cached effect id.
type PairMap = HashMap<(u32, u32), u32, BuildFxHasher>;

/// A pair-keyed table for the level-2 keys (`(pc, sc)` enqueues,
/// `(sc, pc)` response applications), striped by key hash.
#[derive(Debug)]
struct PairTable {
    stripes: Box<[RwLock<PairMap>]>,
}

impl Default for PairTable {
    fn default() -> Self {
        PairTable {
            stripes: (0..STRIPES)
                .map(|_| RwLock::new(HashMap::default()))
                .collect(),
        }
    }
}

impl PairTable {
    #[inline]
    fn stripe_of(key: (u32, u32)) -> usize {
        (ioa::store::fx_hash(&key) as usize) & (STRIPES - 1)
    }

    fn get(&self, key: (u32, u32)) -> Option<u32> {
        self.stripes[Self::stripe_of(key)]
            .read()
            .expect("effect cache lock poisoned")
            .get(&key)
            .copied()
    }

    fn put(&self, key: (u32, u32), value: u32) {
        self.stripes[Self::stripe_of(key)]
            .write()
            .expect("effect cache lock poisoned")
            .insert(key, value);
    }
}

/// The per-system transition-effect cache. One instance lives inside a
/// [`crate::packed::PackedSystem`] and is shared (by `&`) across the
/// parallel explorer's workers.
#[derive(Debug)]
pub(crate) struct EffectCache {
    /// `step[i]`: level-1 process-step outcomes, keyed by proc comp.
    step: Vec<SlotTable<ProcStepEntry>>,
    /// `enqueue[i]`: level-2 invocation enqueues, keyed `(pc, sc)`.
    enqueue: Vec<PairTable>,
    /// `perform[c * n + i]`: perform branch lists, keyed by svc comp.
    perform: Vec<SlotTable<BranchEntry>>,
    /// `pop[c * n + i]`: output pop outcomes, keyed by svc comp.
    pop: Vec<SlotTable<PopEntry>>,
    /// `on_resp[c * n + i]`: level-2 response applications, keyed
    /// `(sc, pc)`.
    on_resp: Vec<PairTable>,
    /// Compute branch lists per `(c, g)` global task, keyed by svc comp.
    compute: HashMap<(SvcId, GlobalTaskId), SlotTable<BranchEntry>, BuildFxHasher>,
    /// Number of processes `n` (for the `(c, i)` flattening).
    n: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EffectCache {
    /// An empty cache for a system with `n` processes, `m` services and
    /// the given `(service, global task)` compute tasks.
    pub fn new(
        n: usize,
        m: usize,
        globals: impl IntoIterator<Item = (SvcId, GlobalTaskId)>,
    ) -> Self {
        EffectCache {
            step: (0..n).map(|_| SlotTable::default()).collect(),
            enqueue: (0..n).map(|_| PairTable::default()).collect(),
            perform: (0..n * m).map(|_| SlotTable::default()).collect(),
            pop: (0..n * m).map(|_| SlotTable::default()).collect(),
            on_resp: (0..n * m).map(|_| PairTable::default()).collect(),
            compute: globals
                .into_iter()
                .map(|key| (key, SlotTable::default()))
                .collect(),
            n,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// The flattened `(c, i)` endpoint-task index.
    fn ci(&self, c: SvcId, i: spec::ProcId) -> usize {
        c.0 * self.n + i.0
    }

    pub fn step_get(&self, i: spec::ProcId, pc: u32) -> Option<ProcStepEntry> {
        self.step[i.0].get(pc)
    }

    pub fn step_put(&self, i: spec::ProcId, pc: u32, e: ProcStepEntry) {
        self.step[i.0].put(pc, e);
    }

    pub fn enqueue_get(&self, i: spec::ProcId, pc: u32, sc: u32) -> Option<u32> {
        self.enqueue[i.0].get((pc, sc))
    }

    pub fn enqueue_put(&self, i: spec::ProcId, pc: u32, sc: u32, sc2: u32) {
        self.enqueue[i.0].put((pc, sc), sc2);
    }

    pub fn perform_get(&self, c: SvcId, i: spec::ProcId, sc: u32) -> Option<BranchEntry> {
        self.perform[self.ci(c, i)].get(sc)
    }

    pub fn perform_put(&self, c: SvcId, i: spec::ProcId, sc: u32, e: BranchEntry) {
        self.perform[self.ci(c, i)].put(sc, e);
    }

    pub fn pop_get(&self, c: SvcId, i: spec::ProcId, sc: u32) -> Option<PopEntry> {
        self.pop[self.ci(c, i)].get(sc)
    }

    pub fn pop_put(&self, c: SvcId, i: spec::ProcId, sc: u32, e: PopEntry) {
        self.pop[self.ci(c, i)].put(sc, e);
    }

    pub fn on_resp_get(&self, c: SvcId, i: spec::ProcId, sc: u32, pc: u32) -> Option<u32> {
        self.on_resp[self.ci(c, i)].get((sc, pc))
    }

    pub fn on_resp_put(&self, c: SvcId, i: spec::ProcId, sc: u32, pc: u32, pc2: u32) {
        self.on_resp[self.ci(c, i)].put((sc, pc), pc2);
    }

    pub fn compute_get(&self, c: SvcId, g: &GlobalTaskId, sc: u32) -> Option<BranchEntry> {
        self.compute_table(c, g).get(sc)
    }

    pub fn compute_put(&self, c: SvcId, g: &GlobalTaskId, sc: u32, e: BranchEntry) {
        self.compute_table(c, g).put(sc, e);
    }

    fn compute_table(&self, c: SvcId, g: &GlobalTaskId) -> &SlotTable<BranchEntry> {
        self.compute
            .get(&(c, g.clone()))
            .expect("compute task registered at cache construction")
    }

    /// Record one finished expansion: `fully_hit` iff every effect it
    /// needed came out of the tables.
    pub fn record(&self, fully_hit: bool) {
        if fully_hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Cumulative hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spec::ProcId;

    #[test]
    fn slot_table_grows_on_demand() {
        let t: SlotTable<u32> = SlotTable::default();
        assert_eq!(t.get(5), None);
        t.put(5, 42);
        assert_eq!(t.get(5), Some(42));
        assert_eq!(t.get(4), None);
        t.put(0, 7);
        assert_eq!(t.get(0), Some(7));
        assert_eq!(t.get(5), Some(42));
    }

    #[test]
    fn pair_table_round_trips() {
        let t = PairTable::default();
        assert_eq!(t.get((1, 2)), None);
        t.put((1, 2), 9);
        assert_eq!(t.get((1, 2)), Some(9));
        assert_eq!(t.get((2, 1)), None);
    }

    #[test]
    fn counters_accumulate_and_rate() {
        let c = EffectCache::new(2, 1, []);
        c.record(true);
        c.record(true);
        c.record(false);
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (2, 1));
        assert!((s.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn endpoint_tables_are_keyed_per_task() {
        let c = EffectCache::new(2, 2, []);
        c.perform_put(
            SvcId(1),
            ProcId(0),
            3,
            BranchEntry {
                real: Box::new([8]),
                dummy: false,
            },
        );
        assert!(c.perform_get(SvcId(1), ProcId(0), 3).is_some());
        assert!(c.perform_get(SvcId(0), ProcId(0), 3).is_none());
        assert!(c.perform_get(SvcId(1), ProcId(1), 3).is_none());
    }
}
