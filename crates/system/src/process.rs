//! Process automata (paper Section 2.2.1).
//!
//! Each process `P_i` is a deterministic automaton with a *single task*
//! comprising all its locally controlled actions, and in every state
//! some action of that task is enabled (possibly a dummy). After a
//! `fail_i` input no output action of `P_i` is ever enabled again —
//! the composition enforces this by replacing failed processes' steps
//! with dummies. As a technicality for the proofs, when `P_i` performs
//! `decide(v)_i` it records `v` in its state; [`ProcessAutomaton::decision`]
//! exposes that component.

use spec::{Inv, ProcId, RelabelValues, Resp, SvcId, Val};
use std::fmt::Debug;
use std::hash::Hash;

/// What a process does when its task fires.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ProcAction {
    /// Issue invocation `inv` on service `c` (the output `a_{i,c}`).
    Invoke(SvcId, Inv),
    /// Announce a decision (the output `decide(v)_i`). The successor
    /// state must record `v` (checked by the composition).
    Decide(Val),
    /// Emit a generic external output.
    Output(Resp),
    /// An internal step (possibly a pure dummy) — always available so
    /// the single task is never disabled.
    Skip,
}

/// A family of deterministic process automata `{P_i}` (Section 2.2.1),
/// indexed by `ProcId`.
///
/// Determinism assumption (i) of Section 3.1 is built in: every method
/// is a function of the state. Inputs (`init`, responses, `fail`) are
/// handled by dedicated transition functions; the single task's
/// transition is [`ProcessAutomaton::step`], which must be total.
///
/// `Send + Sync` bounds mirror [`ioa::automaton::Automaton`]: the
/// parallel explorer shares `CompleteSystem<P>` across worker threads
/// and moves `SystemState<P::State>` values between them. Process
/// families are immutable rule tables, so the bounds hold trivially.
pub trait ProcessAutomaton: Debug + Send + Sync {
    /// The per-process state.
    ///
    /// The [`RelabelValues`] bound gives every process state a
    /// *structural* 0 ↔ 1 consensus-value relabeling; whether that
    /// relabeling is a genuine automorphism of the family is the
    /// separate, default-off [`ProcessAutomaton::value_symmetric`]
    /// contract. Families that never claim it may implement the
    /// relabeling as the identity.
    type State: Clone + Eq + Ord + Hash + Debug + Send + Sync + RelabelValues;

    /// The start state of `P_i`.
    fn initial(&self, i: ProcId) -> Self::State;

    /// Effect of the external input `init(v)_i`.
    fn on_init(&self, i: ProcId, st: &Self::State, v: &Val) -> Self::State;

    /// Effect of receiving response `resp` from service `c`
    /// (the input `b_{i,c}`).
    fn on_response(&self, i: ProcId, st: &Self::State, c: SvcId, resp: &Resp) -> Self::State;

    /// The single task's transition: what `P_i` does next from `st`.
    /// Must be total; return [`ProcAction::Skip`] when idle.
    fn step(&self, i: ProcId, st: &Self::State) -> (ProcAction, Self::State);

    /// The decision recorded in the state, if `P_i` has decided
    /// (the Section 2.2.1 technicality).
    fn decision(&self, st: &Self::State) -> Option<Val>;

    /// Whether the family is *id-symmetric*: `initial`, `on_init`,
    /// `on_response`, `step` and `decision` are the same function for
    /// every `i` (the `ProcId` argument may only flow into action
    /// *labels*, never into state contents or control flow). When true,
    /// permuting process ids permutes system states without rewriting
    /// per-process state contents, which is what the
    /// `system::packed` orbit canonicalizer relies on. Defaults to
    /// `false` — symmetry is a per-family opt-in contract, not an
    /// inferred property.
    fn id_symmetric(&self) -> bool {
        false
    }

    /// Whether the family is *value-symmetric*: relabeling the binary
    /// consensus values 0 ↔ 1 (structurally, via [`RelabelValues`] on
    /// [`ProcessAutomaton::State`] and on the `Val`/`Inv`/`Resp`
    /// payloads of [`ProcAction`]) commutes with `initial`, `on_init`,
    /// `on_response`, `step` and `decision`. Together with
    /// `Service::value_symmetric` on every service this gates the
    /// composed `S_n × S_vals` quotient (`SymmetryMode::Values`); the
    /// claim is audited by the `value-symmetry` rule in
    /// `analysis::audit`. Defaults to `false`.
    fn value_symmetric(&self) -> bool {
        false
    }

    /// The input values the contract auditor (`analysis::audit`) feeds
    /// to [`ProcessAutomaton::on_init`] when enumerating a family's
    /// component-local state closure. Binary consensus inputs by
    /// default; families over richer input domains should override
    /// this with a small representative sample so the closure (and
    /// with it the determinism/symmetry/purity audits) actually
    /// exercises their init-dependent branches.
    fn audit_inputs(&self) -> Vec<Val> {
        vec![Val::Int(0), Val::Int(1)]
    }
}

pub mod direct {
    //! The *direct* protocol: each process forwards its input to one
    //! shared consensus object and decides whatever the object answers.
    //!
    //! This is the baseline system the paper's introduction implies:
    //! with an `f`-resilient object it solves `f`-resilient consensus —
    //! and provably (Theorem 2) nothing can stretch it, or anything
    //! else built from `f`-resilient services, to `f + 1`.

    use super::{ProcAction, ProcessAutomaton};
    use spec::seq::BinaryConsensus;
    use spec::{ProcId, Resp, SvcId, Val};

    /// The phase of a [`DirectConsensus`] process.
    #[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    pub enum Phase {
        /// Waiting for the external `init(v)`.
        Idle,
        /// Holding input `v`, about to invoke the object.
        HasInput(Val),
        /// Invocation issued; awaiting the object's `decide`.
        Waiting,
        /// Response `v` received, about to announce it.
        Responding(Val),
        /// Decided `v` (recorded per Section 2.2.1).
        Decided(Val),
    }

    impl spec::RelabelValues for Phase {
        /// The structural 0 ↔ 1 relabeling: the carried input/response/
        /// decision value is relabeled, the phase tag is not.
        fn relabel_values(&self, vp: spec::ValuePerm) -> Phase {
            match self {
                Phase::Idle => Phase::Idle,
                Phase::Waiting => Phase::Waiting,
                Phase::HasInput(v) => Phase::HasInput(v.relabel_values(vp)),
                Phase::Responding(v) => Phase::Responding(v.relabel_values(vp)),
                Phase::Decided(v) => Phase::Decided(v.relabel_values(vp)),
            }
        }
    }

    /// The direct consensus protocol over a single shared consensus
    /// object.
    ///
    /// # Example
    ///
    /// ```
    /// use system::process::direct::{DirectConsensus, Phase};
    /// use system::process::{ProcAction, ProcessAutomaton};
    /// use spec::{ProcId, SvcId, Val};
    ///
    /// let p = DirectConsensus::new(SvcId(0));
    /// let s = p.initial(ProcId(0));
    /// let s = p.on_init(ProcId(0), &s, &Val::Int(1));
    /// let (a, _) = p.step(ProcId(0), &s);
    /// assert!(matches!(a, ProcAction::Invoke(..)));
    /// ```
    #[derive(Clone, Debug)]
    pub struct DirectConsensus {
        object: SvcId,
    }

    impl DirectConsensus {
        /// A direct protocol over the consensus object `object`.
        pub fn new(object: SvcId) -> Self {
            DirectConsensus { object }
        }
    }

    impl ProcessAutomaton for DirectConsensus {
        type State = Phase;

        fn initial(&self, _i: ProcId) -> Phase {
            Phase::Idle
        }

        fn on_init(&self, _i: ProcId, st: &Phase, v: &Val) -> Phase {
            match st {
                Phase::Idle => Phase::HasInput(v.clone()),
                other => other.clone(), // duplicate inits are ignored
            }
        }

        fn on_response(&self, _i: ProcId, st: &Phase, c: SvcId, resp: &Resp) -> Phase {
            if c != self.object {
                return st.clone();
            }
            match (st, BinaryConsensus::decision(resp)) {
                (Phase::Waiting, Some(v)) => Phase::Responding(Val::Int(v)),
                _ => st.clone(),
            }
        }

        fn step(&self, _i: ProcId, st: &Phase) -> (ProcAction, Phase) {
            match st {
                Phase::HasInput(v) => {
                    let v = v.as_int().expect("binary consensus input");
                    (
                        ProcAction::Invoke(self.object, BinaryConsensus::init(v)),
                        Phase::Waiting,
                    )
                }
                Phase::Responding(v) => (ProcAction::Decide(v.clone()), Phase::Decided(v.clone())),
                _ => (ProcAction::Skip, st.clone()),
            }
        }

        fn decision(&self, st: &Phase) -> Option<Val> {
            match st {
                Phase::Decided(v) => Some(v.clone()),
                _ => None,
            }
        }

        fn id_symmetric(&self) -> bool {
            // Every method above ignores `i` except for action labels:
            // all processes run the same phase machine over the same
            // shared object.
            true
        }

        fn value_symmetric(&self) -> bool {
            // The phase machine carries its input/response value
            // opaquely: no method branches on whether it is 0 or 1, so
            // relabeling commutes with every transition.
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::direct::{DirectConsensus, Phase};
    use super::*;
    use spec::seq::BinaryConsensus;

    #[test]
    fn direct_protocol_lifecycle() {
        let p = DirectConsensus::new(SvcId(0));
        let i = ProcId(0);
        let s = p.initial(i);
        assert_eq!(p.decision(&s), None);
        // Idle processes skip.
        let (a, s2) = p.step(i, &s);
        assert_eq!(a, ProcAction::Skip);
        assert_eq!(s2, s);
        // init → invoke → waiting.
        let s = p.on_init(i, &s, &Val::Int(1));
        let (a, s) = p.step(i, &s);
        assert_eq!(a, ProcAction::Invoke(SvcId(0), BinaryConsensus::init(1)));
        assert_eq!(s, Phase::Waiting);
        // Response from the wrong service is ignored.
        let s_wrong = p.on_response(i, &s, SvcId(7), &BinaryConsensus::decide(0));
        assert_eq!(s_wrong, Phase::Waiting);
        // Response from the object → decide and record.
        let s = p.on_response(i, &s, SvcId(0), &BinaryConsensus::decide(0));
        let (a, s) = p.step(i, &s);
        assert_eq!(a, ProcAction::Decide(Val::Int(0)));
        assert_eq!(p.decision(&s), Some(Val::Int(0)));
        // Decided processes skip forever.
        let (a, _) = p.step(i, &s);
        assert_eq!(a, ProcAction::Skip);
    }

    #[test]
    fn duplicate_inits_are_ignored() {
        let p = DirectConsensus::new(SvcId(0));
        let s = p.on_init(ProcId(0), &Phase::Idle, &Val::Int(1));
        let s2 = p.on_init(ProcId(0), &s, &Val::Int(0));
        assert_eq!(s, s2);
    }
}
