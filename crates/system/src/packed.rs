//! Component-interned system states: the packed counterpart of
//! [`SystemState`] used by the exploration passes.
//!
//! A [`PackedState`] is a flat vector of dense component ids — one
//! [`CompId`] per process, one per service, plus the failed set as a
//! bitmask — with each distinct component state interned once in a
//! per-component sub-arena ([`Interner`]). Cloning a packed state is a
//! small `u32` copy, equality is a slice compare, and hashing touches a
//! few machine words instead of walking the `BTreeMap` buffer trees of
//! every service. Successor generation rebuilds **only the touched
//! component**: [`CompleteSystem::succ_effects`] already reports each
//! transition as a delta touching at most one process slot and one
//! service slot, so the packed automaton interns the (at most two)
//! fresh components and patches their id slots.
//!
//! # Bit-identical exploration
//!
//! [`PackedSystem`] implements [`Automaton`] directly, so the generic
//! explorer runs on it unchanged. The decoded graph is bit-identical
//! to exploring the deep representation because
//!
//! 1. the component-id encoding is injective *within a run*: two packed
//!    states are equal iff the decoded [`SystemState`]s are equal, and
//! 2. [`ioa::explore`] assigns [`ioa::StateId`]s in deterministic BFS
//!    discovery order — root order, then task order, then branch order
//!    — which depends only on the logical transition structure, never
//!    on the numeric values of the component ids.
//!
//! Concurrent workers may therefore intern fresh components in any
//! interleaving (comp ids are *not* deterministic across runs) without
//! perturbing the explored graph; the differential tests in `analysis`
//! pin this down across thread counts and truncation budgets.

use crate::action::{Action, Task};
use crate::build::{CompleteSystem, Delta, ProcStep, StateView, SystemState};
use crate::effect_cache::{BranchEntry, EffectCache, PopEntry, ProcStepEntry};
use crate::process::ProcessAutomaton;
use ioa::automaton::{ActionKind, Automaton, CacheStats};
use ioa::canon::{Perm, SymGroup, SymmetryMode};
use ioa::store::{fx_hash, CompId, Interner};
use services::SvcState;
use spec::{Inv, ProcId, RelabelValues, Resp, SvcId, ValuePerm};
use std::cmp::Ordering;
use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;
use std::sync::{RwLock, RwLockReadGuard};

/// A system state packed as component ids.
///
/// Layout: `comps[0..n]` are process component ids, `comps[n..n+m]` are
/// service component ids, and `comps[n+m]` is the failed-set bitmask
/// (bit `i` set iff `fail_i` has occurred). The ids index the
/// sub-arenas of the [`PackedSystem`] that produced the state; packed
/// states from different `PackedSystem` instances are not comparable.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PackedState {
    comps: Box<[u32]>,
}

impl PackedState {
    /// The raw component-id slots (processes, then services, then the
    /// failed bitmask) — exposed for size accounting and diagnostics.
    #[must_use]
    pub fn comps(&self) -> &[u32] {
        &self.comps
    }

    /// A copy with `slot` replaced by `id` — the id-splice a cached
    /// successor expansion reduces to.
    fn splice1(&self, slot: usize, id: u32) -> PackedState {
        let mut comps = self.comps.clone();
        comps[slot] = id;
        PackedState { comps }
    }

    /// A copy with two slots replaced (invoke/respond transitions touch
    /// one process and one service slot).
    fn splice2(&self, s1: usize, id1: u32, s2: usize, id2: u32) -> PackedState {
        let mut comps = self.comps.clone();
        comps[s1] = id1;
        comps[s2] = id2;
        PackedState { comps }
    }
}

/// The component-interned view of a [`CompleteSystem`]: the same
/// transition structure, over [`PackedState`]s.
///
/// The two sub-arenas grow monotonically behind [`RwLock`]s —
/// transition enumeration takes read locks, interning fresh components
/// takes write locks (always `procs` before `svcs`). The explorer's
/// scoped workers share one `PackedSystem` across threads.
#[derive(Debug)]
pub struct PackedSystem<'s, P: ProcessAutomaton> {
    sys: &'s CompleteSystem<P>,
    n: usize,
    m: usize,
    procs: RwLock<Interner<P::State>>,
    svcs: RwLock<Interner<SvcState>>,
    /// The transition-effect cache (see [`crate::effect_cache`]).
    /// `None` disables memoization — the reference path the
    /// differential suite compares against.
    cache: Option<EffectCache>,
    /// Orbit-canonicalization state (`None` when the system is not
    /// symmetric or the mode is [`SymmetryMode::Off`]).
    symmetry: Option<Symmetry>,
}

/// The canonicalizer's lazy memo tables. The group itself is never
/// materialized — the signature-sort canonical form (see
/// [`PackedSystem::canonical_with_sym`]) computes the one sorting
/// permutation each state needs, so only the permutations that actually
/// occur as sort outcomes ever get a service remap table.
///
/// Permuting process ids in a packed state is cheap on the process
/// block — an id-symmetric family (see
/// [`ProcessAutomaton::id_symmetric`]) keeps per-process state contents
/// `ProcId`-free, so `π` only *moves slots* — but a service component
/// embeds per-endpoint buffers and a failed set keyed by `ProcId`, so
/// its image under `π` is a different component. `svc_maps[π][sc]`
/// memoizes the interned id of `π` applied to service component `sc`;
/// entries are filled on demand, and since interning is idempotent a
/// racing fill writes the identical id. The two `*_relabel` tables do
/// the same for the 0 ↔ 1 value relabeling `ν` (active only when
/// `values` is set), indexed by component id.
#[derive(Debug)]
struct Symmetry {
    /// Whether the consensus-value relabeling group is composed in
    /// (`S_n × S_vals` instead of `S_n`).
    values: bool,
    /// `svc_maps[π][sc]` = interned id of `π · resolve(sc)`.
    svc_maps: RwLock<HashMap<Perm, Vec<Option<u32>>>>,
    /// `proc_relabel[pc]` = interned id of `ν · resolve(pc)`.
    proc_relabel: RwLock<Vec<Option<u32>>>,
    /// `svc_relabel[sc]` = interned id of `ν · resolve(sc)`.
    svc_relabel: RwLock<Vec<Option<u32>>>,
}

/// A [`StateView`] over a packed state: holds read guards on both
/// sub-arenas and resolves component ids on demand.
struct PackedView<'a, PS> {
    procs: RwLockReadGuard<'a, Interner<PS>>,
    svcs: RwLockReadGuard<'a, Interner<SvcState>>,
    comps: &'a [u32],
    n: usize,
}

impl<PS: std::hash::Hash + Eq> StateView<PS> for PackedView<'_, PS> {
    fn proc(&self, i: ProcId) -> &PS {
        self.procs
            .resolve(CompId::from_index(self.comps[i.0] as usize))
    }

    fn svc(&self, c: SvcId) -> &SvcState {
        self.svcs
            .resolve(CompId::from_index(self.comps[self.n + c.0] as usize))
    }

    fn is_failed(&self, i: ProcId) -> bool {
        let mask = self.comps[self.comps.len() - 1];
        (mask >> i.0) & 1 == 1
    }
}

impl<'s, P: ProcessAutomaton> PackedSystem<'s, P> {
    /// Wraps `sys` with fresh (empty) component sub-arenas and the
    /// transition-effect cache enabled. The symmetry mode defaults from
    /// the `SYMMETRY` environment variable (see
    /// [`SymmetryMode::from_env`]); use [`PackedSystem::with_symmetry`]
    /// to pin it explicitly.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than 32 processes (the failed set
    /// is packed as a `u32` bitmask — far beyond the exhaustively
    /// explorable range anyway).
    pub fn new(sys: &'s CompleteSystem<P>) -> Self {
        Self::with_symmetry(sys, SymmetryMode::from_env())
    }

    /// [`PackedSystem::new`] with an explicit symmetry mode. Under any
    /// reducing mode ([`SymmetryMode::reduces`]) the canonicalizer
    /// activates only when the system actually *is* process-id
    /// symmetric — an id-symmetric process family and
    /// endpoint-symmetric services whose endpoint set is exactly all
    /// `n` processes (see [`PackedSystem::symmetric_system`]);
    /// otherwise [`PackedSystem::canonical_with_sym`] degenerates to
    /// the identity and exploration is unchanged. Under
    /// [`SymmetryMode::Values`] the 0 ↔ 1 value relabeling is
    /// additionally composed in when every component claims it
    /// ([`PackedSystem::value_symmetric_system`]); a system that is
    /// process-symmetric but not value-symmetric degrades to the plain
    /// `S_n` quotient.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than 32 processes.
    pub fn with_symmetry(sys: &'s CompleteSystem<P>, mode: SymmetryMode) -> Self {
        let mut p = Self::new_uncached(sys);
        let globals = sys.services().iter().enumerate().flat_map(|(c, svc)| {
            svc.global_tasks()
                .into_iter()
                .map(move |g| (SvcId(c), g))
                .collect::<Vec<_>>()
        });
        p.cache = Some(EffectCache::new(p.n, p.m, globals));
        if mode.reduces() && Self::symmetric_system(sys) {
            p.symmetry = Some(Symmetry {
                values: mode.wants_values() && Self::value_symmetric_system(sys),
                svc_maps: RwLock::new(HashMap::new()),
                proc_relabel: RwLock::new(Vec::new()),
                svc_relabel: RwLock::new(Vec::new()),
            });
        }
        p
    }

    /// Whether `sys` satisfies the orbit canonicalizer's symmetry
    /// contract: at least two processes, an id-symmetric process family
    /// ([`ProcessAutomaton::id_symmetric`]), and every service both
    /// endpoint-symmetric ([`services::Service::endpoint_symmetric`])
    /// and connected to *all* `n` processes (a proper-subset endpoint
    /// set would make `π` move an endpoint out of `J`). The
    /// signature-sort canonical form never enumerates the group, so the
    /// only size bound is the packed representation's own 32-process
    /// failed-bitmask limit — `n` far beyond [`Perm::MAX_ENUMERATED`]
    /// canonicalizes fine.
    #[must_use]
    pub fn symmetric_system(sys: &CompleteSystem<P>) -> bool {
        let n = sys.process_count();
        (2..=32).contains(&n)
            && sys.process_automaton().id_symmetric()
            && sys.services().iter().all(|svc| {
                svc.endpoint_symmetric()
                    && svc.endpoints().len() == n
                    && svc.endpoints().iter().enumerate().all(|(k, p)| p.0 == k)
            })
    }

    /// Whether every component of `sys` claims the 0 ↔ 1 value
    /// relabeling as an automorphism
    /// ([`ProcessAutomaton::value_symmetric`],
    /// [`services::Service::value_symmetric`]). Gates the composed
    /// `S_n × S_vals` quotient; the claims themselves are audited by
    /// the `value-symmetry` rule in `analysis::audit`.
    #[must_use]
    pub fn value_symmetric_system(sys: &CompleteSystem<P>) -> bool {
        sys.process_automaton().value_symmetric()
            && sys.services().iter().all(|svc| svc.value_symmetric())
    }

    /// Like [`PackedSystem::new`] but with effect memoization disabled:
    /// every `succ_all` re-runs `succ_effects`. This is the PR 3
    /// reference path the differential suite compares the cache
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if the system has more than 32 processes.
    pub fn new_uncached(sys: &'s CompleteSystem<P>) -> Self {
        let n = sys.process_count();
        let m = sys.services().len();
        assert!(
            n <= 32,
            "packed failed-set bitmask supports at most 32 processes, got {n}"
        );
        PackedSystem {
            sys,
            n,
            m,
            procs: RwLock::new(Interner::new()),
            svcs: RwLock::new(Interner::new()),
            cache: None,
            symmetry: None,
        }
    }

    /// The effective symmetry mode: what the orbit canonicalizer
    /// actually quotients by after the contract gates —
    /// [`SymmetryMode::Off`] when inactive, [`SymmetryMode::Values`]
    /// when the value relabeling is composed in, [`SymmetryMode::Full`]
    /// otherwise. Exploration options should take their `symmetry` from
    /// here so asymmetric systems never pay canonicalization overhead.
    #[must_use]
    pub fn symmetry_mode(&self) -> SymmetryMode {
        match &self.symmetry {
            None => SymmetryMode::Off,
            Some(s) if s.values => SymmetryMode::Values,
            Some(_) => SymmetryMode::Full,
        }
    }

    /// The symmetry group the canonicalizer quotients by, when active:
    /// a compact descriptor (`S_n`, optionally composed with the value
    /// relabeling) — the group is never materialized.
    #[must_use]
    pub fn symmetry_group(&self) -> Option<SymGroup> {
        self.symmetry.as_ref().map(|s| SymGroup {
            n: self.n,
            values: s.values,
        })
    }

    /// Whether the transition-effect cache is enabled.
    #[must_use]
    pub fn cached(&self) -> bool {
        self.cache.is_some()
    }

    /// The underlying deep system.
    #[must_use]
    pub fn system(&self) -> &'s CompleteSystem<P> {
        self.sys
    }

    /// Number of distinct process components interned so far.
    #[must_use]
    pub fn proc_components(&self) -> usize {
        self.procs.read().expect("interner lock poisoned").len()
    }

    /// Number of distinct service components interned so far.
    #[must_use]
    pub fn svc_components(&self) -> usize {
        self.svcs.read().expect("interner lock poisoned").len()
    }

    fn view<'a>(&'a self, ps: &'a PackedState) -> PackedView<'a, P::State> {
        PackedView {
            procs: self.procs.read().expect("interner lock poisoned"),
            svcs: self.svcs.read().expect("interner lock poisoned"),
            comps: &ps.comps,
            n: self.n,
        }
    }

    /// Packs a deep state, interning every component.
    pub fn encode(&self, s: &SystemState<P::State>) -> PackedState {
        assert_eq!(s.procs.len(), self.n, "state has wrong process count");
        assert_eq!(s.services.len(), self.m, "state has wrong service count");
        let mut procs = self.procs.write().expect("interner lock poisoned");
        let mut svcs = self.svcs.write().expect("interner lock poisoned");
        let mut comps = Vec::with_capacity(self.n + self.m + 1);
        for p in &s.procs {
            comps.push(id_bits(procs.intern(p.clone()).0));
        }
        for st in &s.services {
            comps.push(id_bits(svcs.intern(st.clone()).0));
        }
        let mut mask = 0u32;
        for i in &s.failed {
            assert!(i.0 < 32, "failed process {i} outside bitmask range");
            mask |= 1 << i.0;
        }
        comps.push(mask);
        PackedState {
            comps: comps.into_boxed_slice(),
        }
    }

    // ----- orbit canonicalization ------------------------------------

    /// The interned id of `π` applied to service component `sc`,
    /// memoized per `(π, sc)`. Takes the memo read lock, then (on a
    /// miss) the service-arena read guard to resolve, the write guard
    /// to intern, and finally the memo write lock — never two guards at
    /// once, so the lock order stays trivially acyclic.
    fn svc_remap(&self, p: &Perm, sc: u32) -> u32 {
        let sym = self.symmetry.as_ref().expect("symmetry enabled");
        if let Some(&Some(v)) = sym
            .svc_maps
            .read()
            .expect("svc remap lock poisoned")
            .get(p)
            .and_then(|memo| memo.get(sc as usize))
        {
            return v;
        }
        let permuted = {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            permute_svc_state(p, svcs.resolve(CompId::from_index(sc as usize)))
        };
        let sc2 = id_bits(
            self.svcs
                .write()
                .expect("interner lock poisoned")
                .intern(permuted)
                .0,
        );
        let mut maps = sym.svc_maps.write().expect("svc remap lock poisoned");
        let memo = maps.entry(p.clone()).or_default();
        if memo.len() <= sc as usize {
            memo.resize(sc as usize + 1, None);
        }
        // Racing writers store the identical id (interning is
        // idempotent within a run).
        memo[sc as usize] = Some(sc2);
        sc2
    }

    /// The interned id of the 0 ↔ 1 relabeling `ν` applied to process
    /// component `pc`, memoized. Same acyclic lock discipline as
    /// [`svc_remap`](Self::svc_remap).
    fn proc_relabel(&self, pc: u32) -> u32 {
        let sym = self.symmetry.as_ref().expect("symmetry enabled");
        if let Some(&Some(v)) = sym
            .proc_relabel
            .read()
            .expect("relabel lock poisoned")
            .get(pc as usize)
        {
            return v;
        }
        let relabeled = {
            let procs = self.procs.read().expect("interner lock poisoned");
            procs
                .resolve(CompId::from_index(pc as usize))
                .relabel_values(ValuePerm::Swap)
        };
        let pc2 = id_bits(
            self.procs
                .write()
                .expect("interner lock poisoned")
                .intern(relabeled)
                .0,
        );
        let mut memo = sym.proc_relabel.write().expect("relabel lock poisoned");
        if memo.len() <= pc as usize {
            memo.resize(pc as usize + 1, None);
        }
        memo[pc as usize] = Some(pc2);
        pc2
    }

    /// The interned id of `ν` applied to service component `sc`,
    /// memoized.
    fn svc_relabel(&self, sc: u32) -> u32 {
        let sym = self.symmetry.as_ref().expect("symmetry enabled");
        if let Some(&Some(v)) = sym
            .svc_relabel
            .read()
            .expect("relabel lock poisoned")
            .get(sc as usize)
        {
            return v;
        }
        let relabeled = {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            svcs.resolve(CompId::from_index(sc as usize))
                .relabel_values(ValuePerm::Swap)
        };
        let sc2 = id_bits(
            self.svcs
                .write()
                .expect("interner lock poisoned")
                .intern(relabeled)
                .0,
        );
        let mut memo = sym.svc_relabel.write().expect("relabel lock poisoned");
        if memo.len() <= sc as usize {
            memo.resize(sc as usize + 1, None);
        }
        memo[sc as usize] = Some(sc2);
        sc2
    }

    /// `ν · ps`: every process and service component relabeled 0 ↔ 1,
    /// the failed mask (process identities) untouched.
    fn relabel_state(&self, ps: &PackedState) -> PackedState {
        let mut comps = ps.comps.clone();
        for i in 0..self.n {
            comps[i] = self.proc_relabel(ps.comps[i]);
        }
        for c in 0..self.m {
            comps[self.n + c] = self.svc_relabel(ps.comps[self.n + c]);
        }
        PackedState { comps }
    }

    /// The `S_n`-canonical form of `ps` and the sorting permutation `σ`
    /// (`σ · ps = rep`): process indices stably sorted by their full
    /// local-view signature — process component key first, then the
    /// failed bit, then the per-service endpoint views. One
    /// `O(n log n)` sort instead of an `n!` candidate sweep.
    ///
    /// **Why a sort is canonical.** The signature captures *everything*
    /// in the state that distinguishes index `i` from index `j`: the
    /// process component, the failed bit, and each service's
    /// `⟨inv_buffer(i), resp_buffer(i), i ∈ failed⟩` triple (service
    /// values are endpoint-independent, so they are π-invariant and
    /// need not participate). Two indices with equal signatures are
    /// therefore genuinely interchangeable — transposing them is an
    /// automorphism fixing the state — so the stably-sorted arrangement
    /// depends only on the signature *multiset*, which is constant on
    /// the orbit. Every signature comparison is a fixed function of
    /// component values (cached fx hash, then `Ord`), never of arena
    /// ids, so representatives are bit-stable across runs and thread
    /// counts.
    ///
    /// **Identity fast path.** When the process block's slot keys are
    /// strictly ascending the sort is the identity regardless of the
    /// finer signature components (strict ascent means no ties), so the
    /// common asymmetric-state case returns without resolving a single
    /// service component.
    fn proc_canonical(&self, ps: &PackedState) -> (PackedState, Perm) {
        {
            let procs = self.procs.read().expect("interner lock poisoned");
            if (1..self.n)
                .all(|j| cmp_proc_slot(&procs, ps.comps[j - 1], ps.comps[j]) == Ordering::Less)
            {
                return (ps.clone(), Perm::identity(self.n));
            }
        }
        let order = {
            let procs = self.procs.read().expect("interner lock poisoned");
            let svcs = self.svcs.read().expect("interner lock poisoned");
            let mask = ps.comps[self.n + self.m];
            let svc_states: Vec<&SvcState> = (0..self.m)
                .map(|c| svcs.resolve(CompId::from_index(ps.comps[self.n + c] as usize)))
                .collect();
            let mut order: Vec<usize> = (0..self.n).collect();
            order.sort_by(|&i, &j| {
                cmp_proc_slot(&procs, ps.comps[i], ps.comps[j])
                    .then_with(|| ((mask >> i) & 1).cmp(&((mask >> j) & 1)))
                    .then_with(|| {
                        svc_states
                            .iter()
                            .map(|st| cmp_endpoint_view(st, ProcId(i), ProcId(j)))
                            .find(|ord| *ord != Ordering::Equal)
                            .unwrap_or(Ordering::Equal)
                    })
            });
            order
        };
        // σ sends old index `order[j]` to slot `j`.
        let mut map = vec![0usize; self.n];
        for (j, &i) in order.iter().enumerate() {
            map[i] = j;
        }
        let sigma = Perm::from_map(map);
        if sigma.is_identity() {
            return (ps.clone(), sigma);
        }
        let mut comps = ps.comps.clone();
        for (j, &i) in order.iter().enumerate() {
            comps[j] = ps.comps[i];
        }
        for c in 0..self.m {
            comps[self.n + c] = self.svc_remap(&sigma, ps.comps[self.n + c]);
        }
        comps[self.n + self.m] = sigma.permute_mask(ps.comps[self.n + self.m]);
        (PackedState { comps }, sigma)
    }

    /// Value-based comparison of two (already `S_n`-canonical) packed
    /// states, used to pick between the `ν = id` and `ν = swap`
    /// branches: process slots by `(fx hash, value)`, then service
    /// slots the same way, then the failed masks numerically — the
    /// packed twin of [`cmp_deep`].
    fn cmp_reps(&self, a: &PackedState, b: &PackedState) -> Ordering {
        {
            let procs = self.procs.read().expect("interner lock poisoned");
            for j in 0..self.n {
                let ord = cmp_proc_slot(&procs, a.comps[j], b.comps[j]);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
        }
        {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            for c in 0..self.m {
                let ord = cmp_proc_slot(&svcs, a.comps[self.n + c], b.comps[self.n + c]);
                if ord != Ordering::Equal {
                    return ord;
                }
            }
        }
        a.comps[self.n + self.m].cmp(&b.comps[self.n + self.m])
    }

    /// The canonical orbit representative of `ps` under the active
    /// group, together with the group element `(σ, ν)` that produced it
    /// (`σ · ν · ps = rep`; `σ` and `ν` act on disjoint data, so they
    /// commute). Both are identities when `ps` is already canonical or
    /// the canonicalizer is inactive.
    ///
    /// Under the plain `S_n` quotient this is
    /// [`proc_canonical`](Self::proc_canonical); with the value group
    /// composed in, the representative is the smaller (by
    /// [`cmp_reps`](Self::cmp_reps)) of the `S_n`-canonical forms of
    /// `ps` and `ν · ps`, preferring `ν = id` on ties. The deep mirror
    /// [`canonical_system_state_with`] makes exactly the same choices,
    /// keeping the two representations in lockstep.
    #[must_use]
    pub fn canonical_with_sym(&self, ps: &PackedState) -> (PackedState, Perm, ValuePerm) {
        let Some(sym) = &self.symmetry else {
            return (ps.clone(), Perm::identity(self.n), ValuePerm::Id);
        };
        let (rep0, sigma0) = self.proc_canonical(ps);
        if !sym.values {
            return (rep0, sigma0, ValuePerm::Id);
        }
        let swapped = self.relabel_state(ps);
        let (rep1, sigma1) = self.proc_canonical(&swapped);
        if self.cmp_reps(&rep1, &rep0) == Ordering::Less {
            (rep1, sigma1, ValuePerm::Swap)
        } else {
            (rep0, sigma0, ValuePerm::Id)
        }
    }

    // ----- cached successor expansion --------------------------------
    //
    // Each helper below resolves exactly the component(s) its key names
    // under a short-lived read guard, computes the effect through the
    // same `CompleteSystem` entry points `succ_effects` uses
    // (`proc_step`, `enqueue_effect`, the `Service` methods,
    // `on_response`), interns the results, and publishes the entry.
    // Guards are never nested across arenas and never held across a
    // cache-table lock, so the lock order is trivially acyclic.

    fn miss_step(&self, cache: &EffectCache, i: ProcId, pc: u32) -> ProcStepEntry {
        let step = {
            let procs = self.procs.read().expect("interner lock poisoned");
            self.sys
                .proc_step(i, procs.resolve(CompId::from_index(pc as usize)))
        };
        let entry = match step {
            ProcStep::Local(a, pst2) => {
                let mut procs = self.procs.write().expect("interner lock poisoned");
                ProcStepEntry::Local(a, id_bits(procs.intern(pst2).0))
            }
            ProcStep::Invoke(c, inv, pst2) => {
                let mut procs = self.procs.write().expect("interner lock poisoned");
                ProcStepEntry::Invoke(c, inv, id_bits(procs.intern(pst2).0))
            }
        };
        cache.step_put(i, pc, entry.clone());
        entry
    }

    fn miss_enqueue(
        &self,
        cache: &EffectCache,
        i: ProcId,
        pc: u32,
        c: SvcId,
        inv: &Inv,
        sc: u32,
    ) -> u32 {
        let st2 = {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            self.sys
                .enqueue_effect(i, c, inv, svcs.resolve(CompId::from_index(sc as usize)))
        };
        let sc2 = id_bits(
            self.svcs
                .write()
                .expect("interner lock poisoned")
                .intern(st2)
                .0,
        );
        cache.enqueue_put(i, pc, sc, sc2);
        sc2
    }

    fn miss_perform(&self, cache: &EffectCache, c: SvcId, i: ProcId, sc: u32) -> BranchEntry {
        let svc = &self.sys.services()[c.0];
        let (branches, dummy) = {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            let st = svcs.resolve(CompId::from_index(sc as usize));
            (svc.perform_all(i, st), svc.dummy_perform_enabled(i, st))
        };
        let mut w = self.svcs.write().expect("interner lock poisoned");
        let real: Box<[u32]> = branches
            .into_iter()
            .map(|st2| id_bits(w.intern(st2).0))
            .collect();
        drop(w);
        let entry = BranchEntry { real, dummy };
        cache.perform_put(c, i, sc, entry.clone());
        entry
    }

    fn miss_compute(
        &self,
        cache: &EffectCache,
        c: SvcId,
        g: &spec::GlobalTaskId,
        sc: u32,
    ) -> BranchEntry {
        let svc = &self.sys.services()[c.0];
        let (branches, dummy) = {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            let st = svcs.resolve(CompId::from_index(sc as usize));
            (svc.compute_all(g, st), svc.dummy_compute_enabled(st))
        };
        let mut w = self.svcs.write().expect("interner lock poisoned");
        let real: Box<[u32]> = branches
            .into_iter()
            .map(|st2| id_bits(w.intern(st2).0))
            .collect();
        drop(w);
        let entry = BranchEntry { real, dummy };
        cache.compute_put(c, g, sc, entry.clone());
        entry
    }

    fn miss_pop(&self, cache: &EffectCache, c: SvcId, i: ProcId, sc: u32) -> PopEntry {
        let svc = &self.sys.services()[c.0];
        let (popped, dummy) = {
            let svcs = self.svcs.read().expect("interner lock poisoned");
            let st = svcs.resolve(CompId::from_index(sc as usize));
            (svc.pop_response(i, st), svc.dummy_output_enabled(i, st))
        };
        let resp = popped.map(|(r, st2)| {
            let sc2 = id_bits(
                self.svcs
                    .write()
                    .expect("interner lock poisoned")
                    .intern(st2)
                    .0,
            );
            (r, sc2)
        });
        let entry = PopEntry { resp, dummy };
        cache.pop_put(c, i, sc, entry.clone());
        entry
    }

    fn miss_on_resp(
        &self,
        cache: &EffectCache,
        c: SvcId,
        i: ProcId,
        sc: u32,
        pc: u32,
        resp: &Resp,
    ) -> u32 {
        let p2 = {
            let procs = self.procs.read().expect("interner lock poisoned");
            self.sys.process_automaton().on_response(
                i,
                procs.resolve(CompId::from_index(pc as usize)),
                c,
                resp,
            )
        };
        let pc2 = id_bits(
            self.procs
                .write()
                .expect("interner lock poisoned")
                .intern(p2)
                .0,
        );
        cache.on_resp_put(c, i, sc, pc, pc2);
        pc2
    }

    /// `Task::Proc(i)` through the cache: failed processes stutter
    /// inline (no effect to memoize); live ones look up the step
    /// outcome by proc comp, and an `Invoke` additionally looks up the
    /// enqueue by `(proc comp, svc comp)`.
    fn proc_cached(
        &self,
        cache: &EffectCache,
        i: ProcId,
        ps: &PackedState,
        hit: &mut bool,
    ) -> Vec<(Action, PackedState)> {
        let mask = ps.comps[self.n + self.m];
        if (mask >> i.0) & 1 == 1 {
            return vec![(Action::ProcStep(i), ps.clone())];
        }
        let pc = ps.comps[i.0];
        let entry = cache.step_get(i, pc).unwrap_or_else(|| {
            *hit = false;
            self.miss_step(cache, i, pc)
        });
        match entry {
            ProcStepEntry::Local(a, pc2) => vec![(a, ps.splice1(i.0, pc2))],
            ProcStepEntry::Invoke(c, inv, pc2) => {
                let slot = self.n + c.0;
                let sc = ps.comps[slot];
                let sc2 = cache.enqueue_get(i, pc, sc).unwrap_or_else(|| {
                    *hit = false;
                    self.miss_enqueue(cache, i, pc, c, &inv, sc)
                });
                vec![(Action::Invoke(i, c, inv), ps.splice2(i.0, pc2, slot, sc2))]
            }
        }
    }

    /// Successor expansion through the effect cache. Branch order is
    /// the canonical `succ_effects` order (real branches in δ order,
    /// then the dummy), so the explored graph is bit-identical to the
    /// uncached path — see the `effect_cache` module docs for why.
    fn succ_cached(
        &self,
        cache: &EffectCache,
        t: &Task,
        ps: &PackedState,
    ) -> (Vec<(Action, PackedState)>, bool) {
        let mut hit = true;
        let out = match t {
            Task::Proc(i) => self.proc_cached(cache, *i, ps, &mut hit),
            Task::Perform(c, i) => {
                let slot = self.n + c.0;
                let sc = ps.comps[slot];
                let br = cache.perform_get(*c, *i, sc).unwrap_or_else(|| {
                    hit = false;
                    self.miss_perform(cache, *c, *i, sc)
                });
                let mut out: Vec<(Action, PackedState)> = br
                    .real
                    .iter()
                    .map(|&sc2| (Action::Perform(*c, *i), ps.splice1(slot, sc2)))
                    .collect();
                if br.dummy {
                    out.push((Action::DummyPerform(*c, *i), ps.clone()));
                }
                out
            }
            Task::Output(c, i) => {
                let slot = self.n + c.0;
                let sc = ps.comps[slot];
                let pop = cache.pop_get(*c, *i, sc).unwrap_or_else(|| {
                    hit = false;
                    self.miss_pop(cache, *c, *i, sc)
                });
                let mut out = Vec::new();
                if let Some((resp, sc2)) = pop.resp {
                    let pc = ps.comps[i.0];
                    let pc2 = cache.on_resp_get(*c, *i, sc, pc).unwrap_or_else(|| {
                        hit = false;
                        self.miss_on_resp(cache, *c, *i, sc, pc, &resp)
                    });
                    out.push((
                        Action::Respond(*c, *i, resp),
                        ps.splice2(i.0, pc2, slot, sc2),
                    ));
                }
                if pop.dummy {
                    out.push((Action::DummyOutput(*c, *i), ps.clone()));
                }
                out
            }
            Task::Compute(c, g) => {
                let slot = self.n + c.0;
                let sc = ps.comps[slot];
                let br = cache.compute_get(*c, g, sc).unwrap_or_else(|| {
                    hit = false;
                    self.miss_compute(cache, *c, g, sc)
                });
                let mut out: Vec<(Action, PackedState)> = br
                    .real
                    .iter()
                    .map(|&sc2| (Action::Compute(*c, g.clone()), ps.splice1(slot, sc2)))
                    .collect();
                if br.dummy {
                    out.push((Action::DummyCompute(*c, g.clone()), ps.clone()));
                }
                out
            }
        };
        (out, hit)
    }

    /// Unpacks back into the deep representation.
    pub fn decode(&self, ps: &PackedState) -> SystemState<P::State> {
        let procs = self.procs.read().expect("interner lock poisoned");
        let svcs = self.svcs.read().expect("interner lock poisoned");
        let mask = ps.comps[self.n + self.m];
        SystemState {
            procs: (0..self.n)
                .map(|i| {
                    procs
                        .resolve(CompId::from_index(ps.comps[i] as usize))
                        .clone()
                })
                .collect(),
            services: (0..self.m)
                .map(|c| {
                    svcs.resolve(CompId::from_index(ps.comps[self.n + c] as usize))
                        .clone()
                })
                .collect(),
            failed: (0..32u32)
                .filter(|i| (mask >> i) & 1 == 1)
                .map(|i| ProcId(i as usize))
                .collect::<BTreeSet<_>>(),
        }
    }
}

/// The stored `u32` of a component id.
fn id_bits(id: CompId) -> u32 {
    u32::try_from(id.index()).expect("component ids fit in u32 by construction")
}

/// One process-slot comparison by `(cached hash, value)` key. Equal
/// ids short-circuit — within one arena, equal ids iff equal values.
fn cmp_proc_slot<PS: Hash + Eq + Ord>(procs: &Interner<PS>, a: u32, b: u32) -> Ordering {
    if a == b {
        return Ordering::Equal;
    }
    let (x, y) = (
        CompId::from_index(a as usize),
        CompId::from_index(b as usize),
    );
    procs
        .hash_of(x)
        .cmp(&procs.hash_of(y))
        .then_with(|| procs.resolve(x).cmp(procs.resolve(y)))
}

/// `π` applied to a service state: per-endpoint buffers and the failed
/// set move to the permuted endpoints; the value is untouched (the
/// symmetry gate guarantees the sequential type is process-oblivious).
///
/// Builds the image field by field instead of going through
/// `SvcState::clone`, so the deep-clone census
/// ([`services::state::clones`]) keeps counting only semantic
/// successor clones.
#[must_use]
pub fn permute_svc_state(p: &Perm, st: &SvcState) -> SvcState {
    let pi = |i: &ProcId| ProcId(p.apply(i.0));
    SvcState {
        val: st.val.clone(),
        inv_buf: st.inv_buf.iter().map(|(i, q)| (pi(i), q.clone())).collect(),
        resp_buf: st
            .resp_buf
            .iter()
            .map(|(i, q)| (pi(i), q.clone()))
            .collect(),
        failed: st.failed.iter().map(pi).collect(),
    }
}

/// `π` applied to an action label: every `ProcId` field is remapped,
/// services stay put (the group permutes processes only).
#[must_use]
pub fn permute_action(p: &Perm, a: &Action) -> Action {
    let pi = |i: ProcId| ProcId(p.apply(i.0));
    match a {
        Action::Init(i, v) => Action::Init(pi(*i), v.clone()),
        Action::Fail(i) => Action::Fail(pi(*i)),
        Action::Decide(i, v) => Action::Decide(pi(*i), v.clone()),
        Action::Output(i, r) => Action::Output(pi(*i), r.clone()),
        Action::Invoke(i, c, inv) => Action::Invoke(pi(*i), *c, inv.clone()),
        Action::ProcStep(i) => Action::ProcStep(pi(*i)),
        Action::Perform(c, i) => Action::Perform(*c, pi(*i)),
        Action::Respond(c, i, r) => Action::Respond(*c, pi(*i), r.clone()),
        Action::Compute(c, g) => Action::Compute(*c, g.clone()),
        Action::DummyPerform(c, i) => Action::DummyPerform(*c, pi(*i)),
        Action::DummyOutput(c, i) => Action::DummyOutput(*c, pi(*i)),
        Action::DummyCompute(c, g) => Action::DummyCompute(*c, g.clone()),
    }
}

/// `π` applied to a task: process and endpoint tasks move with their
/// process, compute tasks are fixed points.
#[must_use]
pub fn permute_task(p: &Perm, t: &Task) -> Task {
    let pi = |i: ProcId| ProcId(p.apply(i.0));
    match t {
        Task::Proc(i) => Task::Proc(pi(*i)),
        Task::Perform(c, i) => Task::Perform(*c, pi(*i)),
        Task::Output(c, i) => Task::Output(*c, pi(*i)),
        Task::Compute(c, g) => Task::Compute(*c, g.clone()),
    }
}

/// `π` applied to a deep system state: process states move to permuted
/// slots (their contents are `ProcId`-free for id-symmetric families),
/// service states are remapped endpoint-wise, and the failed set is
/// relabeled.
#[must_use]
pub fn permute_system_state<PS: Clone>(p: &Perm, s: &SystemState<PS>) -> SystemState<PS> {
    let mut procs = s.procs.clone();
    for (i, st) in s.procs.iter().enumerate() {
        procs[p.apply(i)] = st.clone();
    }
    SystemState {
        procs,
        services: s
            .services
            .iter()
            .map(|st| permute_svc_state(p, st))
            .collect(),
        failed: s.failed.iter().map(|i| ProcId(p.apply(i.0))).collect(),
    }
}

/// The failed set as the packed `u32` bitmask — the representation the
/// canonical order compares, which (deliberately) disagrees with the
/// `BTreeSet` lexicographic order: `{P1}` (mask 2) precedes
/// `{P0, P2}` (mask 5).
fn failed_mask(failed: &BTreeSet<ProcId>) -> u32 {
    failed.iter().fold(0u32, |m, i| m | 1 << i.0)
}

/// One service's view of endpoint `i` versus endpoint `j` — the
/// per-endpoint signature component of the canonical sort: failed-set
/// membership first, then the invocation buffer, then the response
/// buffer, all by value. The service *value* is endpoint-independent
/// and never participates.
fn cmp_endpoint_view(st: &SvcState, i: ProcId, j: ProcId) -> Ordering {
    st.failed
        .contains(&i)
        .cmp(&st.failed.contains(&j))
        .then_with(|| st.inv_buffer(i).cmp(st.inv_buffer(j)))
        .then_with(|| st.resp_buffer(i).cmp(st.resp_buffer(j)))
}

/// The deep mirror of the packed representative order: processes, then
/// services (each slot by `(fx hash, value)`), then failed-set masks
/// numerically.
fn cmp_deep<PS: Hash + Ord>(a: &SystemState<PS>, b: &SystemState<PS>) -> Ordering {
    for (x, y) in a.procs.iter().zip(&b.procs) {
        let ord = fx_hash(x).cmp(&fx_hash(y)).then_with(|| x.cmp(y));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    for (x, y) in a.services.iter().zip(&b.services) {
        let ord = fx_hash(x).cmp(&fx_hash(y)).then_with(|| x.cmp(y));
        if ord != Ordering::Equal {
            return ord;
        }
    }
    failed_mask(&a.failed).cmp(&failed_mask(&b.failed))
}

/// `ν` applied to a deep system state: every process and service state
/// relabeled 0 ↔ 1 structurally, the failed set (process identities)
/// untouched.
#[must_use]
pub fn relabel_system_state<PS: RelabelValues>(
    vp: ValuePerm,
    s: &SystemState<PS>,
) -> SystemState<PS> {
    SystemState {
        procs: s.procs.iter().map(|p| p.relabel_values(vp)).collect(),
        services: s.services.iter().map(|st| st.relabel_values(vp)).collect(),
        failed: s.failed.clone(),
    }
}

/// The deep `S_n`-canonical form: process indices stably sorted by the
/// same full local-view signature the packed
/// [`PackedSystem::canonical_with_sym`] sorts by — `(fx hash, value)`
/// of the process state, then the failed bit, then each service's
/// endpoint view ([`cmp_endpoint_view`]).
fn proc_canonical_deep<PS: Clone + Hash + Ord>(s: &SystemState<PS>) -> (SystemState<PS>, Perm) {
    let n = s.procs.len();
    let mask = failed_mask(&s.failed);
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| {
        let (x, y) = (&s.procs[i], &s.procs[j]);
        fx_hash(x)
            .cmp(&fx_hash(y))
            .then_with(|| x.cmp(y))
            .then_with(|| ((mask >> i) & 1).cmp(&((mask >> j) & 1)))
            .then_with(|| {
                s.services
                    .iter()
                    .map(|st| cmp_endpoint_view(st, ProcId(i), ProcId(j)))
                    .find(|ord| *ord != Ordering::Equal)
                    .unwrap_or(Ordering::Equal)
            })
    });
    let mut map = vec![0usize; n];
    for (j, &i) in order.iter().enumerate() {
        map[i] = j;
    }
    let sigma = Perm::from_map(map);
    if sigma.is_identity() {
        return (s.clone(), sigma);
    }
    let rep = permute_system_state(&sigma, s);
    (rep, sigma)
}

/// The canonical orbit representative of a deep system state under the
/// group `group`, with the group element `(σ, ν)` that produced it
/// (`σ · ν · s = rep`; `σ` permutes process ids, `ν` relabels values,
/// and the two commute since they act on disjoint data).
///
/// Chooses by exactly the signature order
/// [`PackedSystem::canonical_with_sym`] uses — [`Interner::hash_of`]
/// caches precisely `fx_hash` of the component value — so the deep and
/// packed canonicalizers always agree (pinned by the differential
/// tests).
#[must_use]
pub fn canonical_system_state_with<PS: Clone + Hash + Ord + RelabelValues>(
    group: SymGroup,
    s: &SystemState<PS>,
) -> (SystemState<PS>, Perm, ValuePerm) {
    assert_eq!(s.procs.len(), group.n, "state has wrong process count");
    let (rep0, sigma0) = proc_canonical_deep(s);
    if !group.values {
        return (rep0, sigma0, ValuePerm::Id);
    }
    let swapped = relabel_system_state(ValuePerm::Swap, s);
    let (rep1, sigma1) = proc_canonical_deep(&swapped);
    if cmp_deep(&rep1, &rep0) == Ordering::Less {
        (rep1, sigma1, ValuePerm::Swap)
    } else {
        (rep0, sigma0, ValuePerm::Id)
    }
}

/// [`canonical_system_state_with`] without the group element.
#[must_use]
pub fn canonical_system_state<PS: Clone + Hash + Ord + RelabelValues>(
    group: SymGroup,
    s: &SystemState<PS>,
) -> SystemState<PS> {
    canonical_system_state_with(group, s).0
}

/// The size of the orbit of `s` under `group` — the number of distinct
/// concrete states one interned representative stands for.
///
/// The `S_n` stabilizer of a state is exactly the product of symmetric
/// groups over its equal-signature process classes (two processes with
/// identical full local-view signatures — state, failed bit, every
/// service's endpoint view — are literally interchangeable), so the
/// process-orbit size is the multinomial `n! / ∏ |class|!`. With the
/// value group composed in, the orbit doubles precisely when the 0 ↔ 1
/// relabeled state falls outside the `S_n` orbit (its `S_n`-canonical
/// form differs from the state's own).
#[must_use]
pub fn orbit_size<PS: Clone + Hash + Ord + RelabelValues>(
    group: SymGroup,
    s: &SystemState<PS>,
) -> u64 {
    let n = group.n;
    assert_eq!(s.procs.len(), n, "state has wrong process count");
    let mask = failed_mask(&s.failed);
    let sig_eq = |i: usize, j: usize| {
        s.procs[i] == s.procs[j]
            && (mask >> i) & 1 == (mask >> j) & 1
            && s.services
                .iter()
                .all(|st| cmp_endpoint_view(st, ProcId(i), ProcId(j)) == Ordering::Equal)
    };
    let mut reps: Vec<usize> = Vec::new();
    let mut class_sizes: Vec<u64> = Vec::new();
    for i in 0..n {
        match reps.iter().position(|&j| sig_eq(i, j)) {
            Some(k) => class_sizes[k] += 1,
            None => {
                reps.push(i);
                class_sizes.push(1);
            }
        }
    }
    let fact = |k: u64| (1..=k).product::<u64>();
    let mut orbit = class_sizes
        .iter()
        .fold(fact(n as u64), |acc, &c| acc / fact(c));
    if group.values {
        let swapped = relabel_system_state(ValuePerm::Swap, s);
        if proc_canonical_deep(&swapped).0 != proc_canonical_deep(s).0 {
            orbit *= 2;
        }
    }
    orbit
}

impl<P: ProcessAutomaton> Automaton for PackedSystem<'_, P> {
    type State = PackedState;
    type Action = Action;
    type Task = Task;

    fn initial_states(&self) -> Vec<PackedState> {
        self.sys
            .initial_states()
            .iter()
            .map(|s| self.encode(s))
            .collect()
    }

    fn tasks(&self) -> Vec<Task> {
        self.sys.tasks()
    }

    fn succ_all(&self, t: &Task, ps: &PackedState) -> Vec<(Action, PackedState)> {
        if let Some(cache) = &self.cache {
            let (out, hit) = self.succ_cached(cache, t, ps);
            cache.record(hit);
            return out;
        }
        // Uncached reference path: enumerate under read guards, then
        // drop them before taking the write locks to intern whatever
        // components the deltas touched.
        let effects = {
            let view = self.view(ps);
            self.sys.succ_effects(t, &view)
        };
        if effects.is_empty() {
            return Vec::new();
        }
        let mut procs = self.procs.write().expect("interner lock poisoned");
        let mut svcs = self.svcs.write().expect("interner lock poisoned");
        effects
            .into_iter()
            .map(|(a, d)| {
                let mut comps = ps.comps.clone();
                match d {
                    Delta::Stutter => {}
                    Delta::Proc(i, p) => comps[i.0] = id_bits(procs.intern(p).0),
                    Delta::Svc(c, st) => comps[self.n + c.0] = id_bits(svcs.intern(st).0),
                    Delta::ProcSvc(i, p, c, st) => {
                        comps[i.0] = id_bits(procs.intern(p).0);
                        comps[self.n + c.0] = id_bits(svcs.intern(st).0);
                    }
                }
                (a, PackedState { comps })
            })
            .collect()
    }

    fn applicable(&self, t: &Task, ps: &PackedState) -> bool {
        let view = self.view(ps);
        self.sys.applicable_view(t, &view)
    }

    fn apply_input(&self, ps: &PackedState, a: &Action) -> Option<PackedState> {
        // Inputs (init/fail) are applied outside the hot exploration
        // loop; round-tripping through the deep representation keeps
        // the semantics in one place.
        let s2 = self.sys.apply_input(&self.decode(ps), a)?;
        Some(self.encode(&s2))
    }

    fn kind(&self, a: &Action) -> ActionKind {
        self.sys.kind(a)
    }

    fn action_owner(&self, a: &Action) -> Option<Task> {
        self.sys.action_owner(a)
    }

    fn action_vocabulary(&self) -> Vec<Action> {
        self.sys.action_vocabulary()
    }

    fn cache_stats(&self) -> Option<CacheStats> {
        self.cache.as_ref().map(EffectCache::stats)
    }

    fn succ_counted(
        &self,
        t: &Task,
        s: &PackedState,
        stats: &mut CacheStats,
    ) -> Vec<(Action, PackedState)> {
        if let Some(cache) = &self.cache {
            let (out, hit) = self.succ_cached(cache, t, s);
            cache.record(hit);
            if hit {
                stats.hits += 1;
            } else {
                stats.misses += 1;
            }
            out
        } else {
            self.succ_all(t, s)
        }
    }

    fn canonical(&self, s: PackedState) -> PackedState {
        if self.symmetry.is_none() {
            return s;
        }
        self.canonical_with_sym(&s).0
    }
}

// Compile-time audit: the parallel explorer shares the packed system
// across scoped workers.
const _: () = {
    const fn is_send_sync<T: Send + Sync>() {}
    is_send_sync::<PackedState>();
    is_send_sync::<PackedSystem<'_, crate::process::direct::DirectConsensus>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::process::direct::DirectConsensus;
    use services::atomic::CanonicalAtomicObject;
    use spec::seq::BinaryConsensus;
    use spec::Val;
    use std::sync::Arc;

    fn direct_system(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
        let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
        CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
    }

    /// Drive both representations through the same input prefix.
    fn paired_state(
        sys: &CompleteSystem<DirectConsensus>,
        packed: &PackedSystem<'_, DirectConsensus>,
    ) -> (
        SystemState<<DirectConsensus as ProcessAutomaton>::State>,
        PackedState,
    ) {
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(0));
        s = sys.init(&s, ProcId(1), Val::Int(1));
        let ps = packed.encode(&s);
        (s, ps)
    }

    #[test]
    fn encode_decode_roundtrips() {
        let sys = direct_system(3, 1);
        let packed = PackedSystem::new(&sys);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(2), Val::Int(1));
        let s = sys.fail(&s, ProcId(0));
        let ps = packed.encode(&s);
        assert_eq!(packed.decode(&ps), s);
        // Re-encoding the same state reuses every component id.
        assert_eq!(packed.encode(&s), ps);
    }

    #[test]
    fn packed_successors_decode_to_deep_successors() {
        let sys = direct_system(2, 0);
        let packed = PackedSystem::new(&sys);
        let (s, ps) = paired_state(&sys, &packed);
        for t in sys.tasks() {
            let deep = sys.succ_all(&t, &s);
            let pk = packed.succ_all(&t, &ps);
            assert_eq!(deep.len(), pk.len(), "branch count for {t:?}");
            for ((a1, s2), (a2, ps2)) in deep.iter().zip(&pk) {
                assert_eq!(a1, a2, "action order for {t:?}");
                assert_eq!(s2, &packed.decode(ps2), "successor for {t:?}");
            }
        }
    }

    #[test]
    fn packed_applicable_matches_deep_enablement() {
        let sys = direct_system(2, 0);
        let packed = PackedSystem::new(&sys);
        let (s, ps) = paired_state(&sys, &packed);
        for t in sys.tasks() {
            assert_eq!(
                packed.applicable(&t, &ps),
                !sys.succ_all(&t, &s).is_empty(),
                "enablement for {t:?}"
            );
        }
    }

    #[test]
    fn successors_share_untouched_components() {
        let sys = direct_system(3, 1);
        let packed = PackedSystem::new(&sys);
        let s = sys.single_initial_state();
        let s = sys.init(&s, ProcId(0), Val::Int(1));
        let ps = packed.encode(&s);
        // P0's invoke touches P0's slot and the object's slot; P1, P2
        // and the mask must be shared verbatim.
        let (_, ps2) = packed
            .succ_all(&Task::Proc(ProcId(0)), &ps)
            .into_iter()
            .next()
            .expect("invoke branch");
        assert_ne!(ps.comps()[0], ps2.comps()[0]);
        assert_eq!(ps.comps()[1], ps2.comps()[1]);
        assert_eq!(ps.comps()[2], ps2.comps()[2]);
        assert_eq!(ps.comps()[4], ps2.comps()[4]);
    }

    #[test]
    fn fail_input_sets_mask_bit() {
        let sys = direct_system(2, 1);
        let packed = PackedSystem::new(&sys);
        let ps = packed.encode(&sys.single_initial_state());
        let ps2 = packed
            .apply_input(&ps, &Action::Fail(ProcId(1)))
            .expect("fail is an input");
        assert_eq!(ps2.comps()[3] & 0b10, 0b10);
        assert!(packed.decode(&ps2).failed.contains(&ProcId(1)));
    }

    #[test]
    fn symmetry_gate_accepts_direct_consensus_only_when_asked() {
        let sys = direct_system(3, 1);
        assert!(PackedSystem::symmetric_system(&sys));
        assert!(PackedSystem::value_symmetric_system(&sys));
        let full = PackedSystem::with_symmetry(&sys, SymmetryMode::Full);
        assert_eq!(full.symmetry_mode(), SymmetryMode::Full);
        assert_eq!(
            full.symmetry_group(),
            Some(SymGroup {
                n: 3,
                values: false
            })
        );
        let values = PackedSystem::with_symmetry(&sys, SymmetryMode::Values);
        assert_eq!(values.symmetry_mode(), SymmetryMode::Values);
        assert_eq!(
            values.symmetry_group(),
            Some(SymGroup { n: 3, values: true })
        );
        let off = PackedSystem::with_symmetry(&sys, SymmetryMode::Off);
        assert_eq!(off.symmetry_mode(), SymmetryMode::Off);
        assert!(off.symmetry_group().is_none());
    }

    #[test]
    fn gate_rejects_partial_endpoint_sets() {
        // Object only on {P0, P1} of a 3-process system: a permutation
        // moving P2 into the endpoint set would be unsound.
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), [ProcId(0), ProcId(1)], 0);
        let sys = CompleteSystem::new(DirectConsensus::new(SvcId(0)), 3, vec![Arc::new(obj)]);
        assert!(!PackedSystem::symmetric_system(&sys));
        let p = PackedSystem::with_symmetry(&sys, SymmetryMode::Full);
        assert_eq!(p.symmetry_mode(), SymmetryMode::Off);
    }

    #[test]
    fn canonicalization_collapses_orbits_and_matches_the_deep_mirror() {
        let sys = direct_system(3, 1);
        let packed = PackedSystem::with_symmetry(&sys, SymmetryMode::Full);
        let group = packed.symmetry_group().expect("active");
        let perms = Perm::all(3);
        // A state with asymmetric content: distinct inputs, one
        // failure, and a pending invocation in the object.
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(1));
        s = sys.init(&s, ProcId(1), Val::Int(0));
        s = sys.fail(&s, ProcId(2));
        let (_, s) = sys
            .succ_all(&Task::Proc(ProcId(0)), &s)
            .into_iter()
            .next()
            .expect("invoke step");
        let deep_rep = canonical_system_state(group, &s);
        for p in &perms {
            let s2 = permute_system_state(p, &s);
            let (rep, sigma, nu) = packed.canonical_with_sym(&packed.encode(&s2));
            // Every orbit member canonicalizes to the same packed rep,
            // which decodes to the deep mirror's rep.
            assert_eq!(packed.decode(&rep), deep_rep, "perm {p:?}");
            // The returned (σ, ν) really maps the input to the rep.
            assert_eq!(nu, spec::ValuePerm::Id);
            assert_eq!(permute_system_state(&sigma, &s2), deep_rep);
            // Idempotence.
            let (rep2, sigma2, nu2) = packed.canonical_with_sym(&rep);
            assert_eq!(rep2, rep);
            assert!(sigma2.is_identity());
            assert!(nu2.is_identity());
        }
        // Deep mirror agrees with itself under permutation too.
        for p in &perms {
            let s2 = permute_system_state(p, &s);
            let (rep, sigma, _) = canonical_system_state_with(group, &s2);
            assert_eq!(rep, deep_rep);
            assert_eq!(permute_system_state(&sigma, &s2), deep_rep);
        }
    }

    #[test]
    fn value_canonicalization_collapses_relabeled_orbits() {
        let sys = direct_system(3, 1);
        let packed = PackedSystem::with_symmetry(&sys, SymmetryMode::Values);
        let group = packed.symmetry_group().expect("active");
        assert!(group.values);
        // Inputs whose value *multiset* changes under 0 ↔ 1
        // ({1, 1, 0} → {0, 0, 1}): the swapped state is then outside
        // the S_n orbit of `s`, so collapsing the two genuinely needs
        // the value group. (A single 1 vs a single 0 would not do —
        // there the swap equals a process transposition and ν = Id is
        // the correct answer for both members.)
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(1));
        s = sys.init(&s, ProcId(1), Val::Int(1));
        s = sys.init(&s, ProcId(2), Val::Int(0));
        let swapped = relabel_system_state(spec::ValuePerm::Swap, &s);
        assert_ne!(s, swapped);
        // Both value-orbit members canonicalize to the same rep, in
        // both representations.
        let (rep_a, _, _) = packed.canonical_with_sym(&packed.encode(&s));
        let (rep_b, _, _) = packed.canonical_with_sym(&packed.encode(&swapped));
        assert_eq!(rep_a, rep_b);
        let (deep_a, _, _) = canonical_system_state_with(group, &s);
        let (deep_b, _, _) = canonical_system_state_with(group, &swapped);
        assert_eq!(deep_a, deep_b);
        assert_eq!(packed.decode(&rep_a), deep_a);
        // The returned (σ, ν) maps the input onto the rep: σ · ν · s.
        for member in [&s, &swapped] {
            let (rep, sigma, nu) = canonical_system_state_with(group, member);
            assert_eq!(
                permute_system_state(&sigma, &relabel_system_state(nu, member)),
                rep
            );
        }
        // Exactly one of the two carries the swap.
        let nu_a = canonical_system_state_with(group, &s).2;
        let nu_b = canonical_system_state_with(group, &swapped).2;
        assert_ne!(nu_a, nu_b);
        // Value quotient refines into the plain quotient: under Full
        // the two members stay distinct.
        let full = PackedSystem::with_symmetry(&sys, SymmetryMode::Full);
        let (fa, _, _) = full.canonical_with_sym(&full.encode(&s));
        let (fb, _, _) = full.canonical_with_sym(&full.encode(&swapped));
        assert_ne!(fa, fb);
    }

    #[test]
    fn canonicalization_handles_nine_processes_without_enumeration() {
        // Regression: the brute-force canonicalizer materialized all n!
        // permutations and panicked past n = 8. The signature sort has
        // no such bound — an n = 9 state canonicalizes fine.
        let sys = direct_system(9, 1);
        assert!(PackedSystem::symmetric_system(&sys));
        let packed = PackedSystem::with_symmetry(&sys, SymmetryMode::Full);
        assert_eq!(packed.symmetry_mode(), SymmetryMode::Full);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(7), Val::Int(1));
        s = sys.init(&s, ProcId(2), Val::Int(0));
        s = sys.fail(&s, ProcId(5));
        let (rep, sigma, _) = packed.canonical_with_sym(&packed.encode(&s));
        assert_eq!(permute_system_state(&sigma, &s), packed.decode(&rep));
        // A transposed twin lands on the same representative.
        let t = Perm::from_map([0, 1, 7, 3, 4, 5, 6, 2, 8]);
        let (rep2, _, _) = packed.canonical_with_sym(&packed.encode(&permute_system_state(&t, &s)));
        assert_eq!(rep, rep2);
    }

    #[test]
    fn canonicalized_successors_are_equivariant() {
        // succ(π·s) = π·succ(s): expanding any orbit member and
        // canonicalizing the successors yields the same successor set.
        let sys = direct_system(3, 1);
        let packed = PackedSystem::with_symmetry(&sys, SymmetryMode::Full);
        let perms = Perm::all(3);
        let mut s = sys.single_initial_state();
        s = sys.init(&s, ProcId(0), Val::Int(1));
        s = sys.init(&s, ProcId(1), Val::Int(0));
        let base: Vec<_> = sys
            .tasks()
            .iter()
            .flat_map(|t| packed.succ_all(t, &packed.encode(&s)))
            .map(|(_, ps2)| packed.decode(&packed.canonical(ps2)))
            .collect();
        for p in &perms {
            let s2 = permute_system_state(p, &s);
            let moved: Vec<_> = sys
                .tasks()
                .iter()
                .flat_map(|t| packed.succ_all(t, &packed.encode(&s2)))
                .map(|(_, ps2)| packed.decode(&packed.canonical(ps2)))
                .collect();
            let a: std::collections::BTreeSet<_> = base.iter().collect();
            let b: std::collections::BTreeSet<_> = moved.iter().collect();
            assert_eq!(a, b, "perm {p:?}");
        }
    }

    #[test]
    #[should_panic(expected = "at most 32 processes")]
    fn rejects_unpackable_process_counts() {
        let endpoints: Vec<ProcId> = (0..33).map(ProcId).collect();
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, 32);
        let sys = CompleteSystem::new(DirectConsensus::new(SvcId(0)), 33, vec![Arc::new(obj)]);
        let _ = PackedSystem::new(&sys);
    }
}
