//! The action alphabet and task partition of the complete system
//! (paper Section 2.2.3).
//!
//! When the process, service and register automata are composed, the
//! invocation outputs `a_{i,c}` of process `P_i` match up with the
//! invocation inputs of service `S_c` (becoming internal after hiding),
//! and likewise for responses; `fail_i` is an input to `P_i` *and* to
//! every service with `i ∈ J_c`. The composed system's tasks are: one
//! task per process, and per service `S_c` one `i-perform` and one
//! `i-output` task for each `i ∈ J_c`, plus one `g-compute` task per
//! global task name.

use spec::{GlobalTaskId, Inv, ProcId, Resp, SvcId, Val};
use std::fmt;

/// An action of the complete system `C`.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Action {
    /// `init(v)_i` — consensus input from the external world (input).
    Init(ProcId, Val),
    /// `fail_i` — failure of process `i` (input to `P_i` and to every
    /// service with `i ∈ J_c`).
    Fail(ProcId),
    /// `decide(v)_i` — `P_i` announces its decision (output).
    Decide(ProcId, Val),
    /// A generic non-decide external output of `P_i` (output).
    Output(ProcId, Resp),
    /// `a_{i,c}` — `P_i` invokes `a` on `S_c` (internal after hiding).
    Invoke(ProcId, SvcId, Inv),
    /// An internal computation (or post-failure dummy) step of `P_i`.
    ProcStep(ProcId),
    /// `perform_{i,c}` — `S_c` services the head of `inv_buffer(i)`
    /// (internal).
    Perform(SvcId, ProcId),
    /// `b_{i,c}` — `S_c` delivers response `b` to `P_i` (internal after
    /// hiding).
    Respond(SvcId, ProcId, Resp),
    /// `compute_{g,c}` — a spontaneous global-task step of `S_c`
    /// (internal).
    Compute(SvcId, GlobalTaskId),
    /// `dummy_perform_{i,c}` (internal; enabled per Fig. 1).
    DummyPerform(SvcId, ProcId),
    /// `dummy_output_{i,c}` (internal; enabled per Fig. 1).
    DummyOutput(SvcId, ProcId),
    /// `dummy_compute_{g,c}` (internal; enabled per Fig. 4).
    DummyCompute(SvcId, GlobalTaskId),
}

impl Action {
    /// The task that structurally owns this action, or `None` for the
    /// two inputs (`init`, `fail`), which belong to no task. This is
    /// the composed system's task partition as a function: every
    /// locally controlled label carries its component and (for
    /// per-endpoint labels) its endpoint, so ownership is decided by
    /// the label alone — which is exactly what lets the contract
    /// auditor check the partition without exploring any product
    /// state.
    pub fn task_owner(&self) -> Option<Task> {
        match self {
            Action::Init(..) | Action::Fail(..) => None,
            Action::Decide(i, _) | Action::Output(i, _) | Action::ProcStep(i) => {
                Some(Task::Proc(*i))
            }
            Action::Invoke(i, _, _) => Some(Task::Proc(*i)),
            Action::Perform(c, i) | Action::DummyPerform(c, i) => Some(Task::Perform(*c, *i)),
            Action::Respond(c, i, _) | Action::DummyOutput(c, i) => Some(Task::Output(*c, *i)),
            Action::Compute(c, g) | Action::DummyCompute(c, g) => {
                Some(Task::Compute(*c, g.clone()))
            }
        }
    }

    /// Whether this is one of the `dummy` actions the canonical
    /// services use to satisfy fairness without progress.
    pub fn is_dummy(&self) -> bool {
        matches!(
            self,
            Action::DummyPerform(..) | Action::DummyOutput(..) | Action::DummyCompute(..)
        )
    }
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Init(i, v) => write!(f, "init({v})_{i}"),
            Action::Fail(i) => write!(f, "fail_{i}"),
            Action::Decide(i, v) => write!(f, "decide({v})_{i}"),
            Action::Output(i, r) => write!(f, "{r}_{i}"),
            Action::Invoke(i, c, inv) => write!(f, "{inv}_{{{i},{c}}}"),
            Action::ProcStep(i) => write!(f, "step_{i}"),
            Action::Perform(c, i) => write!(f, "perform_{{{i},{c}}}"),
            Action::Respond(c, i, r) => write!(f, "{r}_{{{i},{c}}}"),
            Action::Compute(c, g) => write!(f, "compute_{{{g},{c}}}"),
            Action::DummyPerform(c, i) => write!(f, "dummy_perform_{{{i},{c}}}"),
            Action::DummyOutput(c, i) => write!(f, "dummy_output_{{{i},{c}}}"),
            Action::DummyCompute(c, g) => write!(f, "dummy_compute_{{{g},{c}}}"),
        }
    }
}

/// A task of the complete system (Section 2.2.3).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Task {
    /// The single task of process `P_i` (all its locally controlled
    /// actions).
    Proc(ProcId),
    /// The `i-perform` task of `S_c`:
    /// `{perform_{i,c}, dummy_perform_{i,c}}`.
    Perform(SvcId, ProcId),
    /// The `i-output` task of `S_c`:
    /// `{b_{i,c} : b ∈ resps_c} ∪ {dummy_output_{i,c}}`.
    Output(SvcId, ProcId),
    /// The `g-compute` task of `S_c`:
    /// `{compute_{g,c}, dummy_compute_{g,c}}`.
    Compute(SvcId, GlobalTaskId),
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Task::Proc(i) => write!(f, "task({i})"),
            Task::Perform(c, i) => write!(f, "{i}-perform@{c}"),
            Task::Output(c, i) => write!(f, "{i}-output@{c}"),
            Task::Compute(c, g) => write!(f, "{g}-compute@{c}"),
        }
    }
}

/// A participant of an action: a process or a service (Section 2.2.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Participant {
    /// Process `P_i`.
    Proc(ProcId),
    /// Service (or register) `S_c`.
    Svc(SvcId),
}

impl Action {
    /// The participants of this action, excluding `fail` actions'
    /// broadcast semantics (a `fail_i` action is an input to `P_i` and
    /// to every service with `i ∈ J_c`; since the participant list for
    /// `fail` depends on the service topology, callers that need it use
    /// [`crate::build::CompleteSystem::fail_participants`]).
    ///
    /// For every non-`fail` action the result has at most two elements,
    /// and two-participant actions always pair a process with a service
    /// — the fact the hook analysis of Section 3.6 leans on.
    pub fn participants(&self) -> Vec<Participant> {
        match self {
            Action::Init(i, _)
            | Action::Decide(i, _)
            | Action::Output(i, _)
            | Action::ProcStep(i)
            | Action::Fail(i) => vec![Participant::Proc(*i)],
            Action::Invoke(i, c, _) | Action::Respond(c, i, _) => {
                vec![Participant::Proc(*i), Participant::Svc(*c)]
            }
            Action::Perform(c, _)
            | Action::Compute(c, _)
            | Action::DummyPerform(c, _)
            | Action::DummyOutput(c, _)
            | Action::DummyCompute(c, _) => vec![Participant::Svc(*c)],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn at_most_two_participants_and_proc_svc_pairing() {
        let actions = [
            Action::Init(ProcId(0), Val::Int(1)),
            Action::Decide(ProcId(1), Val::Int(0)),
            Action::Invoke(ProcId(0), SvcId(2), Inv::nullary("read")),
            Action::Perform(SvcId(1), ProcId(0)),
            Action::Respond(SvcId(1), ProcId(0), Resp::sym("ack")),
            Action::Compute(SvcId(0), GlobalTaskId::named("g")),
            Action::DummyPerform(SvcId(0), ProcId(0)),
        ];
        for a in &actions {
            let ps = a.participants();
            assert!(ps.len() <= 2, "{a:?}");
            if ps.len() == 2 {
                assert!(matches!(ps[0], Participant::Proc(_)));
                assert!(matches!(ps[1], Participant::Svc(_)));
            }
        }
    }

    #[test]
    fn dummies_are_flagged() {
        assert!(Action::DummyOutput(SvcId(0), ProcId(0)).is_dummy());
        assert!(!Action::Perform(SvcId(0), ProcId(0)).is_dummy());
    }

    #[test]
    fn display_forms() {
        assert_eq!(Action::Fail(ProcId(2)).to_string(), "fail_P2");
        assert_eq!(
            Task::Perform(SvcId(1), ProcId(0)).to_string(),
            "P0-perform@S1"
        );
        assert_eq!(
            Action::Decide(ProcId(0), Val::Int(1)).to_string(),
            "decide(1)_P0"
        );
    }

    #[test]
    fn tasks_are_totally_ordered() {
        let mut ts = [
            Task::Compute(SvcId(0), GlobalTaskId::named("g")),
            Task::Proc(ProcId(1)),
            Task::Proc(ProcId(0)),
            Task::Output(SvcId(0), ProcId(0)),
        ];
        ts.sort();
        assert_eq!(ts[0], Task::Proc(ProcId(0)));
    }
}
