//! Schedulers: initializations, failure injection, fair round-robin
//! variants and randomized runs.
//!
//! The paper's executions of interest are *input-first* (Section 3.2):
//! all `init()` inputs arrive before anything else. [`initialize`]
//! builds such a prefix. Failures are injected as `fail_i` inputs at
//! scheduler-chosen points. Two execution drivers are provided:
//!
//! * [`run_fair`] — deterministic round-robin over tasks with a
//!   pluggable *branch policy* resolving the nondeterminism inside a
//!   task (real vs dummy, nondeterministic `δ` outcomes). Round-robin
//!   runs are fair by construction, so their lassos witness fair
//!   nontermination and their quiescent endpoints are fair finite
//!   executions.
//! * [`run_random`] — uniformly random applicable-task selection with a
//!   seeded RNG, for statistical sweeps on systems too large to
//!   explore exhaustively.

use crate::action::{Action, Task};
use crate::build::{CompleteSystem, SystemState};
use crate::consensus::InputAssignment;
use crate::process::ProcessAutomaton;
use ioa::automaton::Automaton;
use ioa::execution::{Execution, Step};
use ioa::rng::{RandomSource, SplitMix64};
use std::collections::HashMap;

/// Applies the `init(v)_i` inputs of `assignment` (in `ProcId` order)
/// to the system's initial state — an *initialization* in the paper's
/// sense: a finite execution containing exactly one `init()_i` per
/// assigned process and nothing else.
pub fn initialize<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    assignment: &InputAssignment,
) -> SystemState<P::State> {
    let mut s = sys.single_initial_state();
    for (i, v) in &assignment.0 {
        s = sys.init(&s, *i, v.clone());
    }
    s
}

/// How to resolve the nondeterministic branches within one task.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BranchPolicy {
    /// Prefer real (non-dummy) actions, taking the canonical least
    /// branch — the determinization of Section 3.1.
    Canonical,
    /// Prefer dummy actions when offered — the adversary that silences
    /// services whose resilience has been exceeded.
    PreferDummy,
}

impl BranchPolicy {
    fn pick<S>(self, branches: Vec<(Action, S)>) -> Option<(Action, S)> {
        match self {
            BranchPolicy::Canonical => branches.into_iter().next(),
            BranchPolicy::PreferDummy => {
                let dummy_idx = branches.iter().position(|(a, _)| a.is_dummy());
                match dummy_idx {
                    Some(idx) => branches.into_iter().nth(idx),
                    None => branches.into_iter().next(),
                }
            }
        }
    }
}

/// How a [`run_fair`] drive ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FairOutcome {
    /// The stop predicate triggered.
    Stopped,
    /// A (state, scheduler-position) configuration repeated: the run is
    /// in a fair cycle. The payload is the step index where the cycle
    /// begins.
    Lasso(usize),
    /// No task was applicable: the run quiesced with budget to spare.
    /// A quiescent finite run is fair (no task is ever again enabled),
    /// so this is a *positive* termination verdict — distinct from
    /// [`FairOutcome::Budget`], which is inconclusive.
    Quiescent,
    /// The step budget ran out.
    Budget,
}

/// A completed fair run.
#[derive(Debug)]
pub struct FairRun<A: Automaton> {
    /// The generated execution (from the supplied start state).
    pub exec: Execution<A>,
    /// How it ended.
    pub outcome: FairOutcome,
}

/// Drives the automaton round-robin from `start` under `policy`,
/// injecting `fail_i` for each `(step, i)` in `failures` just before
/// the scheduler's step number `step`. Stops when `stop` holds, a
/// configuration repeats (fair lasso), no task is applicable
/// (quiescence), or `max_steps` scheduler-chosen steps elapse.
///
/// Step accounting: failure indices and `max_steps` both count
/// *scheduler-chosen* task steps only. Injected `fail` inputs appear in
/// the returned execution (so `exec.len()` can exceed `max_steps` by
/// `failures.len()`) but consume no budget and do not shift later
/// injection points.
///
/// Generic over the automaton so adversarial toys can exercise the
/// driver; the complete system instantiates `A = CompleteSystem<P>`.
pub fn run_fair<A, F>(
    sys: &A,
    start: A::State,
    policy: BranchPolicy,
    failures: &[(usize, spec::ProcId)],
    max_steps: usize,
    stop: F,
) -> FairRun<A>
where
    A: Automaton<Action = Action>,
    F: Fn(&A::State) -> bool,
{
    let tasks = sys.tasks();
    let mut exec = Execution::new(start);
    let mut pending_failures: Vec<(usize, spec::ProcId)> = failures.to_vec();
    pending_failures.sort();
    let mut pos = 0usize;
    let mut steps = 0usize;
    let mut seen: HashMap<(A::State, usize), usize> = HashMap::new();
    if stop(exec.last_state()) {
        return FairRun {
            exec,
            outcome: FairOutcome::Stopped,
        };
    }
    while steps < max_steps {
        // Inject any failures scheduled at or before this scheduler
        // step. Inputs are not steps: they consume no budget.
        while let Some(&(at, i)) = pending_failures.first() {
            if at <= steps {
                exec.apply_input(sys, Action::Fail(i));
                pending_failures.remove(0);
            } else {
                break;
            }
        }
        let config = (exec.last_state().clone(), pos);
        if pending_failures.is_empty() {
            if let Some(&idx) = seen.get(&config) {
                return FairRun {
                    exec,
                    outcome: FairOutcome::Lasso(idx),
                };
            }
            seen.insert(config, exec.len());
        }
        // One round-robin offer. The cheap `applicable` check prunes
        // disabled tasks without materializing their (empty) successor
        // vectors; an automaton whose `applicable` over-approximates
        // still falls through to the empty-pick `continue` below.
        let mut fired = false;
        for off in 0..tasks.len() {
            let t = &tasks[(pos + off) % tasks.len()];
            if !sys.applicable(t, exec.last_state()) {
                continue;
            }
            let branches = sys.succ_all(t, exec.last_state());
            if let Some((action, state)) = policy.pick(branches) {
                exec.push(Step {
                    task: Some(t.clone()),
                    action,
                    state,
                });
                pos = (pos + off + 1) % tasks.len();
                fired = true;
                break;
            }
        }
        if !fired {
            // Nothing is enabled and nothing ever will be (tasks only
            // get re-enabled by steps): the run quiesced.
            return FairRun {
                exec,
                outcome: FairOutcome::Quiescent,
            };
        }
        steps += 1;
        if stop(exec.last_state()) {
            return FairRun {
                exec,
                outcome: FairOutcome::Stopped,
            };
        }
    }
    FairRun {
        exec,
        outcome: FairOutcome::Budget,
    }
}

/// Drives the system along an explicit task script (the paper's "task
/// sequences specify executions", Section 3.1): each task's
/// policy-chosen branch is applied if applicable, inapplicable tasks
/// are skipped, and inputs in the script are applied directly.
///
/// This is the scheduler used to hand-drive exact interleavings in
/// tests and to replay the γ′ fragments of the Lemma 6/7 arguments.
pub fn run_script<A>(
    sys: &A,
    start: A::State,
    policy: BranchPolicy,
    script: &[ScriptStep],
) -> FairRun<A>
where
    A: Automaton<Action = Action, Task = Task>,
{
    let mut exec = Execution::new(start);
    for item in script {
        match item {
            ScriptStep::Do(t) => {
                let branches = sys.succ_all(t, exec.last_state());
                if let Some((action, state)) = policy.pick(branches) {
                    exec.push(Step {
                        task: Some(t.clone()),
                        action,
                        state,
                    });
                }
            }
            ScriptStep::Input(a) => {
                exec.apply_input(sys, a.clone());
            }
        }
    }
    FairRun {
        exec,
        outcome: FairOutcome::Stopped,
    }
}

/// Adapter turning any `FnMut() -> u64` into a [`RandomSource`].
///
/// This is the `ext-rand` seam: external generators (e.g. the `rand`
/// crate's `RngCore::next_u64`) plug into [`run_random_with`] through a
/// closure, without the workspace itself taking a registry dependency —
/// the build stays hermetic (`cargo build --offline`).
#[cfg(feature = "ext-rand")]
pub struct ExternalRng<F: FnMut() -> u64>(pub F);

#[cfg(feature = "ext-rand")]
impl<F: FnMut() -> u64> RandomSource for ExternalRng<F> {
    fn next_u64(&mut self) -> u64 {
        (self.0)()
    }
}

/// One step of a [`run_script`] schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ScriptStep {
    /// Offer a task (skipped when inapplicable).
    Do(Task),
    /// Apply an environment input (`init` or `fail`).
    Input(Action),
}

/// Drives the system by uniformly random choice among applicable tasks
/// and among each task's branches, injecting the given failures.
/// Deterministic for a fixed `seed`: the schedule is drawn from the
/// in-tree [`SplitMix64`] stream, so the same seed replays the same run
/// on every platform and toolchain (unlike `rand::StdRng`, whose
/// algorithm is unstable across crate versions).
pub fn run_random<A, F>(
    sys: &A,
    start: A::State,
    seed: u64,
    failures: &[(usize, spec::ProcId)],
    max_steps: usize,
    stop: F,
) -> FairRun<A>
where
    A: Automaton<Action = Action>,
    F: Fn(&A::State) -> bool,
{
    run_random_with(
        sys,
        start,
        SplitMix64::seed_from_u64(seed),
        failures,
        max_steps,
        stop,
    )
}

/// [`run_random`] generalized over the randomness source.
///
/// Always available in-tree (the `ext-rand` cargo feature only signals
/// that a build intends to plug in an external generator); any
/// implementor of [`ioa::rng::RandomSource`] — e.g. an adapter over a
/// `rand::RngCore` — can drive the schedule.
pub fn run_random_with<A, R, F>(
    sys: &A,
    start: A::State,
    mut rng: R,
    failures: &[(usize, spec::ProcId)],
    max_steps: usize,
    stop: F,
) -> FairRun<A>
where
    A: Automaton<Action = Action>,
    R: RandomSource,
    F: Fn(&A::State) -> bool,
{
    let tasks = sys.tasks();
    let mut exec = Execution::new(start);
    let mut pending: Vec<(usize, spec::ProcId)> = failures.to_vec();
    pending.sort();
    let mut steps = 0usize;
    if stop(exec.last_state()) {
        return FairRun {
            exec,
            outcome: FairOutcome::Stopped,
        };
    }
    while steps < max_steps {
        // Failure indices count scheduler-chosen steps, exactly as in
        // [`run_fair`]; injected inputs consume no budget.
        while let Some(&(at, i)) = pending.first() {
            if at <= steps {
                exec.apply_input(sys, Action::Fail(i));
                pending.remove(0);
            } else {
                break;
            }
        }
        let state = exec.last_state().clone();
        // Candidate tasks come from the cheap `applicable` predicate,
        // so only the drawn task materializes its successor vector. For
        // exact `applicable` implementations the candidate set (and
        // hence the RNG stream) is identical to filtering on nonempty
        // `succ_all`; an automaton whose `applicable` over-approximates
        // (buggy or adversarial) yields an empty branch list for the
        // drawn task, which is evicted and redrawn — degrading to
        // quiescence instead of panicking on an empty `gen_range`.
        let mut candidates: Vec<&A::Task> =
            tasks.iter().filter(|t| sys.applicable(t, &state)).collect();
        loop {
            if candidates.is_empty() {
                return FairRun {
                    exec,
                    outcome: FairOutcome::Quiescent,
                };
            }
            let idx = rng.gen_range(candidates.len());
            let t = candidates[idx];
            let mut branches = sys.succ_all(t, &state);
            if branches.is_empty() {
                candidates.swap_remove(idx);
                continue;
            }
            let pick = rng.gen_range(branches.len());
            let (action, next) = branches.swap_remove(pick);
            exec.push(Step {
                task: Some(t.clone()),
                action,
                state: next,
            });
            break;
        }
        steps += 1;
        if stop(exec.last_state()) {
            return FairRun {
                exec,
                outcome: FairOutcome::Stopped,
            };
        }
    }
    FairRun {
        exec,
        outcome: FairOutcome::Budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consensus::{all_obliged_decided, check_safety};
    use crate::process::direct::DirectConsensus;
    use services::atomic::CanonicalAtomicObject;
    use spec::seq::BinaryConsensus;
    use spec::{ProcId, SvcId, Val};
    use std::sync::Arc;

    fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
        let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
        CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
    }

    #[test]
    fn initialization_is_input_first() {
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 1);
        let s = initialize(&sys, &a);
        // Inputs are registered in process states but nothing else ran.
        assert!(sys.decided_values(&s).is_empty());
        assert!(s.failed.is_empty());
    }

    #[test]
    fn canonical_fair_run_decides() {
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 2);
        let s = initialize(&sys, &a);
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &[], 10_000, |st| {
            all_obliged_decided(&sys, st, &a)
        });
        assert_eq!(run.outcome, FairOutcome::Stopped);
        assert_eq!(check_safety(&sys, run.exec.last_state(), &a), None);
    }

    #[test]
    fn dummy_preferring_adversary_starves_after_resilience_exceeded() {
        // f = 0 object, one failure: the adversary silences the object
        // and the fair run lassos without the survivor deciding.
        let sys = direct(2, 0);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(0, ProcId(1))],
            50_000,
            |st| all_obliged_decided(&sys, st, &a),
        );
        match run.outcome {
            FairOutcome::Lasso(_) => {
                assert_eq!(sys.decision(run.exec.last_state(), ProcId(0)), None);
            }
            other => panic!("expected a fair non-deciding lasso, got {other:?}"),
        }
    }

    #[test]
    fn canonical_run_survives_failures_within_resilience() {
        // Wait-free object (f = 2), 3 processes, 2 failures: survivor
        // still decides even under the dummy-preferring adversary,
        // because |failed| = 2 ≤ f keeps the survivor's dummies off.
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 3);
        let s = initialize(&sys, &a);
        let run = run_fair(
            &sys,
            s,
            BranchPolicy::PreferDummy,
            &[(0, ProcId(1)), (0, ProcId(2))],
            50_000,
            |st| sys.decision(st, ProcId(0)).is_some(),
        );
        assert_eq!(run.outcome, FairOutcome::Stopped);
        assert_eq!(
            sys.decision(run.exec.last_state(), ProcId(0)),
            Some(Val::Int(1))
        );
    }

    #[test]
    fn scripted_runs_follow_the_script_exactly() {
        use crate::action::Task;
        let sys = direct(2, 1);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let script = vec![
            ScriptStep::Do(Task::Proc(ProcId(0))),
            ScriptStep::Do(Task::Perform(spec::SvcId(0), ProcId(0))),
            ScriptStep::Do(Task::Output(spec::SvcId(0), ProcId(0))),
            ScriptStep::Do(Task::Proc(ProcId(0))),
        ];
        let run = run_script(&sys, s, BranchPolicy::Canonical, &script);
        assert_eq!(run.exec.len(), 4);
        // P0 (input 1) raced alone: it decided its own input.
        assert_eq!(
            sys.decision(run.exec.last_state(), ProcId(0)),
            Some(Val::Int(1))
        );
        assert_eq!(sys.decision(run.exec.last_state(), ProcId(1)), None);
    }

    #[test]
    fn scripted_inputs_and_inapplicable_tasks() {
        use crate::action::{Action, Task};
        let sys = direct(2, 1);
        let script = vec![
            // Inapplicable perform (no invocation yet): skipped.
            ScriptStep::Do(Task::Perform(spec::SvcId(0), ProcId(0))),
            ScriptStep::Input(Action::Init(ProcId(0), Val::Int(0))),
            ScriptStep::Input(Action::Fail(ProcId(1))),
        ];
        let run = run_script(
            &sys,
            sys.single_initial_state(),
            BranchPolicy::Canonical,
            &script,
        );
        assert_eq!(run.exec.len(), 2, "only the two inputs produced steps");
        assert!(run.exec.last_state().failed.contains(&ProcId(1)));
    }

    /// A single-task chain `n -> n-1 -> … -> 0` that quiesces at 0:
    /// the smallest automaton whose tasks can all become inapplicable.
    #[derive(Debug)]
    struct Countdown;

    impl Automaton for Countdown {
        type State = u8;
        type Action = Action;
        type Task = Task;

        fn initial_states(&self) -> Vec<u8> {
            vec![2]
        }
        fn tasks(&self) -> Vec<Task> {
            vec![Task::Proc(ProcId(0))]
        }
        fn succ_all(&self, _t: &Task, s: &u8) -> Vec<(Action, u8)> {
            if *s == 0 {
                Vec::new()
            } else {
                vec![(Action::ProcStep(ProcId(0)), s - 1)]
            }
        }
        fn apply_input(&self, s: &u8, a: &Action) -> Option<u8> {
            matches!(a, Action::Fail(_)).then_some(*s)
        }
        fn kind(&self, a: &Action) -> ioa::automaton::ActionKind {
            match a {
                Action::Init(..) | Action::Fail(..) => ioa::automaton::ActionKind::Input,
                _ => ioa::automaton::ActionKind::Internal,
            }
        }
    }

    /// An adversarial automaton whose `applicable` over-approximates
    /// `succ_all`: it claims its task is enabled but offers no branch.
    #[derive(Debug)]
    struct Liar;

    impl Automaton for Liar {
        type State = u8;
        type Action = Action;
        type Task = Task;

        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn tasks(&self) -> Vec<Task> {
            vec![Task::Proc(ProcId(0))]
        }
        fn succ_all(&self, _t: &Task, _s: &u8) -> Vec<(Action, u8)> {
            Vec::new()
        }
        fn applicable(&self, _t: &Task, _s: &u8) -> bool {
            true // the lie
        }
        fn apply_input(&self, _s: &u8, _a: &Action) -> Option<u8> {
            None
        }
        fn kind(&self, _a: &Action) -> ioa::automaton::ActionKind {
            ioa::automaton::ActionKind::Internal
        }
    }

    #[test]
    fn quiescence_is_not_reported_as_budget() {
        // Regression: both drivers used to answer Budget when no task
        // was applicable, conflating "fairly terminated" with "gave up".
        let run = run_fair(&Countdown, 2, BranchPolicy::Canonical, &[], 100, |_| false);
        assert_eq!(run.outcome, FairOutcome::Quiescent);
        assert_eq!(run.exec.len(), 2, "the chain ran to its end");
        let run = run_random(&Countdown, 2, 7, &[], 100, |_| false);
        assert_eq!(run.outcome, FairOutcome::Quiescent);
        assert_eq!(run.exec.len(), 2);
    }

    #[test]
    fn lying_applicable_degrades_to_quiescent() {
        // Regression: run_random trusted `applicable` and then called
        // gen_range(branches.len()) on the empty branch list — a panic.
        let run = run_random(&Liar, 0, 7, &[], 10, |_| false);
        assert_eq!(run.outcome, FairOutcome::Quiescent);
        assert!(run.exec.is_empty());
    }

    #[test]
    fn failure_injections_do_not_consume_budget_or_shift() {
        // Regression: injected fail inputs used to count against
        // max_steps and to advance the injection clock, so
        // [(0, p1), (1, p2)] fired back-to-back before any task step
        // and the budget silently shrank by the number of failures.
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 1);
        let s = initialize(&sys, &a);
        let failures = [(0, ProcId(1)), (1, ProcId(2))];
        let run = run_fair(&sys, s, BranchPolicy::Canonical, &failures, 3, |_| false);
        assert_eq!(run.outcome, FairOutcome::Budget);
        let steps = run.exec.steps();
        assert_eq!(steps[0].action, Action::Fail(ProcId(1)), "fail at step 0");
        assert!(steps[1].task.is_some(), "a scheduler step separates them");
        assert_eq!(steps[2].action, Action::Fail(ProcId(2)), "fail at step 1");
        let chosen = steps.iter().filter(|st| st.task.is_some()).count();
        assert_eq!(chosen, 3, "the full budget went to scheduler steps");
        assert_eq!(run.exec.len(), 5, "both inputs are still in the trace");
    }

    #[test]
    fn random_failure_injection_uses_scheduler_step_indices() {
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 1);
        let s = initialize(&sys, &a);
        let failures = [(0, ProcId(1)), (1, ProcId(2))];
        let run = run_random(&sys, s, 42, &failures, 3, |_| false);
        assert_eq!(run.outcome, FairOutcome::Budget);
        let steps = run.exec.steps();
        assert_eq!(steps[0].action, Action::Fail(ProcId(1)));
        assert!(steps[1].task.is_some());
        assert_eq!(steps[2].action, Action::Fail(ProcId(2)));
        assert_eq!(steps.iter().filter(|st| st.task.is_some()).count(), 3);
    }

    #[test]
    fn random_runs_are_reproducible_and_safe() {
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 1);
        for seed in 0..10u64 {
            let s = initialize(&sys, &a);
            let run = run_random(&sys, s, seed, &[], 5_000, |st| {
                all_obliged_decided(&sys, st, &a)
            });
            assert_eq!(run.outcome, FairOutcome::Stopped, "seed {seed}");
            assert_eq!(check_safety(&sys, run.exec.last_state(), &a), None);
        }
        // Reproducibility: same seed, same trace length.
        let s1 = initialize(&sys, &a);
        let r1 = run_random(&sys, s1, 42, &[], 5_000, |_| false);
        let s2 = initialize(&sys, &a);
        let r2 = run_random(&sys, s2, 42, &[], 5_000, |_| false);
        assert_eq!(r1.exec.len(), r2.exec.len());
        assert_eq!(r1.exec.last_state(), r2.exec.last_state());
    }
}
