//! The complete system `C` (paper Section 2.2): deterministic process
//! automata composed with canonical resilient services and reliable
//! registers.
//!
//! * [`process::ProcessAutomaton`] — the paper's process model
//!   (Section 2.2.1): deterministic, one always-enabled task, outputs
//!   disabled after `fail_i`, decisions recorded in the state.
//! * [`action`] — the composed system's action alphabet and task
//!   partition, with the *participants* relation of Section 2.2.3
//!   (every non-`fail` action has at most two participants).
//! * [`build::CompleteSystem`] — the composition itself, implementing
//!   the `ioa::Automaton` trait so that the kernel's exploration,
//!   fairness and refinement machinery applies unchanged.
//! * [`consensus`] — the consensus problem as execution predicates:
//!   agreement, validity, k-agreement and the *modified termination*
//!   condition of Section 2.2.4.
//! * [`sched`] — input-first initializations, failure injection and
//!   fair/random schedulers.
//!
//! # Example
//!
//! ```
//! use system::build::{CompleteSystem, SystemState};
//! use system::process::direct::DirectConsensus;
//! use services::atomic::CanonicalAtomicObject;
//! use spec::seq::BinaryConsensus;
//! use spec::ProcId;
//! use std::sync::Arc;
//!
//! // Two processes sharing one 1-resilient (wait-free) consensus object.
//! let obj = CanonicalAtomicObject::wait_free(
//!     Arc::new(BinaryConsensus),
//!     [ProcId(0), ProcId(1)],
//! );
//! let sys = CompleteSystem::new(DirectConsensus::new(spec::SvcId(0)), 2, vec![Arc::new(obj)]);
//! let _s0: SystemState<_> = sys.single_initial_state();
//! ```

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

pub mod action;
pub mod build;
pub mod consensus;
mod effect_cache;
pub mod packed;
pub mod pretty;
pub mod process;
pub mod sched;

pub use action::{Action, Participant, Task};
pub use build::{CompleteSystem, SystemState};
pub use packed::{PackedState, PackedSystem};
pub use process::{ProcAction, ProcessAutomaton};
