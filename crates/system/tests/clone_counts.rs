//! Clone-count regression tests for the component-interned successor
//! path.
//!
//! The representation contract: generating a successor rebuilds only
//! the touched component. On the packed path ([`PackedSystem`]) that
//! means a `succ_all` call deep-clones at most one service component
//! per returned successor (the δ branch's single state clone) and never
//! deep-clones a whole [`system::SystemState`]. The thread-local
//! counters in `services::state::clones` and `system::build::clones`
//! make this checkable; if either bound regresses, successor generation
//! has re-grown a hidden deep copy.

use ioa::automaton::Automaton;
use services::atomic::CanonicalAtomicObject;
use spec::seq::BinaryConsensus;
use spec::{ProcId, SvcId};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use system::consensus::InputAssignment;
use system::packed::PackedSystem;
use system::process::direct::DirectConsensus;
use system::sched::initialize;
use system::CompleteSystem;

/// The n = 3 doomed-atomic substrate (replicated from `protocols`,
/// which this crate cannot depend on).
fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
}

#[test]
fn packed_successors_never_clone_more_than_one_component() {
    let sys = direct(3, 1);
    let packed = PackedSystem::new(&sys);
    let root = packed.encode(&initialize(&sys, &InputAssignment::monotone(3, 1)));
    let tasks = sys.tasks();

    // Walk the whole reachable packed space, checking every succ_all
    // call's clone deltas.
    let mut seen = HashSet::new();
    let mut queue = VecDeque::from([root]);
    let mut states = 0usize;
    let mut edges = 0usize;
    while let Some(ps) = queue.pop_front() {
        if !seen.insert(ps.clone()) {
            continue;
        }
        states += 1;
        for t in &tasks {
            services::state::clones::reset();
            system::build::clones::reset();
            let succ = packed.succ_all(t, &ps);
            let svc_clones = services::state::clones::count();
            let sys_clones = system::build::clones::count();
            assert_eq!(
                sys_clones, 0,
                "packed succ_all({t:?}) deep-cloned a whole SystemState"
            );
            assert!(
                svc_clones <= succ.len() as u64,
                "packed succ_all({t:?}) cloned {svc_clones} service components \
                 for {} successors — more than one per successor",
                succ.len()
            );
            edges += succ.len();
            for (_, ps2) in succ {
                if !seen.contains(&ps2) {
                    queue.push_back(ps2);
                }
            }
        }
    }
    assert!(states > 100, "walked a nontrivial space ({states} states)");
    assert!(edges > states, "substrate has branching ({edges} edges)");
}

#[test]
fn deep_successors_pay_one_system_clone_per_branch() {
    // The deep path's invariant (what apply_delta guarantees): exactly
    // one SystemState clone per returned successor, never more.
    let sys = direct(3, 1);
    let s = initialize(&sys, &InputAssignment::monotone(3, 1));
    for t in sys.tasks() {
        system::build::clones::reset();
        let succ = sys.succ_all(&t, &s);
        assert_eq!(
            system::build::clones::count(),
            succ.len() as u64,
            "deep succ_all({t:?}) should clone exactly once per successor"
        );
    }
}
