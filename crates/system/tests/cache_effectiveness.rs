//! Cache-effectiveness regression gate for the transition-effect
//! memoization layer (DESIGN §2.1.3).
//!
//! The contract: a [`PackedSystem`]'s effect cache is keyed on interned
//! component ids, so re-sweeping the same reachable space must serve
//! almost every expansion straight from the tables. If the warm-sweep
//! hit rate regresses below the floor, the cache has stopped covering
//! the transition structure (a key got too coarse, an entry stopped
//! being stored, or an invalidation crept in) and the memoization layer
//! is no longer buying anything.

use ioa::automaton::Automaton;
use services::atomic::CanonicalAtomicObject;
use spec::seq::BinaryConsensus;
use spec::{ProcId, SvcId};
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use system::consensus::InputAssignment;
use system::packed::{PackedState, PackedSystem};
use system::process::direct::DirectConsensus;
use system::sched::initialize;
use system::CompleteSystem;

/// The n = 3 doomed-atomic substrate (replicated from `protocols`,
/// which this crate cannot depend on).
fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
}

/// One full BFS sweep of the packed reachable space, expanding every
/// task at every state (the same work an exploration performs).
fn sweep(sys: &CompleteSystem<DirectConsensus>, packed: &PackedSystem<'_, DirectConsensus>) {
    let root = packed.encode(&initialize(sys, &InputAssignment::monotone(3, 1)));
    let tasks = sys.tasks();
    let mut seen: HashSet<PackedState> = HashSet::new();
    let mut queue = VecDeque::from([root]);
    while let Some(ps) = queue.pop_front() {
        if !seen.insert(ps.clone()) {
            continue;
        }
        for t in &tasks {
            for (_, ps2) in packed.succ_all(t, &ps) {
                if !seen.contains(&ps2) {
                    queue.push_back(ps2);
                }
            }
        }
    }
    assert!(seen.len() > 100, "walked a nontrivial space");
}

#[test]
fn warm_sweep_hit_rate_stays_above_the_floor() {
    let sys = direct(3, 1);
    let packed = PackedSystem::new(&sys);
    assert!(packed.cached(), "PackedSystem::new enables the cache");

    // Cold sweep: populates the tables. Even here most lookups hit,
    // because distinct system states share component states.
    sweep(&sys, &packed);
    let cold = packed.cache_stats().expect("cache enabled");
    assert!(cold.lookups() > 0, "the sweep consulted the cache");
    assert!(cold.misses > 0, "a cold cache must miss at least once");

    // Warm sweep over the identical space: every (component id, task)
    // pair was already computed, so the expansions are pure table
    // lookups. The 0.9 floor is deliberately below the observed ~1.0
    // to keep the gate robust, mirroring the clone-count gate.
    sweep(&sys, &packed);
    let warm = packed.cache_stats().expect("cache enabled").since(&cold);
    assert!(
        warm.hit_rate() >= 0.9,
        "warm sweep hit rate {:.4} fell below the 0.9 floor \
         ({} hits / {} lookups)",
        warm.hit_rate(),
        warm.hits,
        warm.lookups()
    );
}

#[test]
fn cached_expansions_never_deep_clone_after_warmup() {
    // On a hit, a successor is spliced together from interned ids:
    // no SystemState clone, no service-component clone. Only misses
    // pay the (at most one) component clone the clone-count gate
    // allows.
    let sys = direct(3, 1);
    let packed = PackedSystem::new(&sys);
    sweep(&sys, &packed); // warm every table
    let before = packed.cache_stats().expect("cache enabled");

    let root = packed.encode(&initialize(&sys, &InputAssignment::monotone(3, 1)));
    services::state::clones::reset();
    system::build::clones::reset();
    for t in sys.tasks() {
        let _ = packed.succ_all(&t, &root);
    }
    assert_eq!(
        system::build::clones::count(),
        0,
        "a warm expansion deep-cloned a whole SystemState"
    );
    assert_eq!(
        services::state::clones::count(),
        0,
        "a warm expansion cloned a service component"
    );
    let after = packed.cache_stats().expect("cache enabled").since(&before);
    assert_eq!(after.misses, 0, "the root's tasks were all warmed");
    assert!(after.hits > 0);
}

#[test]
fn uncached_packed_system_reports_no_stats() {
    let sys = direct(3, 1);
    let packed = PackedSystem::new_uncached(&sys);
    assert!(!packed.cached());
    assert_eq!(packed.cache_stats(), None);
}
