//! Randomized-but-deterministic tests for the complete system: safety
//! under random schedules, scheduler determinism, and composition
//! invariants.
//!
//! Formerly proptest-based; rewritten onto the in-tree
//! [`ioa::rng::SplitMix64`] generator so the suite runs hermetically
//! (no registry dependency) and every case is replayable from its seed.

use ioa::automaton::Automaton;
use ioa::rng::{RandomSource, SplitMix64};
use services::atomic::CanonicalAtomicObject;
use spec::seq::BinaryConsensus;
use spec::{ProcId, SvcId, Val};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::consensus::{check_safety, InputAssignment};
use system::process::direct::DirectConsensus;
use system::sched::{initialize, run_fair, run_random, BranchPolicy};

fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
}

fn random_bits(g: &mut SplitMix64, n: usize) -> InputAssignment {
    InputAssignment::of((0..n).map(|i| (ProcId(i), Val::Int(i64::from(g.gen_bool())))))
}

#[test]
fn random_schedules_never_violate_safety() {
    let mut g = SplitMix64::seed_from_u64(0x5175_0001);
    for _ in 0..48 {
        let seed = g.next_u64();
        let sys = direct(3, 2);
        let a = random_bits(&mut g, 3);
        let failures: Vec<(usize, ProcId)> = if g.gen_bool() {
            vec![(g.gen_range(20), ProcId(g.gen_range(3)))]
        } else {
            Vec::new()
        };
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &failures, 5_000, |_| false);
        // Every state along the run satisfies agreement + validity.
        for st in run.exec.states() {
            assert_eq!(check_safety(&sys, st, &a), None);
        }
    }
}

#[test]
fn fair_runs_are_deterministic_per_policy() {
    let mut g = SplitMix64::seed_from_u64(0x5175_0002);
    for _ in 0..4 {
        let sys = direct(2, 1);
        let a = random_bits(&mut g, 2);
        for policy in [BranchPolicy::Canonical, BranchPolicy::PreferDummy] {
            let r1 = run_fair(&sys, initialize(&sys, &a), policy, &[], 2_000, |_| false);
            let r2 = run_fair(&sys, initialize(&sys, &a), policy, &[], 2_000, |_| false);
            assert_eq!(r1.exec.len(), r2.exec.len());
            assert_eq!(r1.exec.last_state(), r2.exec.last_state());
        }
    }
}

#[test]
fn failed_processes_never_act_after_failure() {
    let mut g = SplitMix64::seed_from_u64(0x5175_0003);
    for _ in 0..48 {
        let seed = g.next_u64();
        let victim = g.gen_range(3);
        let sys = direct(3, 2);
        let a = InputAssignment::monotone(3, 2);
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &[(0, ProcId(victim))], 3_000, |_| false);
        // After the fail, the victim's only actions are ProcStep dummies
        // (no Invoke, Decide or Output).
        let mut failed = false;
        for step in run.exec.steps() {
            match &step.action {
                system::Action::Fail(p) if p.0 == victim => failed = true,
                system::Action::Invoke(p, _, _)
                | system::Action::Decide(p, _)
                | system::Action::Output(p, _)
                    if p.0 == victim =>
                {
                    assert!(!failed, "failed process produced an output");
                }
                _ => {}
            }
        }
    }
}

#[test]
fn init_and_fail_commute_on_distinct_processes() {
    for i in 0usize..3 {
        for j in 0usize..3 {
            if i == j {
                continue;
            }
            for v in 0i64..2 {
                let sys = direct(3, 1);
                let s0 = sys.single_initial_state();
                let a = sys.fail(&sys.init(&s0, ProcId(i), Val::Int(v)), ProcId(j));
                let b = sys.init(&sys.fail(&s0, ProcId(j)), ProcId(i), Val::Int(v));
                assert_eq!(a, b);
            }
        }
    }
}

#[test]
fn applicable_tasks_are_exactly_the_ones_with_successors() {
    let mut g = SplitMix64::seed_from_u64(0x5175_0004);
    for _ in 0..48 {
        let seed = g.next_u64();
        let sys = direct(2, 0);
        let a = InputAssignment::monotone(2, 1);
        let s = initialize(&sys, &a);
        let run = run_random(&sys, s, seed, &[], 200, |_| false);
        let last = run.exec.last_state();
        for t in sys.tasks() {
            assert_eq!(sys.applicable(&t, last), !sys.succ_all(&t, last).is_empty());
        }
    }
}

#[test]
fn monotone_assignment_values_are_binary_and_ordered() {
    for n in 1usize..8 {
        for ones in 0usize..9 {
            let ones = ones.min(n);
            let a = InputAssignment::monotone(n, ones);
            for i in 0..n {
                let expected = i64::from(i < ones);
                assert_eq!(a.input(ProcId(i)), Some(&Val::Int(expected)));
            }
        }
    }
}
