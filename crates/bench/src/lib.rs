//! Shared helpers for the Criterion benchmark harness.
//!
//! Each bench target in `benches/` regenerates one experiment from
//! `EXPERIMENTS.md` (one per paper theorem/figure/section); this crate
//! hosts the builders they share so the measured closures stay free of
//! setup noise.

use protocols::doomed::doomed_atomic;
use system::build::CompleteSystem;
use system::process::direct::DirectConsensus;

/// The doomed atomic-object candidates, one per `(n, f)` scale point
/// used across benches.
pub fn doomed_atomic_scales() -> Vec<(&'static str, CompleteSystem<DirectConsensus>)> {
    vec![
        ("n=2,f=0", doomed_atomic(2, 0)),
        ("n=3,f=0", doomed_atomic(3, 0)),
        ("n=3,f=1", doomed_atomic(3, 1)),
        ("n=4,f=2", doomed_atomic(4, 2)),
    ]
}

/// The claimed-resilience parameter `f` matching each entry of
/// [`doomed_atomic_scales`].
pub fn doomed_atomic_fs() -> Vec<usize> {
    vec![0, 0, 1, 2]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build() {
        assert_eq!(doomed_atomic_scales().len(), doomed_atomic_fs().len());
    }
}
