//! Shared helpers for the benchmark suite.
//!
//! Each bench target in `benches/` regenerates one experiment from
//! `EXPERIMENTS.md` (one per paper theorem/figure/section); this crate
//! hosts the builders they share so the measured closures stay free of
//! setup noise, plus the [`harness`] the targets run on and the
//! [`json`] emitter that records medians for the perf trajectory
//! (`BENCH_explore.json`).
//!
//! The harness is hand-rolled (no criterion): the workspace must build
//! with `cargo build --offline` in an environment with no registry
//! access, so external dev-dependencies are off the table. The
//! trade-off is acceptable — the measured kernels run for milliseconds
//! to seconds, where a median over ten samples is a stable statistic.

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

use protocols::doomed::doomed_atomic;
use system::build::CompleteSystem;
use system::process::direct::DirectConsensus;

/// The doomed atomic-object candidates, one per `(n, f)` scale point
/// used across benches.
pub fn doomed_atomic_scales() -> Vec<(&'static str, CompleteSystem<DirectConsensus>)> {
    vec![
        ("n=2,f=0", doomed_atomic(2, 0)),
        ("n=3,f=0", doomed_atomic(3, 0)),
        ("n=3,f=1", doomed_atomic(3, 1)),
        ("n=4,f=2", doomed_atomic(4, 2)),
    ]
}

/// The claimed-resilience parameter `f` matching each entry of
/// [`doomed_atomic_scales`].
pub fn doomed_atomic_fs() -> Vec<usize> {
    vec![0, 0, 1, 2]
}

/// The scale points a default bench run measures: everything up to
/// n=3. The n=4 point explores a state space orders of magnitude
/// larger; opt in with `BENCH_FULL=1`. The harness logs what it skips
/// so a truncated run is never mistaken for a full one.
pub fn bench_scales() -> Vec<(&'static str, CompleteSystem<DirectConsensus>, usize)> {
    let full = std::env::var("BENCH_FULL")
        .map(|v| v == "1")
        .unwrap_or(false);
    let all: Vec<_> = doomed_atomic_scales()
        .into_iter()
        .zip(doomed_atomic_fs())
        .map(|((label, sys), f)| (label, sys, f))
        .collect();
    if full {
        all
    } else {
        let (kept, dropped): (Vec<_>, Vec<_>) =
            all.into_iter().partition(|(l, _, _)| !l.starts_with("n=4"));
        for (l, _, _) in &dropped {
            eprintln!("[bench] skipping scale {l} (set BENCH_FULL=1 to include it)");
        }
        kept
    }
}

pub mod harness {
    //! A minimal wall-clock benchmark harness: warm up once, time
    //! `sample_size` runs, report the median.

    use std::hint::black_box;
    use std::time::Instant;

    /// Timing result of one labeled benchmark: raw per-run samples in
    /// nanoseconds, in measurement order, plus optional workload
    /// annotations attached via [`Group::annotate_last`].
    #[derive(Debug, Clone)]
    pub struct Measurement {
        pub group: String,
        pub label: String,
        pub samples_ns: Vec<u128>,
        /// States processed per run — turns the median into a
        /// throughput (`states_per_sec`) in the JSON report.
        pub states: Option<u64>,
        /// Transition-effect cache hit rate observed during the timed
        /// runs, when the measured automaton exposes one.
        pub hit_rate: Option<f64>,
        /// Peak interned-state count of the structure one run builds
        /// (the graph store only grows, so final = peak).
        pub peak_states: Option<u64>,
        /// Inline arena footprint in bytes of the structure one run
        /// builds (see `ValenceMap::footprint` for the accounting).
        pub arena_bytes: Option<u64>,
    }

    impl Measurement {
        /// Median of the samples (lower middle for even counts).
        #[must_use]
        pub fn median_ns(&self) -> u128 {
            let mut s = self.samples_ns.clone();
            s.sort_unstable();
            s[(s.len() - 1) / 2]
        }

        #[must_use]
        pub fn min_ns(&self) -> u128 {
            *self.samples_ns.iter().min().expect("non-empty samples")
        }

        #[must_use]
        pub fn max_ns(&self) -> u128 {
            *self.samples_ns.iter().max().expect("non-empty samples")
        }

        /// Median throughput in states per second, when the workload
        /// size was annotated.
        #[must_use]
        pub fn states_per_sec(&self) -> Option<f64> {
            let states = self.states? as f64;
            let median = self.median_ns() as f64;
            (median > 0.0).then(|| states * 1e9 / median)
        }
    }

    /// Render nanoseconds with an adaptive unit, e.g. `"12.34 ms"`.
    #[must_use]
    pub fn fmt_ns(ns: u128) -> String {
        let ns = ns as f64;
        if ns < 1e3 {
            format!("{ns:.0} ns")
        } else if ns < 1e6 {
            format!("{:.2} µs", ns / 1e3)
        } else if ns < 1e9 {
            format!("{:.2} ms", ns / 1e6)
        } else {
            format!("{:.2} s", ns / 1e9)
        }
    }

    /// A named group of benchmarks (one per experiment), mirroring the
    /// `criterion` group API the targets previously used.
    pub struct Group {
        name: String,
        sample_size: usize,
        warmup: usize,
        results: Vec<Measurement>,
    }

    impl Group {
        /// Create a group. Sample count defaults to 10, overridable
        /// with the `BENCH_SAMPLES` environment variable; warm-up
        /// iterations default to 1, overridable with `BENCH_WARMUP`.
        #[must_use]
        pub fn new(name: &str) -> Group {
            let sample_size = std::env::var("BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(10);
            let warmup = std::env::var("BENCH_WARMUP")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(1);
            Group {
                name: name.to_string(),
                sample_size,
                warmup,
                results: Vec::new(),
            }
        }

        /// Override the per-benchmark sample count.
        pub fn sample_size(&mut self, n: usize) {
            assert!(n > 0, "sample_size must be positive");
            self.sample_size = n;
        }

        /// Override the number of untimed warm-up iterations run
        /// before sampling starts. Benches that measure steady-state
        /// behavior (warm caches) raise this; `0` measures the very
        /// first run, cold.
        pub fn warmup(&mut self, n: usize) {
            self.warmup = n;
        }

        /// Run `f` untimed `warmup` times, then `sample_size` timed
        /// times, recording wall-clock nanoseconds per run.
        pub fn bench<T, F: FnMut() -> T>(&mut self, label: &str, mut f: F) {
            for _ in 0..self.warmup {
                black_box(f());
            }
            let mut samples_ns = Vec::with_capacity(self.sample_size);
            for _ in 0..self.sample_size {
                let t0 = Instant::now();
                black_box(f());
                samples_ns.push(t0.elapsed().as_nanos());
            }
            let m = Measurement {
                group: self.name.clone(),
                label: label.to_string(),
                samples_ns,
                states: None,
                hit_rate: None,
                peak_states: None,
                arena_bytes: None,
            };
            eprintln!(
                "{}/{}: median {} (min {}, max {}, {} samples)",
                self.name,
                label,
                fmt_ns(m.median_ns()),
                fmt_ns(m.min_ns()),
                fmt_ns(m.max_ns()),
                m.samples_ns.len()
            );
            self.results.push(m);
        }

        /// Attach workload annotations to the most recent
        /// [`Group::bench`] call: how many states one run processes
        /// (turning its median into a throughput) and the cache hit
        /// rate observed while sampling. Call right after `bench`.
        ///
        /// # Panics
        ///
        /// Panics if no benchmark has run in this group yet.
        pub fn annotate_last(&mut self, states: Option<u64>, hit_rate: Option<f64>) {
            let m = self
                .results
                .last_mut()
                .expect("annotate_last follows a bench call");
            m.states = states;
            // A non-finite rate means the measurement window was empty
            // (e.g. warm-up absorbed every cache lookup): that is "no
            // data", not a rate — record nothing.
            m.hit_rate = hit_rate.filter(|r| r.is_finite());
            if let Some(r) = m.hit_rate {
                eprintln!("{}/{}: hit rate {r:.4}", m.group, m.label);
            }
            if let Some(sps) = m.states_per_sec() {
                eprintln!("{}/{}: {sps:.0} states/sec", m.group, m.label);
            }
        }

        /// Attach memory annotations to the most recent
        /// [`Group::bench`] call: the peak interned-state count and the
        /// inline arena byte footprint of whatever one run builds.
        /// Rows without the annotation emit JSON `null`s, so older
        /// benches stay valid.
        ///
        /// # Panics
        ///
        /// Panics if no benchmark has run in this group yet.
        pub fn annotate_memory(&mut self, peak_states: Option<u64>, arena_bytes: Option<u64>) {
            let m = self
                .results
                .last_mut()
                .expect("annotate_memory follows a bench call");
            m.peak_states = peak_states;
            m.arena_bytes = arena_bytes;
            if let (Some(p), Some(b)) = (peak_states, arena_bytes) {
                eprintln!(
                    "{}/{}: {p} interned states, {b} arena bytes",
                    m.group, m.label
                );
            }
        }

        /// Finish the group. If `BENCH_JSON_OUT` names a directory,
        /// write `<dir>/<group>.json` with one row per measurement (the
        /// input the perf-trajectory files like `BENCH_explore.json`
        /// are assembled from).
        pub fn finish(self) -> Vec<Measurement> {
            if let Ok(dir) = std::env::var("BENCH_JSON_OUT") {
                let variant =
                    std::env::var("BENCH_VARIANT").unwrap_or_else(|_| "current".to_string());
                let rows: Vec<crate::json::Row> = self
                    .results
                    .iter()
                    .map(|m| crate::json::Row {
                        bench: self.name.clone(),
                        scale: m.label.clone(),
                        variant: variant.clone(),
                        median_ns: m.median_ns(),
                        min_ns: m.min_ns(),
                        max_ns: m.max_ns(),
                        samples: m.samples_ns.len(),
                        states_per_sec: m.states_per_sec(),
                        hit_rate: m.hit_rate,
                        peak_interned_states: m.peak_states,
                        arena_bytes: m.arena_bytes,
                    })
                    .collect();
                let path = format!("{dir}/{}.json", self.name);
                let body = crate::json::report(&self.name, &rows);
                if let Err(e) =
                    std::fs::create_dir_all(&dir).and_then(|()| std::fs::write(&path, body))
                {
                    eprintln!("[bench] failed to write {path}: {e}");
                } else {
                    eprintln!("[bench] wrote {path}");
                }
            }
            self.results
        }
    }
}

pub mod json {
    //! A tiny hand-rolled JSON writer (no serde — the workspace builds
    //! offline with no registry access). Emits exactly the shape the
    //! perf-trajectory files (`BENCH_explore.json`) use: an experiment
    //! name plus an array of measurement rows.

    /// One benchmark measurement row.
    #[derive(Debug, Clone, PartialEq)]
    pub struct Row {
        pub bench: String,
        pub scale: String,
        /// Which implementation was measured (e.g. `"before"` /
        /// `"after"` across a refactor, or `"current"`).
        pub variant: String,
        pub median_ns: u128,
        pub min_ns: u128,
        pub max_ns: u128,
        pub samples: usize,
        /// Median exploration throughput; `null` when the bench did
        /// not annotate its workload size.
        pub states_per_sec: Option<f64>,
        /// Transition-effect cache hit rate during sampling; `null`
        /// when the measured automaton has no cache.
        pub hit_rate: Option<f64>,
        /// Peak interned-state count of the structure one run builds;
        /// `null` when the bench did not annotate memory.
        pub peak_interned_states: Option<u64>,
        /// Inline arena byte footprint of that structure; `null` when
        /// the bench did not annotate memory.
        pub arena_bytes: Option<u64>,
    }

    /// Render an optional integer as a JSON number or `null`.
    fn opt_u64(v: Option<u64>) -> String {
        v.map_or_else(|| "null".to_string(), |x| x.to_string())
    }

    /// Render an optional float as a JSON number or `null`. Non-finite
    /// values (the `NaN` of a rate over an empty window, the `inf` of
    /// a throughput over a sub-ns sample) have no JSON representation
    /// and would corrupt the document — they render as `null` too.
    fn opt_f64(v: Option<f64>, decimals: usize) -> String {
        match v {
            Some(x) if x.is_finite() => format!("{x:.decimals$}"),
            _ => "null".to_string(),
        }
    }

    /// Escape a string for inclusion in a JSON string literal.
    #[must_use]
    pub fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }

    /// Render a full report document, pretty-printed with 2-space
    /// indent and a trailing newline (stable output for diffs).
    #[must_use]
    pub fn report(experiment: &str, rows: &[Row]) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"experiment\": \"{}\",\n", escape(experiment)));
        out.push_str("  \"unit\": \"ns\",\n");
        out.push_str("  \"rows\": [\n");
        for (i, r) in rows.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bench\": \"{}\", \"scale\": \"{}\", \"variant\": \"{}\", \
                 \"median_ns\": {}, \"min_ns\": {}, \"max_ns\": {}, \"samples\": {}, \
                 \"states_per_sec\": {}, \"hit_rate\": {}, \
                 \"peak_interned_states\": {}, \"arena_bytes\": {}}}{}\n",
                escape(&r.bench),
                escape(&r.scale),
                escape(&r.variant),
                r.median_ns,
                r.min_ns,
                r.max_ns,
                r.samples,
                opt_f64(r.states_per_sec, 1),
                opt_f64(r.hit_rate, 4),
                opt_u64(r.peak_interned_states),
                opt_u64(r.arena_bytes),
                if i + 1 == rows.len() { "" } else { "," }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_build() {
        assert_eq!(doomed_atomic_scales().len(), doomed_atomic_fs().len());
    }

    #[test]
    fn median_is_order_insensitive() {
        let m = harness::Measurement {
            group: "g".into(),
            label: "l".into(),
            samples_ns: vec![5, 1, 9, 3, 7],
            states: None,
            hit_rate: None,
            peak_states: None,
            arena_bytes: None,
        };
        assert_eq!(m.median_ns(), 5);
        assert_eq!(m.min_ns(), 1);
        assert_eq!(m.max_ns(), 9);
        assert_eq!(m.states_per_sec(), None);
        let even = harness::Measurement {
            group: "g".into(),
            label: "l".into(),
            samples_ns: vec![4, 2, 8, 6],
            states: Some(8),
            hit_rate: Some(0.95),
            peak_states: Some(8),
            arena_bytes: Some(1024),
        };
        assert_eq!(even.median_ns(), 4, "lower middle for even counts");
        // 8 states in a 4 ns median = 2e9 states/sec.
        assert_eq!(even.states_per_sec(), Some(2e9));
    }

    #[test]
    fn json_report_shape_and_escaping() {
        let rows = vec![
            json::Row {
                bench: "e2_hook_search".into(),
                scale: "n=3,f=1".into(),
                variant: "before".into(),
                median_ns: 123,
                min_ns: 100,
                max_ns: 150,
                samples: 10,
                states_per_sec: None,
                hit_rate: None,
                peak_interned_states: None,
                arena_bytes: None,
            },
            json::Row {
                bench: "e15_effect_cache".into(),
                scale: "n=3,f=1".into(),
                variant: "warm".into(),
                median_ns: 200,
                min_ns: 190,
                max_ns: 220,
                samples: 10,
                states_per_sec: Some(1234.56),
                hit_rate: Some(0.987_654),
                peak_interned_states: Some(83),
                arena_bytes: Some(16_384),
            },
        ];
        let doc = json::report("explore-core", &rows);
        assert!(doc.contains("\"experiment\": \"explore-core\""));
        assert!(doc.contains("\"median_ns\": 123"));
        assert!(doc.contains("\"states_per_sec\": null, \"hit_rate\": null"));
        assert!(doc.contains("\"peak_interned_states\": null, \"arena_bytes\": null"));
        assert!(doc.contains("\"states_per_sec\": 1234.6, \"hit_rate\": 0.9877"));
        assert!(doc.contains("\"peak_interned_states\": 83, \"arena_bytes\": 16384"));
        assert!(doc.ends_with("}\n"));
        assert_eq!(json::escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn non_finite_annotations_emit_null() {
        // A NaN hit rate (empty measurement window) or an infinite
        // throughput (sub-ns sample) must render as JSON `null`, never
        // as the invalid tokens `NaN`/`inf`.
        let rows = vec![json::Row {
            bench: "b".into(),
            scale: "s".into(),
            variant: "v".into(),
            median_ns: 0,
            min_ns: 0,
            max_ns: 0,
            samples: 1,
            states_per_sec: Some(f64::INFINITY),
            hit_rate: Some(f64::NAN),
            peak_interned_states: None,
            arena_bytes: None,
        }];
        let doc = json::report("degenerate", &rows);
        assert!(doc.contains("\"states_per_sec\": null, \"hit_rate\": null"));
        assert!(!doc.contains("NaN") && !doc.contains("inf"));
    }

    #[test]
    fn sub_ns_medians_have_no_throughput() {
        // A 0 ns median (the clock cannot resolve the run) must not
        // produce an infinite states/sec figure.
        let m = harness::Measurement {
            group: "g".into(),
            label: "l".into(),
            samples_ns: vec![0, 0, 0],
            states: Some(100),
            hit_rate: None,
            peak_states: None,
            arena_bytes: None,
        };
        assert_eq!(m.states_per_sec(), None);
    }
}
