//! E13 (extension) — layer-synchronous parallel exploration of `G(C)`.
//!
//! Regenerates: the wall-clock cost of the full reachable sweep of
//! `G(C)` (the substrate of every valence/hook/witness pass) at
//! worker-thread counts 1, 2 and 4. The parallel explorer is
//! bit-identical to the sequential one by construction (see DESIGN.md
//! §2.2), so the only observable difference is time — which this bench
//! records into the perf trajectory (`BENCH_explore.json`).
//!
//! Expected shape: on a multi-core host, expansion (successor
//! generation + hashing) scales with workers while the sequential
//! merge (intern + edge bookkeeping) sets an Amdahl ceiling; on a
//! single-core host the thread variants measure pure orchestration
//! overhead (chunking, scoped spawn/join, batch buffering) and should
//! sit within a few percent of `threads=1`.

use bench_suite::bench_scales;
use bench_suite::harness::Group;
use ioa::explore::{ExploreOptions, ExploredGraph};
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::initialize;

fn main() {
    let mut group = Group::new("e13_parallel_explore");
    let opts = ExploreOptions {
        max_states: 5_000_000,
        skip_self_loops: true,
        threads: 1,
        symmetry: ioa::SymmetryMode::Off,
        // This bench measures the layer-synchronous path specifically
        // (e18 covers work-stealing); pin it against the env default.
        frontier: ioa::FrontierMode::Layered,
    };
    for (label, sys, _f) in bench_scales() {
        // Explore from the first mixed initialization α_1 — the
        // bivalent root every analysis pass (Lemma 4 onward) sweeps.
        let n = sys.process_count();
        let roots = vec![initialize(&sys, &InputAssignment::monotone(n, 1))];
        let seq = ExploredGraph::explore_with(&sys, roots.clone(), opts);
        eprintln!(
            "[E13] {label}: {} states, {} edges, peak frontier {}",
            seq.len(),
            seq.stats().edges,
            seq.stats().peak_frontier
        );
        for threads in [1usize, 2, 4] {
            group.bench(&format!("explore_{label}_threads={threads}"), || {
                black_box(ExploredGraph::explore_with(
                    &sys,
                    roots.clone(),
                    opts.with_threads(threads),
                ))
            });
        }
        // Guard the headline claim inside the bench itself: the
        // parallel sweep must reproduce the sequential graph's stats.
        let par = ExploredGraph::explore_with(&sys, roots.clone(), opts.with_threads(4));
        assert_eq!(seq.stats(), par.stats(), "{label}: parallel sweep diverged");
    }
    group.finish();
}
