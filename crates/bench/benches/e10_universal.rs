//! E10 (extension) — universality of consensus (Herlihy [11]): cost of
//! driving the one-shot universal construction to completion.
//!
//! Regenerates: wait-free test&set / fetch&add objects implemented
//! from wait-free consensus logs, answering every process under the
//! dummy-preferring adversary.
//!
//! Expected shape: decision cost grows with `n` (log length × replica
//! replay), and the survivor is always answered even under `n − 1`
//! failures.

use bench_suite::harness::Group;
use protocols::universal::{build, UniversalProcess};
use spec::seq::TestAndSet;
use spec::ProcId;
use std::hint::black_box;
use std::sync::Arc;
use system::consensus::InputAssignment;
use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

fn main() {
    let mut group = Group::new("e10_universal");
    for n in [2usize, 3, 4] {
        let sys = build(Arc::new(TestAndSet), n);
        let a = InputAssignment::of((0..n).map(|i| {
            (
                ProcId(i),
                UniversalProcess::request(&TestAndSet::test_and_set()),
            )
        }));
        let run = run_fair(
            &sys,
            initialize(&sys, &a),
            BranchPolicy::Canonical,
            &[],
            200_000,
            |st| (0..n).all(|i| sys.decision(st, ProcId(i)).is_some()),
        );
        eprintln!(
            "[E10] n={n}: all answered in {} steps (one winner: {})",
            run.exec.len(),
            matches!(run.outcome, FairOutcome::Stopped)
        );
        group.bench(&format!("test_and_set_n{n}"), || {
            black_box(run_fair(
                &sys,
                initialize(&sys, &a),
                BranchPolicy::Canonical,
                &[],
                200_000,
                |st| (0..n).all(|i| sys.decision(st, ProcId(i)).is_some()),
            ))
        });
    }
    group.finish();
}
