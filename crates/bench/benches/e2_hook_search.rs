//! E2 — Lemma 5 / Figs. 2–3: the hook construction.
//!
//! Regenerates: the Fig. 3 round-robin path construction from the
//! bivalent initialization, ending in a hook, for each doomed
//! atomic-object scale point. The valence map is prebuilt so the
//! measurement isolates the construction itself.
//!
//! Expected shape: a hook exists at every scale; search cost grows with
//! the state count but remains far below exhaustive valence mapping.

use analysis::hook::{find_hook, HookOutcome};
use analysis::init::{find_bivalent_init, InitOutcome};
use bench_suite::bench_scales;
use bench_suite::harness::Group;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("e2_hook_search");
    for (label, sys, _f) in bench_scales() {
        let InitOutcome::Bivalent { map, .. } = find_bivalent_init(&sys, 2_000_000).unwrap() else {
            panic!("{label}: expected a bivalent init")
        };
        match find_hook(&sys, &map, 20_000) {
            HookOutcome::Hook(h) => eprintln!(
                "[E2] {label}: hook e={} e'={} (α after {} tasks, v={:?})",
                h.e,
                h.e_prime,
                h.alpha_tasks.len(),
                h.v
            ),
            other => eprintln!("[E2] {label}: unexpected outcome {other:?}"),
        }
        group.bench(label, || black_box(find_hook(&sys, &map, 20_000)));
    }
    group.finish();
}
