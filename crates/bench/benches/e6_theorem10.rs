//! E6 — Theorem 10: the impossibility pipeline over all-connected
//! failure-aware services (the perfect failure detector of Fig. 9).
//!
//! Regenerates: the witness for the rotating-coordinator candidate over
//! one all-connected `f`-resilient detector, plus ablation A2: the
//! Section 6.3 pairwise topology survives the identical adversary.
//!
//! Expected shape: the all-connected candidate is refuted through the
//! Lemma 4 adjacent-pair argument (its failure-free behaviour is
//! coordinator-deterministic, so no bivalent initialization exists);
//! the pairwise control decides.

use analysis::witness::{find_witness, Bounds};
use bench_suite::harness::Group;
use protocols::{doomed::doomed_general, fd_boost};
use spec::ProcId;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

fn main() {
    let mut group = Group::new("e6_theorem10");
    for (label, n, f) in [("n=2,f=0", 2usize, 0usize), ("n=3,f=1", 3, 1)] {
        let sys = doomed_general(n, f);
        let w = find_witness(&sys, f, Bounds::default()).unwrap();
        eprintln!("[E6] {label}: {}", w.headline());
        group.bench(label, || {
            black_box(find_witness(&sys, f, Bounds::default()).unwrap())
        });
    }

    // Ablation A2: the pairwise topology under the same adversary.
    let boosted = fd_boost::build(2);
    let a = InputAssignment::monotone(2, 1);
    let run = run_fair(
        &boosted,
        initialize(&boosted, &a),
        BranchPolicy::PreferDummy,
        &[(0, ProcId(0))],
        200_000,
        |st| boosted.decision(st, ProcId(1)).is_some(),
    );
    eprintln!(
        "[E6/A2] pairwise topology, same adversary: {:?} (survivor decided: {})",
        run.outcome,
        matches!(run.outcome, FairOutcome::Stopped)
    );
    group.bench("ablation_pairwise_survives", || {
        let run = run_fair(
            &boosted,
            initialize(&boosted, &a),
            BranchPolicy::PreferDummy,
            &[(0, ProcId(0))],
            200_000,
            |st| boosted.decision(st, ProcId(1)).is_some(),
        );
        black_box(run)
    });
    group.finish();
}
