//! E8 — Theorem 11 / Appendix B: the canonical consensus object meets
//! the axiomatic spec, and how fast it does so.
//!
//! Regenerates: fair round-robin drives of the canonical `f`-resilient
//! consensus object (Fig. 1) across endpoint counts — every endpoint
//! invokes, every live endpoint is answered — plus the exhaustive
//! agreement check over the full reachable space.
//!
//! Expected shape: responses scale linearly with endpoints; the
//! exhaustive reachable space stays modest and agreement never breaks.

use bench_suite::harness::Group;
use ioa::automaton::Automaton;
use ioa::explore::reach;
use ioa::fairness::run_round_robin;
use services::atomic::CanonicalAtomicObject;
use services::automaton::{ServiceAutomaton, SvcAction};
use spec::seq::BinaryConsensus;
use spec::ProcId;
use std::hint::black_box;
use std::sync::Arc;

fn loaded(n: usize, f: usize) -> (ServiceAutomaton, services::SvcState) {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let aut = ServiceAutomaton::new(Arc::new(CanonicalAtomicObject::new(
        Arc::new(BinaryConsensus),
        endpoints,
        f,
    )));
    let mut s = aut.initial_states().remove(0);
    for i in 0..n {
        s = aut
            .apply_input(
                &s,
                &SvcAction::Invoke(ProcId(i), BinaryConsensus::init((i % 2) as i64)),
            )
            .expect("init");
    }
    (aut, s)
}

fn main() {
    let mut group = Group::new("e8_canonical_obj");
    for n in [2usize, 4, 8, 16] {
        let (aut, s) = loaded(n, n - 1);
        let run = run_round_robin(&aut, s.clone(), 100_000, |_| false);
        let responses = run
            .exec
            .steps()
            .iter()
            .filter(|st| matches!(st.action, SvcAction::Respond(..)))
            .count();
        eprintln!("[E8] n={n}: fair drive answered {responses}/{n} endpoints");
        group.bench(&format!("fair_drive_n{n}"), || {
            black_box(run_round_robin(&aut, s.clone(), 100_000, |_| false))
        });
    }

    // Exhaustive agreement scan (n = 3 keeps the space tiny).
    let (aut, s) = loaded(3, 1);
    let r = reach(&aut, vec![s.clone()], 1_000_000);
    eprintln!(
        "[E8] exhaustive n=3: {} states, truncated={}, all values ≤ singleton: {}",
        r.len(),
        r.truncated(),
        r.states()
            .iter()
            .all(|st| st.val.as_set().map(|w| w.len() <= 1).unwrap_or(false))
    );
    group.bench("exhaustive_agreement_n3", || {
        black_box(reach(&aut, vec![s.clone()], 1_000_000).len())
    });
    group.finish();
}
