//! E9 — Fig. 1 semantics: atomicity as trace inclusion.
//!
//! Regenerates: the Section 2.1.4 "implements" check — every finite
//! trace of the direct-protocol system is a trace of the canonical
//! consensus object — via the on-the-fly subset construction.
//!
//! Expected shape: inclusion holds; the subset construction's cost is
//! dominated by the implementation's interleavings.

use bench_suite::harness::Group;
use ioa::refine::{check_trace_inclusion, Inclusion};
use protocols::doomed::doomed_atomic;
use services::atomic::CanonicalAtomicObject;
use services::automaton::{ServiceAutomaton, SvcAction};
use spec::seq::BinaryConsensus;
use spec::{ProcId, Val};
use std::hint::black_box;
use std::sync::Arc;
use system::Action;

fn external(a: &Action) -> Option<SvcAction> {
    match a {
        Action::Init(i, v) => Some(SvcAction::Invoke(
            *i,
            BinaryConsensus::init(v.as_int().expect("binary input")),
        )),
        Action::Decide(i, v) => Some(SvcAction::Respond(
            *i,
            BinaryConsensus::decide(v.as_int().expect("binary decision")),
        )),
        Action::Fail(i) => Some(SvcAction::Fail(*i)),
        _ => None,
    }
}

fn main() {
    let mut group = Group::new("e9_trace_inclusion");
    for (label, n) in [("n=2", 2usize), ("n=3", 3)] {
        let imp = doomed_atomic(n, n - 1);
        let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
        let spec_obj = ServiceAutomaton::new(Arc::new(CanonicalAtomicObject::new(
            Arc::new(BinaryConsensus),
            endpoints,
            n - 1,
        )));
        let mut inputs = Vec::new();
        for i in 0..n {
            inputs.push(Action::Init(ProcId(i), Val::Int(0)));
            inputs.push(Action::Init(ProcId(i), Val::Int(1)));
            inputs.push(Action::Fail(ProcId(i)));
        }
        let verdict = check_trace_inclusion(&imp, &spec_obj, external, &inputs, n + 1, 3_000_000);
        eprintln!(
            "[E9] {label}: implementation traces ⊆ canonical traces: {}",
            matches!(verdict, Inclusion::Holds)
        );
        group.bench(label, || {
            black_box(check_trace_inclusion(
                &imp,
                &spec_obj,
                external,
                &inputs,
                n + 1,
                3_000_000,
            ))
        });
    }
    group.finish();
}
