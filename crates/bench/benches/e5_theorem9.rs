//! E5 — Theorem 9: the impossibility pipeline over failure-oblivious
//! services (totally ordered broadcast, Figs. 4–7).
//!
//! Regenerates: the witness for the TOB-based consensus candidate at
//! `(n, f) ∈ {(2,0), (3,1)}`.
//!
//! Expected shape: a hook refutation pivoting on the broadcast service,
//! failing `f + 1` processes.

use analysis::witness::{find_witness, Bounds};
use bench_suite::harness::Group;
use protocols::doomed::doomed_oblivious;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("e5_theorem9");
    for (label, n, f) in [("n=2,f=0", 2, 0), ("n=3,f=1", 3, 1)] {
        let sys = doomed_oblivious(n, f);
        let w = find_witness(&sys, f, Bounds::default()).unwrap();
        eprintln!("[E5] {label}: {}", w.headline());
        group.bench(label, || {
            black_box(find_witness(&sys, f, Bounds::default()).unwrap())
        });
    }
    group.finish();
}
