//! E7 — Section 6.3: the failure-detector boost, certified.
//!
//! Regenerates: consensus decisions under maximal failures (`n − 1`
//! processes killed) for the pairwise-FD rotating-coordinator system,
//! and the per-sweep certification cost at `n = 3`.
//!
//! Expected shape: every run decides; certification passes at
//! resilience `n − 1` although no individual service tolerates more
//! than one failure.

use analysis::resilience::{all_binary_assignments, certify, CertifyConfig};
use bench_suite::harness::Group;
use protocols::fd_boost;
use spec::ProcId;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

fn main() {
    let mut group = Group::new("e7_fd_boost");

    // Maximal-failure single runs across n.
    for n in [2usize, 3, 4, 5] {
        let sys = fd_boost::build(n);
        let a = InputAssignment::monotone(n, 1);
        let failures: Vec<(usize, ProcId)> = (0..n - 1).map(|i| (i, ProcId(i))).collect();
        let run = run_fair(
            &sys,
            initialize(&sys, &a),
            BranchPolicy::PreferDummy,
            &failures,
            2_000_000,
            |st| sys.decision(st, ProcId(n - 1)).is_some(),
        );
        eprintln!(
            "[E7] n={n}: kill {} processes → survivor decides: {} ({} steps)",
            n - 1,
            matches!(run.outcome, FairOutcome::Stopped),
            run.exec.len()
        );
        group.bench(&format!("max_failures_n{n}"), || {
            let run = run_fair(
                &sys,
                initialize(&sys, &a),
                BranchPolicy::PreferDummy,
                &failures,
                2_000_000,
                |st| sys.decision(st, ProcId(n - 1)).is_some(),
            );
            black_box(run)
        });
    }

    // Certification sweep at n = 3.
    let sys = fd_boost::build(3);
    let mut cfg = CertifyConfig::new(1, 2, all_binary_assignments(3));
    cfg.failure_timings = vec![0];
    cfg.max_steps = 400_000;
    cfg.policies = vec![BranchPolicy::PreferDummy];
    let report = certify(&sys, &cfg);
    eprintln!(
        "[E7] certify n=3 at resilience 2: {} runs, {} violations",
        report.runs,
        report.violations.len()
    );
    group.bench("certify_n3_resilience2", || black_box(certify(&sys, &cfg)));
    group.finish();
}
