//! E18 — sharded concurrent interning + work-stealing exploration.
//!
//! Regenerates: the wall-clock cost of the full packed `G(C)` sweep
//! under the work-stealing frontier (DESIGN §2.1.5) at worker counts
//! 1, 2, 4 and 8, against the sequential layer-synchronous explorer as
//! the baseline. Each row is annotated with the interned state count,
//! so the JSON carries states/sec alongside the wall-clock.
//!
//! Expected shape: the layered explorer's merge thread is a hard
//! scaling ceiling (E13 plateaus by 4 workers); the work-stealing
//! frontier has no barrier and no merge, so states/sec should keep
//! climbing to 8 workers on a machine with the cores, with `n=4,f=2`
//! (the biggest doomed-atomic sweep) showing the headline win.
//! `threads=1` measures the pure overhead of the sharded store and the
//! renumbering pass over the sequential path — the parity gate at the
//! bottom pins it to the same ballpark (generous 2× bound, so a noisy
//! single-sample CI smoke run cannot flake; the honest ratio is
//! printed and recorded in the JSON either way).
//!
//! Every work-stealing run is checked against the sequential state
//! count inside the timed closure — a diverging sweep fails the bench
//! rather than producing a fast wrong number.

use bench_suite::harness::Group;
use ioa::explore::{ExploreOptions, ExploredGraph};
use ioa::{FrontierMode, SymmetryMode};
use protocols::doomed::doomed_atomic;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::packed::PackedSystem;
use system::sched::initialize;

const SCALES: [(usize, usize); 2] = [(3, 1), (4, 2)];

fn opts(threads: usize, frontier: FrontierMode) -> ExploreOptions {
    ExploreOptions {
        max_states: 5_000_000,
        skip_self_loops: true,
        threads,
        symmetry: SymmetryMode::Off,
        frontier,
    }
}

fn main() {
    let mut group = Group::new("e18_work_stealing");
    for (n, f) in SCALES {
        let sys = doomed_atomic(n, f);
        let root = initialize(&sys, &InputAssignment::monotone(n, 1));
        // One shared packed system per scale: the effect cache warms on
        // the reference sweep, so every timed variant measures the
        // explorer (intern + frontier + CSR), not effect computation.
        let packed = PackedSystem::with_symmetry(&sys, SymmetryMode::Off);
        let proot = packed.encode(&root);
        let seq = ExploredGraph::explore_with(
            &packed,
            vec![proot.clone()],
            opts(1, FrontierMode::Layered),
        );
        let states = seq.len() as u64;
        eprintln!(
            "[E18] n={n},f={f}: {} states, {} edges",
            seq.len(),
            seq.stats().edges
        );
        group.bench(&format!("seq_n={n},f={f}"), || {
            black_box(ExploredGraph::explore_with(
                &packed,
                vec![proot.clone()],
                opts(1, FrontierMode::Layered),
            ))
        });
        group.annotate_last(Some(states), None);
        for threads in [1usize, 2, 4, 8] {
            group.bench(&format!("ws_n={n},f={f},threads={threads}"), || {
                let g = ExploredGraph::explore_with(
                    &packed,
                    vec![proot.clone()],
                    opts(threads, FrontierMode::WorkSteal),
                );
                assert_eq!(g.len() as u64, states, "work-stealing sweep diverged");
                black_box(g.stats().edges)
            });
            group.annotate_last(Some(states), None);
        }
    }
    let results = group.finish();

    // Parity gate (exercised by CI's bench-smoke job): one sharded
    // worker must stay in the same ballpark as the sequential
    // explorer. The bound is deliberately loose — smoke runs take one
    // debug-build sample — while the printed ratio records the honest
    // number for the perf trajectory.
    for (n, f) in SCALES {
        let find = |label: String| {
            results
                .iter()
                .find(|m| m.label == label)
                .expect("measurement recorded above")
        };
        let seq = find(format!("seq_n={n},f={f}"));
        let ws1 = find(format!("ws_n={n},f={f},threads=1"));
        let ratio = ws1.median_ns() as f64 / seq.median_ns().max(1) as f64;
        eprintln!("[E18] n={n},f={f}: ws(threads=1) / seq wall-clock ratio {ratio:.3}");
        assert!(
            ratio < 2.0,
            "n={n},f={f}: single-worker sharded exploration is {ratio:.2}x sequential — \
             the work-stealing frontier regressed the uncontended path"
        );
    }
}
