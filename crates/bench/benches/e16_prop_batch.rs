//! E16 (extension) — fused property-batch evaluation.
//!
//! Regenerates: the cost of deciding a fixed set of eight temporal
//! properties over the explored failure-free graph `G(C)` of the
//! doomed-atomic sweep, two ways:
//!
//! * `sequential_*` — one `analysis::prop::evaluate` call per
//!   property: each pays its own forward scan of the CSR (atom
//!   evaluation + edge materialization) and, where needed, its own
//!   backward fixpoint;
//! * `fused_*` — one `evaluate_batch` call: all properties share a
//!   single forward scan and a single multi-lane backward sweep
//!   (`ioa::fixpoint::backward_universal`), the invariant the CI
//!   pass-counter gate enforces.
//!
//! Both regimes must return identical evaluations (asserted every
//! run), and the fused regime must win end to end (asserted on the
//! medians). Rows are annotated with `states_per_sec` where "states"
//! counts property-state decisions (graph states × properties), so
//! the two variants are directly comparable.

use analysis::prop::{evaluate, evaluate_batch, parse_props, system_vocab, Prop, SystemGraph};
use analysis::valence::ValenceMap;
use bench_suite::bench_scales;
use bench_suite::harness::Group;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::process::direct::DirectConsensus;
use system::sched::initialize;

const PROPS: &str = "always(safe); \
                     always(no_failures); \
                     ef(bivalent); \
                     ef(decided(0)); \
                     ef(decided(1)); \
                     af(decided); \
                     leads_to(bivalent, decided); \
                     !ef(failed(0))";

fn main() {
    let mut group = Group::new("e16_prop_batch");
    let mut medians: Vec<(String, u128, u128)> = Vec::new();
    for (label, sys, _f) in bench_scales() {
        let n = sys.process_count();
        let assignment = InputAssignment::monotone(n, 1);
        let root = initialize(&sys, &assignment);
        let map = ValenceMap::build_with(&sys, root, 5_000_000, 1).expect("ample budget");
        let graph = SystemGraph::new(&sys, &map);
        let vocab = system_vocab::<DirectConsensus>(assignment.clone());
        let props: Vec<Prop<'_, _>> = parse_props(PROPS, &vocab).expect("property set parses");
        let work = (map.state_count() * props.len()) as u64;

        // The two regimes agree — checked once up front, then asserted
        // (cheaply, on verdicts) inside every timed run.
        let fused = evaluate_batch(&graph, &props);
        assert_eq!(fused.passes.forward, 1);
        assert!(fused.passes.backward <= 1);
        let solo: Vec<_> = props.iter().map(|p| evaluate(&graph, p)).collect();
        assert_eq!(
            fused.results, solo,
            "{label}: fused and sequential disagree"
        );

        group.bench(&format!("sequential_{label}"), || {
            let evs: Vec<_> = props.iter().map(|p| evaluate(&graph, p)).collect();
            black_box(evs.len())
        });
        group.annotate_last(Some(work), None);

        group.bench(&format!("fused_{label}"), || {
            let report = evaluate_batch(&graph, &props);
            debug_assert_eq!(report.results.len(), props.len());
            black_box(report.results.len())
        });
        group.annotate_last(Some(work), None);

        eprintln!(
            "[E16] {label}: {} states × {} properties",
            map.state_count(),
            props.len()
        );
    }
    let results = group.finish();
    for pair in results.chunks(2) {
        let [seq, fused] = pair else { unreachable!() };
        let speedup = seq.median_ns() as f64 / fused.median_ns() as f64;
        eprintln!(
            "[E16] {} vs {}: fused {speedup:.2}x faster",
            fused.label, seq.label
        );
        medians.push((fused.label.clone(), seq.median_ns(), fused.median_ns()));
    }
    for (label, seq, fused) in medians {
        assert!(
            fused < seq,
            "{label}: fused batch ({fused} ns) must beat sequential ({seq} ns)"
        );
    }
}
