//! E14 (extension) — component-interned system states.
//!
//! Regenerates: the cost of the full reachable sweep of `G(C)` under
//! the two state representations — the deep representation
//! (`SystemState`, one tree clone per successor) and the packed one
//! (`PackedSystem`, a flat vector of component ids with each component
//! interned once; DESIGN §2.1.2). Three rows per scale point:
//!
//! * `explore_deep_*` — the pre-PR baseline, exploring
//!   `CompleteSystem` directly (matches e13's `threads=1` rows);
//! * `explore_packed_*` — the packed sweep alone;
//! * `explore_packed_decode_*` — packed sweep plus decoding every
//!   state back to `SystemState`, which is exactly what
//!   `ValenceMap::build` now does — the honest end-to-end comparison.
//!
//! Alongside wall-clock medians the bench prints a deep-clone census
//! from the thread-local counters (`system::build::clones`,
//! `services::state::clones`), and asserts both representations
//! produce identical exploration stats.

use bench_suite::bench_scales;
use bench_suite::harness::Group;
use ioa::explore::{ExploreOptions, ExploredGraph};
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::packed::PackedSystem;
use system::sched::initialize;

fn main() {
    let mut group = Group::new("e14_component_interning");
    let opts = ExploreOptions {
        max_states: 5_000_000,
        skip_self_loops: true,
        threads: 1,
        symmetry: ioa::SymmetryMode::Off,
        frontier: ioa::FrontierMode::Layered,
    };
    for (label, sys, _f) in bench_scales() {
        let n = sys.process_count();
        let root = initialize(&sys, &InputAssignment::monotone(n, 1));

        // Clone census (single-threaded exploration, so the
        // thread-local counters see every clone).
        system::build::clones::reset();
        services::state::clones::reset();
        let deep = ExploredGraph::explore_with(&sys, vec![root.clone()], opts);
        let deep_clones = (
            system::build::clones::count(),
            services::state::clones::count(),
        );
        system::build::clones::reset();
        services::state::clones::reset();
        let packed = PackedSystem::new(&sys);
        let pk = ExploredGraph::explore_with(&packed, vec![packed.encode(&root)], opts);
        let packed_clones = (
            system::build::clones::count(),
            services::state::clones::count(),
        );
        assert_eq!(deep.stats(), pk.stats(), "{label}: packed sweep diverged");
        eprintln!(
            "[E14] {label}: {} states, {} edges; deep clones = {} system / {} service; \
             packed clones = {} system / {} service ({} proc + {} svc components interned)",
            deep.len(),
            deep.stats().edges,
            deep_clones.0,
            deep_clones.1,
            packed_clones.0,
            packed_clones.1,
            packed.proc_components(),
            packed.svc_components(),
        );

        group.bench(&format!("explore_deep_{label}"), || {
            black_box(ExploredGraph::explore_with(&sys, vec![root.clone()], opts))
        });
        group.bench(&format!("explore_packed_{label}"), || {
            let packed = PackedSystem::new(&sys);
            let root = packed.encode(&root);
            black_box(ExploredGraph::explore_with(&packed, vec![root], opts))
        });
        group.bench(&format!("explore_packed_decode_{label}"), || {
            let packed = PackedSystem::new(&sys);
            let proot = packed.encode(&root);
            let graph = ExploredGraph::explore_with(&packed, vec![proot], opts);
            let decoded: Vec<_> = graph
                .store()
                .states()
                .iter()
                .map(|ps| packed.decode(ps))
                .collect();
            black_box((graph, decoded))
        });
    }
    group.finish();
}
