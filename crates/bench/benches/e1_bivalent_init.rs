//! E1 — Lemma 4: finding the bivalent initialization.
//!
//! Regenerates: the Lemma 4 walk over the monotone initializations
//! `α_0 … α_n`, reporting which one is bivalent, across the doomed
//! atomic-object candidates at each `(n, f)` scale point.
//!
//! Expected shape: the first mixed initialization `α_1` is bivalent for
//! every scale; cost grows with the failure-free reachable state space.

use analysis::init::{find_bivalent_init, InitOutcome};
use bench_suite::doomed_atomic_scales;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_bivalent_init");
    group.sample_size(10);
    for (label, sys) in doomed_atomic_scales() {
        // Report the experiment's qualitative row once, outside timing.
        match find_bivalent_init(&sys, 2_000_000).unwrap() {
            InitOutcome::Bivalent { assignment, map } => eprintln!(
                "[E1] {label}: bivalent init = {assignment} ({} reachable states)",
                map.state_count()
            ),
            other => eprintln!("[E1] {label}: unexpected outcome {other:?}"),
        }
        group.bench_function(label, |b| {
            b.iter(|| black_box(find_bivalent_init(&sys, 2_000_000).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
