//! E1 — Lemma 4: finding the bivalent initialization.
//!
//! Regenerates: the Lemma 4 walk over the monotone initializations
//! `α_0 … α_n`, reporting which one is bivalent, across the doomed
//! atomic-object candidates at each `(n, f)` scale point.
//!
//! Expected shape: the first mixed initialization `α_1` is bivalent for
//! every scale; cost grows with the failure-free reachable state space.

use analysis::init::{find_bivalent_init, InitOutcome};
use bench_suite::bench_scales;
use bench_suite::harness::Group;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("e1_bivalent_init");
    for (label, sys, _f) in bench_scales() {
        // Report the experiment's qualitative row once, outside timing.
        match find_bivalent_init(&sys, 2_000_000).unwrap() {
            InitOutcome::Bivalent { assignment, map } => eprintln!(
                "[E1] {label}: bivalent init = {assignment} ({} reachable states)",
                map.state_count()
            ),
            other => eprintln!("[E1] {label}: unexpected outcome {other:?}"),
        }
        group.bench(label, || {
            black_box(find_bivalent_init(&sys, 2_000_000).unwrap())
        });
    }
    group.finish();
}
