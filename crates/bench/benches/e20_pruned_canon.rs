//! E20 — pruned canonicalization and the composed value quotient.
//!
//! Regenerates: the `ValenceMap` build cost of the doomed-atomic
//! substrate under the signature-sort canonicalizer (DESIGN §2.1.6),
//! which replaced E17's all-permutations orbit probe. Three variants
//! per scale:
//!
//! * `full` — symmetry off, the exact reachable graph (reference);
//! * `quotient` — the plain `S_n` orbit quotient, now canonicalized by
//!   one stable sort over full local-view signatures instead of an
//!   `n!`-sweep over `Perm::all`;
//! * `values` — the composed `S_n × S_vals` quotient (the 0 ↔ 1 value
//!   relabeling on top), including the ν-twisted backward valence
//!   fixpoint.
//!
//! The headline scale is `n = 5, f = 3`: 120 permutations per interned
//! state under the old probe, a five-element sort under the new one —
//! the sweep the pruned canonicalizer exists to unlock. It runs inside
//! the default bench budget, no `BENCH_FULL` gate. Every row is
//! annotated with interned-state and arena-byte footprints, so the
//! JSON carries the memory reduction alongside the wall-clock. The
//! recorded `+fastpath` quotient rows in `BENCH_explore.json`
//! (739,609 ns at n=3, 4,887,811 ns at n=4) are the baselines the
//! pruned rows are compared against.

use analysis::valence::ValenceMap;
use bench_suite::harness::Group;
use ioa::SymmetryMode;
use protocols::doomed::doomed_atomic;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::initialize;

/// Recorded `+fastpath` quotient median at `n = 4` (BENCH_explore.json,
/// PR 7) — the regression floor: the pruned canonicalizer must never
/// fall back to probe-era wall-clock. Only `n = 4` is gated: the
/// measured pruned median sits 3.11× under this floor, so even CI's
/// single-sample `bench-smoke` run clears it by a wide margin, while a
/// reintroduced permutation probe (24 rebuilds per successor here, 120
/// at the ungated n = 5) lands well above it. At `n = 3` the probe
/// penalty (6 permutations) is inside single-sample noise, so that row
/// stays informational — the recorded 10-sample medians in
/// BENCH_explore.json carry the 1.37× comparison.
const FASTPATH_QUOTIENT_BASELINE_N4_NS: u128 = 4_887_811;

fn main() {
    let mut group = Group::new("e20_pruned_canon");
    for (n, f) in [(3usize, 1usize), (4, 2), (5, 3)] {
        let sys = doomed_atomic(n, f);
        let root = initialize(&sys, &InputAssignment::monotone(n, 1));
        for (variant, mode) in [
            ("full", SymmetryMode::Off),
            ("quotient", SymmetryMode::Full),
            ("values", SymmetryMode::Values),
        ] {
            let probe = ValenceMap::build_with_symmetry(&sys, root.clone(), 5_000_000, 1, mode)
                .expect("doomed-atomic scales fit the default budget");
            let (states, arena_bytes) = probe.footprint();
            drop(probe);
            group.bench(&format!("{variant}_n={n},f={f}"), || {
                let map = ValenceMap::build_with_symmetry(&sys, root.clone(), 5_000_000, 1, mode)
                    .expect("doomed-atomic scales fit the default budget");
                assert_eq!(map.state_count() as u64, states, "state count drifted");
                black_box(map.state_count())
            });
            group.annotate_last(Some(states), None);
            group.annotate_memory(Some(states), Some(arena_bytes));
            eprintln!(
                "[E20] {variant} n={n},f={f}: {states} interned states, {arena_bytes} arena bytes"
            );
        }
    }
    let results = group.finish();
    let m = results
        .iter()
        .find(|m| m.label == "quotient_n=4,f=2")
        .expect("quotient n=4 scale was benched");
    assert!(
        m.min_ns() < FASTPATH_QUOTIENT_BASELINE_N4_NS,
        "pruned quotient regression at n=4: fastest sample {} ns >= probe-era baseline {FASTPATH_QUOTIENT_BASELINE_N4_NS} ns",
        m.min_ns()
    );
}
