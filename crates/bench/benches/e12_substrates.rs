//! E12 (extension) — substrate costs: message-passing flooding and the
//! double-collect snapshot.
//!
//! Regenerates: the flooding-consensus decision over pairwise channels
//! (messages grow quadratically in `n`) and a writer/scanner snapshot
//! round over single-writer registers.
//!
//! Expected shape: flooding cost grows ~n² (the full mesh); snapshot
//! cost grows ~n per collect with a small constant number of retries.

use bench_suite::harness::Group;
use protocols::message_passing::build_flood_all;
use protocols::snapshot::{build as build_snapshot, SnapshotProcess};
use spec::{ProcId, Val};
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::{initialize, run_fair, BranchPolicy, FairOutcome};

fn main() {
    let mut group = Group::new("e12_substrates");

    // Flooding consensus across mesh sizes.
    for n in [2usize, 3, 4] {
        let sys = build_flood_all(n, 1);
        let a = InputAssignment::monotone(n, 1);
        let run = run_fair(
            &sys,
            initialize(&sys, &a),
            BranchPolicy::Canonical,
            &[],
            200_000,
            |st| (0..n).all(|i| sys.decision(st, ProcId(i)).is_some()),
        );
        eprintln!(
            "[E12] flooding n={n}: decided in {} steps ({})",
            run.exec.len(),
            matches!(run.outcome, FairOutcome::Stopped)
        );
        group.bench(&format!("flooding_n{n}"), || {
            black_box(run_fair(
                &sys,
                initialize(&sys, &a),
                BranchPolicy::Canonical,
                &[],
                200_000,
                |st| (0..n).all(|i| sys.decision(st, ProcId(i)).is_some()),
            ))
        });
    }

    // Snapshot: one writer, one scanner, across register counts.
    for n in [2usize, 3, 4] {
        let sys = build_snapshot(n, 2);
        let mut pairs = vec![(ProcId(0), SnapshotProcess::update_request(Val::Int(1)))];
        for i in 1..n {
            pairs.push((ProcId(i), SnapshotProcess::scan_request()));
        }
        let a = InputAssignment::of(pairs);
        let run = run_fair(
            &sys,
            initialize(&sys, &a),
            BranchPolicy::Canonical,
            &[],
            200_000,
            |st| (0..n).all(|i| sys.decision(st, ProcId(i)).is_some()),
        );
        eprintln!(
            "[E12] snapshot n={n}: all answered in {} steps ({})",
            run.exec.len(),
            matches!(run.outcome, FairOutcome::Stopped)
        );
        group.bench(&format!("snapshot_n{n}"), || {
            black_box(run_fair(
                &sys,
                initialize(&sys, &a),
                BranchPolicy::Canonical,
                &[],
                200_000,
                |st| (0..n).all(|i| sys.decision(st, ProcId(i)).is_some()),
            ))
        });
    }
    group.finish();
}
