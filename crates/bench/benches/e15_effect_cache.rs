//! E15 (extension) — transition-effect memoization.
//!
//! Regenerates: the cost of the full reachable sweep of `G(C)` over
//! the packed representation with the transition-effect cache (DESIGN
//! §2.1.3) in three regimes:
//!
//! * `nocache_*` — `PackedSystem::new_uncached`, the PR 3 packed
//!   baseline: every expansion re-evaluates `succ_effects` and
//!   re-interns its components;
//! * `cold_*` — a fresh cached `PackedSystem` per run, so every run
//!   pays the one-time table population alongside the sweep;
//! * `warm_*` — one shared cached `PackedSystem` across all runs
//!   (exactly how the Lemma 4 walk reuses it): after the untimed
//!   warm-up populates the tables, a timed expansion is a table
//!   lookup plus an id-splice.
//!
//! Every row is annotated with `states_per_sec`; the cached rows also
//! carry the observed `hit_rate`. The three regimes must produce
//! identical `ExploreStats` (asserted) — the cache is a pure
//! memoization layer, invisible in the graph.

use bench_suite::bench_scales;
use bench_suite::harness::Group;
use ioa::explore::{ExploreOptions, ExploredGraph};
use ioa::Automaton;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::packed::PackedSystem;
use system::sched::initialize;

fn main() {
    let mut group = Group::new("e15_effect_cache");
    let opts = ExploreOptions {
        max_states: 5_000_000,
        skip_self_loops: true,
        threads: 1,
        symmetry: ioa::SymmetryMode::Off,
        frontier: ioa::FrontierMode::Layered,
    };
    for (label, sys, _f) in bench_scales() {
        let n = sys.process_count();
        let root = initialize(&sys, &InputAssignment::monotone(n, 1));

        // Reference run: sizes, and the stats every regime must match.
        let reference = PackedSystem::new_uncached(&sys);
        let base = ExploredGraph::explore_with(&reference, vec![reference.encode(&root)], opts);
        let states = base.len() as u64;

        group.bench(&format!("nocache_{label}"), || {
            let packed = PackedSystem::new_uncached(&sys);
            let proot = packed.encode(&root);
            let g = ExploredGraph::explore_with(&packed, vec![proot], opts);
            assert_eq!(g.stats(), base.stats(), "{label}: uncached sweep diverged");
            black_box(g.len())
        });
        group.annotate_last(Some(states), None);

        group.bench(&format!("cold_{label}"), || {
            let packed = PackedSystem::new(&sys);
            let proot = packed.encode(&root);
            let g = ExploredGraph::explore_with(&packed, vec![proot], opts);
            assert_eq!(g.stats(), base.stats(), "{label}: cold sweep diverged");
            black_box(g.len())
        });
        group.annotate_last(Some(states), None);

        // Warm regime: the shared system's tables survive across runs,
        // so after the warm-up iterations every sampled sweep runs at
        // the steady-state hit rate. Two warm-ups make the first
        // sample independent of table-growth reallocation noise.
        let shared = PackedSystem::new(&sys);
        let shared_root = shared.encode(&root);
        // `None` = the timed window saw no cache lookups at all (the
        // warm-up absorbed them): no data, not a 0% rate — it must
        // reach the JSON as `null`, not fail the floor below.
        let mut last_rate: Option<f64> = None;
        group.warmup(2);
        group.bench(&format!("warm_{label}"), || {
            let before = shared.cache_stats().expect("cache enabled");
            let g = ExploredGraph::explore_with(&shared, vec![shared_root.clone()], opts);
            assert_eq!(g.stats(), base.stats(), "{label}: warm sweep diverged");
            let delta = shared.cache_stats().expect("cache enabled").since(&before);
            last_rate = (delta.lookups() > 0).then(|| delta.hit_rate());
            black_box(g.len())
        });
        group.annotate_last(Some(states), last_rate);
        group.warmup(1);
        match last_rate {
            Some(rate) => {
                eprintln!("[E15] {label}: {states} states, warm hit rate {rate:.4}");
                assert!(
                    rate >= 0.9,
                    "{label}: warm hit rate {rate:.4} below the 0.9 floor"
                );
            }
            None => {
                eprintln!("[E15] {label}: {states} states, no cache lookups in the timed window")
            }
        }
    }
    group.finish();
}
