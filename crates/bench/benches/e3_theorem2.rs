//! E3 — Theorem 2: the full impossibility pipeline on atomic-object
//! candidates.
//!
//! Regenerates: one `ImpossibilityWitness` per candidate — safety
//! model-check, Lemma 4, Lemma 5/Fig. 3, Lemma 8, Lemmas 6/7 — for the
//! direct protocol (with and without registers).
//!
//! Expected shape: every candidate is refuted; each refutation fails
//! exactly `f + 1` processes and starves a survivor.

use analysis::witness::{find_witness, Bounds};
use bench_suite::bench_scales;
use bench_suite::harness::Group;
use protocols::doomed::doomed_atomic_with_registers;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("e3_theorem2");
    for (label, sys, f) in bench_scales() {
        let w = find_witness(&sys, f, Bounds::default()).unwrap();
        eprintln!("[E3] {label}: {}", w.headline());
        group.bench(label, || {
            black_box(find_witness(&sys, f, Bounds::default()).unwrap())
        });
    }
    // The register-augmented candidate (the theorem's full statement).
    let sys = doomed_atomic_with_registers(2, 0);
    let w = find_witness(&sys, 0, Bounds::default()).unwrap();
    eprintln!("[E3] n=2,f=0+registers: {}", w.headline());
    group.bench("n=2,f=0+registers", || {
        black_box(find_witness(&sys, 0, Bounds::default()).unwrap())
    });
    group.finish();
}
