//! E11 (extension) — the valence landscape of `G(C)` and its growth.
//!
//! Regenerates: the census of `G(C)` (how many states are bivalent vs
//! committed) across scales — the quantitative backdrop of the
//! bivalence argument: bivalent states are rare but unavoidable.
//!
//! Expected shape: reachable states grow roughly ×5 per added process;
//! the bivalent fraction shrinks but never hits zero (Lemma 4).

use analysis::graph::census;
use analysis::init::{find_bivalent_init, InitOutcome};
use bench_suite::bench_scales;
use bench_suite::harness::Group;
use std::hint::black_box;

fn main() {
    let mut group = Group::new("e11_valence_scaling");
    for (label, sys, _f) in bench_scales() {
        let InitOutcome::Bivalent { map, .. } = find_bivalent_init(&sys, 5_000_000).unwrap() else {
            panic!("{label}: bivalent init expected")
        };
        let cen = census(&map);
        eprintln!(
            "[E11] {label}: {} (bivalent fraction {:.1}%)",
            cen,
            100.0 * cen.bivalent_fraction()
        );
        group.bench(&format!("census_{label}"), || black_box(census(&map)));
    }
    group.finish();
}
