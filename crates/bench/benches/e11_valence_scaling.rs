//! E11 (extension) — the valence landscape of `G(C)` and its growth.
//!
//! Regenerates: the census of `G(C)` (how many states are bivalent vs
//! committed) across scales — the quantitative backdrop of the
//! bivalence argument: bivalent states are rare but unavoidable.
//!
//! Expected shape: reachable states grow roughly ×5 per added process;
//! the bivalent fraction shrinks but never hits zero (Lemma 4).

use analysis::graph::census;
use analysis::init::{find_bivalent_init, InitOutcome};
use bench_suite::doomed_atomic_scales;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e11_valence_scaling");
    group.sample_size(10);
    for (label, sys) in doomed_atomic_scales() {
        let InitOutcome::Bivalent { map, .. } = find_bivalent_init(&sys, 5_000_000).unwrap()
        else {
            panic!("{label}: bivalent init expected")
        };
        let cen = census(&map);
        eprintln!(
            "[E11] {label}: {} (bivalent fraction {:.1}%)",
            cen,
            100.0 * cen.bivalent_fraction()
        );
        group.bench_function(format!("census_{label}"), |b| {
            b.iter(|| black_box(census(&map)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
