//! E19 (extension) — static contract audit cost (DESIGN §2.6).
//!
//! Regenerates: the component-local auditor's full five-rule pass over
//! each in-tree substrate, at the default budget. The point of the
//! experiment is the *scaling shape*: auditing is polynomial in
//! component sizes (the `states` annotation counts component-local
//! states, not global ones), so its cost is flat in `n` where the
//! explorations it guards are exponential. The construction-time
//! (`contract-checks`) and exploration-time (`effective_symmetry`)
//! gates run the same machinery at smaller budgets — and the latter
//! memoizes its verdict per system instance — so neither pays these
//! full-budget numbers on hot paths.
//!
//! Expected shape: audit time tracks Σ_c |closure(c)| · |tasks|, not
//! the product state space; doomed-style substrates with one shared
//! service audit fastest, the register-heavy boosters (derived-fd,
//! set-boost) slowest. The `hit_rate` annotation reports the
//! independence census density (commuting pairs / all pairs).

use analysis::audit::{audit_system, AuditConfig};
use bench_suite::harness::Group;
use protocols::set_boost::SetBoostParams;
use spec::seq::TestAndSet;
use std::hint::black_box;
use std::sync::Arc;
use system::build::CompleteSystem;
use system::process::ProcessAutomaton;

fn bench_audit<P: ProcessAutomaton>(group: &mut Group, label: &str, sys: &CompleteSystem<P>) {
    let cfg = AuditConfig::default();
    let report = audit_system(sys, label, &cfg);
    assert!(
        report.clean(),
        "benched substrates must audit clean:\n{report}"
    );
    eprintln!(
        "[E19] {label}: {} component states, census {}/{}",
        report.component_states, report.independent_pairs, report.task_pairs
    );
    group.bench(label, || black_box(audit_system(sys, label, &cfg)));
    group.annotate_last(
        Some(report.component_states as u64),
        Some(report.independent_pairs as f64 / report.task_pairs.max(1) as f64),
    );
}

fn main() {
    let mut group = Group::new("e19_audit");

    bench_audit(
        &mut group,
        "doomed_atomic_n3",
        &protocols::doomed::doomed_atomic(3, 1),
    );
    bench_audit(
        &mut group,
        "doomed_registers_n2",
        &protocols::doomed::doomed_atomic_with_registers(2, 0),
    );
    bench_audit(
        &mut group,
        "doomed_tob_n2",
        &protocols::doomed::doomed_oblivious(2, 0),
    );
    bench_audit(
        &mut group,
        "doomed_fd_n2",
        &protocols::doomed::doomed_general(2, 0),
    );
    bench_audit(&mut group, "tas_n2", &protocols::tas_consensus::build(1));
    bench_audit(
        &mut group,
        "universal_tas_n2",
        &protocols::universal::build(Arc::new(TestAndSet), 2),
    );
    bench_audit(
        &mut group,
        "flooding_n2",
        &protocols::message_passing::build_flood_all(2, 1),
    );
    bench_audit(&mut group, "snapshot_n2", &protocols::snapshot::build(2, 2));
    bench_audit(&mut group, "fd_boost_n2", &protocols::fd_boost::build(2));
    bench_audit(
        &mut group,
        "set_boost_n4",
        &protocols::set_boost::build(SetBoostParams {
            n: 4,
            k: 2,
            k_prime: 1,
        }),
    );
    bench_audit(
        &mut group,
        "derived_fd_n2",
        &protocols::derived_fd::build(2),
    );

    group.finish();
}
