//! E4 — Section 4: the k-set-consensus boost, certified.
//!
//! Regenerates: the wait-free certification sweep of the group
//! construction (k-agreement + validity + termination over every
//! failure pattern up to `n − 1`), plus ablation A1: the same system
//! fails `k = 1` certification, confirming it does not contradict
//! Theorem 2.
//!
//! Expected shape: `k = 2` certification passes at resilience `n − 1`;
//! `k = 1` certification fails fast with an agreement violation.

use analysis::resilience::{all_assignments, certify, CertifyConfig};
use bench_suite::harness::Group;
use protocols::set_boost::{build, SetBoostParams};
use spec::Val;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::BranchPolicy;

fn main() {
    let mut group = Group::new("e4_set_boost");

    let sys = build(SetBoostParams {
        n: 4,
        k: 2,
        k_prime: 1,
    });
    // A representative input slice (full 256-assignment sweeps live in
    // the integration tests; the bench measures per-sweep cost).
    let domain: Vec<Val> = (0..4).map(Val::Int).collect();
    let mut inputs = all_assignments(4, &domain);
    inputs.truncate(32);
    let mut cfg = CertifyConfig::new(2, 3, inputs);
    cfg.failure_timings = vec![0];
    cfg.max_steps = 50_000;
    cfg.policies = vec![BranchPolicy::PreferDummy];

    let report = certify(&sys, &cfg);
    eprintln!(
        "[E4] n=4,k=2,k'=1: {} runs, {} violations → {}",
        report.runs,
        report.violations.len(),
        if report.certified() {
            "certified wait-free 2-set consensus"
        } else {
            "FAILED"
        }
    );
    group.bench("certify_k2_resilience3_n4", || {
        black_box(certify(&sys, &cfg))
    });

    // Ablation A1: k = 1 on the same system must fail.
    let mut cfg1 = cfg.clone();
    cfg1.k = 1;
    cfg1.resilience = 0;
    cfg1.inputs = vec![InputAssignment::of(
        (0..4).map(|i| (spec::ProcId(i), Val::Int(i as i64))),
    )];
    let report1 = certify(&sys, &cfg1);
    eprintln!(
        "[E4/A1] same system at k=1: {} violations (expected > 0: it is 2-set, not consensus)",
        report1.violations.len()
    );
    group.bench("ablation_k1_fails", || black_box(certify(&sys, &cfg1)));

    group.finish();
}
