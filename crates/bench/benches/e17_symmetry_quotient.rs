//! E17 — symmetry-reduced exploration (orbit quotient).
//!
//! Regenerates: the `ValenceMap` build cost of the doomed-atomic
//! substrate with the `system::packed` orbit canonicalizer off
//! (`full_*` rows — the exact reachable graph) and on (`quotient_*`
//! rows — one interned state per process-permutation orbit, DESIGN
//! §2.1.4). Every row is annotated with the interned state count, so
//! the JSON carries the reduction factor alongside the wall-clock.
//!
//! Unlike the E13–E15 sweeps, `n = 4` is *not* gated behind
//! `BENCH_FULL`: the quotient is what makes that scale routine
//! (976 → 188 states from the mixed root), and landing the n=4 row is
//! the point of the experiment.

use analysis::valence::ValenceMap;
use bench_suite::harness::Group;
use ioa::SymmetryMode;
use protocols::doomed::doomed_atomic;
use std::hint::black_box;
use system::consensus::InputAssignment;
use system::sched::initialize;

fn main() {
    let mut group = Group::new("e17_symmetry_quotient");
    for (n, f) in [(2usize, 0usize), (3, 1), (4, 2)] {
        let sys = doomed_atomic(n, f);
        let root = initialize(&sys, &InputAssignment::monotone(n, 1));
        for (variant, mode) in [
            ("full", SymmetryMode::Off),
            ("quotient", SymmetryMode::Full),
        ] {
            let probe = ValenceMap::build_with_symmetry(&sys, root.clone(), 5_000_000, 1, mode)
                .expect("doomed-atomic scales fit comfortably");
            let (states, arena_bytes) = probe.footprint();
            drop(probe);
            group.bench(&format!("{variant}_n={n},f={f}"), || {
                let map = ValenceMap::build_with_symmetry(&sys, root.clone(), 5_000_000, 1, mode)
                    .expect("doomed-atomic scales fit comfortably");
                assert_eq!(map.state_count() as u64, states, "state count drifted");
                black_box(map.state_count())
            });
            group.annotate_last(Some(states), None);
            group.annotate_memory(Some(states), Some(arena_bytes));
            eprintln!("[E17] {variant} n={n},f={f}: {states} interned states");
        }
    }
    group.finish();
}
