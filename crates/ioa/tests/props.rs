//! Property-based tests for the I/O automata kernel: execution
//! algebra, Lemma 1 (applicability persistence), fairness of
//! round-robin runs, and exploration soundness.

use ioa::automaton::{ActionKind, Automaton};
use ioa::execution::Execution;
use ioa::explore::{reachable_states, search, SearchOutcome};
use ioa::fairness::{is_fair_finite, lasso_is_fair, run_round_robin, RunOutcome};
use ioa::toy::{ChanAction, Channel, ParityCounter};
use proptest::prelude::*;

/// A configurable toy automaton: `tasks[t]` maps state `s` to an
/// optional successor; used to generate random finite automata with
/// known structure.
#[derive(Clone, Debug)]
struct TableAutomaton {
    /// `table[t][s]` = successor of state `s` under task `t`
    /// (`usize::MAX` = disabled).
    table: Vec<Vec<usize>>,
}

impl Automaton for TableAutomaton {
    type State = usize;
    type Action = (usize, usize); // (task, from)
    type Task = usize;

    fn initial_states(&self) -> Vec<usize> {
        vec![0]
    }
    fn tasks(&self) -> Vec<usize> {
        (0..self.table.len()).collect()
    }
    fn succ_all(&self, t: &usize, s: &usize) -> Vec<((usize, usize), usize)> {
        let to = self.table[*t][*s];
        if to == usize::MAX {
            Vec::new()
        } else {
            vec![((*t, *s), to)]
        }
    }
    fn apply_input(&self, _s: &usize, _a: &(usize, usize)) -> Option<usize> {
        None
    }
    fn kind(&self, _a: &(usize, usize)) -> ActionKind {
        ActionKind::Internal
    }
}

fn table_strategy(states: usize, tasks: usize) -> impl Strategy<Value = TableAutomaton> {
    proptest::collection::vec(
        proptest::collection::vec(
            prop_oneof![3 => 0..states, 1 => Just(usize::MAX)],
            states,
        ),
        tasks,
    )
    .prop_map(|table| TableAutomaton { table })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_robin_outcomes_are_always_fair(aut in table_strategy(6, 3)) {
        let run = run_round_robin(&aut, 0, 10_000, |_| false);
        match run.outcome {
            RunOutcome::Quiescent => {
                prop_assert!(is_fair_finite(&aut, &run.exec));
            }
            RunOutcome::Lasso { cycle_start } => {
                prop_assert!(lasso_is_fair(&aut, &run.exec, cycle_start));
            }
            RunOutcome::Budget => {
                // 10k steps over ≤ 18 configurations cannot happen:
                // the run must terminate or repeat.
                prop_assert!(false, "budget exhausted on a finite automaton");
            }
        }
    }

    #[test]
    fn executions_replay_their_own_task_sequence(aut in table_strategy(6, 3)) {
        let run = run_round_robin(&aut, 0, 1_000, |_| false);
        let tasks = run.exec.task_sequence();
        let mut replay = Execution::new(0);
        let applied = replay.replay(&aut, &tasks);
        prop_assert_eq!(applied, tasks.len(), "deterministic replay applies every task");
        prop_assert_eq!(replay.last_state(), run.exec.last_state());
    }

    #[test]
    fn search_found_implies_reachable_and_exhausted_implies_not(
        aut in table_strategy(8, 3),
        target in 0usize..8,
    ) {
        let reach = reachable_states(&aut, vec![0], 10_000);
        prop_assert!(!reach.truncated);
        match search(&aut, &0, |s| *s == target, 10_000) {
            SearchOutcome::Found(path) => {
                prop_assert!(reach.states.contains(&target));
                // Path endpoints line up.
                if let Some((_, _, last)) = path.last() {
                    prop_assert_eq!(*last, target);
                } else {
                    prop_assert_eq!(target, 0);
                }
            }
            SearchOutcome::Exhausted => {
                prop_assert!(!reach.states.contains(&target));
            }
            SearchOutcome::Truncated => prop_assert!(false, "budget was ample"),
        }
    }

    #[test]
    fn lemma1_applicability_persists_without_the_task(
        aut in table_strategy(6, 3),
        steps in proptest::collection::vec(0usize..3, 0..12),
    ) {
        // Lemma 1 shape: if task e is applicable at s and we run a
        // fragment containing no e-steps, e stays applicable — for
        // automata whose tasks are "buffer-like" (a task, once enabled,
        // is only disabled by its own firing). TableAutomaton tasks are
        // not buffer-like in general, so restrict the check to the
        // system-level property it encodes: applicability is decided by
        // succ_all alone.
        let mut s = 0usize;
        for t in steps {
            if let Some((_, s2)) = aut.succ_det(&t, &s) {
                s = s2;
            }
            for e in aut.tasks() {
                prop_assert_eq!(aut.applicable(&e, &s), !aut.succ_all(&e, &s).is_empty());
            }
        }
    }

    #[test]
    fn channel_trace_is_send_recv_balanced(
        sends in proptest::collection::vec(0i64..4, 0..10),
    ) {
        let ch = Channel::new(&[0, 1, 2, 3]);
        let mut e = Execution::new(ch.initial_states().remove(0));
        for m in &sends {
            e.apply_input(&ch, ChanAction::Send(*m));
        }
        // Drain fairly.
        let run = run_round_robin(&ch, e.last_state().clone(), 1_000, |_| false);
        e.concat(&run.exec);
        let trace = e.trace(&ch);
        let sent: Vec<i64> = trace
            .iter()
            .filter_map(|a| match a {
                ChanAction::Send(m) => Some(*m),
                _ => None,
            })
            .collect();
        let received: Vec<i64> = trace
            .iter()
            .filter_map(|a| match a {
                ChanAction::Recv(m) => Some(*m),
                _ => None,
            })
            .collect();
        prop_assert_eq!(sent, received, "FIFO channel delivers exactly what was sent");
    }

    #[test]
    fn parity_counter_always_saturates(max in 0i64..40) {
        let c = ParityCounter::new(max);
        let run = run_round_robin(&c, 0, 10_000, |_| false);
        prop_assert_eq!(run.outcome, RunOutcome::Quiescent);
        prop_assert_eq!(*run.exec.last_state(), max);
        prop_assert_eq!(run.exec.len() as i64, max);
    }
}
