//! Randomized-but-deterministic tests for the I/O automata kernel:
//! execution algebra, Lemma 1 (applicability persistence), fairness of
//! round-robin runs, and exploration soundness.
//!
//! Formerly proptest-based; rewritten onto the in-tree
//! [`ioa::rng::SplitMix64`] generator so the suite runs hermetically
//! (no registry dependency) and every case is replayable from its seed.

use ioa::automaton::{ActionKind, Automaton};
use ioa::execution::Execution;
use ioa::explore::{reach, search, SearchOutcome};
use ioa::fairness::{is_fair_finite, lasso_is_fair, run_round_robin, RunOutcome};
use ioa::rng::{RandomSource, SplitMix64};
use ioa::toy::{ChanAction, Channel, ParityCounter};

/// A configurable toy automaton: `tasks[t]` maps state `s` to an
/// optional successor; used to generate random finite automata with
/// known structure.
#[derive(Clone, Debug)]
struct TableAutomaton {
    /// `table[t][s]` = successor of state `s` under task `t`
    /// (`usize::MAX` = disabled).
    table: Vec<Vec<usize>>,
}

impl Automaton for TableAutomaton {
    type State = usize;
    type Action = (usize, usize); // (task, from)
    type Task = usize;

    fn initial_states(&self) -> Vec<usize> {
        vec![0]
    }
    fn tasks(&self) -> Vec<usize> {
        (0..self.table.len()).collect()
    }
    fn succ_all(&self, t: &usize, s: &usize) -> Vec<((usize, usize), usize)> {
        let to = self.table[*t][*s];
        if to == usize::MAX {
            Vec::new()
        } else {
            vec![((*t, *s), to)]
        }
    }
    fn apply_input(&self, _s: &usize, _a: &(usize, usize)) -> Option<usize> {
        None
    }
    fn kind(&self, _a: &(usize, usize)) -> ActionKind {
        ActionKind::Internal
    }
}

/// Draw a random `TableAutomaton`: each cell enables a transition with
/// probability 3/4 (matching the weights of the original strategy).
fn random_table(g: &mut SplitMix64, states: usize, tasks: usize) -> TableAutomaton {
    let table = (0..tasks)
        .map(|_| {
            (0..states)
                .map(|_| {
                    if g.gen_range(4) < 3 {
                        g.gen_range(states)
                    } else {
                        usize::MAX
                    }
                })
                .collect()
        })
        .collect();
    TableAutomaton { table }
}

#[test]
fn round_robin_outcomes_are_always_fair() {
    let mut g = SplitMix64::seed_from_u64(0x10a_0001);
    for _ in 0..64 {
        let aut = random_table(&mut g, 6, 3);
        let run = run_round_robin(&aut, 0, 10_000, |_| false);
        match run.outcome {
            RunOutcome::Quiescent => {
                assert!(is_fair_finite(&aut, &run.exec), "{aut:?}");
            }
            RunOutcome::Lasso { cycle_start } => {
                assert!(lasso_is_fair(&aut, &run.exec, cycle_start), "{aut:?}");
            }
            RunOutcome::Budget => {
                // 10k steps over ≤ 18 configurations cannot happen:
                // the run must terminate or repeat.
                panic!("budget exhausted on a finite automaton: {aut:?}");
            }
        }
    }
}

#[test]
fn executions_replay_their_own_task_sequence() {
    let mut g = SplitMix64::seed_from_u64(0x10a_0002);
    for _ in 0..64 {
        let aut = random_table(&mut g, 6, 3);
        let run = run_round_robin(&aut, 0, 1_000, |_| false);
        let tasks = run.exec.task_sequence();
        let mut replay = Execution::new(0);
        let applied = replay.replay(&aut, &tasks);
        assert_eq!(
            applied,
            tasks.len(),
            "deterministic replay applies every task"
        );
        assert_eq!(replay.last_state(), run.exec.last_state());
    }
}

#[test]
fn search_found_implies_reachable_and_exhausted_implies_not() {
    let mut g = SplitMix64::seed_from_u64(0x10a_0003);
    for _ in 0..64 {
        let aut = random_table(&mut g, 8, 3);
        let target = g.gen_range(8);
        let reach = reach(&aut, vec![0], 10_000);
        assert!(!reach.truncated());
        match search(&aut, &0, |s| *s == target, 10_000) {
            SearchOutcome::Found(path) => {
                assert!(reach.contains(&target));
                // Path endpoints line up.
                if let Some((_, _, last)) = path.last() {
                    assert_eq!(*last, target);
                } else {
                    assert_eq!(target, 0);
                }
            }
            SearchOutcome::Exhausted => {
                assert!(!reach.contains(&target));
            }
            SearchOutcome::Truncated => panic!("budget was ample"),
        }
    }
}

#[test]
fn lemma1_applicability_persists_without_the_task() {
    // Lemma 1 shape: if task e is applicable at s and we run a
    // fragment containing no e-steps, e stays applicable — for
    // automata whose tasks are "buffer-like" (a task, once enabled,
    // is only disabled by its own firing). TableAutomaton tasks are
    // not buffer-like in general, so restrict the check to the
    // system-level property it encodes: applicability is decided by
    // succ_all alone.
    let mut g = SplitMix64::seed_from_u64(0x10a_0004);
    for _ in 0..64 {
        let aut = random_table(&mut g, 6, 3);
        let len = g.gen_range(12);
        let steps: Vec<usize> = (0..len).map(|_| g.gen_range(3)).collect();
        let mut s = 0usize;
        for t in steps {
            if let Some((_, s2)) = aut.succ_det(&t, &s) {
                s = s2;
            }
            for e in aut.tasks() {
                assert_eq!(aut.applicable(&e, &s), !aut.succ_all(&e, &s).is_empty());
            }
        }
    }
}

#[test]
fn channel_trace_is_send_recv_balanced() {
    let mut g = SplitMix64::seed_from_u64(0x10a_0005);
    for _ in 0..64 {
        let len = g.gen_range(10);
        let sends: Vec<i64> = (0..len).map(|_| g.gen_i64_range(0, 4)).collect();
        let ch = Channel::new(&[0, 1, 2, 3]);
        let mut e = Execution::new(ch.initial_states().remove(0));
        for m in &sends {
            e.apply_input(&ch, ChanAction::Send(*m));
        }
        // Drain fairly.
        let run = run_round_robin(&ch, e.last_state().clone(), 1_000, |_| false);
        e.concat(&run.exec);
        let trace = e.trace(&ch);
        let sent: Vec<i64> = trace
            .iter()
            .filter_map(|a| match a {
                ChanAction::Send(m) => Some(*m),
                _ => None,
            })
            .collect();
        let received: Vec<i64> = trace
            .iter()
            .filter_map(|a| match a {
                ChanAction::Recv(m) => Some(*m),
                _ => None,
            })
            .collect();
        assert_eq!(
            sent, received,
            "FIFO channel delivers exactly what was sent"
        );
    }
}

#[test]
fn parity_counter_always_saturates() {
    for max in 0i64..40 {
        let c = ParityCounter::new(max);
        let run = run_round_robin(&c, 0, 10_000, |_| false);
        assert_eq!(run.outcome, RunOutcome::Quiescent);
        assert_eq!(*run.exec.last_state(), max);
        assert_eq!(run.exec.len() as i64, max);
    }
}
