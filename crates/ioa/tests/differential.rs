//! Differential tests for the interned exploration core: the id-based
//! BFS in `ioa::explore` must be observationally identical to the
//! naive state-keyed exploration it replaced (same reachable sets,
//! same truncation, same shortest-path lengths, same graph shape).
//!
//! The naive reference implementations below reproduce the seed
//! algorithms verbatim: `HashSet`/`HashMap` keyed on full states, one
//! clone + hash per visit. Randomized cases are generated from the
//! in-tree SplitMix64 stream, so every case is replayable from its
//! seed.

use ioa::automaton::{ActionKind, Automaton};
use ioa::explore::{
    build_graph, reach, search, ExploreOptions, ExploredGraph, SearchOutcome, Truncation,
};
use ioa::rng::{RandomSource, SplitMix64};
use std::collections::{HashMap, HashSet, VecDeque};

/// A branching table automaton: `table[t][s]` lists the successors of
/// state `s` under task `t` (possibly several — real nondeterminism —
/// or none).
#[derive(Clone, Debug)]
struct Branching {
    table: Vec<Vec<Vec<usize>>>,
}

impl Automaton for Branching {
    type State = usize;
    type Action = (usize, usize); // (task, branch index)
    type Task = usize;

    fn initial_states(&self) -> Vec<usize> {
        vec![0]
    }
    fn tasks(&self) -> Vec<usize> {
        (0..self.table.len()).collect()
    }
    fn succ_all(&self, t: &usize, s: &usize) -> Vec<((usize, usize), usize)> {
        self.table[*t][*s]
            .iter()
            .enumerate()
            .map(|(b, to)| ((*t, b), *to))
            .collect()
    }
    fn apply_input(&self, _s: &usize, _a: &(usize, usize)) -> Option<usize> {
        None
    }
    fn kind(&self, _a: &(usize, usize)) -> ActionKind {
        ActionKind::Internal
    }
}

fn random_branching(g: &mut SplitMix64, states: usize, tasks: usize) -> Branching {
    let table = (0..tasks)
        .map(|_| {
            (0..states)
                .map(|_| {
                    let branches = g.gen_range(3); // 0..=2 successors
                    (0..branches).map(|_| g.gen_range(states)).collect()
                })
                .collect()
        })
        .collect();
    Branching { table }
}

/// The seed's `reachable_states`: state-keyed seen-set, one clone per
/// enqueue, truncation by skipping inserts past the budget.
fn naive_reachable<A: Automaton>(
    aut: &A,
    roots: Vec<A::State>,
    max_states: usize,
) -> (HashSet<A::State>, bool) {
    let tasks = aut.tasks();
    let mut states: HashSet<A::State> = HashSet::new();
    let mut queue: VecDeque<A::State> = VecDeque::new();
    let mut truncated = false;
    for r in roots {
        if states.insert(r.clone()) {
            queue.push_back(r);
        }
    }
    while let Some(s) = queue.pop_front() {
        for t in &tasks {
            for (_, s2) in aut.succ_all(t, &s) {
                if !states.contains(&s2) {
                    if states.len() >= max_states {
                        truncated = true;
                        continue;
                    }
                    states.insert(s2.clone());
                    queue.push_back(s2);
                }
            }
        }
    }
    (states, truncated)
}

/// State-keyed BFS distance to the first state satisfying `pred`
/// (`Some(0)` if the root itself matches).
fn naive_distance<A: Automaton>(
    aut: &A,
    root: &A::State,
    pred: impl Fn(&A::State) -> bool,
) -> Option<usize> {
    if pred(root) {
        return Some(0);
    }
    let tasks = aut.tasks();
    let mut dist: HashMap<A::State, usize> = HashMap::from([(root.clone(), 0)]);
    let mut queue: VecDeque<A::State> = VecDeque::from([root.clone()]);
    while let Some(s) = queue.pop_front() {
        let d = dist[&s];
        for t in &tasks {
            for (_, s2) in aut.succ_all(t, &s) {
                if !dist.contains_key(&s2) {
                    dist.insert(s2.clone(), d + 1);
                    if pred(&s2) {
                        return Some(d + 1);
                    }
                    queue.push_back(s2);
                }
            }
        }
    }
    None
}

#[test]
fn reach_matches_the_naive_reference() {
    let mut g = SplitMix64::seed_from_u64(0xd1ff_0001);
    for _ in 0..48 {
        let aut = random_branching(&mut g, 10, 3);
        // Ample budget: exact equality, no truncation.
        let (naive, naive_trunc) = naive_reachable(&aut, vec![0], 10_000);
        let ours = reach(&aut, vec![0], 10_000);
        assert_eq!(ours.len(), naive.len(), "{aut:?}");
        assert!(naive.iter().all(|s| ours.contains(s)), "{aut:?}");
        assert_eq!(ours.truncated(), naive_trunc);
        assert!(!ours.truncated());
        // Tight budget: both keep exactly the first `cap` states in
        // BFS discovery order, so the kept sets also agree.
        let cap = 1 + g.gen_range(naive.len());
        let (naive_t, naive_t_trunc) = naive_reachable(&aut, vec![0], cap);
        let ours_t = reach(&aut, vec![0], cap);
        let kept: HashSet<usize> = ours_t.states().iter().copied().collect();
        assert_eq!(kept, naive_t, "cap={cap} {aut:?}");
        assert_eq!(ours_t.truncated(), naive_t_trunc, "cap={cap} {aut:?}");
    }
}

#[test]
fn search_matches_the_naive_shortest_distance() {
    let mut g = SplitMix64::seed_from_u64(0xd1ff_0002);
    for _ in 0..48 {
        let aut = random_branching(&mut g, 10, 3);
        let target = g.gen_range(10);
        let naive = naive_distance(&aut, &0, |s| *s == target);
        match search(&aut, &0, |s| *s == target, 10_000) {
            SearchOutcome::Found(path) => {
                assert_eq!(Some(path.len()), naive, "{aut:?} target={target}");
                if let Some((_, _, last)) = path.last() {
                    assert_eq!(*last, target);
                }
            }
            SearchOutcome::Exhausted => {
                assert_eq!(naive, None, "{aut:?} target={target}")
            }
            SearchOutcome::Truncated => panic!("budget was ample"),
        }
    }
}

#[test]
fn build_graph_matches_the_naive_transition_structure() {
    let mut g = SplitMix64::seed_from_u64(0xd1ff_0003);
    for _ in 0..48 {
        let aut = random_branching(&mut g, 10, 3);
        let (naive, _) = naive_reachable(&aut, vec![0], 10_000);
        let graph = build_graph(&aut, vec![0], 10_000);
        assert!(!graph.stats().truncated());
        // Same node set…
        let node_set: HashSet<usize> = graph.store().states().iter().copied().collect();
        assert_eq!(node_set, naive, "{aut:?}");
        // …and per-state edges exactly as succ_all dictates, in order.
        let mut total_edges = 0usize;
        for id in graph.ids() {
            let s = *graph.resolve(id);
            let expected: Vec<(usize, (usize, usize), usize)> = aut
                .tasks()
                .iter()
                .flat_map(|t| aut.succ_all(t, &s).into_iter().map(|(a, s2)| (*t, a, s2)))
                .collect();
            let actual: Vec<(usize, (usize, usize), usize)> = graph
                .successors(id)
                .iter()
                .map(|(t, a, dst)| (*t, *a, *graph.resolve(*dst)))
                .collect();
            assert_eq!(actual, expected, "state {s} of {aut:?}");
            total_edges += actual.len();
        }
        assert_eq!(graph.stats().edges, total_edges);
    }
}

/// Asserts that two explorations produced the same graph, bit for bit:
/// id assignment, resolved states, edge lists (targets as raw ids),
/// BFS-tree parents, roots and stats (census and truncation accounting;
/// `peak_frontier` is a scheduling measurement and not part of stats
/// equality).
fn assert_bit_identical<A: Automaton>(seq: &ExploredGraph<A>, par: &ExploredGraph<A>, ctx: &str) {
    assert_eq!(seq.stats(), par.stats(), "stats differ: {ctx}");
    assert_eq!(seq.roots(), par.roots(), "roots differ: {ctx}");
    assert_eq!(seq.len(), par.len(), "state count differs: {ctx}");
    for id in seq.ids() {
        assert_eq!(seq.resolve(id), par.resolve(id), "state {id:?}: {ctx}");
        assert_eq!(
            seq.successors(id),
            par.successors(id),
            "edges of {id:?}: {ctx}"
        );
        assert_eq!(
            seq.discovered_by(id),
            par.discovered_by(id),
            "parent of {id:?}: {ctx}"
        );
    }
}

#[test]
fn parallel_explore_is_bit_identical_to_sequential() {
    let mut g = SplitMix64::seed_from_u64(0xd1ff_0005);
    for round in 0..32 {
        let aut = random_branching(&mut g, 14, 3);
        let (full, _) = naive_reachable(&aut, vec![0], 10_000);
        // Ample budget and a tight one that forces mid-layer truncation.
        let caps = [10_000, 1 + g.gen_range(full.len())];
        for cap in caps {
            for skip in [false, true] {
                // Pinned to the layered frontier: its contract is
                // bit-identity at every thread count *including under
                // truncation*, which the work-stealing path does not
                // promise (its truncated admitted set is
                // scheduling-dependent; see tests/ws_differential.rs).
                let opts = ExploreOptions {
                    max_states: cap,
                    skip_self_loops: skip,
                    threads: 1,
                    symmetry: ioa::SymmetryMode::Off,
                    frontier: ioa::FrontierMode::Layered,
                };
                let seq = ExploredGraph::explore_with(&aut, vec![0], opts);
                for threads in [2, 4] {
                    let par =
                        ExploredGraph::explore_with(&aut, vec![0], opts.with_threads(threads));
                    let ctx =
                        format!("round={round} cap={cap} skip={skip} threads={threads} {aut:?}");
                    assert_bit_identical(&seq, &par, &ctx);
                }
            }
        }
    }
}

#[test]
fn parallel_explore_handles_more_workers_than_frontier_states() {
    // A chain has one-state layers: every worker but one idles, and the
    // merge must still replay the exact sequential order.
    let aut = Branching {
        table: vec![(0..8).map(|s| vec![(s + 1) % 8]).collect()],
    };
    // Frontier left on Auto: the exploration is complete, so both the
    // layered and the work-stealing path must reproduce the sequential
    // graph bit for bit (the ws CI job sweeps this through the sharded
    // frontier).
    let opts = ExploreOptions {
        max_states: 100,
        skip_self_loops: false,
        threads: 1,
        symmetry: ioa::SymmetryMode::Off,
        frontier: ioa::FrontierMode::Auto,
    };
    let seq = ExploredGraph::explore_with(&aut, vec![0], opts);
    let par = ExploredGraph::explore_with(&aut, vec![0], opts.with_threads(8));
    assert_bit_identical(&seq, &par, "8-cycle chain, 8 workers");
}

#[test]
fn truncated_graphs_account_for_every_discovered_transition() {
    let mut g = SplitMix64::seed_from_u64(0xd1ff_0004);
    for _ in 0..32 {
        let aut = random_branching(&mut g, 12, 3);
        let (full, _) = naive_reachable(&aut, vec![0], 10_000);
        if full.len() < 3 {
            continue;
        }
        let cap = 1 + g.gen_range(full.len() - 1);
        let graph = build_graph(&aut, vec![0], cap);
        // Every kept state is expanded, so each of its transitions is
        // either a retained edge (target admitted) or a counted drop.
        let kept: HashSet<usize> = graph.store().states().iter().copied().collect();
        let mut expect_kept = 0usize;
        let mut expect_dropped = 0usize;
        for &s in &kept {
            for t in aut.tasks() {
                for (_, s2) in aut.succ_all(&t, &s) {
                    if kept.contains(&s2) {
                        expect_kept += 1;
                    } else {
                        expect_dropped += 1;
                    }
                }
            }
        }
        assert_eq!(graph.stats().edges, expect_kept, "{aut:?} cap={cap}");
        match graph.stats().truncation {
            Truncation::Complete => assert_eq!(expect_dropped, 0),
            Truncation::StateBudget {
                budget,
                dropped_edges,
            } => {
                assert_eq!(budget, cap);
                assert_eq!(dropped_edges, expect_dropped, "{aut:?} cap={cap}");
            }
        }
    }
}
