//! Flat CSR (compressed sparse row) adjacency storage for explored
//! graphs.
//!
//! [`ExploredGraph`](crate::explore::ExploredGraph) used to keep one
//! heap-allocated `Vec` of edges per interned state; every downstream
//! sweep (valence census, hook search, witness scans) then chased one
//! pointer per state. A [`Csr`] stores all edges in a single contiguous
//! array plus a `u32` offset table, so a whole-graph sweep is one linear
//! walk and `successors(id)` is a two-load slice.
//!
//! The BFS explorer emits edges grouped by source, with sources in
//! strictly increasing [`StateId`](crate::store::StateId) order — both
//! the sequential loop and the layer-synchronous parallel merge expand
//! (and therefore close) one source at a time. That is exactly the
//! order CSR rows are laid out in, so the structure is built
//! incrementally with [`Csr::push`]/[`Csr::close_row`] and no
//! post-exploration repacking pass.
//!
//! [`Csr::reversed`] materializes the transposed adjacency (a
//! counting-sort scatter): the reverse edges that let valence
//! propagation run *backward* from deciding states instead of
//! re-walking forward reachability.

/// A compressed-sparse-row table: `rows()` rows of entries stored
/// contiguously, with `row(i)` a slice view.
///
/// Rows are built strictly left to right: [`Csr::push`] appends to the
/// currently open row, [`Csr::close_row`] seals it. Offsets are `u32`,
/// bounding the table at `u32::MAX` entries (checked) — the same bound
/// the `StateId` arena already imposes on node counts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr<E> {
    /// `offsets[i]..offsets[i + 1]` spans row `i`; `offsets[0] == 0`.
    offsets: Vec<u32>,
    entries: Vec<E>,
}

impl<E> Default for Csr<E> {
    fn default() -> Self {
        Csr {
            offsets: vec![0],
            entries: Vec::new(),
        }
    }
}

impl<E> Csr<E> {
    /// An empty table with zero closed rows.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty table with room for `rows` rows and `entries` entries.
    #[must_use]
    pub fn with_capacity(rows: usize, entries: usize) -> Self {
        let mut offsets = Vec::with_capacity(rows + 1);
        offsets.push(0);
        Csr {
            offsets,
            entries: Vec::with_capacity(entries),
        }
    }

    /// Append an entry to the currently open row.
    ///
    /// # Panics
    /// Panics if the table already holds `u32::MAX` entries.
    #[inline]
    pub fn push(&mut self, e: E) {
        assert!(
            self.entries.len() < u32::MAX as usize,
            "CSR entry count exceeds the u32 offset space"
        );
        self.entries.push(e);
    }

    /// Seal the currently open row and open the next one.
    #[inline]
    pub fn close_row(&mut self) {
        // The push guard keeps entries.len() <= u32::MAX.
        #[allow(clippy::cast_possible_truncation)]
        self.offsets.push(self.entries.len() as u32);
    }

    /// Number of closed rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total entries across all rows (open row included).
    #[must_use]
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// The entries of closed row `i`.
    ///
    /// # Panics
    /// Panics if `i` is not a closed row.
    #[inline]
    #[must_use]
    pub fn row(&self, i: usize) -> &[E] {
        &self.entries[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// All entries of all rows, contiguously, in row order — the flat
    /// view whole-graph sweeps walk.
    #[must_use]
    pub fn flat(&self) -> &[E] {
        &self.entries
    }

    /// Iterate `(row, &entry)` over every entry of every closed row.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &E)> {
        (0..self.rows()).flat_map(move |r| self.row(r).iter().map(move |e| (r, e)))
    }

    /// Assemble a table directly from its parts — the finalization path
    /// of the work-stealing explorer, which computes the offset table by
    /// prefix sum and scatters entries in parallel rather than closing
    /// rows one at a time.
    ///
    /// # Panics
    /// Panics if `offsets` is not a monotone prefix-sum table starting
    /// at 0 and ending at `entries.len()`.
    #[must_use]
    pub fn from_parts(offsets: Vec<u32>, entries: Vec<E>) -> Csr<E> {
        assert!(
            offsets.first() == Some(&0)
                && offsets.last().map(|&o| o as usize) == Some(entries.len())
                && offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be a prefix-sum table over the entries"
        );
        Csr { offsets, entries }
    }

    /// The transposed table: entry `e` in row `r` contributes
    /// `value_of(r, &e)` to row `target_of(&e)` of the result, which has
    /// `self.rows()` rows. Within a reversed row, entries appear in
    /// `(source row, position)` order — deterministic, so reverse sweeps
    /// are as reproducible as forward ones.
    ///
    /// Built by counting sort: one pass to count in-degrees, a prefix
    /// sum, one scatter pass. O(rows + entries), no per-row allocation.
    ///
    /// # Panics
    /// Panics if some `target_of` value is not a valid row index.
    #[must_use]
    pub fn reversed<T, F, G>(&self, target_of: F, value_of: G) -> Csr<T>
    where
        F: Fn(&E) -> usize,
        G: Fn(usize, &E) -> T,
    {
        let n = self.rows();
        let mut counts = vec![0u32; n];
        for (_, e) in self.iter() {
            counts[target_of(e)] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for c in &counts {
            acc += c;
            offsets.push(acc);
        }
        // Scatter into place, reusing `counts` as per-row fill cursors.
        let mut entries: Vec<Option<T>> = (0..acc).map(|_| None).collect();
        counts.fill(0);
        for (r, e) in self.iter() {
            let t = target_of(e);
            let slot = offsets[t] + counts[t];
            counts[t] += 1;
            entries[slot as usize] = Some(value_of(r, e));
        }
        Csr {
            offsets,
            entries: entries
                .into_iter()
                .map(|v| v.expect("every CSR slot filled by the scatter pass"))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Csr<u32> {
        // Row 0: [10, 11]; row 1: []; row 2: [12].
        let mut c = Csr::new();
        c.push(10);
        c.push(11);
        c.close_row();
        c.close_row();
        c.push(12);
        c.close_row();
        c
    }

    #[test]
    fn rows_and_slices() {
        let c = sample();
        assert_eq!(c.rows(), 3);
        assert_eq!(c.entry_count(), 3);
        assert_eq!(c.row(0), &[10, 11]);
        assert_eq!(c.row(1), &[] as &[u32]);
        assert_eq!(c.row(2), &[12]);
        assert_eq!(c.flat(), &[10, 11, 12]);
    }

    #[test]
    fn iter_pairs_rows_with_entries() {
        let c = sample();
        let pairs: Vec<(usize, u32)> = c.iter().map(|(r, &e)| (r, e)).collect();
        assert_eq!(pairs, vec![(0, 10), (0, 11), (2, 12)]);
    }

    #[test]
    fn reversed_is_the_transpose_in_source_order() {
        // Edges (source -> target): 0->1, 0->2, 1->0, 2->1.
        let mut c: Csr<usize> = Csr::new();
        c.push(1);
        c.push(2);
        c.close_row();
        c.push(0);
        c.close_row();
        c.push(1);
        c.close_row();
        let rev = c.reversed(|&t| t, |src, _| src);
        assert_eq!(rev.rows(), 3);
        assert_eq!(rev.row(0), &[1]); // 1 -> 0
        assert_eq!(rev.row(1), &[0, 2]); // 0 -> 1, 2 -> 1 (source order)
        assert_eq!(rev.row(2), &[0]); // 0 -> 2
    }

    #[test]
    fn reversed_of_empty_rows() {
        let mut c: Csr<usize> = Csr::new();
        c.close_row();
        c.close_row();
        let rev = c.reversed(|&t| t, |src, _| src);
        assert_eq!(rev.rows(), 2);
        assert_eq!(rev.entry_count(), 0);
    }

    #[test]
    fn default_is_empty() {
        let c: Csr<u8> = Csr::default();
        assert_eq!(c.rows(), 0);
        assert_eq!(c.entry_count(), 0);
    }
}
