//! Finite-trace inclusion: "A implements B" (paper Section 2.1.1).
//!
//! Automaton `A` implements `B` when they share external interfaces and
//! every (finite or infinite) trace of `A` is a trace of `B`, and every
//! fair trace of `A` is a fair trace of `B`. For the finite systems in
//! this workspace we check the finite-trace clause exhaustively by an
//! on-the-fly subset construction; the fair-trace clause (which for the
//! canonical services amounts to the resilient-termination guarantee)
//! is checked separately by `analysis`'s resilience checker, which
//! drives fair schedules directly.
//!
//! For an atomic-object implementation, finite-trace inclusion against
//! the canonical object of paper Fig. 1 is exactly *atomicity*
//! (Section 2.1.4, clause 2: "any trace of A is also a trace of S
//! guarantees the atomicity of A").

use crate::automaton::{ActionKind, Automaton};
use std::collections::{BTreeSet, HashSet, VecDeque};

/// A trace-inclusion counterexample: a trace of the implementation that
/// the specification cannot exhibit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceCounterexample<Act> {
    /// The externally visible prefix that *was* matched.
    pub matched_prefix: Vec<Act>,
    /// The first external action the specification could not match.
    pub offending: Act,
}

impl<Act: std::fmt::Debug> std::fmt::Display for TraceCounterexample<Act> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "spec cannot match {:?} after trace {:?}",
            self.offending, self.matched_prefix
        )
    }
}

/// The verdict of [`check_trace_inclusion`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Inclusion<Act> {
    /// Every reachable finite trace of the implementation is a trace of
    /// the specification (exhaustively verified).
    Holds,
    /// A counterexample trace was found.
    Fails(TraceCounterexample<Act>),
    /// The state budget was exhausted; the check is inconclusive.
    Truncated,
}

/// Closes a set of specification states under internal transitions.
fn internal_closure<S: Automaton>(spec: &S, states: BTreeSet<S::State>) -> BTreeSet<S::State> {
    let tasks = spec.tasks();
    let mut closed = states;
    let mut frontier: Vec<S::State> = closed.iter().cloned().collect();
    while let Some(q) = frontier.pop() {
        for t in &tasks {
            for (a, q2) in spec.succ_all(t, &q) {
                if spec.kind(&a) == ActionKind::Internal && closed.insert(q2.clone()) {
                    frontier.push(q2);
                }
            }
        }
    }
    closed
}

/// All specification states reachable from `states` by performing the
/// external action `x` (as an input or as a task-generated output),
/// closed under internal steps.
fn advance<S: Automaton>(
    spec: &S,
    states: &BTreeSet<S::State>,
    x: &S::Action,
) -> BTreeSet<S::State> {
    let mut next = BTreeSet::new();
    if spec.kind(x) == ActionKind::Input {
        for q in states {
            if let Some(q2) = spec.apply_input(q, x) {
                next.insert(q2);
            }
        }
    } else {
        let tasks = spec.tasks();
        for q in states {
            for t in &tasks {
                for (a, q2) in spec.succ_all(t, &q.clone()) {
                    if &a == x {
                        next.insert(q2.clone());
                    }
                }
            }
        }
    }
    internal_closure(spec, next)
}

/// Checks that every finite trace of `imp` (reachable by task steps and
/// the environment inputs listed in `env_inputs`) is a trace of `spec`.
///
/// `map` translates implementation actions to specification actions;
/// `None` means the action is invisible (internal, or hidden plumbing).
/// Visits at most `max_states` distinct `(impl state, spec state-set)`
/// pairs, and drives at most `max_env` environment inputs along any
/// path (the paper's executions of interest are *input-first* with
/// finitely many inputs, Section 3.2, so a finite input budget loses no
/// generality for the properties checked here).
///
/// # Example
///
/// ```
/// use ioa::refine::{check_trace_inclusion, Inclusion};
/// use ioa::toy::Channel;
/// use ioa::toy::ChanAction;
///
/// // A channel trivially implements itself.
/// let a = Channel::new(&[1]);
/// let b = Channel::new(&[1]);
/// let verdict = check_trace_inclusion(
///     &a,
///     &b,
///     |x| Some(*x),
///     &[ChanAction::Send(1)],
///     4,
///     10_000,
/// );
/// assert_eq!(verdict, Inclusion::Holds);
/// ```
pub fn check_trace_inclusion<I, S, M>(
    imp: &I,
    spec: &S,
    map: M,
    env_inputs: &[I::Action],
    max_env: usize,
    max_states: usize,
) -> Inclusion<S::Action>
where
    I: Automaton,
    S: Automaton,
    M: Fn(&I::Action) -> Option<S::Action>,
{
    #[allow(clippy::type_complexity)]
    type Config<I, S> = (
        <I as Automaton>::State,
        BTreeSet<<S as Automaton>::State>,
        usize, // environment inputs consumed
    );

    let spec_init = internal_closure(spec, spec.initial_states().into_iter().collect());
    let tasks = imp.tasks();
    let mut seen: HashSet<Config<I, S>> = HashSet::new();
    #[allow(clippy::type_complexity)]
    let mut queue: VecDeque<(Config<I, S>, Vec<S::Action>)> = VecDeque::new();
    for s0 in imp.initial_states() {
        let cfg = (s0, spec_init.clone(), 0);
        if seen.insert(cfg.clone()) {
            queue.push_back((cfg, Vec::new()));
        }
    }
    let mut truncated = false;
    while let Some(((si, qs, used), prefix)) = queue.pop_front() {
        // Enumerate implementation moves: task steps plus environment
        // inputs (the latter only while the input budget lasts).
        let mut moves: Vec<(I::Action, I::State, usize)> = Vec::new();
        for t in &tasks {
            for (a, s2) in imp.succ_all(t, &si) {
                moves.push((a, s2, used));
            }
        }
        if used < max_env {
            for inp in env_inputs {
                if let Some(s2) = imp.apply_input(&si, inp) {
                    moves.push((inp.clone(), s2, used + 1));
                }
            }
        }
        for (act, si2, used2) in moves {
            let (qs2, prefix2) = match map(&act) {
                None => (qs.clone(), prefix.clone()),
                Some(x) => {
                    let adv = advance(spec, &qs, &x);
                    if adv.is_empty() {
                        return Inclusion::Fails(TraceCounterexample {
                            matched_prefix: prefix,
                            offending: x,
                        });
                    }
                    let mut p2 = prefix.clone();
                    p2.push(x);
                    (adv, p2)
                }
            };
            let cfg = (si2, qs2, used2);
            if seen.contains(&cfg) {
                continue;
            }
            if seen.len() >= max_states {
                truncated = true;
                continue;
            }
            seen.insert(cfg.clone());
            queue.push_back((cfg, prefix2));
        }
    }
    if truncated {
        Inclusion::Truncated
    } else {
        Inclusion::Holds
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ChanAction, Channel, DeliverTask};

    /// A "lossy reorder" channel that delivers the *last* message first
    /// — it does NOT implement the FIFO channel.
    #[derive(Clone, Debug)]
    struct LifoChannel;

    impl Automaton for LifoChannel {
        type State = Vec<i64>;
        type Action = ChanAction;
        type Task = DeliverTask;

        fn initial_states(&self) -> Vec<Vec<i64>> {
            vec![Vec::new()]
        }
        fn tasks(&self) -> Vec<DeliverTask> {
            vec![DeliverTask]
        }
        fn succ_all(&self, _t: &DeliverTask, s: &Vec<i64>) -> Vec<(ChanAction, Vec<i64>)> {
            match s.split_last() {
                Some((last, rest)) => vec![(ChanAction::Recv(*last), rest.to_vec())],
                None => Vec::new(),
            }
        }
        fn apply_input(&self, s: &Vec<i64>, a: &ChanAction) -> Option<Vec<i64>> {
            match a {
                ChanAction::Send(m) => {
                    let mut s = s.clone();
                    s.push(*m);
                    Some(s)
                }
                ChanAction::Recv(_) => None,
            }
        }
        fn kind(&self, a: &ChanAction) -> crate::automaton::ActionKind {
            match a {
                ChanAction::Send(_) => crate::automaton::ActionKind::Input,
                ChanAction::Recv(_) => crate::automaton::ActionKind::Output,
            }
        }
    }

    #[test]
    fn fifo_implements_fifo() {
        let verdict = check_trace_inclusion(
            &Channel::new(&[1, 2]),
            &Channel::new(&[1, 2]),
            |x| Some(*x),
            &[ChanAction::Send(1), ChanAction::Send(2)],
            4,
            50_000,
        );
        assert_eq!(verdict, Inclusion::Holds);
    }

    #[test]
    fn lifo_does_not_implement_fifo() {
        let verdict = check_trace_inclusion(
            &LifoChannel,
            &Channel::new(&[1, 2]),
            |x| Some(*x),
            &[ChanAction::Send(1), ChanAction::Send(2)],
            4,
            50_000,
        );
        match verdict {
            Inclusion::Fails(cex) => {
                // The offending output delivers the later message first.
                assert!(matches!(cex.offending, ChanAction::Recv(_)));
            }
            other => panic!("expected a counterexample, got {other:?}"),
        }
    }

    #[test]
    fn truncation_reported_when_budget_tiny() {
        let verdict = check_trace_inclusion(
            &Channel::new(&[1]),
            &Channel::new(&[1]),
            |x| Some(*x),
            &[ChanAction::Send(1)],
            4,
            1,
        );
        assert_eq!(verdict, Inclusion::Truncated);
    }
}
