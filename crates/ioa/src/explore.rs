//! Breadth-first exploration of an automaton's reachable state space
//! (the executions of Section 2.1.1, and the graph `G(C)` of reachable
//! configurations that Section 3.3's valence analysis walks).
//!
//! All exploration funnels through [`ExploredGraph::explore_with`]: one
//! interning BFS over a [`StateStore`] that hands out dense [`StateId`]s
//! in discovery order. Frontier, seen-set, parent map and edge lists are
//! all id-keyed — each distinct state is deep-cloned and deep-hashed
//! exactly once, at first sight, instead of once per visit/per edge as
//! in a state-keyed BFS. Downstream passes (valence census, hook
//! search, witness scans) index flat `Vec`s by id.
//!
//! Budget semantics: exploration is truncated by `max_states`. When the
//! budget is hit, edges that would point at a never-enqueued state are
//! **dropped and counted** in [`ExploreStats::truncation`] — a truncated
//! graph never contains an edge to a state that has no node entry, so
//! every consumer may index edges blindly.

use crate::automaton::Automaton;
use crate::store::{StateId, StateStore};
use std::collections::VecDeque;

/// Why (and whether) exploration stopped before exhausting the
/// reachable space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The whole reachable space fit in the budget; the graph is exact.
    Complete,
    /// The state budget was hit: at least one reachable state was never
    /// interned, and `dropped_edges` discovered transitions into such
    /// states were discarded to keep the graph closed over its nodes.
    StateBudget {
        /// The `max_states` budget that was exceeded.
        budget: usize,
        /// Transitions discarded because their target was never
        /// admitted (each counted once per discovery, so a dropped
        /// state reachable along `k` explored edges counts `k` times).
        dropped_edges: usize,
    },
}

/// Census of a finished exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreStats {
    /// Distinct states interned (= nodes in the graph).
    pub states: usize,
    /// Transitions retained in the edge lists.
    pub edges: usize,
    /// Largest BFS frontier observed (including the state being
    /// expanded) — a proxy for the exploration's working-set width.
    pub peak_frontier: usize,
    /// Whether the graph is exact or budget-truncated.
    pub truncation: Truncation,
}

impl ExploreStats {
    /// Whether any part of the reachable space was cut off.
    #[must_use]
    pub fn truncated(&self) -> bool {
        !matches!(self.truncation, Truncation::Complete)
    }
}

/// Knobs for [`ExploredGraph::explore_with`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum number of distinct states to intern. Roots are always
    /// admitted; successors stop being admitted once the arena holds
    /// `max_states`.
    pub max_states: usize,
    /// Drop self-loop transitions (`s -> s`) at discovery time. The
    /// valence census (Section 3.3) walks `G(C)` this way: a stuttering
    /// step never changes the decisions reachable from a configuration.
    pub skip_self_loops: bool,
}

impl ExploreOptions {
    /// Keep everything up to `max_states`, self-loops included.
    #[must_use]
    pub fn with_budget(max_states: usize) -> Self {
        ExploreOptions {
            max_states,
            skip_self_loops: false,
        }
    }
}

/// One retained transition out of an interned state:
/// `(task, action, successor id)`.
pub type Edge<A> = (<A as Automaton>::Task, <A as Automaton>::Action, StateId);

/// The BFS-tree link that first discovered a state:
/// `(predecessor id, task, action)`.
pub type Discovery<A> = (StateId, <A as Automaton>::Task, <A as Automaton>::Action);

/// The interned reachable graph of an automaton from a set of roots:
/// the paper's `G(C)` (Section 3.3) with states replaced by dense
/// [`StateId`]s.
///
/// One `ExploredGraph` is built per root configuration and then shared
/// by every analysis pass — valence classification, Lemma 4 bivalent
/// initialization, the Lemma 5 hook search, witness extraction — so the
/// state space is expanded, hashed and cloned exactly once.
pub struct ExploredGraph<A: Automaton> {
    store: StateStore<A::State>,
    roots: Vec<StateId>,
    /// `edges[id] = [(task, action, successor)]` in task order — the
    /// retained transitions out of each interned state.
    edges: Vec<Vec<Edge<A>>>,
    /// BFS tree: for each non-root state, the (predecessor, task,
    /// action) that first discovered it.
    parent: Vec<Option<Discovery<A>>>,
    stats: ExploreStats,
}

// Manual impl: a derive would demand `A: Debug` although only the
// associated types (all `Debug` by the trait bounds) appear in the data.
impl<A: Automaton> std::fmt::Debug for ExploredGraph<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploredGraph")
            .field("roots", &self.roots)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> ExploredGraph<A> {
    /// Explore with the default options (no self-loop skipping).
    pub fn explore(aut: &A, roots: Vec<A::State>, max_states: usize) -> Self {
        Self::explore_with(aut, roots, ExploreOptions::with_budget(max_states))
    }

    /// Interning BFS from `roots`, visiting each distinct state once.
    ///
    /// Discovery order (and hence id assignment) is deterministic: the
    /// root order, then task order within each expanded state, then the
    /// branch order of [`Automaton::succ_all`].
    pub fn explore_with(aut: &A, roots: Vec<A::State>, opts: ExploreOptions) -> Self {
        let tasks = aut.tasks();
        let mut store: StateStore<A::State> = StateStore::new();
        let mut root_ids = Vec::with_capacity(roots.len());
        let mut edges: Vec<Vec<Edge<A>>> = Vec::new();
        let mut parent: Vec<Option<Discovery<A>>> = Vec::new();
        let mut queue: VecDeque<StateId> = VecDeque::new();
        let mut edge_count = 0usize;
        let mut dropped_edges = 0usize;
        let mut truncated = false;
        let mut peak_frontier = 0usize;

        for r in &roots {
            let (id, fresh) = store.intern(r);
            if fresh {
                edges.push(Vec::new());
                parent.push(None);
                queue.push_back(id);
            }
            root_ids.push(id);
        }

        while let Some(id) = queue.pop_front() {
            peak_frontier = peak_frontier.max(queue.len() + 1);
            // Collect successors under an immutable borrow of the
            // arena, then intern them; succ_all hands back owned
            // states, so the expanded state itself is never recloned.
            let succs: Vec<(A::Task, A::Action, A::State)> = {
                let s = store.resolve(id);
                tasks
                    .iter()
                    .flat_map(|t| {
                        aut.succ_all(t, s)
                            .into_iter()
                            .map(move |(a, s2)| (t.clone(), a, s2))
                    })
                    .filter(|(_, _, s2)| !(opts.skip_self_loops && s2 == s))
                    .collect()
            };
            for (t, a, s2) in succs {
                match store.try_intern(&s2, opts.max_states) {
                    Some((id2, fresh)) => {
                        if fresh {
                            edges.push(Vec::new());
                            parent.push(Some((id, t.clone(), a.clone())));
                            queue.push_back(id2);
                        }
                        edges[id.index()].push((t, a, id2));
                        edge_count += 1;
                    }
                    None => {
                        // Budget hit: the target was never admitted, so
                        // the edge is dropped (and counted) rather than
                        // left dangling at a node with no entry.
                        truncated = true;
                        dropped_edges += 1;
                    }
                }
            }
        }

        let truncation = if truncated {
            Truncation::StateBudget {
                budget: opts.max_states,
                dropped_edges,
            }
        } else {
            Truncation::Complete
        };
        let stats = ExploreStats {
            states: store.len(),
            edges: edge_count,
            peak_frontier,
            truncation,
        };
        ExploredGraph {
            store,
            roots: root_ids,
            edges,
            parent,
            stats,
        }
    }

    /// The arena mapping ids to states.
    #[must_use]
    pub fn store(&self) -> &StateStore<A::State> {
        &self.store
    }

    /// Number of interned states (nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the graph has no states (only possible with no roots).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The root ids, in the order the roots were given.
    #[must_use]
    pub fn roots(&self) -> &[StateId] {
        &self.roots
    }

    /// Exploration census: states, edges, peak frontier, truncation.
    #[must_use]
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Resolve an id back to its state.
    #[inline]
    #[must_use]
    pub fn resolve(&self, id: StateId) -> &A::State {
        self.store.resolve(id)
    }

    /// The id of `state`, if it was reached within budget.
    #[must_use]
    pub fn id_of(&self, state: &A::State) -> Option<StateId> {
        self.store.get(state)
    }

    /// Whether `state` was reached within budget.
    #[must_use]
    pub fn contains(&self, state: &A::State) -> bool {
        self.store.get(state).is_some()
    }

    /// The retained transitions out of `id`, in task order.
    #[inline]
    #[must_use]
    pub fn successors(&self, id: StateId) -> &[(A::Task, A::Action, StateId)] {
        &self.edges[id.index()]
    }

    /// All ids in discovery (BFS) order.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        self.store.ids()
    }

    /// The BFS-tree step that first discovered `id` (`None` for roots).
    #[must_use]
    pub fn discovered_by(&self, id: StateId) -> Option<&(StateId, A::Task, A::Action)> {
        self.parent[id.index()].as_ref()
    }

    /// A shortest path (in the BFS tree) from some root to `id`, as
    /// `(task, action, resulting state)` steps.
    #[must_use]
    pub fn path_to(&self, id: StateId) -> Path<A> {
        let mut path = Vec::new();
        let mut cur = id;
        while let Some((prev, t, a)) = &self.parent[cur.index()] {
            path.push((t.clone(), a.clone(), self.store.resolve(cur).clone()));
            cur = *prev;
        }
        path.reverse();
        path
    }
}

/// The set of states reachable from `roots` (legacy state-set view of
/// an exploration).
#[derive(Debug, Clone)]
pub struct ReachResult<S> {
    /// Every reachable state found within the budget.
    pub states: std::collections::HashSet<S>,
    /// True if the `max_states` budget stopped the search early.
    pub truncated: bool,
}

/// Breadth-first reachability from a set of roots, stopping after
/// `max_states` distinct states.
///
/// A thin wrapper over [`ExploredGraph::explore`] that forgets the
/// graph structure and hands back the plain state set.
///
/// ```
/// use ioa::automaton::Automaton;
/// use ioa::explore::reachable_states;
/// use ioa::toy::ParityCounter;
///
/// let c = ParityCounter::new(3);
/// let r = reachable_states(&c, c.initial_states(), 100);
/// assert_eq!(r.states.len(), 4); // 0, 1, 2, 3
/// assert!(!r.truncated);
/// ```
pub fn reachable_states<A: Automaton>(
    aut: &A,
    roots: Vec<A::State>,
    max_states: usize,
) -> ReachResult<A::State> {
    let g = ExploredGraph::explore(aut, roots, max_states);
    ReachResult {
        states: g.store().states().iter().cloned().collect(),
        truncated: g.stats().truncated(),
    }
}

/// A path through an automaton: the `(task, action, resulting state)`
/// steps of a finite execution fragment (Section 2.1.1), excluding the
/// start state.
pub type Path<A> = Vec<(
    <A as Automaton>::Task,
    <A as Automaton>::Action,
    <A as Automaton>::State,
)>;

/// Outcome of a bounded breadth-first search for a target state.
#[derive(Debug)]
pub enum SearchOutcome<A: Automaton> {
    /// A shortest path (in steps) from the root to a state satisfying
    /// the predicate.
    Found(Path<A>),
    /// The whole reachable space was explored; no state matches. This
    /// is a proof of unreachability.
    Exhausted,
    /// The state budget was exhausted first; absence is inconclusive.
    Truncated,
}

// Manual impls: derived ones would demand `A: Clone` / `A: PartialEq`
// even though only the associated types appear in the data.
impl<A: Automaton> Clone for SearchOutcome<A> {
    fn clone(&self) -> Self {
        match self {
            SearchOutcome::Found(p) => SearchOutcome::Found(p.clone()),
            SearchOutcome::Exhausted => SearchOutcome::Exhausted,
            SearchOutcome::Truncated => SearchOutcome::Truncated,
        }
    }
}

impl<A: Automaton> PartialEq for SearchOutcome<A> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SearchOutcome::Found(a), SearchOutcome::Found(b)) => a == b,
            (SearchOutcome::Exhausted, SearchOutcome::Exhausted) => true,
            (SearchOutcome::Truncated, SearchOutcome::Truncated) => true,
            _ => false,
        }
    }
}

impl<A: Automaton> Eq for SearchOutcome<A> {}

/// Bounded BFS from `root` for a state satisfying `pred`, returning a
/// shortest path to the first match.
///
/// Unlike [`ExploredGraph::explore`], this stops as soon as a match is
/// discovered, so it keeps its own early-exit BFS: an interning arena
/// for the seen-set plus an id-indexed parent vector for path
/// reconstruction. The predicate is checked on the root first, then on
/// each state as it is discovered.
pub fn search<A, P>(aut: &A, root: &A::State, pred: P, max_states: usize) -> SearchOutcome<A>
where
    A: Automaton,
    P: Fn(&A::State) -> bool,
{
    if pred(root) {
        return SearchOutcome::Found(Vec::new());
    }
    let tasks = aut.tasks();
    let mut store: StateStore<A::State> = StateStore::new();
    let (root_id, _) = store.intern(root);
    let mut parent: Vec<Option<Discovery<A>>> = vec![None];
    let mut queue: VecDeque<StateId> = VecDeque::from([root_id]);
    let mut truncated = false;

    while let Some(id) = queue.pop_front() {
        let succs: Vec<(A::Task, A::Action, A::State)> = {
            let s = store.resolve(id);
            tasks
                .iter()
                .flat_map(|t| {
                    aut.succ_all(t, s)
                        .into_iter()
                        .map(move |(a, s2)| (t.clone(), a, s2))
                })
                .collect()
        };
        for (t, a, s2) in succs {
            match store.try_intern(&s2, max_states) {
                Some((id2, true)) => {
                    parent.push(Some((id, t, a)));
                    if pred(&s2) {
                        // Walk the BFS tree back to the root.
                        let mut path = Vec::new();
                        let mut cur = id2;
                        while let Some((prev, t, a)) = &parent[cur.index()] {
                            path.push((t.clone(), a.clone(), store.resolve(cur).clone()));
                            cur = *prev;
                        }
                        path.reverse();
                        return SearchOutcome::Found(path);
                    }
                    queue.push_back(id2);
                }
                Some((_, false)) => {}
                None => truncated = true,
            }
        }
    }
    if truncated {
        SearchOutcome::Truncated
    } else {
        SearchOutcome::Exhausted
    }
}

/// Build the interned reachable graph from `roots` — the transition
/// structure of `G(C)` (Section 3.3) that the valence census and hook
/// search walk.
///
/// Under truncation, edges into never-admitted states are dropped and
/// counted ([`Truncation::StateBudget`]'s `dropped_edges`), so the edge
/// lists only ever reference states present in the graph.
pub fn build_graph<A: Automaton>(
    aut: &A,
    roots: Vec<A::State>,
    max_states: usize,
) -> ExploredGraph<A> {
    ExploredGraph::explore(aut, roots, max_states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ParityCounter, ParityTask};

    #[test]
    fn reachability_reaches_the_bound() {
        let c = ParityCounter::new(5);
        let r = reachable_states(&c, c.initial_states(), 100);
        assert_eq!(r.states.len(), 6);
        assert!(!r.truncated);
    }

    #[test]
    fn truncation_is_reported() {
        let c = ParityCounter::new(100);
        let r = reachable_states(&c, c.initial_states(), 10);
        assert_eq!(r.states.len(), 10);
        assert!(r.truncated);
    }

    #[test]
    fn search_finds_shortest_path() {
        let c = ParityCounter::new(10);
        match search(&c, &0, |s| *s == 3, 100) {
            SearchOutcome::Found(path) => {
                assert_eq!(path.len(), 3);
                let tasks: Vec<ParityTask> = path.iter().map(|(t, _, _)| *t).collect();
                assert_eq!(
                    tasks,
                    vec![ParityTask::Even, ParityTask::Odd, ParityTask::Even]
                );
                assert_eq!(path.last().unwrap().2, 3);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn search_exhausted_is_a_proof() {
        let c = ParityCounter::new(5);
        assert_eq!(search(&c, &0, |s| *s == 42, 100), SearchOutcome::Exhausted);
    }

    #[test]
    fn search_at_root() {
        let c = ParityCounter::new(5);
        assert_eq!(
            search(&c, &0, |s| *s == 0, 100),
            SearchOutcome::Found(Vec::new())
        );
    }

    #[test]
    fn graph_has_one_edge_per_applicable_task() {
        let c = ParityCounter::new(2);
        let g = build_graph(&c, c.initial_states(), 100);
        assert_eq!(g.len(), 3);
        assert!(!g.stats().truncated());
        let id0 = g.id_of(&0).expect("root interned");
        let id2 = g.id_of(&2).expect("terminal state reached");
        assert_eq!(g.successors(id0).len(), 1); // only Even applies at 0
        assert_eq!(g.successors(id2).len(), 0); // terminal
        assert_eq!(g.stats().edges, 2); // 0 -> 1 -> 2
    }

    #[test]
    fn ids_follow_bfs_discovery_order() {
        let c = ParityCounter::new(3);
        let g = build_graph(&c, c.initial_states(), 100);
        for (i, id) in g.ids().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(*g.resolve(id), i as i64);
        }
        // The parent chain reconstructs a shortest path to each state.
        let id3 = g.id_of(&3).unwrap();
        let path = g.path_to(id3);
        assert_eq!(path.len(), 3);
        assert_eq!(path.last().unwrap().2, 3);
    }

    #[test]
    fn truncated_graph_has_no_dangling_edges() {
        // Regression for the pre-interning builder, which pushed edges
        // before checking the budget: a truncated graph would contain
        // edges to states that were never given a node entry. The
        // chosen semantics: drop such edges and count them.
        let c = ParityCounter::new(1_000);
        let g = build_graph(&c, c.initial_states(), 10);
        assert_eq!(g.len(), 10);
        match g.stats().truncation {
            Truncation::StateBudget {
                budget,
                dropped_edges,
            } => {
                assert_eq!(budget, 10);
                // The counter is a chain, so exactly the edge 9 -> 10 drops.
                assert_eq!(dropped_edges, 1);
            }
            Truncation::Complete => panic!("expected truncation"),
        }
        // Every retained edge targets an admitted state.
        for id in g.ids() {
            for (_, _, dst) in g.successors(id) {
                assert!(dst.index() < g.len(), "dangling edge to {dst:?}");
            }
        }
        assert_eq!(g.stats().edges, 9);
    }

    #[test]
    fn explore_options_do_not_change_loop_free_graphs() {
        // ParityCounter has no self-loops, so skip_self_loops must be
        // a no-op on it; the flag only ever removes s -> s stutters.
        let c = ParityCounter::new(4);
        let full = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions {
                max_states: 100,
                skip_self_loops: false,
            },
        );
        let skipped = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions {
                max_states: 100,
                skip_self_loops: true,
            },
        );
        assert_eq!(full.len(), skipped.len());
        assert_eq!(full.stats().edges, skipped.stats().edges);
    }
}
