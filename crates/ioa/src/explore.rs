//! Breadth-first exploration of an automaton's reachable state space
//! (the executions of Section 2.1.1, and the graph `G(C)` of reachable
//! configurations that Section 3.3's valence analysis walks).
//!
//! All exploration funnels through [`ExploredGraph::explore_with`]: one
//! interning BFS over a [`StateStore`] that hands out dense [`StateId`]s
//! in discovery order. Frontier, seen-set, parent map and edge lists are
//! all id-keyed — each distinct state is deep-cloned and deep-hashed
//! exactly once, at first sight, instead of once per visit/per edge as
//! in a state-keyed BFS. Downstream passes (valence census, hook
//! search, witness scans) index flat `Vec`s by id.
//!
//! Budget semantics: exploration is truncated by `max_states`. When the
//! budget is hit, edges that would point at a never-enqueued state are
//! **dropped and counted** in [`ExploreStats::truncation`] — a truncated
//! graph never contains an edge to a state that has no node entry, so
//! every consumer may index edges blindly.

use crate::automaton::{Automaton, CacheStats};
use crate::canon::SymmetryMode;
use crate::csr::Csr;
use crate::store::{fx_hash, ShardedStore, StateId, StateStore};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Why (and whether) exploration stopped before exhausting the
/// reachable space.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Truncation {
    /// The whole reachable space fit in the budget; the graph is exact.
    Complete,
    /// The state budget was hit: at least one reachable state was never
    /// interned, and `dropped_edges` discovered transitions into such
    /// states were discarded to keep the graph closed over its nodes.
    StateBudget {
        /// The `max_states` budget that was exceeded.
        budget: usize,
        /// Transitions discarded because their target was never
        /// admitted (each counted once per discovery, so a dropped
        /// state reachable along `k` explored edges counts `k` times).
        dropped_edges: usize,
    },
}

/// Census of a finished exploration.
#[derive(Debug, Clone, Copy)]
pub struct ExploreStats {
    /// Distinct states interned (= nodes in the graph).
    pub states: usize,
    /// Transitions retained in the edge lists.
    pub edges: usize,
    /// Peak number of *in-flight* states observed — admitted but not
    /// yet fully expanded — a proxy for the exploration's working-set
    /// width.
    ///
    /// On the sequential and layer-synchronous paths this is the
    /// largest BFS frontier (queue plus the state being expanded),
    /// sampled when a state is dequeued, exactly as it always was. The
    /// work-stealing path has no layers, so the same quantity is
    /// sampled from its atomic in-flight counter at each dequeue; with
    /// one worker the two definitions coincide step for step, while
    /// under concurrency the value depends on scheduling and is *not*
    /// compared by `PartialEq` (see below).
    pub peak_frontier: usize,
    /// Whether the graph is exact or budget-truncated.
    pub truncation: Truncation,
    /// Hit/miss counters of the automaton's transition-effect cache
    /// over this exploration, or `None` for automata without one.
    /// Accounted through the scoped sink of
    /// [`Automaton::succ_counted`], so the numbers cover exactly this
    /// exploration's expansions even when other workloads share the
    /// automaton (and its cumulative counters) concurrently.
    pub cache: Option<CacheStats>,
}

// `cache` and `peak_frontier` are measurements of *how* the graph was
// produced, not part of the graph's identity: the deep and the packed
// system automata explore bit-identical graphs while only the packed
// one reports cache counters, and a work-stealing exploration of the
// same space reports a scheduling-dependent in-flight peak. Equality
// therefore compares the census fields only, so the differential suites
// can keep asserting `deep.stats() == packed.stats()` across automaton
// encodings *and* frontier strategies.
impl PartialEq for ExploreStats {
    fn eq(&self, other: &Self) -> bool {
        self.states == other.states
            && self.edges == other.edges
            && self.truncation == other.truncation
    }
}

impl Eq for ExploreStats {}

impl ExploreStats {
    /// Whether any part of the reachable space was cut off.
    #[must_use]
    pub fn truncated(&self) -> bool {
        !matches!(self.truncation, Truncation::Complete)
    }
}

/// Environment variable overriding the worker-thread count when
/// [`ExploreOptions::threads`] is `0` (auto). CI sets this to force the
/// whole test suite through the parallel path.
pub const THREADS_ENV: &str = "IOA_EXPLORE_THREADS";

/// Environment variable resolving [`FrontierMode::Auto`]: set it to
/// `ws` (aliases: `worksteal`, `work-stealing`) to route every
/// auto-mode exploration through the work-stealing frontier, anything
/// else (or unset) for the layer-synchronous default. CI's
/// `work-stealing` job sets this to sweep the whole suite through the
/// sharded path.
pub const FRONTIER_ENV: &str = "IOA_EXPLORE_FRONTIER";

/// Which frontier discipline [`ExploredGraph::explore_with`] drives the
/// BFS with (DESIGN §2.1.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FrontierMode {
    /// Resolve through [`FRONTIER_ENV`] when set, else [`Layered`].
    ///
    /// [`Layered`]: FrontierMode::Layered
    #[default]
    Auto,
    /// Layer-synchronous expansion with a sequential in-order merge:
    /// graphs are **bit-identical** to the sequential explorer at every
    /// thread count, including under truncation. The scaling ceiling is
    /// the merge thread.
    Layered,
    /// Sharded concurrent interning + work-stealing deques: workers
    /// intern into a [`ShardedStore`] and steal half a victim's deque
    /// when idle, with no layer barriers. Finished graphs are
    /// *renumbered* into BFS discovery order, so a **complete**
    /// exploration is bit-identical to the sequential one (ids, edges,
    /// parents); a *truncated* one admits a scheduling-dependent subset
    /// of exactly `max_states` states and is only guaranteed sound
    /// (every admitted state reachable, edges closed). Honored even at
    /// `threads = 1`, where it degenerates to a deterministic FIFO BFS
    /// identical to the sequential path.
    WorkSteal,
}

impl FrontierMode {
    /// The mode this exploration will actually run: `Auto` resolved
    /// through [`FRONTIER_ENV`], explicit modes taken as given.
    #[must_use]
    pub fn effective(self) -> FrontierMode {
        match self {
            FrontierMode::Auto => match std::env::var(FRONTIER_ENV).ok().as_deref() {
                Some("ws" | "worksteal" | "work-stealing") => FrontierMode::WorkSteal,
                _ => FrontierMode::Layered,
            },
            other => other,
        }
    }
}

/// Knobs for [`ExploredGraph::explore_with`].
#[derive(Debug, Clone, Copy)]
pub struct ExploreOptions {
    /// Maximum number of distinct states to intern. Roots are always
    /// admitted; successors stop being admitted once the arena holds
    /// `max_states`.
    pub max_states: usize,
    /// Drop self-loop transitions (`s -> s`) at discovery time. The
    /// valence census (Section 3.3) walks `G(C)` this way: a stuttering
    /// step never changes the decisions reachable from a configuration.
    pub skip_self_loops: bool,
    /// Worker threads for layer-synchronous frontier expansion.
    ///
    /// `1` keeps exploration on the calling thread; `n > 1` expands
    /// each BFS layer across `n` scoped workers and merges their
    /// batches sequentially, producing a graph **bit-identical** to the
    /// sequential one (same ids, edges, parents, stats). `0` means
    /// *auto*: honor the [`THREADS_ENV`] environment variable when set
    /// (an explicit override, taken as given), else cap at
    /// [`std::thread::available_parallelism`] — so a 1-core host never
    /// pays thread orchestration. Layers narrower than
    /// [`SPAWN_LAYER_THRESHOLD`] are always expanded inline regardless
    /// of the thread count.
    pub threads: usize,
    /// Whether successors are canonicalized to orbit representatives
    /// via [`Automaton::canonical`] before interning, quotienting the
    /// graph by the automaton's declared symmetry group.
    ///
    /// Roots are never canonicalized — they anchor concrete
    /// initializations (input assignments, replayable task prefixes) —
    /// so a quotient graph holds the given roots plus canonical
    /// representatives. With `skip_self_loops`, *orbit* stutters
    /// (successors canonicalizing back onto their source) are dropped
    /// along with concrete ones. For automata whose `canonical` is the
    /// identity (the default), `Full` explores the same graph as `Off`.
    pub symmetry: SymmetryMode,
    /// Frontier discipline: layer-synchronous (bit-identical merge) or
    /// sharded work-stealing (renumbered; bit-identical when complete).
    /// See [`FrontierMode`].
    pub frontier: FrontierMode,
}

/// BFS layers narrower than this are expanded inline on the calling
/// thread even when `threads > 1`: spawning scoped workers for a
/// handful of states costs more than expanding them. The resulting
/// graph is bit-identical either way (the inline path mirrors the
/// sequential merge order exactly), so this is purely a latency knob.
pub const SPAWN_LAYER_THRESHOLD: usize = 64;

impl ExploreOptions {
    /// Keep everything up to `max_states`, self-loops included,
    /// thread count auto-detected (see [`ExploreOptions::threads`]).
    #[must_use]
    pub fn with_budget(max_states: usize) -> Self {
        ExploreOptions {
            max_states,
            skip_self_loops: false,
            threads: 0,
            symmetry: SymmetryMode::Off,
            frontier: FrontierMode::Auto,
        }
    }

    /// Same options with an explicit worker-thread count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Same options with an explicit frontier mode.
    #[must_use]
    pub fn with_frontier(mut self, frontier: FrontierMode) -> Self {
        self.frontier = frontier;
        self
    }

    /// Same options with an explicit symmetry mode.
    #[must_use]
    pub fn with_symmetry(mut self, symmetry: SymmetryMode) -> Self {
        self.symmetry = symmetry;
        self
    }

    /// The worker count this exploration will actually use:
    /// `threads` as given; `0` resolved through [`THREADS_ENV`] when
    /// set (an explicit override, used verbatim so CI can force the
    /// parallel merge path on any host), else capped at
    /// [`std::thread::available_parallelism`] (1 when unknown).
    #[must_use]
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::env::var(THREADS_ENV)
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n >= 1)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
                }),
            n => n,
        }
    }
}

/// One retained transition out of an interned state:
/// `(task, action, successor id)`.
pub type Edge<A> = (<A as Automaton>::Task, <A as Automaton>::Action, StateId);

/// The BFS-tree link that first discovered a state:
/// `(predecessor id, task, action)`.
pub type Discovery<A> = (StateId, <A as Automaton>::Task, <A as Automaton>::Action);

/// The interned reachable graph of an automaton from a set of roots:
/// the paper's `G(C)` (Section 3.3) with states replaced by dense
/// [`StateId`]s.
///
/// One `ExploredGraph` is built per root configuration and then shared
/// by every analysis pass — valence classification, Lemma 4 bivalent
/// initialization, the Lemma 5 hook search, witness extraction — so the
/// state space is expanded, hashed and cloned exactly once.
pub struct ExploredGraph<A: Automaton> {
    store: StateStore<A::State>,
    roots: Vec<StateId>,
    /// Flat CSR adjacency: row `id` holds the retained
    /// `(task, action, successor)` transitions out of state `id`, in
    /// task order. One contiguous edge array for the whole graph.
    edges: Csr<Edge<A>>,
    /// BFS tree: for each non-root state, the (predecessor, task,
    /// action) that first discovered it.
    parent: Vec<Option<Discovery<A>>>,
    stats: ExploreStats,
}

// Manual impl: a derive would demand `A: Debug` although only the
// associated types (all `Debug` by the trait bounds) appear in the data.
impl<A: Automaton> std::fmt::Debug for ExploredGraph<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExploredGraph")
            .field("roots", &self.roots)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<A: Automaton> ExploredGraph<A> {
    /// Explore with the default options (no self-loop skipping).
    pub fn explore(aut: &A, roots: Vec<A::State>, max_states: usize) -> Self {
        Self::explore_with(aut, roots, ExploreOptions::with_budget(max_states))
    }

    /// Interning BFS from `roots`, visiting each distinct state once.
    ///
    /// Discovery order (and hence id assignment) is deterministic: the
    /// root order, then task order within each expanded state, then the
    /// branch order of [`Automaton::succ_all`]. This holds for every
    /// thread count — with `opts.threads > 1` each BFS layer is
    /// expanded across a scoped worker pool and the batches are merged
    /// sequentially in exactly that order, so the resulting graph (ids,
    /// edges, parents, stats, truncation) is bit-identical to the
    /// sequential one. See DESIGN.md §2.1.1.
    ///
    /// With [`FrontierMode::WorkSteal`] the same determinism holds for
    /// every *complete* exploration — the post-hoc renumbering pass
    /// reassigns exactly the sequential ids (DESIGN §2.1.5) — while a
    /// *truncated* work-stealing run keeps a scheduling-dependent (but
    /// exactly-budget, edge-closed) subset of the reachable graph.
    pub fn explore_with(aut: &A, roots: Vec<A::State>, opts: ExploreOptions) -> Self {
        // Cache accounting is scoped: every expansion goes through
        // `succ_counted` with this exploration's own sink, so the
        // reported numbers cover exactly this run. (The previous
        // snapshot-subtract over the automaton's *cumulative* counters
        // drifted when a shared warm automaton — e.g. one
        // `PackedSystem` across the Lemma 4 walk — served several
        // interleaved workloads: their lookups all landed in whichever
        // exploration happened to snapshot around them.)
        let track_cache = aut.cache_stats().is_some();
        let threads = opts.effective_threads();
        if opts.frontier.effective() == FrontierMode::WorkSteal {
            return worksteal::explore(aut, &roots, opts, threads);
        }
        let mut b = Builder::new(&roots);
        if threads <= 1 {
            b.expand_sequential(aut, opts);
        } else {
            b.expand_layered(aut, opts, threads);
        }
        let scoped = b.cache;
        let mut g = b.finish(opts);
        g.stats.cache = track_cache.then_some(scoped);
        g
    }

    /// The arena mapping ids to states.
    #[must_use]
    pub fn store(&self) -> &StateStore<A::State> {
        &self.store
    }

    /// Number of interned states (nodes).
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the graph has no states (only possible with no roots).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The root ids, in the order the roots were given.
    #[must_use]
    pub fn roots(&self) -> &[StateId] {
        &self.roots
    }

    /// Exploration census: states, edges, peak frontier, truncation.
    #[must_use]
    pub fn stats(&self) -> &ExploreStats {
        &self.stats
    }

    /// Resolve an id back to its state.
    #[inline]
    #[must_use]
    pub fn resolve(&self, id: StateId) -> &A::State {
        self.store.resolve(id)
    }

    /// The id of `state`, if it was reached within budget.
    #[must_use]
    pub fn id_of(&self, state: &A::State) -> Option<StateId> {
        self.store.get(state)
    }

    /// Whether `state` was reached within budget.
    #[must_use]
    pub fn contains(&self, state: &A::State) -> bool {
        self.store.get(state).is_some()
    }

    /// The retained transitions out of `id`, in task order.
    #[inline]
    #[must_use]
    pub fn successors(&self, id: StateId) -> &[(A::Task, A::Action, StateId)] {
        self.edges.row(id.index())
    }

    /// All ids in discovery (BFS) order.
    pub fn ids(&self) -> impl Iterator<Item = StateId> + '_ {
        self.store.ids()
    }

    /// The BFS-tree step that first discovered `id` (`None` for roots).
    #[must_use]
    pub fn discovered_by(&self, id: StateId) -> Option<&(StateId, A::Task, A::Action)> {
        self.parent[id.index()].as_ref()
    }

    /// Decompose the graph into its owned parts — arena, roots, edge
    /// lists, BFS tree and stats — so a caller can re-encode the states
    /// (e.g. decode packed component ids back into concrete system
    /// states) without cloning the adjacency structure.
    #[must_use]
    pub fn into_parts(self) -> GraphParts<A> {
        GraphParts {
            store: self.store,
            roots: self.roots,
            edges: self.edges,
            parent: self.parent,
            stats: self.stats,
        }
    }

    /// A shortest path (in the BFS tree) from some root to `id`, as
    /// `(task, action, resulting state)` steps.
    #[must_use]
    pub fn path_to(&self, id: StateId) -> Path<A> {
        let mut path = Vec::new();
        let mut cur = id;
        while let Some((prev, t, a)) = &self.parent[cur.index()] {
            path.push((t.clone(), a.clone(), self.store.resolve(cur).clone()));
            cur = *prev;
        }
        path.reverse();
        path
    }
}

/// The owned pieces of an [`ExploredGraph`], produced by
/// [`ExploredGraph::into_parts`]. Ids index `edges` and `parent`
/// exactly as they index the arena.
pub struct GraphParts<A: Automaton> {
    /// The arena mapping ids to states, in discovery order.
    pub store: StateStore<A::State>,
    /// The root ids, in the order the roots were given.
    pub roots: Vec<StateId>,
    /// Flat CSR adjacency: row `id` holds the `(task, action,
    /// successor)` transitions out of state `id`, in task order.
    pub edges: Csr<Edge<A>>,
    /// BFS tree: the step that first discovered each non-root state.
    pub parent: Vec<Option<Discovery<A>>>,
    /// Exploration census: states, edges, peak frontier, truncation.
    pub stats: ExploreStats,
}

/// In-progress exploration state shared by the sequential and the
/// layer-synchronous parallel expansion loops.
struct Builder<A: Automaton> {
    store: StateStore<A::State>,
    root_ids: Vec<StateId>,
    /// CSR adjacency under construction. Sources are expanded in
    /// strictly increasing id order (BFS pops a monotone queue; the
    /// layered merge walks each layer in id order), so the open CSR row
    /// is always the row of the source currently being expanded, and
    /// closing it after the source's last successor lays rows out in id
    /// order with no repacking pass.
    edges: Csr<Edge<A>>,
    parent: Vec<Option<Discovery<A>>>,
    queue: VecDeque<StateId>,
    edge_count: usize,
    dropped_edges: usize,
    truncated: bool,
    peak_frontier: usize,
    /// Scoped cache accounting for this exploration only (fed by the
    /// [`Automaton::succ_counted`] sink; parallel workers accumulate
    /// privately and are summed at merge time).
    cache: CacheStats,
}

/// One successor discovered by a parallel worker, classified against
/// the frozen arena: either a state interned in an earlier layer
/// (probe hit — the merge loop only records the edge) or a candidate
/// new state carried with its precomputed fx hash.
enum Found<A: Automaton> {
    Known(A::Task, A::Action, StateId),
    Fresh(A::Task, A::Action, A::State, u64),
}

/// One successor of an expanded state, paired with its precomputed
/// fx hash (so interning never re-hashes).
type Succ<A> = (
    <A as Automaton>::Task,
    <A as Automaton>::Action,
    <A as Automaton>::State,
    u64,
);

/// Worker body: expand one source state, hashing and pre-probing each
/// successor against the (frozen) arena off the merge thread.
///
/// Under [`SymmetryMode::Full`] each successor is canonicalized to its
/// orbit representative before hashing/probing, with a two-stage
/// self-loop check: concrete stutters (`s2 == s`) are dropped before
/// canonicalization, and *orbit* stutters (`canonical(s2) == s`, the
/// successor permuting back onto its canonical source) after it.
fn expand_one<A: Automaton>(
    aut: &A,
    tasks: &[A::Task],
    store: &StateStore<A::State>,
    id: StateId,
    opts: ExploreOptions,
    cache: &mut CacheStats,
) -> Vec<Found<A>> {
    let s = store.resolve(id);
    let canon = opts.symmetry.is_full();
    let mut out = Vec::new();
    for t in tasks {
        for (a, s2) in aut.succ_counted(t, s, cache) {
            if opts.skip_self_loops && &s2 == s {
                continue;
            }
            let s2 = if canon { aut.canonical(s2) } else { s2 };
            if canon && opts.skip_self_loops && &s2 == s {
                continue;
            }
            let h = crate::store::fx_hash(&s2);
            match store.get_prehashed(&s2, h) {
                Some(id2) => out.push(Found::Known(t.clone(), a, id2)),
                None => out.push(Found::Fresh(t.clone(), a, s2, h)),
            }
        }
    }
    out
}

impl<A: Automaton> Builder<A> {
    fn new(roots: &[A::State]) -> Self {
        let mut b = Builder {
            store: StateStore::new(),
            root_ids: Vec::with_capacity(roots.len()),
            edges: Csr::new(),
            parent: Vec::new(),
            queue: VecDeque::new(),
            edge_count: 0,
            dropped_edges: 0,
            truncated: false,
            peak_frontier: 0,
            cache: CacheStats::default(),
        };
        for r in roots {
            let (id, fresh) = b.store.intern(r);
            if fresh {
                b.parent.push(None);
                b.queue.push_back(id);
            }
            b.root_ids.push(id);
        }
        b
    }

    /// Record one discovered transition `src -(t, a)-> s2` exactly as
    /// the sequential BFS would: intern (budget-checked), extend the
    /// parent map on first sight, drop and count the edge on budget
    /// exhaustion. Returns the successor's id when it was freshly
    /// admitted (the caller owns the frontier and enqueues it).
    fn admit(
        &mut self,
        src: StateId,
        t: A::Task,
        a: A::Action,
        s2: A::State,
        hash: u64,
        cap: usize,
    ) -> Option<StateId> {
        match self.store.try_intern_prehashed(s2, hash, cap) {
            Some((id2, fresh)) => {
                if fresh {
                    self.parent.push(Some((src, t.clone(), a.clone())));
                }
                // The open CSR row is src's row by the edges invariant.
                self.edges.push((t, a, id2));
                self.edge_count += 1;
                fresh.then_some(id2)
            }
            None => {
                // Budget hit: the target was never admitted, so the
                // edge is dropped (and counted) rather than left
                // dangling at a node with no entry.
                self.truncated = true;
                self.dropped_edges += 1;
                None
            }
        }
    }

    /// The single-threaded BFS loop: one state popped, expanded and
    /// merged at a time.
    fn expand_sequential(&mut self, aut: &A, opts: ExploreOptions) {
        let tasks = aut.tasks();
        let canon = opts.symmetry.is_full();
        while let Some(id) = self.queue.pop_front() {
            self.peak_frontier = self.peak_frontier.max(self.queue.len() + 1);
            // Collect successors under an immutable borrow of the
            // arena, then intern them; succ_all hands back owned
            // states, so the expanded state itself is never recloned.
            // (The cache sink is copied out and written back around the
            // borrow: CacheStats is Copy.)
            let mut cache = self.cache;
            let succs: Vec<Succ<A>> = {
                let s = self.store.resolve(id);
                let mut v = Vec::new();
                for t in &tasks {
                    for (a, s2) in aut.succ_counted(t, s, &mut cache) {
                        if opts.skip_self_loops && &s2 == s {
                            continue;
                        }
                        let s2 = if canon { aut.canonical(s2) } else { s2 };
                        if canon && opts.skip_self_loops && &s2 == s {
                            continue;
                        }
                        let h = crate::store::fx_hash(&s2);
                        v.push((t.clone(), a, s2, h));
                    }
                }
                v
            };
            self.cache = cache;
            for (t, a, s2, h) in succs {
                if let Some(id2) = self.admit(id, t, a, s2, h, opts.max_states) {
                    self.queue.push_back(id2);
                }
            }
            self.edges.close_row();
        }
    }

    /// The layer-synchronous parallel loop: each wide-enough BFS layer
    /// is expanded across `threads` scoped workers against the frozen
    /// arena, then the batches are merged sequentially in (source
    /// order, task order, branch order) — the exact order the
    /// sequential loop discovers transitions in, so ids, edges,
    /// parents, peak frontier and truncation come out bit-identical.
    /// Layers narrower than [`SPAWN_LAYER_THRESHOLD`] fall back to
    /// inline expansion: thread spawn/join overhead dominates on small
    /// frontiers, and the inline path produces the same graph.
    fn expand_layered(&mut self, aut: &A, opts: ExploreOptions, threads: usize) {
        let tasks = aut.tasks();
        let mut layer: Vec<StateId> = self.queue.drain(..).collect();
        while !layer.is_empty() {
            layer = if layer.len() < SPAWN_LAYER_THRESHOLD {
                self.expand_layer_inline(aut, &tasks, opts, &layer)
            } else {
                self.expand_layer_parallel(aut, &tasks, opts, &layer, threads)
            };
        }
    }

    /// Expand one BFS layer on the calling thread, in sequential
    /// discovery order. Probing the live arena (instead of a frozen
    /// snapshot) is equivalent: a successor first admitted earlier in
    /// the same layer probes as `Known`, exactly matching what
    /// [`Builder::admit`] would have answered for a `Fresh` carrying
    /// the same state — known states always hit, budget or not.
    fn expand_layer_inline(
        &mut self,
        aut: &A,
        tasks: &[A::Task],
        opts: ExploreOptions,
        layer: &[StateId],
    ) -> Vec<StateId> {
        let mut next: Vec<StateId> = Vec::new();
        let layer_len = layer.len();
        for (expanded, &src) in layer.iter().enumerate() {
            self.peak_frontier = self
                .peak_frontier
                .max(layer_len - expanded - 1 + next.len() + 1);
            let mut cache = self.cache;
            let found = expand_one(aut, tasks, &self.store, src, opts, &mut cache);
            self.cache = cache;
            for f in found {
                match f {
                    Found::Known(t, a, id2) => {
                        self.edges.push((t, a, id2));
                        self.edge_count += 1;
                    }
                    Found::Fresh(t, a, s2, h) => {
                        if let Some(id2) = self.admit(src, t, a, s2, h, opts.max_states) {
                            next.push(id2);
                        }
                    }
                }
            }
            self.edges.close_row();
        }
        next
    }

    /// Expand one BFS layer across `threads` scoped workers, then merge
    /// sequentially.
    fn expand_layer_parallel(
        &mut self,
        aut: &A,
        tasks: &[A::Task],
        opts: ExploreOptions,
        layer: &[StateId],
        threads: usize,
    ) -> Vec<StateId> {
        let chunk = layer.len().div_ceil(threads).max(1);
        // Phase 1 (parallel): expand every source of the layer.
        // The arena is only read here; workers hash and pre-probe
        // each successor so the merge does no hashing and no
        // equality checks for previously-interned states.
        let store = &self.store;
        let batches: Vec<(Vec<Vec<Found<A>>>, CacheStats)> = std::thread::scope(|scope| {
            let handles: Vec<_> = layer
                .chunks(chunk)
                .map(|ids| {
                    scope.spawn(move || {
                        // Each worker accumulates cache hits/misses
                        // privately; the merge sums them, so the scoped
                        // totals are exact at every thread count.
                        let mut cache = CacheStats::default();
                        let found: Vec<Vec<Found<A>>> = ids
                            .iter()
                            .map(|&id| expand_one(aut, tasks, store, id, opts, &mut cache))
                            .collect();
                        (found, cache)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("explore worker panicked"))
                .collect()
        });
        // Phase 2 (sequential): merge in discovery order. The
        // virtual queue of the sequential BFS holds the rest of
        // this layer plus the next layer discovered so far; peak
        // tracking mirrors its `queue.len() + 1` at pop time.
        let mut per_source_batches: Vec<Vec<Found<A>>> = Vec::with_capacity(layer.len());
        for (found, cache) in batches {
            self.cache.hits += cache.hits;
            self.cache.misses += cache.misses;
            per_source_batches.extend(found);
        }
        let mut next: Vec<StateId> = Vec::new();
        let layer_len = layer.len();
        let mut sources = layer.iter().copied();
        for (expanded, per_source) in per_source_batches.into_iter().enumerate() {
            let src = sources.next().expect("one batch per source");
            self.peak_frontier = self
                .peak_frontier
                .max(layer_len - expanded - 1 + next.len() + 1);
            for found in per_source {
                match found {
                    Found::Known(t, a, id2) => {
                        self.edges.push((t, a, id2));
                        self.edge_count += 1;
                    }
                    Found::Fresh(t, a, s2, h) => {
                        if let Some(id2) = self.admit(src, t, a, s2, h, opts.max_states) {
                            next.push(id2);
                        }
                    }
                }
            }
            self.edges.close_row();
        }
        next
    }

    fn finish(self, opts: ExploreOptions) -> ExploredGraph<A> {
        // Every interned state was expanded exactly once, so the CSR
        // has exactly one (closed) row per state.
        debug_assert_eq!(self.edges.rows(), self.store.len());
        let truncation = if self.truncated {
            Truncation::StateBudget {
                budget: opts.max_states,
                dropped_edges: self.dropped_edges,
            }
        } else {
            Truncation::Complete
        };
        let stats = ExploreStats {
            states: self.store.len(),
            edges: self.edge_count,
            peak_frontier: self.peak_frontier,
            truncation,
            cache: None,
        };
        ExploredGraph {
            store: self.store,
            roots: self.root_ids,
            edges: self.edges,
            parent: self.parent,
            stats,
        }
    }
}

/// The sharded work-stealing frontier (DESIGN §2.1.5).
///
/// Workers intern successors directly into a [`ShardedStore`]
/// (provisional `shard | local` ids, global CAS budget) and keep
/// per-worker deques of `(provisional id, state)` items: fresh states
/// are pushed to the owner's deque back, idle workers steal half a
/// victim's deque from the front. There are no layer barriers;
/// termination is an atomic in-flight counter (incremented when a state
/// is admitted, decremented when its expansion completes) reaching zero
/// while every deque is empty. Each worker buffers its discovered edges
/// as per-source groups carrying provisional ids.
///
/// Once the frontier drains, a sequential renumbering BFS walks the
/// buffered groups from the roots — root order, then per-source
/// recorded edge order, which *is* (task order, branch order) — and
/// assigns dense ids at first sight. For a **complete** exploration the
/// per-source edge groups are a pure function of the automaton, so this
/// renumbering reproduces exactly the sequential explorer's ids, edges
/// and BFS-tree parents: bit-identity is recovered after the fact
/// rather than maintained by a merge thread. A **truncated**
/// exploration admits a scheduling-dependent subset (of exactly
/// `max_states` states — the CAS budget is globally exact), so only
/// soundness holds there: every admitted state is reachable via a
/// retained edge from an admitted source (admission happens while its
/// discoverer is mid-expansion, so an in-edge is always recorded), the
/// graph stays edge-closed, and the renumbering therefore visits every
/// survivor. The CSR is finalized by a counting-sort scatter over the
/// buffered groups — parallel over disjoint row ranges when the edge
/// mass warrants it, inline otherwise.
mod worksteal {
    use super::{
        fx_hash, AtomicBool, AtomicUsize, Automaton, CacheStats, Csr, Discovery, Edge,
        ExploreOptions, ExploreStats, ExploredGraph, Mutex, Ordering, ShardedStore, StateId,
        Truncation, VecDeque,
    };

    /// A deque item: a freshly admitted state carried with its
    /// provisional id, so expansion never reads the sharded store.
    type Item<A> = (StateId, <A as Automaton>::State);

    /// The edges out of one expanded source, in (task, branch) order,
    /// with provisional target ids.
    type Group<A> = (StateId, Vec<Edge<A>>);

    /// Pop from the worker's own deque front, else steal half (front,
    /// oldest-first) of the first non-empty victim. Never holds two
    /// deque locks at once: stolen items are drained out of the victim
    /// before the thief's own deque is touched.
    fn pop_or_steal<A: Automaton>(
        deques: &[Mutex<VecDeque<Item<A>>>],
        w: usize,
    ) -> Option<Item<A>> {
        if let Some(item) = deques[w].lock().expect("deque poisoned").pop_front() {
            return Some(item);
        }
        let n = deques.len();
        for k in 1..n {
            let v = (w + k) % n;
            let stolen: Vec<Item<A>> = {
                let mut victim = deques[v].lock().expect("deque poisoned");
                let take = victim.len().div_ceil(2);
                victim.drain(..take).collect()
            };
            let mut it = stolen.into_iter();
            if let Some(first) = it.next() {
                let rest: Vec<Item<A>> = it.collect();
                if !rest.is_empty() {
                    deques[w].lock().expect("deque poisoned").extend(rest);
                }
                return Some(first);
            }
        }
        None
    }

    pub(super) fn explore<A: Automaton>(
        aut: &A,
        roots: &[A::State],
        opts: ExploreOptions,
        threads: usize,
    ) -> ExploredGraph<A> {
        let track_cache = aut.cache_stats().is_some();
        let tasks = aut.tasks();
        let canon = opts.symmetry.is_full();
        let workers = threads.max(1);
        let store: ShardedStore<A::State> = ShardedStore::new(workers * 4);

        // Roots are always admitted (unbounded), in the given order.
        let mut root_provs: Vec<StateId> = Vec::with_capacity(roots.len());
        let mut seeds: Vec<Item<A>> = Vec::new();
        for r in roots {
            let (prov, fresh) = store.intern_prehashed(r, fx_hash(r));
            if fresh {
                seeds.push((prov, r.clone()));
            }
            root_provs.push(prov);
        }

        let deques: Vec<Mutex<VecDeque<Item<A>>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        let in_flight = AtomicUsize::new(seeds.len());
        let peak = AtomicUsize::new(0);
        let dropped = AtomicUsize::new(0);
        let truncated = AtomicBool::new(false);
        for (i, item) in seeds.into_iter().enumerate() {
            deques[i % workers]
                .lock()
                .expect("deque poisoned")
                .push_back(item);
        }

        // Expand one state: its out-edges in (task, branch) order, with
        // every freshly admitted successor reported through `on_fresh`.
        // Shared by the single- and multi-worker drain loops below.
        let expand = |s: &A::State,
                      cache: &mut CacheStats,
                      on_fresh: &mut dyn FnMut(StateId, A::State)|
         -> Vec<Edge<A>> {
            let mut edges: Vec<Edge<A>> = Vec::new();
            for t in &tasks {
                for (a, s2) in aut.succ_counted(t, s, cache) {
                    if opts.skip_self_loops && s2 == *s {
                        continue;
                    }
                    let s2 = if canon { aut.canonical(s2) } else { s2 };
                    if canon && opts.skip_self_loops && s2 == *s {
                        continue;
                    }
                    let h = fx_hash(&s2);
                    match store.try_intern_prehashed(&s2, h, opts.max_states) {
                        Some((dst, fresh)) => {
                            edges.push((t.clone(), a, dst));
                            if fresh {
                                on_fresh(dst, s2);
                            }
                        }
                        None => {
                            truncated.store(true, Ordering::SeqCst);
                            dropped.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            }
            edges
        };

        // Phase 1: drain the frontier.
        let results: Vec<(Vec<Group<A>>, CacheStats)> = if workers == 1 {
            // Single-worker fast path: a plain local queue — no thread
            // spawns, no deque locks, no shared-counter traffic (the
            // dominant fixed costs on sub-millisecond sweeps). `peak`
            // keeps the sequential definition: queue length + 1
            // sampled at pop, the popped item still in flight.
            let mut queue: VecDeque<Item<A>> =
                std::mem::take(&mut *deques[0].lock().expect("deque poisoned"));
            let mut groups: Vec<Group<A>> = Vec::new();
            let mut cache = CacheStats::default();
            let mut local_peak = 0usize;
            while let Some((src, s)) = queue.pop_front() {
                local_peak = local_peak.max(queue.len() + 1);
                let edges = expand(&s, &mut cache, &mut |dst, s2| queue.push_back((dst, s2)));
                groups.push((src, edges));
            }
            peak.store(local_peak, Ordering::SeqCst);
            vec![(groups, cache)]
        } else {
            // Worker 0 runs inline on the calling thread; only workers
            // 1..n are spawned.
            let worker_loop = |w: usize| -> (Vec<Group<A>>, CacheStats) {
                let mut groups: Vec<Group<A>> = Vec::new();
                let mut cache = CacheStats::default();
                loop {
                    let Some((src, s)) = pop_or_steal::<A>(&deques, w) else {
                        if in_flight.load(Ordering::SeqCst) == 0 {
                            break;
                        }
                        std::thread::yield_now();
                        continue;
                    };
                    // Sample the in-flight peak at dequeue time (the
                    // popped item still counts: it is decremented only
                    // after expansion).
                    peak.fetch_max(in_flight.load(Ordering::SeqCst), Ordering::SeqCst);
                    let edges = expand(&s, &mut cache, &mut |dst, s2| {
                        in_flight.fetch_add(1, Ordering::SeqCst);
                        deques[w]
                            .lock()
                            .expect("deque poisoned")
                            .push_back((dst, s2));
                    });
                    groups.push((src, edges));
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                }
                (groups, cache)
            };
            std::thread::scope(|scope| {
                let worker_loop = &worker_loop;
                let handles: Vec<_> = (1..workers)
                    .map(|w| scope.spawn(move || worker_loop(w)))
                    .collect();
                let mut results = vec![worker_loop(0)];
                results.extend(
                    handles
                        .into_iter()
                        .map(|h| h.join().expect("work-stealing worker panicked")),
                );
                results
            })
        };

        let mut cache = CacheStats::default();
        let mut all_groups: Vec<Group<A>> = Vec::new();
        for (groups, c) in results {
            cache.hits += c.hits;
            cache.misses += c.misses;
            all_groups.extend(groups);
        }

        // Phase 2: sequential renumbering BFS over the buffered groups.
        let n_states = store.len();
        debug_assert_eq!(all_groups.len(), n_states, "one edge group per state");
        let counts = store.local_counts();
        const UNSET: u32 = u32::MAX;
        // group_at[shard][local] = index into all_groups.
        let mut group_at: Vec<Vec<u32>> = counts.iter().map(|&c| vec![UNSET; c]).collect();
        for (gi, (src, _)) in all_groups.iter().enumerate() {
            let (sh, loc) = ShardedStore::<A::State>::split(*src);
            group_at[sh][loc] = u32::try_from(gi).expect("group index exceeds u32");
        }
        let mut dense_of: Vec<Vec<u32>> = counts.iter().map(|&c| vec![UNSET; c]).collect();
        let mut order: Vec<StateId> = Vec::with_capacity(n_states);
        let mut parent: Vec<Option<Discovery<A>>> = Vec::with_capacity(n_states);
        let mut queue: VecDeque<StateId> = VecDeque::new();
        let mut root_ids: Vec<StateId> = Vec::with_capacity(root_provs.len());
        for &prov in &root_provs {
            let (sh, loc) = ShardedStore::<A::State>::split(prov);
            if dense_of[sh][loc] == UNSET {
                dense_of[sh][loc] = order.len() as u32;
                order.push(prov);
                parent.push(None);
                queue.push_back(prov);
            }
            root_ids.push(StateId::from_index(dense_of[sh][loc] as usize));
        }
        let mut row_counts: Vec<u32> = vec![0; n_states];
        while let Some(prov) = queue.pop_front() {
            let (sh, loc) = ShardedStore::<A::State>::split(prov);
            let src_dense = dense_of[sh][loc];
            let (_, edges) = &all_groups[group_at[sh][loc] as usize];
            row_counts[src_dense as usize] =
                u32::try_from(edges.len()).expect("row width exceeds u32");
            for (t, a, dst) in edges {
                let (dsh, dloc) = ShardedStore::<A::State>::split(*dst);
                if dense_of[dsh][dloc] == UNSET {
                    dense_of[dsh][dloc] = order.len() as u32;
                    order.push(*dst);
                    parent.push(Some((
                        StateId::from_index(src_dense as usize),
                        t.clone(),
                        a.clone(),
                    )));
                    queue.push_back(*dst);
                }
            }
        }
        debug_assert_eq!(order.len(), n_states, "every admitted state is reachable");

        // Phase 3: parallel counting-sort CSR finalization. Offsets by
        // prefix sum over the renumbered row widths, then each scatter
        // thread owns a contiguous dense-row range (split at offset
        // boundaries, so ranges are disjoint slices of the entry array)
        // and writes the groups whose source falls in its range, with
        // targets remapped provisional -> dense on the way through.
        let edge_total: usize = all_groups.iter().map(|(_, e)| e.len()).sum();
        assert!(
            edge_total <= u32::MAX as usize,
            "CSR entry count exceeds the u32 offset space"
        );
        let mut offsets: Vec<u32> = Vec::with_capacity(n_states + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for &c in &row_counts {
            acc += c;
            offsets.push(acc);
        }
        // Spawning scatter threads only pays for itself on big entry
        // arrays; small graphs (and single-worker runs) emit the rows
        // inline, walking `order` so the entries come out already in
        // dense row order — no slot buffer, no second pass.
        const PARALLEL_SCATTER_MIN_EDGES: usize = 1 << 16;
        let entries: Vec<Edge<A>> = if workers == 1 || edge_total < PARALLEL_SCATTER_MIN_EDGES {
            let mut out: Vec<Edge<A>> = Vec::with_capacity(edge_total);
            for &prov in &order {
                let (sh, loc) = ShardedStore::<A::State>::split(prov);
                let (_, edges) = &all_groups[group_at[sh][loc] as usize];
                for (t, a, dst) in edges {
                    let (dsh, dloc) = ShardedStore::<A::State>::split(*dst);
                    let dense_dst = StateId::from_index(dense_of[dsh][dloc] as usize);
                    out.push((t.clone(), a.clone(), dense_dst));
                }
            }
            out
        } else {
            let mut entries: Vec<Option<Edge<A>>> = Vec::new();
            entries.resize_with(edge_total, || None);
            // Contiguous row ranges of roughly equal edge mass.
            let target = edge_total.div_ceil(workers).max(1);
            let mut ranges: Vec<(usize, usize)> = Vec::new();
            let mut start = 0usize;
            while start < n_states {
                let mut end = start + 1;
                while end < n_states && (offsets[end] as usize - offsets[start] as usize) < target {
                    end += 1;
                }
                ranges.push((start, end));
                start = end;
            }
            let (all_groups, dense_of, offsets) = (&all_groups, &dense_of, &offsets);
            std::thread::scope(|scope| {
                let mut rest: &mut [Option<Edge<A>>] = &mut entries;
                let mut base = 0usize;
                for (row_start, row_end) in ranges {
                    let end_off = offsets[row_end] as usize;
                    let (mine, tail) = rest.split_at_mut(end_off - base);
                    rest = tail;
                    let range_base = base;
                    base = end_off;
                    scope.spawn(move || {
                        for (src, edges) in all_groups {
                            let (sh, loc) = ShardedStore::<A::State>::split(*src);
                            let row = dense_of[sh][loc] as usize;
                            if row < row_start || row >= row_end {
                                continue;
                            }
                            let row_base = offsets[row] as usize - range_base;
                            for (k, (t, a, dst)) in edges.iter().enumerate() {
                                let (dsh, dloc) = ShardedStore::<A::State>::split(*dst);
                                let dense_dst = StateId::from_index(dense_of[dsh][dloc] as usize);
                                mine[row_base + k] = Some((t.clone(), a.clone(), dense_dst));
                            }
                        }
                    });
                }
            });
            entries
                .into_iter()
                .map(|e| e.expect("every CSR slot written by the scatter pass"))
                .collect()
        };
        let edges = Csr::from_parts(offsets, entries);

        let truncation = if truncated.load(Ordering::SeqCst) {
            Truncation::StateBudget {
                budget: opts.max_states,
                dropped_edges: dropped.load(Ordering::SeqCst),
            }
        } else {
            Truncation::Complete
        };
        let stats = ExploreStats {
            states: n_states,
            edges: edge_total,
            peak_frontier: peak.load(Ordering::SeqCst),
            truncation,
            cache: track_cache.then_some(cache),
        };
        ExploredGraph {
            store: store.into_dense(&order),
            roots: root_ids,
            edges,
            parent,
            stats,
        }
    }
}

/// The set of states reachable from a set of roots, kept as the
/// exploration's interned arena — no state is re-cloned or re-hashed to
/// answer membership and iteration queries.
///
/// This is the id-based replacement for the legacy `ReachResult`
/// state-set view (removed): `contains` probes the arena's hash table,
/// [`Reached::states`] hands back the arena slice in discovery order,
/// and [`Reached::into_states`] moves the states out for the rare
/// caller that truly needs owned values.
#[derive(Debug, Clone)]
pub struct Reached<S> {
    store: StateStore<S>,
    truncated: bool,
}

impl<S: std::hash::Hash + Eq + Clone> Reached<S> {
    /// Number of distinct reachable states found within the budget.
    #[must_use]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether nothing was reached (only possible with no roots).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// True if the `max_states` budget stopped the search early.
    #[must_use]
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Whether `state` was reached within the budget.
    #[must_use]
    pub fn contains(&self, state: &S) -> bool {
        self.store.get(state).is_some()
    }

    /// The reachable states in discovery order, borrowed from the arena.
    #[must_use]
    pub fn states(&self) -> &[S] {
        self.store.states()
    }

    /// The underlying arena, for id-based lookups.
    #[must_use]
    pub fn store(&self) -> &StateStore<S> {
        &self.store
    }

    /// Move the states out of the arena (discovery order, no cloning).
    #[must_use]
    pub fn into_states(self) -> Vec<S> {
        self.store.into_states()
    }
}

/// Breadth-first reachability from a set of roots, stopping after
/// `max_states` distinct states, answered over the exploration's own
/// arena — zero state clones.
///
/// ```
/// use ioa::automaton::Automaton;
/// use ioa::explore::reach;
/// use ioa::toy::ParityCounter;
///
/// let c = ParityCounter::new(3);
/// let r = reach(&c, c.initial_states(), 100);
/// assert_eq!(r.len(), 4); // 0, 1, 2, 3
/// assert!(r.contains(&3));
/// assert!(!r.truncated());
/// ```
pub fn reach<A: Automaton>(aut: &A, roots: Vec<A::State>, max_states: usize) -> Reached<A::State> {
    let g = ExploredGraph::explore(aut, roots, max_states);
    let truncated = g.stats().truncated();
    Reached {
        store: g.into_parts().store,
        truncated,
    }
}

/// A path through an automaton: the `(task, action, resulting state)`
/// steps of a finite execution fragment (Section 2.1.1), excluding the
/// start state.
pub type Path<A> = Vec<(
    <A as Automaton>::Task,
    <A as Automaton>::Action,
    <A as Automaton>::State,
)>;

/// Outcome of a bounded breadth-first search for a target state.
#[derive(Debug)]
pub enum SearchOutcome<A: Automaton> {
    /// A shortest path (in steps) from the root to a state satisfying
    /// the predicate.
    Found(Path<A>),
    /// The whole reachable space was explored; no state matches. This
    /// is a proof of unreachability.
    Exhausted,
    /// The state budget was exhausted first; absence is inconclusive.
    Truncated,
}

// Manual impls: derived ones would demand `A: Clone` / `A: PartialEq`
// even though only the associated types appear in the data.
impl<A: Automaton> Clone for SearchOutcome<A> {
    fn clone(&self) -> Self {
        match self {
            SearchOutcome::Found(p) => SearchOutcome::Found(p.clone()),
            SearchOutcome::Exhausted => SearchOutcome::Exhausted,
            SearchOutcome::Truncated => SearchOutcome::Truncated,
        }
    }
}

impl<A: Automaton> PartialEq for SearchOutcome<A> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SearchOutcome::Found(a), SearchOutcome::Found(b)) => a == b,
            (SearchOutcome::Exhausted, SearchOutcome::Exhausted) => true,
            (SearchOutcome::Truncated, SearchOutcome::Truncated) => true,
            _ => false,
        }
    }
}

impl<A: Automaton> Eq for SearchOutcome<A> {}

/// Bounded BFS from `root` for a state satisfying `pred`, returning a
/// shortest path to the first match.
///
/// Unlike [`ExploredGraph::explore`], this stops as soon as a match is
/// discovered, so it keeps its own early-exit BFS: an interning arena
/// for the seen-set plus an id-indexed parent vector for path
/// reconstruction. The predicate is checked on the root first, then on
/// each state as it is discovered.
pub fn search<A, P>(aut: &A, root: &A::State, pred: P, max_states: usize) -> SearchOutcome<A>
where
    A: Automaton,
    P: Fn(&A::State) -> bool,
{
    if pred(root) {
        return SearchOutcome::Found(Vec::new());
    }
    let tasks = aut.tasks();
    let mut store: StateStore<A::State> = StateStore::new();
    let (root_id, _) = store.intern(root);
    let mut parent: Vec<Option<Discovery<A>>> = vec![None];
    let mut queue: VecDeque<StateId> = VecDeque::from([root_id]);
    let mut truncated = false;

    while let Some(id) = queue.pop_front() {
        let succs: Vec<(A::Task, A::Action, A::State)> = {
            let s = store.resolve(id);
            tasks
                .iter()
                .flat_map(|t| {
                    aut.succ_all(t, s)
                        .into_iter()
                        .map(move |(a, s2)| (t.clone(), a, s2))
                })
                .collect()
        };
        for (t, a, s2) in succs {
            match store.try_intern(&s2, max_states) {
                Some((id2, true)) => {
                    parent.push(Some((id, t, a)));
                    if pred(&s2) {
                        // Walk the BFS tree back to the root.
                        let mut path = Vec::new();
                        let mut cur = id2;
                        while let Some((prev, t, a)) = &parent[cur.index()] {
                            path.push((t.clone(), a.clone(), store.resolve(cur).clone()));
                            cur = *prev;
                        }
                        path.reverse();
                        return SearchOutcome::Found(path);
                    }
                    queue.push_back(id2);
                }
                Some((_, false)) => {}
                None => truncated = true,
            }
        }
    }
    if truncated {
        SearchOutcome::Truncated
    } else {
        SearchOutcome::Exhausted
    }
}

/// Build the interned reachable graph from `roots` — the transition
/// structure of `G(C)` (Section 3.3) that the valence census and hook
/// search walk.
///
/// Under truncation, edges into never-admitted states are dropped and
/// counted ([`Truncation::StateBudget`]'s `dropped_edges`), so the edge
/// lists only ever reference states present in the graph.
pub fn build_graph<A: Automaton>(
    aut: &A,
    roots: Vec<A::State>,
    max_states: usize,
) -> ExploredGraph<A> {
    ExploredGraph::explore(aut, roots, max_states)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ParityCounter, ParityTask};

    #[test]
    fn reachability_reaches_the_bound() {
        let c = ParityCounter::new(5);
        let r = reach(&c, c.initial_states(), 100);
        assert_eq!(r.len(), 6);
        assert!(!r.truncated());
    }

    #[test]
    fn truncation_is_reported() {
        let c = ParityCounter::new(100);
        let r = reach(&c, c.initial_states(), 10);
        assert_eq!(r.len(), 10);
        assert!(r.truncated());
    }

    #[test]
    fn search_finds_shortest_path() {
        let c = ParityCounter::new(10);
        match search(&c, &0, |s| *s == 3, 100) {
            SearchOutcome::Found(path) => {
                assert_eq!(path.len(), 3);
                let tasks: Vec<ParityTask> = path.iter().map(|(t, _, _)| *t).collect();
                assert_eq!(
                    tasks,
                    vec![ParityTask::Even, ParityTask::Odd, ParityTask::Even]
                );
                assert_eq!(path.last().unwrap().2, 3);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn search_exhausted_is_a_proof() {
        let c = ParityCounter::new(5);
        assert_eq!(search(&c, &0, |s| *s == 42, 100), SearchOutcome::Exhausted);
    }

    #[test]
    fn search_at_root() {
        let c = ParityCounter::new(5);
        assert_eq!(
            search(&c, &0, |s| *s == 0, 100),
            SearchOutcome::Found(Vec::new())
        );
    }

    #[test]
    fn graph_has_one_edge_per_applicable_task() {
        let c = ParityCounter::new(2);
        let g = build_graph(&c, c.initial_states(), 100);
        assert_eq!(g.len(), 3);
        assert!(!g.stats().truncated());
        let id0 = g.id_of(&0).expect("root interned");
        let id2 = g.id_of(&2).expect("terminal state reached");
        assert_eq!(g.successors(id0).len(), 1); // only Even applies at 0
        assert_eq!(g.successors(id2).len(), 0); // terminal
        assert_eq!(g.stats().edges, 2); // 0 -> 1 -> 2
    }

    #[test]
    fn ids_follow_bfs_discovery_order() {
        let c = ParityCounter::new(3);
        let g = build_graph(&c, c.initial_states(), 100);
        for (i, id) in g.ids().enumerate() {
            assert_eq!(id.index(), i);
            assert_eq!(*g.resolve(id), i as i64);
        }
        // The parent chain reconstructs a shortest path to each state.
        let id3 = g.id_of(&3).unwrap();
        let path = g.path_to(id3);
        assert_eq!(path.len(), 3);
        assert_eq!(path.last().unwrap().2, 3);
    }

    #[test]
    fn truncated_graph_has_no_dangling_edges() {
        // Regression for the pre-interning builder, which pushed edges
        // before checking the budget: a truncated graph would contain
        // edges to states that were never given a node entry. The
        // chosen semantics: drop such edges and count them.
        let c = ParityCounter::new(1_000);
        let g = build_graph(&c, c.initial_states(), 10);
        assert_eq!(g.len(), 10);
        match g.stats().truncation {
            Truncation::StateBudget {
                budget,
                dropped_edges,
            } => {
                assert_eq!(budget, 10);
                // The counter is a chain, so exactly the edge 9 -> 10 drops.
                assert_eq!(dropped_edges, 1);
            }
            Truncation::Complete => panic!("expected truncation"),
        }
        // Every retained edge targets an admitted state.
        for id in g.ids() {
            for (_, _, dst) in g.successors(id) {
                assert!(dst.index() < g.len(), "dangling edge to {dst:?}");
            }
        }
        assert_eq!(g.stats().edges, 9);
    }

    #[test]
    fn explore_options_do_not_change_loop_free_graphs() {
        // ParityCounter has no self-loops, so skip_self_loops must be
        // a no-op on it; the flag only ever removes s -> s stutters.
        let c = ParityCounter::new(4);
        let full = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions {
                max_states: 100,
                skip_self_loops: false,
                threads: 0,
                symmetry: SymmetryMode::Off,
                frontier: FrontierMode::Auto,
            },
        );
        let skipped = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions {
                max_states: 100,
                skip_self_loops: true,
                threads: 0,
                symmetry: SymmetryMode::Off,
                frontier: FrontierMode::Auto,
            },
        );
        assert_eq!(full.len(), skipped.len());
        assert_eq!(full.stats().edges, skipped.stats().edges);
    }

    /// Assert two graphs are bit-identical: same ids, roots, edges,
    /// parents and census (peak_frontier deliberately excluded — it is
    /// a scheduling measurement, not graph identity).
    fn assert_same_graph(a: &ExploredGraph<ParityCounter>, b: &ExploredGraph<ParityCounter>) {
        assert_eq!(a.len(), b.len());
        assert_eq!(a.roots(), b.roots());
        assert_eq!(a.stats(), b.stats());
        for id in a.ids() {
            assert_eq!(a.resolve(id), b.resolve(id), "state {id:?}");
            assert_eq!(a.successors(id), b.successors(id), "edges of {id:?}");
            assert_eq!(a.discovered_by(id), b.discovered_by(id), "parent of {id:?}");
        }
    }

    #[test]
    fn worksteal_complete_graph_is_bit_identical_to_sequential() {
        let c = ParityCounter::new(40);
        let seq = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions::with_budget(1000).with_threads(1),
        );
        for threads in [1, 2, 4] {
            let ws = ExploredGraph::explore_with(
                &c,
                c.initial_states(),
                ExploreOptions::with_budget(1000)
                    .with_threads(threads)
                    .with_frontier(FrontierMode::WorkSteal),
            );
            assert_same_graph(&seq, &ws);
        }
    }

    #[test]
    fn worksteal_single_worker_matches_sequential_under_truncation() {
        // One worker pops its own FIFO deque: a deterministic BFS whose
        // admitted set, dropped-edge count and in-flight peak coincide
        // with the sequential loop even when the budget truncates.
        let c = ParityCounter::new(1_000);
        let seq = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions::with_budget(10).with_threads(1),
        );
        let ws = ExploredGraph::explore_with(
            &c,
            c.initial_states(),
            ExploreOptions::with_budget(10)
                .with_threads(1)
                .with_frontier(FrontierMode::WorkSteal),
        );
        assert_same_graph(&seq, &ws);
        assert_eq!(ws.stats().peak_frontier, seq.stats().peak_frontier);
        assert_eq!(ws.stats().truncation, seq.stats().truncation);
    }

    #[test]
    fn worksteal_truncation_is_sound_at_any_thread_count() {
        let c = ParityCounter::new(1_000);
        for threads in [2, 4] {
            let ws = ExploredGraph::explore_with(
                &c,
                c.initial_states(),
                ExploreOptions::with_budget(10)
                    .with_threads(threads)
                    .with_frontier(FrontierMode::WorkSteal),
            );
            // Exactly the budget admitted (the CAS cap is globally
            // exact), the flag is set, and the graph stays edge-closed
            // with every non-root carrying a parent.
            assert_eq!(ws.len(), 10);
            assert!(ws.stats().truncated());
            for id in ws.ids() {
                for (_, _, dst) in ws.successors(id) {
                    assert!(dst.index() < ws.len(), "dangling edge to {dst:?}");
                }
                if !ws.roots().contains(&id) {
                    assert!(ws.discovered_by(id).is_some(), "orphaned state {id:?}");
                }
            }
        }
    }

    #[test]
    fn worksteal_empty_roots_yield_an_empty_graph() {
        let c = ParityCounter::new(5);
        let ws = ExploredGraph::explore_with(
            &c,
            Vec::new(),
            ExploreOptions::with_budget(10).with_frontier(FrontierMode::WorkSteal),
        );
        assert!(ws.is_empty());
        assert_eq!(ws.stats().edges, 0);
        assert!(!ws.stats().truncated());
    }
}
