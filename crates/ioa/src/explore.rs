//! Breadth-first exploration of task-generated state spaces.
//!
//! The valence definitions of paper Section 3.2 quantify over *all
//! failure-free extensions* of an execution. For the finite systems this
//! workspace studies, that quantifier is decided by exhaustive
//! reachability over task applications — the functions in this module.

use crate::automaton::Automaton;
use std::collections::{HashMap, HashSet, VecDeque};

/// The result of a reachability sweep.
#[derive(Clone, Debug)]
pub struct ReachResult<S> {
    /// Every state reached (including the roots).
    pub states: HashSet<S>,
    /// Whether exploration stopped at the state budget rather than at a
    /// fixpoint. When `true`, absence of a state from `states` proves
    /// nothing.
    pub truncated: bool,
}

/// Computes all states reachable from `roots` by task transitions
/// (`succ_all` over every task), up to `max_states` distinct states.
///
/// # Example
///
/// ```
/// use ioa::automaton::Automaton;
/// use ioa::explore::reachable_states;
/// use ioa::toy::ParityCounter;
///
/// let c = ParityCounter::new(3);
/// let r = reachable_states(&c, c.initial_states(), 100);
/// assert_eq!(r.states.len(), 4); // 0, 1, 2, 3
/// assert!(!r.truncated);
/// ```
pub fn reachable_states<A: Automaton>(
    aut: &A,
    roots: Vec<A::State>,
    max_states: usize,
) -> ReachResult<A::State> {
    let tasks = aut.tasks();
    let mut states: HashSet<A::State> = HashSet::new();
    let mut queue: VecDeque<A::State> = VecDeque::new();
    for r in roots {
        if states.insert(r.clone()) {
            queue.push_back(r);
        }
    }
    let mut truncated = false;
    while let Some(s) = queue.pop_front() {
        for t in &tasks {
            for (_, s2) in aut.succ_all(t, &s) {
                if states.contains(&s2) {
                    continue;
                }
                if states.len() >= max_states {
                    truncated = true;
                    continue;
                }
                states.insert(s2.clone());
                queue.push_back(s2);
            }
        }
    }
    ReachResult { states, truncated }
}

/// A path found by [`search`]: the steps `(task, action, state)` from
/// the root to the first state satisfying the predicate.
#[allow(clippy::type_complexity)]
pub type Path<A> = Vec<(
    <A as Automaton>::Task,
    <A as Automaton>::Action,
    <A as Automaton>::State,
)>;

/// The outcome of a bounded predicate search.
#[derive(Debug)]
pub enum SearchOutcome<A: Automaton> {
    /// A state satisfying the predicate was found; the path from the
    /// root is returned (empty if the root itself satisfies it).
    Found(Path<A>),
    /// The full reachable space was explored and no state satisfies the
    /// predicate — a *proof* of unreachability.
    Exhausted,
    /// The state budget ran out first; the result is inconclusive.
    Truncated,
}

// Manual impls to avoid spurious `A: Clone`/`A: PartialEq` bounds.
impl<A: Automaton> Clone for SearchOutcome<A> {
    fn clone(&self) -> Self {
        match self {
            SearchOutcome::Found(p) => SearchOutcome::Found(p.clone()),
            SearchOutcome::Exhausted => SearchOutcome::Exhausted,
            SearchOutcome::Truncated => SearchOutcome::Truncated,
        }
    }
}

impl<A: Automaton> PartialEq for SearchOutcome<A> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (SearchOutcome::Found(a), SearchOutcome::Found(b)) => a == b,
            (SearchOutcome::Exhausted, SearchOutcome::Exhausted) => true,
            (SearchOutcome::Truncated, SearchOutcome::Truncated) => true,
            _ => false,
        }
    }
}

impl<A: Automaton> Eq for SearchOutcome<A> {}

/// Breadth-first search from `root` for a state satisfying `pred`,
/// visiting at most `max_states` distinct states.
///
/// Returns the *shortest* witnessing path (by step count).
pub fn search<A, P>(aut: &A, root: &A::State, pred: P, max_states: usize) -> SearchOutcome<A>
where
    A: Automaton,
    P: Fn(&A::State) -> bool,
{
    if pred(root) {
        return SearchOutcome::Found(Vec::new());
    }
    let tasks = aut.tasks();
    // parent: state -> (prev state, task, action)
    #[allow(clippy::type_complexity)]
    let mut parent: HashMap<A::State, (A::State, A::Task, A::Action)> = HashMap::new();
    let mut seen: HashSet<A::State> = HashSet::new();
    seen.insert(root.clone());
    let mut queue: VecDeque<A::State> = VecDeque::from([root.clone()]);
    let mut truncated = false;
    while let Some(s) = queue.pop_front() {
        for t in &tasks {
            for (a, s2) in aut.succ_all(t, &s) {
                if seen.contains(&s2) {
                    continue;
                }
                if seen.len() >= max_states {
                    truncated = true;
                    continue;
                }
                seen.insert(s2.clone());
                parent.insert(s2.clone(), (s.clone(), t.clone(), a.clone()));
                if pred(&s2) {
                    // Reconstruct the path root → s2.
                    let mut path = Vec::new();
                    let mut cur = s2.clone();
                    while let Some((prev, task, action)) = parent.get(&cur) {
                        path.push((task.clone(), action.clone(), cur.clone()));
                        cur = prev.clone();
                    }
                    path.reverse();
                    return SearchOutcome::Found(path);
                }
                queue.push_back(s2);
            }
        }
    }
    if truncated {
        SearchOutcome::Truncated
    } else {
        SearchOutcome::Exhausted
    }
}

/// A materialized transition graph over the reachable space: for each
/// state, the out-edges `(task, action, successor)`.
#[derive(Clone, Debug)]
pub struct Graph<A: Automaton> {
    /// Out-edges per state.
    #[allow(clippy::type_complexity)]
    pub edges: HashMap<A::State, Vec<(A::Task, A::Action, A::State)>>,
    /// Whether the graph was truncated at the state budget.
    pub truncated: bool,
}

/// Builds the full transition graph reachable from `roots`, up to
/// `max_states` distinct states.
pub fn build_graph<A: Automaton>(aut: &A, roots: Vec<A::State>, max_states: usize) -> Graph<A> {
    let tasks = aut.tasks();
    #[allow(clippy::type_complexity)]
    let mut edges: HashMap<A::State, Vec<(A::Task, A::Action, A::State)>> = HashMap::new();
    let mut queue: VecDeque<A::State> = VecDeque::new();
    let mut seen: HashSet<A::State> = HashSet::new();
    for r in roots {
        if seen.insert(r.clone()) {
            queue.push_back(r);
        }
    }
    let mut truncated = false;
    while let Some(s) = queue.pop_front() {
        let mut out = Vec::new();
        for t in &tasks {
            for (a, s2) in aut.succ_all(t, &s) {
                out.push((t.clone(), a.clone(), s2.clone()));
                if seen.contains(&s2) {
                    continue;
                }
                if seen.len() >= max_states {
                    truncated = true;
                    continue;
                }
                seen.insert(s2.clone());
                queue.push_back(s2);
            }
        }
        edges.insert(s, out);
    }
    Graph { edges, truncated }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ParityCounter, ParityTask};

    #[test]
    fn reachability_reaches_the_bound() {
        let c = ParityCounter::new(5);
        let r = reachable_states(&c, c.initial_states(), 100);
        assert_eq!(r.states.len(), 6);
        assert!(r.states.contains(&5));
    }

    #[test]
    fn truncation_is_reported() {
        let c = ParityCounter::new(100);
        let r = reachable_states(&c, c.initial_states(), 10);
        assert!(r.truncated);
        assert_eq!(r.states.len(), 10);
    }

    #[test]
    fn search_finds_shortest_path() {
        let c = ParityCounter::new(5);
        match search(&c, &0, |s| *s == 3, 100) {
            SearchOutcome::Found(path) => {
                assert_eq!(path.len(), 3);
                assert_eq!(path[0].0, ParityTask::Even);
                assert_eq!(path[1].0, ParityTask::Odd);
                assert_eq!(path[2].0, ParityTask::Even);
            }
            other => panic!("expected Found, got {other:?}"),
        }
    }

    #[test]
    fn search_exhausted_is_a_proof() {
        let c = ParityCounter::new(5);
        assert_eq!(search(&c, &0, |s| *s == 42, 100), SearchOutcome::Exhausted);
    }

    #[test]
    fn search_at_root() {
        let c = ParityCounter::new(5);
        assert_eq!(search(&c, &0, |s| *s == 0, 100), SearchOutcome::Found(Vec::new()));
    }

    #[test]
    fn graph_has_one_edge_per_applicable_task() {
        let c = ParityCounter::new(2);
        let g = build_graph(&c, c.initial_states(), 100);
        assert!(!g.truncated);
        assert_eq!(g.edges[&0].len(), 1);
        assert_eq!(g.edges[&2].len(), 0);
    }
}
