//! Binary composition and hiding of I/O automata (paper Section 2.1.1
//! and [17, Chapter 8]).
//!
//! In a composition, all automata with an action `a` in their signature
//! execute `a` together; an action can be an output of at most one
//! automaton, and internal actions are private. The `system` crate
//! implements the paper's n-ary process/service composition natively
//! for efficiency; this module provides the generic binary operator
//! ([`Compose`]) and the hiding operator ([`Hide`]), which together are
//! sufficient to express any finite composition.

use crate::automaton::{ActionKind, Automaton};

/// A task of a binary composition: drawn from the left or the right
/// component (tasks are never shared — only actions synchronize).
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SideTask<L, R> {
    /// A task of the left component.
    Left(L),
    /// A task of the right component.
    Right(R),
}

/// The parallel composition `A ∥ B` of two automata over the same
/// action alphabet.
///
/// Components synchronize on shared actions: when the left component
/// performs an action that is in the right component's signature, the
/// right component simultaneously performs it as an input (and vice
/// versa).
///
/// # Example
///
/// ```
/// use ioa::automaton::Automaton;
/// use ioa::compose::Compose;
/// use ioa::toy::{ChanAction, Channel};
///
/// // Two channels in sequence do NOT synchronize (no shared actions in
/// // this toy alphabet), but the composition still interleaves them.
/// let c = Compose::new(Channel::new(&[1]), Channel::new(&[1]));
/// assert_eq!(c.tasks().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct Compose<A, B> {
    left: A,
    right: B,
}

impl<A, B> Compose<A, B>
where
    A: Automaton,
    B: Automaton<Action = A::Action>,
{
    /// Composes two automata.
    ///
    /// The composition rules (at most one output owner; internal
    /// actions private) are the caller's obligation; violations surface
    /// as panics during execution.
    pub fn new(left: A, right: B) -> Self {
        Compose { left, right }
    }

    /// The left component.
    pub fn left(&self) -> &A {
        &self.left
    }

    /// The right component.
    pub fn right(&self) -> &B {
        &self.right
    }

    /// Whether `a` is in the left component's signature: an input, or a
    /// locally controlled action it can ever perform. We approximate
    /// "in signature" by "accepted as input", which suffices for
    /// synchronization because outputs synchronize with *inputs* of the
    /// peer.
    fn right_accepts(&self, s: &B::State, a: &A::Action) -> Option<B::State> {
        self.right.apply_input(s, a)
    }

    fn left_accepts(&self, s: &A::State, a: &A::Action) -> Option<A::State> {
        self.left.apply_input(s, a)
    }
}

impl<A, B> Automaton for Compose<A, B>
where
    A: Automaton,
    B: Automaton<Action = A::Action>,
{
    type State = (A::State, B::State);
    type Action = A::Action;
    type Task = SideTask<A::Task, B::Task>;

    fn initial_states(&self) -> Vec<Self::State> {
        let mut out = Vec::new();
        for l in self.left.initial_states() {
            for r in self.right.initial_states() {
                out.push((l.clone(), r));
            }
        }
        out
    }

    fn tasks(&self) -> Vec<Self::Task> {
        self.left
            .tasks()
            .into_iter()
            .map(SideTask::Left)
            .chain(self.right.tasks().into_iter().map(SideTask::Right))
            .collect()
    }

    fn succ_all(&self, t: &Self::Task, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        let (sl, sr) = s;
        match t {
            SideTask::Left(tl) => self
                .left
                .succ_all(tl, sl)
                .into_iter()
                .map(|(a, sl2)| {
                    let sr2 = self.right_accepts(sr, &a).unwrap_or_else(|| sr.clone());
                    (a, (sl2, sr2))
                })
                .collect(),
            SideTask::Right(tr) => self
                .right
                .succ_all(tr, sr)
                .into_iter()
                .map(|(a, sr2)| {
                    let sl2 = self.left_accepts(sl, &a).unwrap_or_else(|| sl.clone());
                    (a, (sl2, sr2))
                })
                .collect(),
        }
    }

    fn apply_input(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State> {
        let (sl, sr) = s;
        let l2 = self.left.apply_input(sl, a);
        let r2 = self.right.apply_input(sr, a);
        match (l2, r2) {
            (None, None) => None,
            (l2, r2) => Some((
                l2.unwrap_or_else(|| sl.clone()),
                r2.unwrap_or_else(|| sr.clone()),
            )),
        }
    }

    fn kind(&self, a: &Self::Action) -> ActionKind {
        // An action that is an output of either component is an output
        // of the composition; internal stays internal; otherwise input.
        match (self.left.kind(a), self.right.kind(a)) {
            (ActionKind::Internal, _) => ActionKind::Internal,
            (_, ActionKind::Internal) => ActionKind::Internal,
            (ActionKind::Output, _) | (_, ActionKind::Output) => ActionKind::Output,
            _ => ActionKind::Input,
        }
    }
}

/// Hiding: reclassifies selected output actions as internal
/// (the `hide` operation used when assembling the complete system,
/// Section 2.2.3).
#[derive(Clone, Debug)]
pub struct Hide<A, F> {
    inner: A,
    hide: F,
}

impl<A, F> Hide<A, F>
where
    A: Automaton,
    F: Fn(&A::Action) -> bool,
{
    /// Hides every action for which `hide` returns `true`.
    pub fn new(inner: A, hide: F) -> Self {
        Hide { inner, hide }
    }

    /// The wrapped automaton.
    pub fn inner(&self) -> &A {
        &self.inner
    }
}

impl<A, F> Automaton for Hide<A, F>
where
    A: Automaton,
    // `Sync` because `Automaton: Sync` (the parallel explorer shares
    // the automaton across worker threads); predicates are stateless
    // in practice, so the bound costs nothing.
    F: Fn(&A::Action) -> bool + Sync,
{
    type State = A::State;
    type Action = A::Action;
    type Task = A::Task;

    fn initial_states(&self) -> Vec<Self::State> {
        self.inner.initial_states()
    }

    fn tasks(&self) -> Vec<Self::Task> {
        self.inner.tasks()
    }

    fn succ_all(&self, t: &Self::Task, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        self.inner.succ_all(t, s)
    }

    fn apply_input(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State> {
        if (self.hide)(a) {
            None
        } else {
            self.inner.apply_input(s, a)
        }
    }

    fn kind(&self, a: &Self::Action) -> ActionKind {
        if (self.hide)(a) {
            ActionKind::Internal
        } else {
            self.inner.kind(a)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::{ChanAction, Channel};

    /// A producer that outputs `Send(m)` for each message in a script —
    /// synchronizes with [`Channel`]'s `Send` input.
    #[derive(Clone, Debug)]
    struct Producer {
        script: Vec<i64>,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
    struct ProduceTask;

    impl Automaton for Producer {
        type State = usize; // next script index
        type Action = ChanAction;
        type Task = ProduceTask;

        fn initial_states(&self) -> Vec<usize> {
            vec![0]
        }
        fn tasks(&self) -> Vec<ProduceTask> {
            vec![ProduceTask]
        }
        fn succ_all(&self, _t: &ProduceTask, s: &usize) -> Vec<(ChanAction, usize)> {
            match self.script.get(*s) {
                Some(m) => vec![(ChanAction::Send(*m), s + 1)],
                None => Vec::new(),
            }
        }
        fn apply_input(&self, _s: &usize, _a: &ChanAction) -> Option<usize> {
            None
        }
        fn kind(&self, a: &ChanAction) -> ActionKind {
            match a {
                ChanAction::Send(_) => ActionKind::Output,
                ChanAction::Recv(_) => ActionKind::Input,
            }
        }
    }

    #[test]
    fn producer_drives_channel_through_composition() {
        let comp = Compose::new(Producer { script: vec![4, 5] }, Channel::new(&[4, 5]));
        let s0 = comp.initial_states().remove(0);
        // Producer sends 4: the channel receives it synchronously.
        let (a, s1) = comp.succ_det(&SideTask::Left(ProduceTask), &s0).unwrap();
        assert_eq!(a, ChanAction::Send(4));
        assert_eq!(s1, (1, vec![4]));
        // Channel delivers.
        let (a, s2) = comp
            .succ_det(&SideTask::Right(crate::toy::DeliverTask), &s1)
            .unwrap();
        assert_eq!(a, ChanAction::Recv(4));
        // Recv is not a producer input, so only the channel moved.
        assert_eq!(s2, (1, Vec::new()));
    }

    #[test]
    fn shared_send_is_an_output_of_the_composition() {
        let comp = Compose::new(Producer { script: vec![1] }, Channel::new(&[1]));
        assert_eq!(comp.kind(&ChanAction::Send(1)), ActionKind::Output);
        assert_eq!(comp.kind(&ChanAction::Recv(1)), ActionKind::Output);
    }

    #[test]
    fn hiding_makes_actions_internal() {
        let comp = Compose::new(Producer { script: vec![1] }, Channel::new(&[1]));
        let hidden = Hide::new(comp, |a: &ChanAction| matches!(a, ChanAction::Send(_)));
        assert_eq!(hidden.kind(&ChanAction::Send(1)), ActionKind::Internal);
        assert_eq!(hidden.kind(&ChanAction::Recv(1)), ActionKind::Output);
        // Hidden actions are no longer environment inputs.
        let s0 = hidden.initial_states().remove(0);
        assert!(hidden.apply_input(&s0, &ChanAction::Send(1)).is_none());
    }
}
