//! In-tree deterministic pseudo-random number generation.
//!
//! The reproduction must build hermetically (no network, no registry
//! cache), so randomized schedule drivers ([`crate::Automaton`] systems
//! driven by `system::sched::run_random`) and the randomized resilience
//! sweeps of `analysis::resilience` cannot pull in the `rand` crate.
//! This module provides the deterministic generator they use instead: a
//! [SplitMix64](https://prng.di.unimi.it/splitmix64.c) stream, which is
//! tiny, fast, and has a well-understood 2^64-period output sequence.
//!
//! Determinism is load-bearing, not incidental: the paper's arguments
//! (e.g. the Lemma 4 bivalent-initialization scan and the randomized
//! safety sweeps that cross-check Theorems 2/9/10) are replayed in tests
//! keyed by seed, so the same seed must yield the same schedule on every
//! platform and every run. SplitMix64 guarantees that; `StdRng` does not
//! (its algorithm is explicitly unstable across `rand` versions).
//!
//! External generators can still be plugged in through the
//! [`RandomSource`] trait (see the `ext-rand` cargo feature on the
//! `system` crate, which exposes a generic `run_random_with` driver).

/// A deterministic random-source abstraction.
///
/// Everything the schedule drivers need is a stream of `u64`s; the
/// provided methods derive bounded draws from it. Implemented by
/// [`SplitMix64`] in-tree; downstream users may implement it for any
/// external generator (e.g. `rand::RngCore` adapters behind the
/// `ext-rand` feature of the `system` crate).
pub trait RandomSource {
    /// Produce the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Draw a uniformly distributed index in `0..n`.
    ///
    /// Uses rejection sampling from the top bits so the distribution is
    /// exactly uniform (no modulo bias).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    fn gen_range(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_range requires a non-empty range");
        let n = n as u64;
        // Rejection sampling: draw from the smallest power-of-two range
        // covering `n` and retry on overshoot. Expected < 2 draws.
        let mask = n.next_power_of_two().wrapping_sub(1);
        loop {
            let x = self.next_u64() & mask;
            if x < n {
                return x as usize;
            }
        }
    }

    /// Draw a uniformly distributed boolean.
    fn gen_bool(&mut self) -> bool {
        // Use the high bit; SplitMix64's low bits are fine too, but the
        // high bit keeps this correct for weaker implementors.
        self.next_u64() >> 63 == 1
    }

    /// Draw a uniformly distributed `i64` in `lo..hi`.
    ///
    /// # Panics
    /// Panics if `lo >= hi`.
    fn gen_i64_range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "gen_i64_range requires lo < hi");
        let span = hi.wrapping_sub(lo) as u64;
        lo.wrapping_add(self.gen_range(span as usize) as i64)
    }
}

/// Deterministic SplitMix64 generator (Steele, Lea & Flood 2014).
///
/// The canonical output function: each draw advances the state by the
/// golden-ratio increment and applies a 3-round xor-shift-multiply
/// finalizer. Passes BigCrush when seeded arbitrarily; every distinct
/// seed yields an independent-looking stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a 64-bit seed. Identical seeds yield
    /// identical streams on every platform — the property the seeded
    /// schedule drivers in `system::sched` rely on.
    #[must_use]
    pub const fn seed_from_u64(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Produce the next 64 bits of the stream.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Derive a fresh, statistically independent child seed. Used to
    /// fan one experiment seed out into per-trial seeds (e.g. the
    /// randomized sweeps of `analysis::resilience`).
    #[must_use]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::seed_from_u64(self.next_u64())
    }

    /// Fisher–Yates shuffle of a slice, consuming draws from `self`.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = RandomSource::gen_range(self, i + 1);
            xs.swap(i, j);
        }
    }

    /// Choose a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            Some(&xs[RandomSource::gen_range(self, xs.len())])
        }
    }
}

impl RandomSource for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        SplitMix64::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // Reference values from the public-domain splitmix64.c, seed 0.
        let mut g = SplitMix64::seed_from_u64(0);
        assert_eq!(g.next_u64(), 0xe220_a839_7b1d_cdaf);
        assert_eq!(g.next_u64(), 0x6e78_9e6a_a1b9_65f4);
        assert_eq!(g.next_u64(), 0x06c4_5d18_8009_454f);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::seed_from_u64(42);
        let mut b = SplitMix64::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_hits_everything() {
        let mut g = SplitMix64::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let x = g.gen_range(5);
            assert!(x < 5);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&b| b), "all buckets hit in 200 draws");
    }

    #[test]
    #[should_panic(expected = "non-empty range")]
    fn gen_range_rejects_empty() {
        SplitMix64::seed_from_u64(0).gen_range(0);
    }

    #[test]
    fn gen_i64_range_covers_negative_spans() {
        let mut g = SplitMix64::seed_from_u64(9);
        for _ in 0..100 {
            let x = g.gen_i64_range(-3, 4);
            assert!((-3..4).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = SplitMix64::seed_from_u64(11);
        let mut xs: Vec<usize> = (0..16).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn split_yields_distinct_streams() {
        let mut g = SplitMix64::seed_from_u64(5);
        let mut c1 = g.split();
        let mut c2 = g.split();
        assert_ne!(c1.next_u64(), c2.next_u64());
    }
}
