//! N-ary composition of I/O automata (paper Section 2.2.3 composes
//! `n` processes with `|K| + |R|` services in one step).
//!
//! [`Composite`] composes a homogeneous vector of component automata
//! over a shared action alphabet: every component with an action in
//! its signature executes it jointly. Homogeneity is no restriction —
//! a heterogeneous system is composed by making the component type an
//! enum (exactly how `system::build::CompleteSystem` handles processes
//! vs services, natively for speed; `Composite` is the generic,
//! kernel-level form used for smaller models and for testing the
//! composition laws themselves).

use crate::automaton::{ActionKind, Automaton};

/// A task of an n-ary composition: component index + component task.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexedTask<T> {
    /// Which component owns the task.
    pub component: usize,
    /// The component's own task.
    pub task: T,
}

/// The n-ary parallel composition of components over one action
/// alphabet.
///
/// When component `c` performs action `a`, every *other* component
/// that accepts `a` as an input performs it simultaneously (the
/// standard synchronization rule; output-ownership uniqueness is the
/// caller's obligation, as in the binary [`crate::compose::Compose`]).
///
/// # Example
///
/// ```
/// use ioa::automaton::Automaton;
/// use ioa::nary::Composite;
/// use ioa::toy::Channel;
///
/// let net = Composite::new(vec![Channel::new(&[1]), Channel::new(&[1]), Channel::new(&[1])]);
/// assert_eq!(net.tasks().len(), 3);
/// ```
#[derive(Clone, Debug)]
pub struct Composite<A> {
    components: Vec<A>,
}

impl<A: Automaton> Composite<A> {
    /// Composes the given components.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<A>) -> Self {
        assert!(!components.is_empty(), "a composition needs components");
        Composite { components }
    }

    /// The components.
    pub fn components(&self) -> &[A] {
        &self.components
    }

    /// Propagates action `a`, performed by `actor`, into every other
    /// component that accepts it as an input.
    fn sync(&self, states: &[A::State], actor: usize, a: &A::Action) -> Vec<A::State> {
        states
            .iter()
            .enumerate()
            .map(|(c, s)| {
                if c == actor {
                    s.clone() // actor's post-state is substituted by the caller
                } else {
                    self.components[c]
                        .apply_input(s, a)
                        .unwrap_or_else(|| s.clone())
                }
            })
            .collect()
    }
}

impl<A: Automaton> Automaton for Composite<A> {
    type State = Vec<A::State>;
    type Action = A::Action;
    type Task = IndexedTask<A::Task>;

    fn initial_states(&self) -> Vec<Self::State> {
        // Cross product of component start states.
        let mut states: Vec<Vec<A::State>> = vec![Vec::new()];
        for c in &self.components {
            let choices = c.initial_states();
            let mut next = Vec::with_capacity(states.len() * choices.len());
            for prefix in &states {
                for choice in &choices {
                    let mut p = prefix.clone();
                    p.push(choice.clone());
                    next.push(p);
                }
            }
            states = next;
        }
        states
    }

    fn tasks(&self) -> Vec<Self::Task> {
        self.components
            .iter()
            .enumerate()
            .flat_map(|(component, c)| {
                c.tasks()
                    .into_iter()
                    .map(move |task| IndexedTask { component, task })
            })
            .collect()
    }

    fn succ_all(&self, t: &Self::Task, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        let c = t.component;
        self.components[c]
            .succ_all(&t.task, &s[c])
            .into_iter()
            .map(|(a, cs2)| {
                let mut joint = self.sync(s, c, &a);
                joint[c] = cs2;
                (a, joint)
            })
            .collect()
    }

    fn apply_input(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State> {
        let mut any = false;
        let next: Vec<A::State> = s
            .iter()
            .enumerate()
            .map(|(c, cs)| match self.components[c].apply_input(cs, a) {
                Some(cs2) => {
                    any = true;
                    cs2
                }
                None => cs.clone(),
            })
            .collect();
        if any {
            Some(next)
        } else {
            None
        }
    }

    fn kind(&self, a: &Self::Action) -> ActionKind {
        // Output of any component ⇒ output; internal anywhere ⇒
        // internal; else input.
        let mut kind = ActionKind::Input;
        for c in &self.components {
            match c.kind(a) {
                ActionKind::Internal => return ActionKind::Internal,
                ActionKind::Output => kind = ActionKind::Output,
                ActionKind::Input => {}
            }
        }
        kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compose::Compose;
    use crate::explore::reach;
    use crate::toy::{ChanAction, Channel};

    #[test]
    fn composite_of_channels_interleaves_independently() {
        let net = Composite::new(vec![Channel::new(&[1]), Channel::new(&[2])]);
        let s0 = net.initial_states().remove(0);
        // Send goes to every channel that accepts it (both do: they
        // share the alphabet type, so a send lands in both queues).
        let s1 = net.apply_input(&s0, &ChanAction::Send(1)).unwrap();
        assert_eq!(s1, vec![vec![1], vec![1]]);
        // Each channel's deliver task fires independently.
        let t0 = IndexedTask {
            component: 0,
            task: crate::toy::DeliverTask,
        };
        let (a, s2) = net.succ_det(&t0, &s1).unwrap();
        assert_eq!(a, ChanAction::Recv(1));
        assert_eq!(s2[0], Vec::<i64>::new());
        assert_eq!(s2[1], vec![1], "only component 0 moved on its own output?");
    }

    #[test]
    fn binary_and_nary_compositions_agree_on_reachability() {
        // Compose two channels both ways and compare reachable-state
        // counts from the same driven prefix.
        let nary = Composite::new(vec![Channel::new(&[1]), Channel::new(&[1])]);
        let bin = Compose::new(Channel::new(&[1]), Channel::new(&[1]));
        let sn = nary
            .apply_input(&nary.initial_states().remove(0), &ChanAction::Send(1))
            .unwrap();
        let sb = bin
            .apply_input(&bin.initial_states().remove(0), &ChanAction::Send(1))
            .unwrap();
        let rn = reach(&nary, vec![sn], 1000);
        let rb = reach(&bin, vec![sb], 1000);
        assert_eq!(rn.len(), rb.len());
    }

    #[test]
    fn nondeterministic_initials_cross_product() {
        /// Two start states each.
        #[derive(Clone, Debug)]
        struct TwoStart;
        impl Automaton for TwoStart {
            type State = u8;
            type Action = ();
            type Task = ();
            fn initial_states(&self) -> Vec<u8> {
                vec![0, 1]
            }
            fn tasks(&self) -> Vec<()> {
                vec![]
            }
            fn succ_all(&self, _t: &(), _s: &u8) -> Vec<((), u8)> {
                vec![]
            }
            fn apply_input(&self, _s: &u8, _a: &()) -> Option<u8> {
                None
            }
            fn kind(&self, _a: &()) -> ActionKind {
                ActionKind::Internal
            }
        }
        let c = Composite::new(vec![TwoStart, TwoStart]);
        assert_eq!(c.initial_states().len(), 4);
    }

    #[test]
    fn recv_of_one_component_is_not_an_input_elsewhere() {
        // Recv is an output — other channels ignore it (their
        // apply_input returns None), so sync leaves them unchanged.
        let net = Composite::new(vec![Channel::new(&[1]), Channel::new(&[1])]);
        let s = net
            .apply_input(&net.initial_states().remove(0), &ChanAction::Send(1))
            .unwrap();
        let t1 = IndexedTask {
            component: 1,
            task: crate::toy::DeliverTask,
        };
        let (_, s2) = net.succ_det(&t1, &s).unwrap();
        assert_eq!(
            s2[0],
            vec![1],
            "component 0 untouched by component 1's output"
        );
        assert_eq!(s2[1], Vec::<i64>::new());
    }
}
