//! Fairness: fair executions, the round-robin scheduler, and fair
//! lassos (paper Section 2.1.1).
//!
//! An execution `α` is *fair* iff for each task `e`: (1) if `α` is
//! finite, `e` is not enabled in its final state; (2) if `α` is
//! infinite, `α` contains infinitely many actions of `e` or infinitely
//! many states where `e` is disabled.
//!
//! Infinite executions of a finite-state automaton are represented as
//! *lassos* — a finite prefix followed by a repeating cycle. A lasso's
//! infinite unrolling is fair iff every task either fires in the cycle
//! or is disabled at some state of the cycle; [`lasso_is_fair`] checks
//! exactly that. The deterministic [`run_round_robin`] scheduler
//! produces executions that are fair by construction (every task is
//! offered a turn once per round), so a lasso it detects is a
//! *machine-checked witness of fair nontermination* — the shape of
//! counterexample the impossibility pipeline reports when a candidate
//! protocol fails the consensus termination condition.

use crate::automaton::Automaton;
use crate::execution::{Execution, Step};
use std::collections::HashMap;

/// Whether a *finite* execution is fair: no task is applicable to its
/// final state (fairness clause (1)).
pub fn is_fair_finite<A: Automaton>(aut: &A, exec: &Execution<A>) -> bool {
    aut.applicable_tasks(exec.last_state()).is_empty()
}

/// How a round-robin run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// No task was applicable for a whole round: the run reached a
    /// quiescent state and the finite execution is fair.
    Quiescent,
    /// The pair (state, round-robin position) repeated: the run entered
    /// a cycle. `cycle_start` indexes the step at which the repeated
    /// configuration first occurred; the steps from `cycle_start` to the
    /// end form the cycle body.
    Lasso {
        /// Index into the execution's step vector where the cycle begins.
        cycle_start: usize,
    },
    /// The step budget was exhausted before quiescence or a repeat.
    Budget,
}

/// A completed round-robin run: the execution plus how it ended.
#[derive(Clone, Debug)]
pub struct RoundRobinRun<A: Automaton> {
    /// The generated execution.
    pub exec: Execution<A>,
    /// Why the run stopped.
    pub outcome: RunOutcome,
    /// A predicate-satisfying step index, if a stop predicate was given
    /// and triggered.
    pub stopped_at: Option<usize>,
}

/// Runs the deterministic round-robin scheduler from `start`, using
/// `succ_det` transitions, for at most `max_steps` steps.
///
/// Every task is offered a turn once per round in the canonical task
/// order; tasks that are inapplicable are skipped. The run stops when
/// (a) `stop` holds at some reached state, (b) no task fires for an
/// entire round (quiescence), (c) a (state, position) configuration
/// repeats (lasso), or (d) the budget runs out.
///
/// Because every applicable task gets a turn each round, the infinite
/// unrolling of a detected lasso is a fair execution.
pub fn run_round_robin<A, F>(
    aut: &A,
    start: A::State,
    max_steps: usize,
    stop: F,
) -> RoundRobinRun<A>
where
    A: Automaton,
    F: Fn(&A::State) -> bool,
{
    let tasks = aut.tasks();
    let mut exec = Execution::new(start);
    if stop(exec.last_state()) {
        return RoundRobinRun {
            exec,
            outcome: RunOutcome::Quiescent,
            stopped_at: Some(0),
        };
    }
    // Configuration = (state, index of next task to offer).
    let mut seen: HashMap<(A::State, usize), usize> = HashMap::new();
    let mut pos = 0usize;
    let mut idle_rounds = 0usize;
    while exec.len() < max_steps {
        let config = (exec.last_state().clone(), pos);
        if let Some(&step_idx) = seen.get(&config) {
            return RoundRobinRun {
                exec,
                outcome: RunOutcome::Lasso {
                    cycle_start: step_idx,
                },
                stopped_at: None,
            };
        }
        seen.insert(config, exec.len());
        // Offer one full round starting at `pos`.
        let mut fired = false;
        for off in 0..tasks.len() {
            let t = &tasks[(pos + off) % tasks.len()];
            if exec.apply_task(aut, t) {
                pos = (pos + off + 1) % tasks.len();
                fired = true;
                break;
            }
        }
        if !fired {
            idle_rounds += 1;
            if idle_rounds >= 1 {
                return RoundRobinRun {
                    exec,
                    outcome: RunOutcome::Quiescent,
                    stopped_at: None,
                };
            }
        } else {
            idle_rounds = 0;
            if stop(exec.last_state()) {
                let at = exec.len();
                return RoundRobinRun {
                    exec,
                    outcome: RunOutcome::Quiescent,
                    stopped_at: Some(at),
                };
            }
        }
    }
    RoundRobinRun {
        exec,
        outcome: RunOutcome::Budget,
        stopped_at: None,
    }
}

/// Whether the infinite unrolling of the cycle
/// `steps[cycle_start..]` of `exec` is a fair execution: every task of
/// the automaton either contributes an action within the cycle, or is
/// inapplicable at some state of the cycle (fairness clause (2)).
pub fn lasso_is_fair<A: Automaton>(aut: &A, exec: &Execution<A>, cycle_start: usize) -> bool {
    let steps: &[Step<A>] = &exec.steps()[cycle_start..];
    if steps.is_empty() {
        return false;
    }
    // The states of the cycle: state before steps[0] is the state at
    // cycle_start, i.e. exec.states()[cycle_start].
    let all_states = exec.states();
    let cycle_states: Vec<&A::State> = all_states[cycle_start..].to_vec();
    for t in aut.tasks() {
        let fires = steps.iter().any(|s| s.task.as_ref() == Some(&t));
        let disabled_somewhere = cycle_states.iter().any(|s| !aut.applicable(&t, s));
        if !fires && !disabled_somewhere {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::ActionKind;
    use crate::toy::ParityCounter;

    #[test]
    fn round_robin_reaches_quiescence_and_is_fair() {
        let c = ParityCounter::new(4);
        let run = run_round_robin(&c, 0, 100, |_| false);
        assert_eq!(run.outcome, RunOutcome::Quiescent);
        assert_eq!(*run.exec.last_state(), 4);
        assert!(is_fair_finite(&c, &run.exec));
    }

    #[test]
    fn stop_predicate_halts_early() {
        let c = ParityCounter::new(10);
        let run = run_round_robin(&c, 0, 100, |s| *s == 3);
        assert_eq!(run.stopped_at, Some(3));
        assert_eq!(*run.exec.last_state(), 3);
    }

    /// A two-task automaton where one task self-loops forever — the
    /// round-robin run must detect a lasso and the lasso must be fair
    /// (the other task is disabled throughout).
    #[derive(Clone, Debug)]
    struct Spinner;

    impl Automaton for Spinner {
        type State = u8;
        type Action = &'static str;
        type Task = &'static str;

        fn initial_states(&self) -> Vec<u8> {
            vec![0]
        }
        fn tasks(&self) -> Vec<&'static str> {
            vec!["spin", "never"]
        }
        fn succ_all(&self, t: &&'static str, s: &u8) -> Vec<(&'static str, u8)> {
            match *t {
                "spin" => vec![("tick", 1 - *s)],
                _ => Vec::new(),
            }
        }
        fn apply_input(&self, _s: &u8, _a: &&'static str) -> Option<u8> {
            None
        }
        fn kind(&self, _a: &&'static str) -> ActionKind {
            ActionKind::Internal
        }
    }

    #[test]
    fn lasso_detection_and_fairness() {
        let run = run_round_robin(&Spinner, 0, 1000, |_| false);
        let RunOutcome::Lasso { cycle_start } = run.outcome else {
            panic!("expected a lasso, got {:?}", run.outcome)
        };
        assert!(lasso_is_fair(&Spinner, &run.exec, cycle_start));
    }

    #[test]
    fn unfair_lasso_is_rejected() {
        // Manufacture an execution of ParityCounter that "stalls" by
        // claiming an empty-progress cycle over a state where a task is
        // enabled: a cycle consisting of a single self-returning slice
        // cannot exist for this automaton, so instead check that a
        // cycle missing an enabled task is flagged unfair.
        let c = ParityCounter::new(4);
        let mut exec = Execution::new(0);
        assert!(exec.apply_task(&c, &crate::toy::ParityTask::Even));
        // Cycle = the single Even step from state 0 to 1; Odd is
        // enabled at state 1 but never fires and is never disabled in
        // the cycle? Odd IS disabled at state 0 (cycle includes state 0).
        // Fairness holds here; now test a genuinely unfair suffix:
        // cycle over only state 1 (no steps) is rejected outright.
        assert!(!lasso_is_fair(&c, &exec, 1));
        assert!(lasso_is_fair(&c, &exec, 0));
    }
}
