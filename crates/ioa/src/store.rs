//! Dense state interning: the arena underneath the exploration core.
//!
//! Every pass in the paper reproduction — reachability (Section 2.1.1
//! executions), the valence census of G(C) (Section 3.3), the Lemma 4
//! bivalent-initialization scan, the Lemma 5 hook search — walks the
//! same reachable state space. Keying frontiers, seen-sets, parent maps
//! and valence tables directly on full `SystemState` clones pays a deep
//! clone + deep hash *per visit*; interning pays it once per *distinct
//! state* and hands every pass a dense [`StateId`] (`u32`) instead.
//! Downstream tables then become flat `Vec`s indexed by id: no hashing,
//! no re-cloning, cache-friendly scans.
//!
//! The arena is append-only: ids are handed out in first-visit (BFS
//! discovery) order and are never invalidated, so an id minted during
//! exploration stays valid for the lifetime of the store — the property
//! that lets `analysis` share one [`ExploredGraph`](crate::explore::ExploredGraph)
//! across valence classification, hook extraction and witness scans.
//!
//! Hashing is a hand-rolled FxHash-style multiply-xor (the rustc hasher
//! lineage): not cryptographic, extremely fast on the short word
//! streams produced by `#[derive(Hash)]` state types, and fully
//! deterministic (no per-process SipHash keys), which keeps exploration
//! order reproducible across runs.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Multiplier from the FxHash family (64-bit): a single odd constant
/// with good bit dispersion under `rotate ^ mul`.
const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: `hash = (hash.rotate_left(5) ^ word) * SEED`
/// per input word. Deterministic, no external dependency, and roughly
/// an order of magnitude cheaper than SipHash on small keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`], usable directly with
/// `HashMap::with_hasher`.
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// Hash a single value with the deterministic Fx hasher.
#[must_use]
pub fn fx_hash<T: Hash + ?Sized>(value: &T) -> u64 {
    let mut h = FxHasher::default();
    value.hash(&mut h);
    h.finish()
}

/// A dense identifier for an interned state.
///
/// Ids are handed out consecutively from 0 in discovery order, so they
/// double as indices into per-state side tables (`Vec<Valence>`,
/// `Vec<Vec<Edge>>`, …). `u32` bounds the arena at ~4.29 billion
/// distinct states — far beyond what exhaustive valence classification
/// can visit — and halves id-table memory versus `usize`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct StateId(u32);

impl StateId {
    /// The id's position in discovery order, usable as a `Vec` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from an index previously obtained via
    /// [`StateId::index`]. The caller is responsible for the index
    /// having come from the same store.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> StateId {
        StateId(u32::try_from(index).expect("StateId index exceeds u32::MAX"))
    }
}

/// An append-only arena interning states of type `S`.
///
/// * [`intern`](StateStore::intern) maps a state to its [`StateId`],
///   allocating a fresh id (and cloning the state **once**) only on
///   first sight — idempotent thereafter.
/// * [`resolve`](StateStore::resolve) maps an id back to the state in
///   O(1); the returned reference is stable for the store's lifetime
///   (states are never moved or dropped).
///
/// Internally a `Vec<S>` arena plus an Fx-hashed bucket table mapping
/// `hash(state) -> candidate ids`, so each state is stored exactly once
/// even under hash collisions.
#[derive(Debug, Clone)]
pub struct StateStore<S> {
    states: Vec<S>,
    buckets: HashMap<u64, Vec<StateId>, BuildFxHasher>,
}

impl<S> Default for StateStore<S> {
    fn default() -> Self {
        StateStore {
            states: Vec::new(),
            buckets: HashMap::default(),
        }
    }
}

impl<S: Hash + Eq + Clone> StateStore<S> {
    /// Create an empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Create an empty store with room for `capacity` states.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        StateStore {
            states: Vec::with_capacity(capacity),
            buckets: HashMap::with_capacity_and_hasher(capacity, BuildFxHasher::default()),
        }
    }

    /// Number of distinct states interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Intern `state`, returning its id and whether it was fresh.
    ///
    /// On first sight the state is cloned into the arena and assigned
    /// the next dense id; on every later call the existing id is
    /// returned without cloning. This is the only place the exploration
    /// layer ever clones or hashes a full state.
    ///
    /// # Panics
    /// Panics if the arena already holds `u32::MAX as usize + 1` states
    /// (the `u32` id space is exhausted).
    pub fn intern(&mut self, state: &S) -> (StateId, bool) {
        let h = fx_hash(state);
        let bucket = self.buckets.entry(h).or_default();
        for &id in bucket.iter() {
            if &self.states[id.index()] == state {
                return (id, false);
            }
        }
        let id = StateId::from_index(self.states.len());
        self.states.push(state.clone());
        bucket.push(id);
        (id, true)
    }

    /// Intern `state` only if doing so keeps the arena within `cap`
    /// states. Returns `None` (without inserting) when the state is
    /// fresh but the budget is exhausted — the single-hash primitive
    /// the explorer's budgeted BFS is built on.
    pub fn try_intern(&mut self, state: &S, cap: usize) -> Option<(StateId, bool)> {
        let h = fx_hash(state);
        let bucket = self.buckets.entry(h).or_default();
        for &id in bucket.iter() {
            if &self.states[id.index()] == state {
                return Some((id, false));
            }
        }
        if self.states.len() >= cap {
            return None;
        }
        let id = StateId::from_index(self.states.len());
        self.states.push(state.clone());
        bucket.push(id);
        Some((id, true))
    }

    /// [`StateStore::intern`] with the hash supplied by the caller and
    /// the state passed by value (moved into the arena on first sight,
    /// no clone).
    ///
    /// This is the fast path of the parallel explorer: workers hash
    /// candidate successors off the interner's thread, and the merge
    /// loop inserts them without re-hashing. `hash` **must** equal
    /// `fx_hash(&state)`; this is debug-asserted.
    pub fn intern_prehashed(&mut self, state: S, hash: u64) -> (StateId, bool) {
        debug_assert_eq!(hash, fx_hash(&state), "prehashed value must match fx_hash");
        let bucket = self.buckets.entry(hash).or_default();
        for &id in bucket.iter() {
            if self.states[id.index()] == state {
                return (id, false);
            }
        }
        let id = StateId::from_index(self.states.len());
        self.states.push(state);
        bucket.push(id);
        (id, true)
    }

    /// [`StateStore::try_intern`] with the hash supplied by the caller
    /// and the state passed by value. Returns `None` (dropping the
    /// state) when it is fresh but the arena already holds `cap`
    /// states. `hash` **must** equal `fx_hash(&state)`.
    pub fn try_intern_prehashed(
        &mut self,
        state: S,
        hash: u64,
        cap: usize,
    ) -> Option<(StateId, bool)> {
        debug_assert_eq!(hash, fx_hash(&state), "prehashed value must match fx_hash");
        let bucket = self.buckets.entry(hash).or_default();
        for &id in bucket.iter() {
            if self.states[id.index()] == state {
                return Some((id, false));
            }
        }
        if self.states.len() >= cap {
            return None;
        }
        let id = StateId::from_index(self.states.len());
        self.states.push(state);
        bucket.push(id);
        Some((id, true))
    }

    /// Look up the id of an already-interned state with a
    /// caller-supplied hash, without inserting. Shared-read safe: the
    /// parallel explorer's workers probe the frozen arena through this
    /// while the merge thread is idle. `hash` **must** equal
    /// `fx_hash(state)`.
    #[must_use]
    pub fn get_prehashed(&self, state: &S, hash: u64) -> Option<StateId> {
        debug_assert_eq!(hash, fx_hash(state), "prehashed value must match fx_hash");
        let bucket = self.buckets.get(&hash)?;
        bucket
            .iter()
            .copied()
            .find(|id| &self.states[id.index()] == state)
    }

    /// Look up the id of an already-interned state without inserting.
    #[must_use]
    pub fn get(&self, state: &S) -> Option<StateId> {
        let h = fx_hash(state);
        let bucket = self.buckets.get(&h)?;
        bucket
            .iter()
            .copied()
            .find(|id| &self.states[id.index()] == state)
    }

    /// Resolve an id back to its state. O(1) array access.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this store.
    #[inline]
    #[must_use]
    pub fn resolve(&self, id: StateId) -> &S {
        &self.states[id.index()]
    }

    /// Iterate all interned states in id (discovery) order.
    pub fn iter(&self) -> impl Iterator<Item = (StateId, &S)> {
        self.states
            .iter()
            .enumerate()
            .map(|(i, s)| (StateId(i as u32), s))
    }

    /// The interned states in id order, as a slice.
    #[must_use]
    pub fn states(&self) -> &[S] {
        &self.states
    }

    /// Consume the store, moving the interned states out in id
    /// (discovery) order. No state is cloned; the bucket table is
    /// dropped.
    #[must_use]
    pub fn into_states(self) -> Vec<S> {
        self.states
    }

    /// Iterate all ids in discovery order.
    pub fn ids(&self) -> impl Iterator<Item = StateId> {
        (0..self.states.len() as u32).map(StateId)
    }
}

/// Number of bits of a *provisional* [`StateId`] reserved for the shard
/// index in a [`ShardedStore`]; the remaining low bits hold the local
/// slot within the shard. Fixed regardless of the actual shard count,
/// so provisional ids from stores of different widths pack identically.
pub const SHARD_BITS: u32 = 6;

/// Maximum shard count representable in the provisional id layout.
pub const MAX_SHARDS: usize = 1 << SHARD_BITS;

const LOCAL_BITS: u32 = 32 - SHARD_BITS;
const LOCAL_MASK: u32 = (1 << LOCAL_BITS) - 1;

/// One stripe of a [`ShardedStore`]: a miniature `StateStore` whose
/// bucket table maps hashes to *local* slot indices, plus the per-slot
/// hash cache that lets finalization rebuild the dense bucket table
/// without re-hashing a single state.
#[derive(Debug)]
struct Shard<S> {
    states: Vec<S>,
    /// `hashes[local] = fx_hash(states[local])`, recorded at intern time.
    hashes: Vec<u64>,
    buckets: HashMap<u64, Vec<u32>, BuildFxHasher>,
}

/// A concurrently-shared interning arena, hash-sharded into striped
/// sub-stores so that parallel explorers intern without funneling
/// through one writer (DESIGN §2.1.5).
///
/// Each state routes to the shard selected by the high bits of its fx
/// hash; within a shard, interning is the same bucket-probe-then-append
/// walk as [`StateStore`], under that shard's mutex only. Ids handed out
/// are **provisional**: `shard << 26 | local slot` packed into a
/// [`StateId`]. They are dense per shard but not globally, and their
/// numeric order carries no discovery-order meaning — a work-stealing
/// exploration renumbers them into dense BFS-order ids via
/// [`ShardedStore::into_dense`] once the frontier drains.
///
/// The `max_states` budget is enforced *globally*, not per shard: a
/// fresh insert first claims a slot from one shared atomic counter via
/// compare-and-swap, so exactly `min(cap, |reachable|)` states are ever
/// admitted regardless of how insertions race across shards — the same
/// contract as [`StateStore::try_intern`].
#[derive(Debug)]
pub struct ShardedStore<S> {
    shards: Box<[Mutex<Shard<S>>]>,
    len: AtomicUsize,
}

impl<S: Hash + Eq + Clone> ShardedStore<S> {
    /// Create a store with `shards` stripes, rounded up to a power of
    /// two and clamped to `1..=`[`MAX_SHARDS`].
    #[must_use]
    pub fn new(shards: usize) -> Self {
        let n = shards.clamp(1, MAX_SHARDS).next_power_of_two();
        let shards = (0..n)
            .map(|_| {
                Mutex::new(Shard {
                    states: Vec::new(),
                    hashes: Vec::new(),
                    buckets: HashMap::default(),
                })
            })
            .collect();
        ShardedStore {
            shards,
            len: AtomicUsize::new(0),
        }
    }

    /// Number of stripes (always a power of two).
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total number of distinct states interned so far, across all
    /// shards. Exact at any moment: the counter is claimed *before* a
    /// state becomes visible in its shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }

    /// Whether no state has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    #[inline]
    fn shard_of(&self, hash: u64) -> usize {
        // High bits: the bucket tables already key on the full hash, so
        // routing on a disjoint-ish bit range keeps shards balanced even
        // for hash families with structured low bits.
        ((hash >> 32) as usize) & (self.shards.len() - 1)
    }

    #[inline]
    fn pack(shard: usize, local: u32) -> StateId {
        StateId(((shard as u32) << LOCAL_BITS) | local)
    }

    /// Split a provisional id back into `(shard, local slot)`.
    #[inline]
    #[must_use]
    pub fn split(id: StateId) -> (usize, usize) {
        ((id.0 >> LOCAL_BITS) as usize, (id.0 & LOCAL_MASK) as usize)
    }

    /// Intern `state` (by reference; cloned only on first sight) if the
    /// global budget allows, returning its provisional id and whether it
    /// was fresh. Returns `None` — without inserting — when the state is
    /// fresh but `cap` states have already been admitted globally.
    /// `hash` **must** equal `fx_hash(state)`.
    ///
    /// # Panics
    /// Panics if a single shard exceeds its 2^26 local-slot space.
    pub fn try_intern_prehashed(
        &self,
        state: &S,
        hash: u64,
        cap: usize,
    ) -> Option<(StateId, bool)> {
        debug_assert_eq!(hash, fx_hash(state), "prehashed value must match fx_hash");
        let sh = self.shard_of(hash);
        let mut shard = self.shards[sh].lock().expect("shard mutex poisoned");
        if let Some(bucket) = shard.buckets.get(&hash) {
            for &loc in bucket {
                if shard.states[loc as usize] == *state {
                    return Some((Self::pack(sh, loc), false));
                }
            }
        }
        // Fresh: claim a slot from the global budget before the state
        // becomes visible. fetch_update makes the claim atomic across
        // shards, so concurrent inserts can never overshoot `cap`.
        self.len
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                (n < cap).then_some(n + 1)
            })
            .ok()?;
        let loc = u32::try_from(shard.states.len()).expect("shard slot exceeds u32");
        assert!(loc <= LOCAL_MASK, "shard exceeds 2^26 local slots");
        shard.states.push(state.clone());
        shard.hashes.push(hash);
        shard.buckets.entry(hash).or_default().push(loc);
        Some((Self::pack(sh, loc), true))
    }

    /// [`ShardedStore::try_intern_prehashed`] without a budget — the
    /// root-admission path (roots are always admitted, mirroring
    /// [`StateStore::intern`]).
    pub fn intern_prehashed(&self, state: &S, hash: u64) -> (StateId, bool) {
        self.try_intern_prehashed(state, hash, usize::MAX)
            .expect("unbounded intern cannot be refused")
    }

    /// Look up the provisional id of an already-interned state without
    /// inserting. `hash` **must** equal `fx_hash(state)`.
    #[must_use]
    pub fn get_prehashed(&self, state: &S, hash: u64) -> Option<StateId> {
        debug_assert_eq!(hash, fx_hash(state), "prehashed value must match fx_hash");
        let sh = self.shard_of(hash);
        let shard = self.shards[sh].lock().expect("shard mutex poisoned");
        let bucket = shard.buckets.get(&hash)?;
        bucket
            .iter()
            .copied()
            .find(|&loc| shard.states[loc as usize] == *state)
            .map(|loc| Self::pack(sh, loc))
    }

    /// Per-shard state counts, indexed by shard — the sizing input for
    /// the renumbering tables a finalizing exploration builds.
    #[must_use]
    pub fn local_counts(&self) -> Vec<usize> {
        self.shards
            .iter()
            .map(|m| m.lock().expect("shard mutex poisoned").states.len())
            .collect()
    }

    /// Consume the sharded store and lay its states out as a dense
    /// [`StateStore`] in the order given by `order` (`order[dense] =
    /// provisional id`). No state is cloned or re-hashed: states move
    /// out of their shards, and the dense bucket table is rebuilt from
    /// the hashes cached at intern time.
    ///
    /// `order` must enumerate every interned provisional id exactly
    /// once — the renumbering a draining work-stealing BFS produces.
    ///
    /// # Panics
    /// Panics if `order` misses or repeats a provisional id.
    #[must_use]
    pub fn into_dense(self, order: &[StateId]) -> StateStore<S> {
        assert_eq!(order.len(), self.len(), "order must cover every state");
        let mut pools: Vec<Vec<Option<(S, u64)>>> = self
            .shards
            .into_vec()
            .into_iter()
            .map(|m| {
                let sh = m.into_inner().expect("shard mutex poisoned");
                sh.states.into_iter().zip(sh.hashes).map(Some).collect()
            })
            .collect();
        let mut states = Vec::with_capacity(order.len());
        let mut buckets: HashMap<u64, Vec<StateId>, BuildFxHasher> =
            HashMap::with_capacity_and_hasher(order.len(), BuildFxHasher::default());
        for (dense, &prov) in order.iter().enumerate() {
            let (sh, loc) = Self::split(prov);
            let (state, hash) = pools[sh][loc]
                .take()
                .expect("each provisional id appears exactly once in the order");
            states.push(state);
            buckets
                .entry(hash)
                .or_default()
                .push(StateId::from_index(dense));
        }
        StateStore { states, buckets }
    }
}

/// A dense identifier for an interned *component* (one process state,
/// one service state) inside an [`Interner`] sub-arena.
///
/// Component ids are deliberately distinct from [`StateId`]s: a system
/// state is a flat vector of `CompId`s, and the composed-state arena
/// hands out `StateId`s over those vectors. Both are `u32`-dense and
/// handed out in first-sight order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CompId(u32);

impl CompId {
    /// The id's position in first-sight order, usable as a `Vec` index.
    #[inline]
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct an id from an index previously obtained via
    /// [`CompId::index`]. The caller is responsible for the index
    /// having come from the same interner.
    ///
    /// # Panics
    /// Panics if `index` exceeds `u32::MAX`.
    #[inline]
    #[must_use]
    pub fn from_index(index: usize) -> CompId {
        CompId(u32::try_from(index).expect("CompId index exceeds u32::MAX"))
    }
}

/// An append-only sub-arena interning the *components* of composed
/// system states: process states, service states, register states,
/// failure-detector histories.
///
/// Each distinct component value is stored (and fx-hashed) exactly
/// once, at first sight; thereafter it is handled as a dense [`CompId`]
/// and its hash is served from the [`Interner::hash_of`] cache, never
/// recomputed. A composed state then becomes a flat `Vec<u32>` of
/// component ids — cloning it is a memcpy, equality a slice compare,
/// hashing a few words — while every untouched component is shared by
/// id across all system states that contain it.
#[derive(Debug, Clone)]
pub struct Interner<T> {
    items: Vec<T>,
    /// `hashes[id] = fx_hash(items[id])`, filled at intern time.
    hashes: Vec<u64>,
    buckets: HashMap<u64, Vec<CompId>, BuildFxHasher>,
}

impl<T> Default for Interner<T> {
    fn default() -> Self {
        Interner {
            items: Vec::new(),
            hashes: Vec::new(),
            buckets: HashMap::default(),
        }
    }
}

impl<T: Hash + Eq> Interner<T> {
    /// Create an empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct components interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the interner is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Intern `value` by move, returning its id and whether it was
    /// fresh. The value is hashed exactly once; on a repeat sighting it
    /// is dropped and the existing id returned.
    ///
    /// # Panics
    /// Panics if the arena already holds `u32::MAX as usize + 1`
    /// components.
    pub fn intern(&mut self, value: T) -> (CompId, bool) {
        let h = fx_hash(&value);
        let bucket = self.buckets.entry(h).or_default();
        for &id in bucket.iter() {
            if self.items[id.index()] == value {
                return (id, false);
            }
        }
        let id = CompId::from_index(self.items.len());
        self.items.push(value);
        self.hashes.push(h);
        bucket.push(id);
        (id, true)
    }

    /// Look up the id of an already-interned component without
    /// inserting.
    #[must_use]
    pub fn get(&self, value: &T) -> Option<CompId> {
        let h = fx_hash(value);
        let bucket = self.buckets.get(&h)?;
        bucket
            .iter()
            .copied()
            .find(|id| &self.items[id.index()] == value)
    }

    /// Resolve an id back to its component. O(1) array access; the
    /// returned reference is stable for the interner's lifetime.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    #[inline]
    #[must_use]
    pub fn resolve(&self, id: CompId) -> &T {
        &self.items[id.index()]
    }

    /// The fx hash of component `id`, cached at intern time — the hash
    /// of a component is computed exactly once for its lifetime.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    #[inline]
    #[must_use]
    pub fn hash_of(&self, id: CompId) -> u64 {
        self.hashes[id.index()]
    }

    /// Iterate all interned components in id (first-sight) order.
    pub fn iter(&self) -> impl Iterator<Item = (CompId, &T)> {
        self.items
            .iter()
            .enumerate()
            .map(|(i, v)| (CompId(i as u32), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut st = StateStore::new();
        let (a, fresh_a) = st.intern(&"alpha".to_string());
        let (b, fresh_b) = st.intern(&"beta".to_string());
        let (a2, fresh_a2) = st.intern(&"alpha".to_string());
        assert!(fresh_a && fresh_b);
        assert!(!fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn ids_are_dense_in_discovery_order() {
        let mut st = StateStore::new();
        for i in 0..100u64 {
            let (id, fresh) = st.intern(&i);
            assert!(fresh);
            assert_eq!(id.index(), i as usize);
        }
        assert_eq!(st.len(), 100);
        let ids: Vec<usize> = st.ids().map(StateId::index).collect();
        assert_eq!(ids, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn resolve_is_stable_across_growth() {
        let mut st = StateStore::new();
        let (id, _) = st.intern(&7u64);
        for i in 1000..2000u64 {
            st.intern(&i);
        }
        assert_eq!(*st.resolve(id), 7);
        assert_eq!(st.get(&7u64), Some(id));
        assert_eq!(st.get(&999_999u64), None);
    }

    #[test]
    fn collisions_do_not_conflate_states() {
        // Two states in the same bucket must still intern separately.
        // Force the situation by interning many states; with 64-bit Fx
        // hashes real collisions are unlikely, so instead check the
        // bucket probe path directly via equal-hash construction:
        // FxHasher is deterministic, so craft a store keyed on a type
        // whose Hash impl is intentionally degenerate.
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct DegenerateHash(u32);
        impl Hash for DegenerateHash {
            fn hash<H: Hasher>(&self, state: &mut H) {
                state.write_u64(0); // every value collides
            }
        }
        let mut st = StateStore::new();
        let (a, _) = st.intern(&DegenerateHash(1));
        let (b, _) = st.intern(&DegenerateHash(2));
        let (a2, fresh) = st.intern(&DegenerateHash(1));
        assert_ne!(a, b);
        assert_eq!(a, a2);
        assert!(!fresh);
        assert_eq!(*st.resolve(b), DegenerateHash(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn from_index_guards_u32_overflow() {
        // The guard that fires when the arena would exceed the u32 id
        // space. Interning 2^32 real states is infeasible in a unit
        // test, so exercise the checked conversion directly.
        let _ = StateId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn try_intern_respects_the_budget() {
        let mut st = StateStore::new();
        assert_eq!(st.try_intern(&1u64, 2), Some((StateId(0), true)));
        assert_eq!(st.try_intern(&2u64, 2), Some((StateId(1), true)));
        // Budget reached: fresh states are refused, known states still hit.
        assert_eq!(st.try_intern(&3u64, 2), None);
        assert_eq!(st.try_intern(&1u64, 2), Some((StateId(0), false)));
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn prehashed_paths_agree_with_the_hashing_paths() {
        let mut a = StateStore::new();
        let mut b = StateStore::new();
        for i in (0..64u64).chain(0..32) {
            let expected = a.try_intern(&i, 48);
            let got = b.try_intern_prehashed(i, fx_hash(&i), 48);
            assert_eq!(got, expected, "state {i}");
        }
        assert_eq!(a.len(), b.len());
        for i in 0..64u64 {
            assert_eq!(b.get_prehashed(&i, fx_hash(&i)), a.get(&i));
        }
        let (id, fresh) = b.intern_prehashed(99, fx_hash(&99u64));
        assert!(fresh);
        assert_eq!(*b.resolve(id), 99);
        assert_eq!(b.intern_prehashed(99, fx_hash(&99u64)), (id, false));
    }

    #[test]
    fn fx_hash_is_deterministic() {
        assert_eq!(fx_hash(&(1u64, 2u64)), fx_hash(&(1u64, 2u64)));
        assert_ne!(fx_hash(&1u64), fx_hash(&2u64));
    }

    #[test]
    fn interner_is_idempotent_and_dense() {
        let mut it: Interner<String> = Interner::new();
        let (a, fresh_a) = it.intern("alpha".to_string());
        let (b, fresh_b) = it.intern("beta".to_string());
        let (a2, fresh_a2) = it.intern("alpha".to_string());
        assert!(fresh_a && fresh_b && !fresh_a2);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(a.index(), 0);
        assert_eq!(b.index(), 1);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(a), "alpha");
        assert_eq!(it.get(&"beta".to_string()), Some(b));
        assert_eq!(it.get(&"gamma".to_string()), None);
    }

    #[test]
    fn interner_caches_hashes_at_intern_time() {
        let mut it: Interner<u64> = Interner::new();
        for i in 0..50u64 {
            let (id, _) = it.intern(i);
            assert_eq!(it.hash_of(id), fx_hash(&i));
        }
        let ids: Vec<usize> = it.iter().map(|(id, _)| id.index()).collect();
        assert_eq!(ids, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn interner_survives_degenerate_hash_collisions() {
        #[derive(PartialEq, Eq, Debug)]
        struct AllCollide(u32);
        impl Hash for AllCollide {
            fn hash<H: Hasher>(&self, state: &mut H) {
                state.write_u64(7);
            }
        }
        let mut it = Interner::new();
        let (a, _) = it.intern(AllCollide(1));
        let (b, _) = it.intern(AllCollide(2));
        assert_ne!(a, b);
        assert_eq!(it.intern(AllCollide(1)), (a, false));
        assert_eq!(it.hash_of(a), it.hash_of(b));
        assert_eq!(*it.resolve(b), AllCollide(2));
    }

    #[test]
    #[should_panic(expected = "exceeds u32::MAX")]
    fn comp_id_from_index_guards_u32_overflow() {
        let _ = CompId::from_index(u32::MAX as usize + 1);
    }

    #[test]
    fn sharded_store_interns_each_state_once() {
        let st: ShardedStore<u64> = ShardedStore::new(8);
        assert_eq!(st.shard_count(), 8);
        let mut ids = Vec::new();
        for i in 0..100u64 {
            let (id, fresh) = st.intern_prehashed(&i, fx_hash(&i));
            assert!(fresh, "state {i} fresh on first sight");
            ids.push(id);
        }
        for i in 0..100u64 {
            let (id, fresh) = st.intern_prehashed(&i, fx_hash(&i));
            assert!(!fresh, "state {i} known on second sight");
            assert_eq!(id, ids[i as usize]);
            assert_eq!(st.get_prehashed(&i, fx_hash(&i)), Some(id));
        }
        assert_eq!(st.len(), 100);
        assert_eq!(st.get_prehashed(&999u64, fx_hash(&999u64)), None);
        // Provisional ids are unique and split/pack roundtrips.
        let mut seen = std::collections::HashSet::new();
        for &id in &ids {
            assert!(seen.insert(id), "duplicate provisional id {id:?}");
            let (sh, loc) = ShardedStore::<u64>::split(id);
            assert!(sh < st.shard_count());
            assert!(loc < st.local_counts()[sh]);
        }
        assert_eq!(st.local_counts().iter().sum::<usize>(), 100);
    }

    #[test]
    fn sharded_budget_is_globally_exact_under_contention() {
        // 8 threads hammer overlapping ranges against a cap; the CAS
        // budget must admit *exactly* `cap` distinct states no matter
        // how the interleaving lands across shards.
        let st: ShardedStore<u64> = ShardedStore::new(16);
        let cap = 50;
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let st = &st;
                scope.spawn(move || {
                    for i in 0..200u64 {
                        let v = (i + t * 7) % 150;
                        let _ = st.try_intern_prehashed(&v, fx_hash(&v), cap);
                    }
                });
            }
        });
        assert_eq!(st.len(), cap, "budget overshot or undershot");
        // Whatever was admitted still hits (budget or not), and fresh
        // states keep being refused.
        let mut hits = 0;
        for v in 0..150u64 {
            if let Some((_, fresh)) = st.try_intern_prehashed(&v, fx_hash(&v), cap) {
                assert!(!fresh, "no state can be fresh at the cap");
                hits += 1;
            }
        }
        assert_eq!(hits, cap, "exactly the admitted states probe as known");
        assert_eq!(st.len(), cap);
    }

    #[test]
    fn sharded_store_survives_degenerate_hash_collisions() {
        #[derive(Clone, PartialEq, Eq, Debug)]
        struct DegenerateHash(u32);
        impl Hash for DegenerateHash {
            fn hash<H: Hasher>(&self, state: &mut H) {
                state.write_u64(3); // every value lands in one shard+bucket
            }
        }
        let st: ShardedStore<DegenerateHash> = ShardedStore::new(4);
        let h = fx_hash(&DegenerateHash(0));
        let (a, _) = st.intern_prehashed(&DegenerateHash(1), h);
        let (b, _) = st.intern_prehashed(&DegenerateHash(2), h);
        assert_ne!(a, b);
        assert_eq!(st.intern_prehashed(&DegenerateHash(1), h), (a, false));
        assert_eq!(st.len(), 2);
    }

    #[test]
    fn into_dense_lays_states_out_in_the_given_order() {
        let st: ShardedStore<u64> = ShardedStore::new(8);
        let mut prov = Vec::new();
        for i in 0..64u64 {
            prov.push(st.intern_prehashed(&i, fx_hash(&i)).0);
        }
        // Renumber in reverse of intern order.
        let order: Vec<StateId> = prov.iter().rev().copied().collect();
        let dense = st.into_dense(&order);
        assert_eq!(dense.len(), 64);
        for i in 0..64u64 {
            let id = dense.get(&i).expect("state survives finalization");
            assert_eq!(id.index(), 63 - i as usize, "reverse order respected");
            assert_eq!(*dense.resolve(id), i);
            assert_eq!(dense.get_prehashed(&i, fx_hash(&i)), Some(id));
        }
    }

    #[test]
    #[should_panic(expected = "exactly once")]
    fn into_dense_rejects_a_repeated_id() {
        let st: ShardedStore<u64> = ShardedStore::new(2);
        let (a, _) = st.intern_prehashed(&1u64, fx_hash(&1u64));
        let _ = st.intern_prehashed(&2u64, fx_hash(&2u64));
        let _ = st.into_dense(&[a, a]);
    }
}
