//! Executions, steps and traces (paper Section 2.1.1).
//!
//! An execution is an alternating sequence `s0 a1 s1 a2 s2 …` of states
//! and actions starting in a start state where every triple
//! `(s_{i−1}, a_i, s_i)` is a transition. A *trace* is the subsequence
//! of external actions. Executions here also record which task produced
//! each locally controlled step (`None` for environment inputs), since
//! the paper's constructions — Fig. 3 in particular — are phrased as
//! *task sequences* applied from a state (Section 3.1: "the task
//! sequence is enough to uniquely specify the execution").

use crate::automaton::Automaton;
use std::fmt;

/// One step of an execution: the task that fired (if locally
/// controlled), the action label, and the post-state.
#[derive(Debug)]
pub struct Step<A: Automaton> {
    /// The task that produced this step, or `None` for an environment
    /// input action.
    pub task: Option<A::Task>,
    /// The action label.
    pub action: A::Action,
    /// The state after the step.
    pub state: A::State,
}

/// A finite execution (or execution fragment) of an automaton.
#[derive(Debug)]
pub struct Execution<A: Automaton> {
    first: A::State,
    steps: Vec<Step<A>>,
}

// Manual Clone/PartialEq impls: the derives would (incorrectly) demand
// `A: Clone`/`A: PartialEq` although only the associated types are stored.
impl<A: Automaton> Clone for Step<A> {
    fn clone(&self) -> Self {
        Step {
            task: self.task.clone(),
            action: self.action.clone(),
            state: self.state.clone(),
        }
    }
}

impl<A: Automaton> PartialEq for Step<A> {
    fn eq(&self, other: &Self) -> bool {
        self.task == other.task && self.action == other.action && self.state == other.state
    }
}

impl<A: Automaton> Eq for Step<A> {}

impl<A: Automaton> Clone for Execution<A> {
    fn clone(&self) -> Self {
        Execution {
            first: self.first.clone(),
            steps: self.steps.clone(),
        }
    }
}

impl<A: Automaton> PartialEq for Execution<A> {
    fn eq(&self, other: &Self) -> bool {
        self.first == other.first && self.steps == other.steps
    }
}

impl<A: Automaton> Eq for Execution<A> {}

impl<A: Automaton> Execution<A> {
    /// The zero-length execution at `first`.
    pub fn new(first: A::State) -> Self {
        Execution {
            first,
            steps: Vec::new(),
        }
    }

    /// The start state `s0`.
    pub fn first_state(&self) -> &A::State {
        &self.first
    }

    /// The final state.
    pub fn last_state(&self) -> &A::State {
        self.steps.last().map(|s| &s.state).unwrap_or(&self.first)
    }

    /// The number of steps (actions) in the execution.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether the execution has no steps.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The steps, in order.
    pub fn steps(&self) -> &[Step<A>] {
        &self.steps
    }

    /// Appends a step. The caller asserts it is a genuine transition
    /// from [`Execution::last_state`].
    pub fn push(&mut self, step: Step<A>) {
        self.steps.push(step);
    }

    /// Extends the execution by applying task `t` deterministically
    /// (`e(α)` in Section 3.1). Returns `false` (leaving the execution
    /// unchanged) if `t` is not applicable.
    pub fn apply_task(&mut self, aut: &A, t: &A::Task) -> bool {
        match aut.succ_det(t, self.last_state()) {
            Some((action, state)) => {
                self.steps.push(Step {
                    task: Some(t.clone()),
                    action,
                    state,
                });
                true
            }
            None => false,
        }
    }

    /// Extends the execution by an environment input action.
    ///
    /// # Panics
    ///
    /// Panics if `a` is not an input action of `aut` — inputs are always
    /// enabled in the I/O automaton model, so a rejected input is a
    /// caller bug.
    pub fn apply_input(&mut self, aut: &A, a: A::Action) {
        let next = aut
            .apply_input(self.last_state(), &a)
            .unwrap_or_else(|| panic!("not an input action: {a:?}"));
        self.steps.push(Step {
            task: None,
            action: a,
            state: next,
        });
    }

    /// Concatenation `α · α'` (Section 2.1.1): appends a fragment that
    /// starts in this execution's last state.
    ///
    /// # Panics
    ///
    /// Panics if `other` does not start in [`Execution::last_state`].
    pub fn concat(&mut self, other: &Execution<A>) {
        assert_eq!(
            self.last_state(),
            other.first_state(),
            "fragment must start in the last state of the prefix"
        );
        self.steps.extend(other.steps.iter().cloned());
    }

    /// The trace: the sequence of external actions (Section 2.1.1).
    pub fn trace(&self, aut: &A) -> Vec<A::Action> {
        self.steps
            .iter()
            .filter(|s| aut.kind(&s.action).is_external())
            .map(|s| s.action.clone())
            .collect()
    }

    /// The sequence of tasks that produced the locally controlled steps
    /// (the `ρ` of the paper's Lemma 6 replay argument).
    pub fn task_sequence(&self) -> Vec<A::Task> {
        self.steps.iter().filter_map(|s| s.task.clone()).collect()
    }

    /// The states visited, starting with the start state.
    pub fn states(&self) -> Vec<&A::State> {
        std::iter::once(&self.first)
            .chain(self.steps.iter().map(|s| &s.state))
            .collect()
    }

    /// Replays a task sequence from this execution's final state,
    /// appending each applicable task's deterministic transition and
    /// silently skipping inapplicable tasks.
    ///
    /// This is the paper's "apply the same sequence ρ of tasks after
    /// α1" construction (proof of Lemma 6): tasks that produced dummy
    /// or removed steps are simply not applicable and drop out.
    pub fn replay(&mut self, aut: &A, tasks: &[A::Task]) -> usize {
        let mut applied = 0;
        for t in tasks {
            if self.apply_task(aut, t) {
                applied += 1;
            }
        }
        applied
    }
}

impl<A: Automaton> fmt::Display for Execution<A>
where
    A::Action: fmt::Debug,
{
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "execution[{} steps]:", self.steps.len())?;
        for s in &self.steps {
            write!(f, " {:?}", s.action)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy::Channel;

    #[test]
    fn empty_execution_has_first_as_last() {
        let ch = Channel::new(&[1]);
        let e: Execution<Channel> = Execution::new(ch.initial_states()[0].clone());
        assert!(e.is_empty());
        assert_eq!(e.first_state(), e.last_state());
    }

    #[test]
    fn apply_input_then_task_traces_both() {
        let ch = Channel::new(&[7]);
        let mut e = Execution::new(ch.initial_states()[0].clone());
        e.apply_input(&ch, crate::toy::ChanAction::Send(7));
        assert_eq!(e.len(), 1);
        let tasks = ch.tasks();
        assert!(e.apply_task(&ch, &tasks[0]));
        let tr = e.trace(&ch);
        assert_eq!(tr.len(), 2); // send and recv are both external
    }

    #[test]
    fn inapplicable_task_leaves_execution_unchanged() {
        let ch = Channel::new(&[7]);
        let mut e = Execution::new(ch.initial_states()[0].clone());
        let tasks = ch.tasks();
        assert!(!e.apply_task(&ch, &tasks[0])); // nothing to deliver
        assert!(e.is_empty());
    }

    #[test]
    fn concat_requires_matching_states() {
        let ch = Channel::new(&[7]);
        let s0 = ch.initial_states()[0].clone();
        let mut a = Execution::new(s0.clone());
        let b: Execution<Channel> = Execution::new(s0);
        a.concat(&b);
        assert!(a.is_empty());
    }

    #[test]
    #[should_panic(expected = "must start in the last state")]
    fn concat_rejects_mismatched_fragment() {
        let ch = Channel::new(&[7]);
        let mut a = Execution::new(ch.initial_states()[0].clone());
        let mut b = Execution::new(ch.initial_states()[0].clone());
        b.apply_input(&ch, crate::toy::ChanAction::Send(7));
        let frag = b.clone();
        a.apply_input(&ch, crate::toy::ChanAction::Send(7));
        let mut after = Execution::new(b.last_state().clone());
        after.apply_task(&ch, &ch.tasks()[0]);
        a.concat(&frag); // frag starts at empty channel, a ends at nonempty
    }

    #[test]
    fn replay_skips_inapplicable_tasks() {
        let ch = Channel::new(&[7]);
        let mut e = Execution::new(ch.initial_states()[0].clone());
        let deliver = ch.tasks()[0];
        // Nothing in flight: replaying [deliver, deliver] applies zero.
        assert_eq!(e.replay(&ch, &[deliver, deliver]), 0);
        e.apply_input(&ch, crate::toy::ChanAction::Send(7));
        assert_eq!(e.replay(&ch, &[deliver, deliver]), 1);
    }
}
