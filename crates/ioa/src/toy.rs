//! Small example automata used in tests, docs and the composition
//! machinery's own test-suite.

use crate::automaton::{ActionKind, Automaton};

/// Actions of the toy [`Channel`] automaton.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ChanAction {
    /// Environment puts message `m` into the channel (input).
    Send(i64),
    /// Channel delivers message `m` (output).
    Recv(i64),
}

/// A reliable FIFO channel: `send(m)` inputs enqueue, a single
/// `deliver` task dequeues via `recv(m)` outputs.
///
/// This is the classic first example of an I/O automaton
/// (Lynch, *Distributed Algorithms*, Chapter 8).
///
/// # Example
///
/// ```
/// use ioa::automaton::Automaton;
/// use ioa::toy::{ChanAction, Channel};
///
/// let ch = Channel::new(&[1, 2]);
/// let s0 = ch.initial_states().remove(0);
/// let s1 = ch.apply_input(&s0, &ChanAction::Send(1)).unwrap();
/// let (a, _) = ch.succ_det(&ch.tasks()[0], &s1).unwrap();
/// assert_eq!(a, ChanAction::Recv(1));
/// ```
#[derive(Clone, Debug)]
pub struct Channel {
    alphabet: Vec<i64>,
}

/// The single task of [`Channel`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DeliverTask;

impl Channel {
    /// A channel for messages drawn from `alphabet`.
    pub fn new(alphabet: &[i64]) -> Self {
        Channel {
            alphabet: alphabet.to_vec(),
        }
    }

    /// The message alphabet.
    pub fn alphabet(&self) -> &[i64] {
        &self.alphabet
    }
}

impl Automaton for Channel {
    type State = Vec<i64>;
    type Action = ChanAction;
    type Task = DeliverTask;

    fn initial_states(&self) -> Vec<Self::State> {
        vec![Vec::new()]
    }

    fn tasks(&self) -> Vec<Self::Task> {
        vec![DeliverTask]
    }

    fn succ_all(&self, _t: &Self::Task, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        match s.split_first() {
            Some((head, rest)) => vec![(ChanAction::Recv(*head), rest.to_vec())],
            None => Vec::new(),
        }
    }

    fn apply_input(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State> {
        match a {
            ChanAction::Send(m) => {
                let mut s = s.clone();
                s.push(*m);
                Some(s)
            }
            ChanAction::Recv(_) => None,
        }
    }

    fn kind(&self, a: &Self::Action) -> ActionKind {
        match a {
            ChanAction::Send(_) => ActionKind::Input,
            ChanAction::Recv(_) => ActionKind::Output,
        }
    }
}

/// A bounded incrementing counter with one task per parity class —
/// used to exercise multi-task fairness in tests.
///
/// State is `n ∈ {0, …, max}`. The `Even` task fires when `n` is even
/// and `n < max`; the `Odd` task fires when `n` is odd and `n < max`.
/// Both increment. At `n = max` nothing is enabled, so every finite
/// execution ending there is fair.
#[derive(Clone, Debug)]
pub struct ParityCounter {
    max: i64,
}

/// Actions of [`ParityCounter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tick(pub i64);

/// Tasks of [`ParityCounter`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ParityTask {
    /// Fires from even states.
    Even,
    /// Fires from odd states.
    Odd,
}

impl ParityCounter {
    /// A counter saturating at `max`.
    ///
    /// # Panics
    ///
    /// Panics if `max < 0`.
    pub fn new(max: i64) -> Self {
        assert!(max >= 0, "counter bound must be nonnegative");
        ParityCounter { max }
    }
}

impl Automaton for ParityCounter {
    type State = i64;
    type Action = Tick;
    type Task = ParityTask;

    fn initial_states(&self) -> Vec<Self::State> {
        vec![0]
    }

    fn tasks(&self) -> Vec<Self::Task> {
        vec![ParityTask::Even, ParityTask::Odd]
    }

    fn succ_all(&self, t: &Self::Task, s: &Self::State) -> Vec<(Self::Action, Self::State)> {
        let fires = match t {
            ParityTask::Even => s % 2 == 0,
            ParityTask::Odd => s % 2 == 1,
        };
        if fires && *s < self.max {
            vec![(Tick(*s + 1), s + 1)]
        } else {
            Vec::new()
        }
    }

    fn apply_input(&self, _s: &Self::State, _a: &Self::Action) -> Option<Self::State> {
        None
    }

    fn kind(&self, _a: &Self::Action) -> ActionKind {
        ActionKind::Internal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_fifo() {
        let ch = Channel::new(&[1, 2]);
        let s = ch.initial_states().remove(0);
        let s = ch.apply_input(&s, &ChanAction::Send(1)).unwrap();
        let s = ch.apply_input(&s, &ChanAction::Send(2)).unwrap();
        let (a1, s) = ch.succ_det(&DeliverTask, &s).unwrap();
        let (a2, s) = ch.succ_det(&DeliverTask, &s).unwrap();
        assert_eq!(a1, ChanAction::Recv(1));
        assert_eq!(a2, ChanAction::Recv(2));
        assert!(ch.succ_all(&DeliverTask, &s).is_empty());
    }

    #[test]
    fn recv_is_not_an_input() {
        let ch = Channel::new(&[1]);
        let s = ch.initial_states().remove(0);
        assert!(ch.apply_input(&s, &ChanAction::Recv(1)).is_none());
    }

    #[test]
    fn parity_counter_alternates_tasks() {
        let c = ParityCounter::new(3);
        let s0 = 0;
        assert!(c.applicable(&ParityTask::Even, &s0));
        assert!(!c.applicable(&ParityTask::Odd, &s0));
        let (_, s1) = c.succ_det(&ParityTask::Even, &s0).unwrap();
        assert!(c.applicable(&ParityTask::Odd, &s1));
        assert_eq!(c.applicable_tasks(&3).len(), 0); // saturated
    }
}
