//! Backward bit-lane fixpoints over reverse-CSR adjacency.
//!
//! Two propagation disciplines cover every backward analysis the
//! workspace runs over an explored graph:
//!
//! * **union** (existential): a state acquires a lane bit as soon as
//!   *some* successor has it. This is the decided-set machinery behind
//!   [`analysis`'s valence map](../analysis/index.html): "a decision
//!   value is reachable from `s` iff it is recorded at `s` or reachable
//!   from some successor". It also answers `exists_path`-style
//!   questions seeded at goal states.
//! * **universal**: a state acquires a lane bit only when *every*
//!   successor has it (and it has at least one successor). This is the
//!   least-fixpoint formulation of `eventually` (CTL's `AF`): every
//!   maximal path from `s` hits a goal state. Cycles and terminal
//!   non-goal states correctly never acquire the bit.
//!
//! Both engines run over a reverse CSR (`preds.row(s)` = predecessors
//! of `s`, one entry per forward edge — see [`crate::csr::Csr::reversed`])
//! and propagate up to 64 independent lanes at once, so a batch of
//! properties shares a single worklist sweep instead of re-walking the
//! graph once per property. Fixpoints of monotone bit functions are
//! confluent: the result is independent of worklist order and of how
//! the underlying graph was explored (thread counts included).

use crate::csr::Csr;
use crate::store::StateId;

/// Maximum number of lanes either engine propagates in one sweep.
pub const MAX_LANES: usize = 64;

/// Existential (union) backward fixpoint:
/// `masks[s] := seed(s) | ⋃ { masks[s'] : s → s' }`.
///
/// `masks` holds the seed bits on entry and the fixpoint on exit. Each
/// reverse edge is re-examined only when its target gains bits, so the
/// sweep is `O(V + E·L)` for `L` occupied lanes in the worst case and
/// proportional to the propagation frontier in practice.
pub fn backward_union(preds: &Csr<StateId>, masks: &mut [u64]) {
    assert_eq!(preds.rows(), masks.len(), "one mask per state");
    let mut in_queue = vec![false; masks.len()];
    let mut work: Vec<u32> = Vec::new();
    for (i, m) in masks.iter().enumerate() {
        if *m != 0 {
            in_queue[i] = true;
            work.push(i as u32);
        }
    }
    while let Some(t) = work.pop() {
        let ti = t as usize;
        in_queue[ti] = false;
        let m = masks[ti];
        for p in preds.row(ti) {
            let pi = p.index();
            if masks[pi] | m != masks[pi] {
                masks[pi] |= m;
                if !in_queue[pi] {
                    in_queue[pi] = true;
                    work.push(pi as u32);
                }
            }
        }
    }
}

/// Universal backward fixpoint (least fixpoint of `AF`):
/// `masks[s] := seed(s) | { j : out_degree(s) > 0 ∧ ∀ s → s'. j ∈ masks[s'] }`.
///
/// `masks` holds the seed (goal) bits on entry and the fixpoint on
/// exit; `out_degree[s]` must be the forward out-degree of `s`
/// (parallel edges counted, matching the reverse CSR's one entry per
/// forward edge). `lanes` bounds the occupied bit positions; bits at
/// `lanes` and above must be zero in every seed.
///
/// Each `(reverse edge, lane)` pair is processed at most once — the
/// whole batch of lanes costs one sweep.
pub fn backward_universal(
    preds: &Csr<StateId>,
    out_degree: &[u32],
    lanes: usize,
    masks: &mut [u64],
) {
    assert_eq!(preds.rows(), masks.len(), "one mask per state");
    assert_eq!(out_degree.len(), masks.len(), "one out-degree per state");
    assert!(lanes <= MAX_LANES, "at most {MAX_LANES} lanes per sweep");
    let lane_guard = if lanes == MAX_LANES {
        u64::MAX
    } else {
        (1u64 << lanes) - 1
    };
    debug_assert!(masks.iter().all(|m| m & !lane_guard == 0));

    // remaining[s * lanes + j] = successors of s not yet known to carry
    // lane j. A seeded state carries its lanes unconditionally, so its
    // counters for those lanes are never consulted.
    let mut remaining: Vec<u32> = Vec::with_capacity(masks.len() * lanes);
    for &d in out_degree {
        for _ in 0..lanes {
            remaining.push(d);
        }
    }
    let mut work: Vec<(u32, u64)> = masks
        .iter()
        .enumerate()
        .filter(|(_, m)| **m != 0)
        .map(|(i, m)| (i as u32, *m))
        .collect();
    while let Some((t, delta)) = work.pop() {
        for p in preds.row(t as usize) {
            let pi = p.index();
            let mut gained = 0u64;
            // Lanes p already carries need no counting; the rest each
            // lose one outstanding successor.
            let mut bits = delta & !masks[pi];
            while bits != 0 {
                let j = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let c = &mut remaining[pi * lanes + j];
                *c -= 1;
                if *c == 0 {
                    gained |= 1 << j;
                }
            }
            if gained != 0 {
                masks[pi] |= gained;
                work.push((pi as u32, gained));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a reverse CSR from forward edges over `n` states, plus
    /// the forward out-degrees.
    fn reverse_of(n: usize, edges: &[(usize, usize)]) -> (Csr<StateId>, Vec<u32>) {
        let mut fwd: Csr<StateId> = Csr::new();
        let mut deg = vec![0u32; n];
        for (s, d) in deg.iter_mut().enumerate() {
            for (a, b) in edges {
                if *a == s {
                    fwd.push(StateId::from_index(*b));
                    *d += 1;
                }
            }
            fwd.close_row();
        }
        let preds = fwd.reversed(|t| t.index(), |src, _| StateId::from_index(src));
        (preds, deg)
    }

    #[test]
    fn union_propagates_to_all_ancestors() {
        // 0 → 1 → 2, 0 → 3; seed lane 0 at state 2, lane 1 at state 3.
        let (preds, _) = reverse_of(4, &[(0, 1), (1, 2), (0, 3)]);
        let mut m = vec![0, 0, 0b01, 0b10];
        backward_union(&preds, &mut m);
        assert_eq!(m, vec![0b11, 0b01, 0b01, 0b10]);
    }

    #[test]
    fn union_crosses_cycles() {
        // 0 ⇄ 1, 1 → 2; seed at 2 reaches both cycle states.
        let (preds, _) = reverse_of(3, &[(0, 1), (1, 0), (1, 2)]);
        let mut m = vec![0, 0, 1];
        backward_union(&preds, &mut m);
        assert_eq!(m, vec![1, 1, 1]);
    }

    #[test]
    fn universal_requires_all_branches() {
        // 0 → {1, 2}; 1 → 3; 2 → 3. Goal = {3}: every maximal path
        // reaches it, so AF holds everywhere.
        let (preds, deg) = reverse_of(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let mut m = vec![0, 0, 0, 1];
        backward_universal(&preds, &deg, 1, &mut m);
        assert_eq!(m, vec![1, 1, 1, 1]);
    }

    #[test]
    fn universal_fails_on_escaping_branch_and_cycles() {
        // 0 → {1, 2}; 1 → goal 3; 2 → 2′ loop (4 ⇄ 2). The branch into
        // the cycle never reaches the goal, so AF fails at 0 and 2.
        let (preds, deg) = reverse_of(5, &[(0, 1), (0, 2), (1, 3), (2, 4), (4, 2)]);
        let mut m = vec![0, 0, 0, 1, 0];
        backward_universal(&preds, &deg, 1, &mut m);
        assert_eq!(m, vec![0, 1, 0, 1, 0]);
    }

    #[test]
    fn universal_terminal_non_goal_states_stay_unset() {
        // 0 → 1 (terminal, not a goal): AF(goal) false at both.
        let (preds, deg) = reverse_of(2, &[(0, 1)]);
        let mut m = vec![0, 0];
        backward_universal(&preds, &deg, 1, &mut m);
        assert_eq!(m, vec![0, 0]);
    }

    #[test]
    fn universal_runs_many_lanes_in_one_sweep() {
        // Chain 0 → 1 → 2 with distinct goals per lane: lane j seeded
        // at state j reaches exactly states 0..=j.
        let (preds, deg) = reverse_of(3, &[(0, 1), (1, 2)]);
        let mut m = vec![0b001, 0b010, 0b100];
        backward_universal(&preds, &deg, 3, &mut m);
        assert_eq!(m, vec![0b111, 0b110, 0b100]);
    }
}
