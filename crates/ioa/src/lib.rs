//! A task-structured I/O automata kernel (Lynch–Tuttle model, as used in
//! paper Section 2.1.1).
//!
//! The paper's entire framework is phrased in the I/O automaton model:
//! state machines whose transitions are labeled with input, output or
//! internal actions, whose locally controlled actions are partitioned
//! into *tasks*, and whose fair executions give every task infinitely
//! many turns. This crate provides that model in executable form:
//!
//! * [`automaton::Automaton`] — the central trait: task-indexed
//!   successor functions with both the fully nondeterministic view
//!   (`succ_all`) and the determinized view (`succ_det`) required by the
//!   paper's Section 3.1 determinism assumptions.
//! * [`execution`] — executions, steps and traces (Section 2.1.1),
//!   including extension and concatenation of execution fragments.
//! * [`explore`] — breadth-first reachability, predicate search and
//!   graph materialization over task-generated transitions; this is what
//!   makes valence ("does any extension decide 0?") decidable for the
//!   finite systems the `analysis` crate studies.
//! * [`fixpoint`] — bit-lane backward fixpoints (union / universal)
//!   over reverse-CSR adjacency: the shared engine behind the valence
//!   map's decided sets and the property evaluator's `eventually`
//!   analysis in the `analysis` crate.
//! * [`fairness`] — fair-execution checking and the deterministic
//!   round-robin scheduler, whose infinite runs are fair by
//!   construction and whose finite-state lassos witness fair
//!   nontermination.
//! * [`compose`] — binary composition of I/O automata with action
//!   synchronization and hiding (Section 2.2.3 uses the n-ary analogue,
//!   implemented natively by the `system` crate).
//! * [`refine`] — finite-trace inclusion ("A implements B",
//!   Section 2.1.1, clause 2) via on-the-fly subset construction.
//! * [`store`] — the dense state-interning arena ([`store::StateStore`],
//!   [`store::StateId`]) the exploration layer runs on: each distinct
//!   state is hashed once and thereafter handled as a `u32` id. The
//!   generic sub-arena ([`store::Interner`], [`store::CompId`]) plays
//!   the same role for the *components* of a composed state, with the
//!   component hash cached at intern time.
//! * [`canon`] — symmetry-reduction primitives: the [`canon::Perm`]
//!   permutation algebra and the [`canon::SymmetryMode`] knob threaded
//!   through [`explore::ExploreOptions`]; the explorer canonicalizes
//!   successors via [`automaton::Automaton::canonical`] so equal-orbit
//!   states intern to one id.
//! * [`rng`] — in-tree deterministic SplitMix64 randomness for seeded
//!   schedule drivers; keeps the build hermetic (no `rand` dependency).
//!
//! # Example
//!
//! ```
//! use ioa::automaton::{ActionKind, Automaton};
//! use ioa::toy::Channel;
//! use ioa::explore::reach;
//!
//! let ch = Channel::new(&[1, 2]);
//! let r = reach(&ch, ch.initial_states(), 100);
//! assert!(!r.truncated());
//! # let _ = ActionKind::Input;
//! ```

// The whole workspace is `unsafe`-free by policy; enforce it statically
// so a future unsafe block needs an explicit, reviewed opt-out here.
#![forbid(unsafe_code)]

pub mod automaton;
pub mod canon;
pub mod compose;
pub mod csr;
pub mod execution;
pub mod explore;
pub mod fairness;
pub mod fixpoint;
pub mod nary;
pub mod refine;
pub mod rng;
pub mod store;
pub mod toy;

pub use automaton::{ActionKind, Automaton, CacheStats};
pub use canon::{Perm, SymGroup, SymmetryMode};
pub use csr::Csr;
pub use execution::{Execution, Step};
pub use explore::FrontierMode;
pub use store::{CompId, Interner, ShardedStore, StateId, StateStore};
