//! The `Automaton` trait: task-structured I/O automata
//! (paper Section 2.1.1).

use std::fmt::Debug;
use std::hash::Hash;

/// The classification of an action in an automaton's signature
/// (Section 2.1.1): input, output, or internal. Output and internal
/// actions are collectively *locally controlled*.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ActionKind {
    /// An input action — always enabled, not under the automaton's
    /// control, and not a member of any task.
    Input,
    /// An output action — locally controlled and externally visible.
    Output,
    /// An internal action — locally controlled and hidden.
    Internal,
}

impl ActionKind {
    /// Whether the action is locally controlled (output or internal).
    pub fn is_locally_controlled(self) -> bool {
        !matches!(self, ActionKind::Input)
    }

    /// Whether the action is external (input or output) and therefore
    /// appears in traces.
    pub fn is_external(self) -> bool {
        !matches!(self, ActionKind::Internal)
    }
}

/// Hit/miss counters of an automaton-internal transition cache (see
/// [`Automaton::cache_stats`]).
///
/// Counters are cumulative over the automaton's lifetime; use
/// [`CacheStats::since`] to scope them to one workload. A *hit* is a
/// successor expansion served entirely from cached, already-interned
/// effects; a *miss* is an expansion that had to evaluate at least one
/// transition effect from scratch.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Expansions fully served from the cache.
    pub hits: u64,
    /// Expansions that evaluated at least one effect from scratch.
    pub misses: u64,
}

impl CacheStats {
    /// Total expansions that consulted the cache.
    #[must_use]
    pub fn lookups(&self) -> u64 {
        self.hits + self.misses
    }

    /// Fraction of lookups served from the cache (`0.0` when there were
    /// no lookups).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn hit_rate(&self) -> f64 {
        let total = self.lookups();
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counters accumulated since `earlier` was snapshotted — how a
    /// caller scopes the cumulative counters to one exploration.
    #[must_use]
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
        }
    }
}

/// A task-structured I/O automaton.
///
/// The locally controlled actions are partitioned into *tasks*
/// (Section 2.1.1); a task `e` is *applicable* to a state `s` when some
/// action of `e` is enabled in `s`. Implementations expose transitions
/// per task:
///
/// * [`Automaton::succ_all`] — every `(action, state')` the task can
///   produce, realizing the full nondeterminism of the model;
/// * [`Automaton::succ_det`] — the canonical determinization used under
///   the paper's Section 3.1 assumptions, where `transition(e, s)` is a
///   function. The default takes the first (least, by construction
///   order) branch; implementations whose branch order is not already
///   canonical should override it.
///
/// Input actions arrive from the environment and are *not* task-driven;
/// they are applied with [`Automaton::apply_input`].
///
/// Automata are `Sync` and their state/action/task types are
/// `Send + Sync`: an automaton is an immutable transition relation, and
/// the layer-synchronous parallel explorer
/// ([`crate::explore::ExploredGraph::explore_with`] with
/// `threads > 1`) shares one automaton reference across a scoped worker
/// pool while successor states travel back to the merging thread. Every
/// automaton in the tree is plain data, so these bounds are satisfied
/// automatically.
pub trait Automaton: Sync {
    /// The state type. Orderable and hashable so that state spaces can
    /// be deduplicated and canonically sorted.
    type State: Clone + Eq + Ord + Hash + Debug + Send + Sync;
    /// The action label type.
    type Action: Clone + Eq + Debug + Send + Sync;
    /// The task identifier type.
    type Task: Clone + Eq + Ord + Hash + Debug + Send + Sync;

    /// The start states (nonempty).
    fn initial_states(&self) -> Vec<Self::State>;

    /// All tasks, in a fixed canonical order (the round-robin order the
    /// Fig. 3 construction walks).
    fn tasks(&self) -> Vec<Self::Task>;

    /// Every transition task `t` can take from `s`.
    fn succ_all(&self, t: &Self::Task, s: &Self::State) -> Vec<(Self::Action, Self::State)>;

    /// The determinized transition of task `t` from `s`
    /// (`transition(e, s)` of Section 3.1), or `None` when `t` is not
    /// applicable to `s`.
    fn succ_det(&self, t: &Self::Task, s: &Self::State) -> Option<(Self::Action, Self::State)> {
        self.succ_all(t, s).into_iter().next()
    }

    /// Whether task `t` is applicable to (has an action enabled in) `s`.
    fn applicable(&self, t: &Self::Task, s: &Self::State) -> bool {
        !self.succ_all(t, s).is_empty()
    }

    /// Applies an environment input action, returning the successor
    /// state, or `None` if `a` is not an input action of this automaton.
    ///
    /// I/O automata are input-enabled (Section 2.1.1): if `a` *is* an
    /// input of the automaton, this must return `Some`.
    fn apply_input(&self, s: &Self::State, a: &Self::Action) -> Option<Self::State>;

    /// The signature classification of `a`.
    fn kind(&self, a: &Self::Action) -> ActionKind;

    /// The tasks applicable to `s`.
    fn applicable_tasks(&self, s: &Self::State) -> Vec<Self::Task> {
        self.tasks()
            .into_iter()
            .filter(|t| self.applicable(t, s))
            .collect()
    }

    /// Cumulative hit/miss counters of an automaton-internal transition
    /// cache, if the implementation keeps one (`None` means "no cache",
    /// the default). Cumulative counters are shared by every workload
    /// that touches the automaton; per-exploration accounting instead
    /// flows through the scoped sink of [`Automaton::succ_counted`]
    /// into [`ExploreStats::cache`](crate::explore::ExploreStats::cache).
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// [`Automaton::succ_all`] with a scoped cache-accounting sink: an
    /// implementation that keeps a transition cache adds this call's
    /// hit/miss outcome to `stats` *in addition to* its cumulative
    /// counters. The explorer owns one sink per exploration, so
    /// concurrent or interleaved workloads on a shared automaton can no
    /// longer contaminate each other's [`CacheStats`] (snapshot
    /// subtraction of the cumulative counters cannot distinguish them).
    ///
    /// The default ignores the sink and delegates to `succ_all`.
    fn succ_counted(
        &self,
        t: &Self::Task,
        s: &Self::State,
        stats: &mut CacheStats,
    ) -> Vec<(Self::Action, Self::State)> {
        let _ = stats;
        self.succ_all(t, s)
    }

    /// The structural *owner* of a locally controlled action: the one
    /// task whose action set contains `a`, or `None` for input actions
    /// (which belong to no task, Section 2.1.1) — an introspection hook
    /// for static contract auditing, not used on any exploration path.
    ///
    /// The task-structure axiom says the locally controlled actions are
    /// *partitioned* by the tasks, so for a well-formed automaton this
    /// is a function; the auditor (`analysis::audit`) cross-checks it
    /// against the actions each task actually produces and flags any
    /// action claimed by two tasks or owned by an undeclared one.
    ///
    /// The default returns `None` for every action, which the auditor
    /// reads as "no introspection surface" (rule unauditable), never as
    /// "input": implementations that want their task partition audited
    /// must override this alongside [`Automaton::action_vocabulary`].
    fn action_owner(&self, a: &Self::Action) -> Option<Self::Task> {
        let _ = a;
        None
    }

    /// A finite, statically enumerable sample of the action signature —
    /// the second introspection hook for contract auditing. Need not be
    /// exhaustive (value-parameterized labels may be sampled or
    /// omitted), but every listed action must genuinely be in the
    /// signature, and the list should cover at least one action per
    /// task so the partition audit can detect orphaned tasks.
    ///
    /// Empty by default ("no vocabulary declared").
    fn action_vocabulary(&self) -> Vec<Self::Action> {
        Vec::new()
    }

    /// The canonical orbit representative of `s` under the automaton's
    /// declared symmetry group — a pure, idempotent function with
    /// `canonical(s)` reachability-equivalent to `s` (the automaton
    /// must guarantee `succ(π·s) = π·succ(s)` for the group it
    /// declares). The identity by default: automata without declared
    /// symmetry explore the concrete space even under
    /// [`SymmetryMode::Full`](crate::canon::SymmetryMode::Full).
    ///
    /// The explorer applies this to every successor (never to roots)
    /// when [`ExploreOptions::symmetry`](crate::explore::ExploreOptions::symmetry)
    /// is `Full`, so equal-orbit states intern to one
    /// [`StateId`](crate::store::StateId).
    fn canonical(&self, s: Self::State) -> Self::State {
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_predicates() {
        assert!(ActionKind::Output.is_locally_controlled());
        assert!(ActionKind::Internal.is_locally_controlled());
        assert!(!ActionKind::Input.is_locally_controlled());
        assert!(ActionKind::Input.is_external());
        assert!(ActionKind::Output.is_external());
        assert!(!ActionKind::Internal.is_external());
    }
}
