//! Symmetry reduction primitives: permutations of a finite index set
//! and the exploration-wide symmetry-mode knob.
//!
//! The explorer itself is agnostic about *what* a canonical form is —
//! [`crate::automaton::Automaton::canonical`] is an automaton-supplied
//! pure function mapping a state to its orbit representative. This
//! module supplies the two shared ingredients every canonicalizing
//! automaton needs: a [`SymmetryMode`] that can be threaded through
//! options/CLIs/environments uniformly, and a small, dependency-free
//! [`Perm`] type (a permutation of `0..n`) with the algebra the
//! quotient constructions use — composition, inversion, bitmask
//! permutation, and deterministic enumeration of the full symmetric
//! group.
//!
//! Determinism matters here: quotient graphs must stay bit-identical
//! across runs and thread counts, so [`Perm::all`] enumerates
//! permutations in lexicographic order of their one-line notation, and
//! nothing in this module depends on hashing or allocation order.

use std::env;

/// Environment variable read by [`SymmetryMode::from_env`].
pub const SYMMETRY_ENV: &str = "SYMMETRY";

/// Whether exploration quotients the state space by the automaton's
/// declared symmetry group.
///
/// `Full` asks every layer (explorer, packed system, valence map,
/// witness pipeline) to canonicalize successor states to orbit
/// representatives under process-id permutation (`S_n`); `Values`
/// additionally composes the consensus-value relabeling group
/// (`S_n × S_vals`, the 0 ↔ 1 swap); `Off` (the default) explores the
/// concrete space. Automata that declare no (or less) symmetry treat
/// the stronger modes as the strongest one they support, so every mode
/// is always safe to enable.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum SymmetryMode {
    /// Canonicalize every interned successor to its orbit
    /// representative under process-id permutation.
    Full,
    /// Canonicalize under the composed `S_n × S_vals` group: process-id
    /// permutation plus the 0 ↔ 1 consensus-value relabeling (gated on
    /// the substrate's `value_symmetric` contracts; degrades to
    /// [`SymmetryMode::Full`] behavior when they are absent).
    Values,
    /// Explore the concrete (non-quotiented) state space.
    #[default]
    Off,
}

impl SymmetryMode {
    /// Reads the mode from the `SYMMETRY` environment variable:
    /// `full` or `values` (case-insensitive) enable the corresponding
    /// quotient, anything else — including unset — is
    /// [`SymmetryMode::Off`].
    pub fn from_env() -> SymmetryMode {
        match env::var(SYMMETRY_ENV) {
            Ok(v) if v.eq_ignore_ascii_case("full") => SymmetryMode::Full,
            Ok(v) if v.eq_ignore_ascii_case("values") => SymmetryMode::Values,
            _ => SymmetryMode::Off,
        }
    }

    /// Whether the quotient is enabled at all (process-id permutation,
    /// with or without the composed value relabeling).
    pub fn reduces(self) -> bool {
        !matches!(self, SymmetryMode::Off)
    }

    /// Whether the quotient is enabled. Kept as the historical name of
    /// [`SymmetryMode::reduces`]; `Values` implies `Full`'s process-id
    /// quotient, so both reducing modes answer `true`.
    pub fn is_full(self) -> bool {
        self.reduces()
    }

    /// Whether the composed value relabeling is requested on top of the
    /// process-id quotient.
    pub fn wants_values(self) -> bool {
        matches!(self, SymmetryMode::Values)
    }

    /// This mode with the value group stripped: `Values` steps down to
    /// `Full`, everything else is unchanged.
    ///
    /// Quotienting is only sound for observations invariant under the
    /// group quotiented by. Process-id permutation is invisible to
    /// every observation the pipeline makes, but the 0 ↔ 1 relabeling
    /// is *not* value-blind — validity against a fixed input assignment
    /// distinguishes a state from its mirror — so passes that check
    /// value-naming predicates over raw interned states (the safety
    /// scan) drop to this mode.
    #[must_use]
    pub fn value_blind(self) -> SymmetryMode {
        match self {
            SymmetryMode::Values => SymmetryMode::Full,
            other => other,
        }
    }
}

/// A compact descriptor of the symmetry group a quotient graph was
/// built under: process-id permutations of `0..n`, optionally composed
/// with the consensus-value relabeling group. Replaces the materialized
/// `Vec<Perm>` the brute-force canonicalizer used to carry — the
/// signature-sort canonical form (DESIGN §2.1.6) never enumerates the
/// group, so the descriptor is all downstream layers need.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SymGroup {
    /// The permuted index-set size `n` (the process count).
    pub n: usize,
    /// Whether the 0 ↔ 1 value relabeling is composed in
    /// (`S_n × S_vals` instead of `S_n`).
    pub values: bool,
}

/// A permutation `π` of `0..n`, stored in one-line notation:
/// `map[i] = π(i)`.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Perm {
    map: Box<[u32]>,
}

impl Perm {
    /// The identity permutation of `0..n`.
    pub fn identity(n: usize) -> Perm {
        Perm {
            map: (0..n as u32).collect(),
        }
    }

    /// Builds a permutation from its one-line notation.
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..map.len()`.
    pub fn from_map<I: IntoIterator<Item = usize>>(map: I) -> Perm {
        let map: Box<[u32]> = map.into_iter().map(|i| i as u32).collect();
        let n = map.len();
        let mut seen = vec![false; n];
        for &j in map.iter() {
            assert!(
                (j as usize) < n && !seen[j as usize],
                "not a permutation of 0..{n}: {map:?}"
            );
            seen[j as usize] = true;
        }
        Perm { map }
    }

    /// The size `n` of the permuted index set.
    pub fn n(&self) -> usize {
        self.map.len()
    }

    /// `π(i)`.
    ///
    /// # Panics
    ///
    /// Panics if `i ≥ n`.
    pub fn apply(&self, i: usize) -> usize {
        self.map[i] as usize
    }

    /// Whether this is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.map.iter().enumerate().all(|(i, &j)| i as u32 == j)
    }

    /// The inverse permutation `π⁻¹`.
    pub fn inverse(&self) -> Perm {
        let mut inv = vec![0u32; self.map.len()];
        for (i, &j) in self.map.iter().enumerate() {
            inv[j as usize] = i as u32;
        }
        Perm { map: inv.into() }
    }

    /// The composition `self ∘ other`: first `other`, then `self`
    /// (`(self ∘ other)(i) = self(other(i))`).
    ///
    /// # Panics
    ///
    /// Panics if the two permutations have different sizes.
    pub fn compose(&self, other: &Perm) -> Perm {
        assert_eq!(
            self.n(),
            other.n(),
            "composing permutations of different sizes"
        );
        Perm {
            map: other.map.iter().map(|&j| self.map[j as usize]).collect(),
        }
    }

    /// Permutes a bitmask over `0..n`: bit `π(i)` of the result equals
    /// bit `i` of `mask`.
    ///
    /// Bits at positions `≥ n` must be zero (they would be dropped).
    pub fn permute_mask(&self, mask: u32) -> u32 {
        debug_assert_eq!(mask >> self.map.len().min(31), 0, "mask bits beyond n");
        let mut out = 0u32;
        let mut rest = mask;
        while rest != 0 {
            let i = rest.trailing_zeros() as usize;
            rest &= rest - 1;
            out |= 1 << self.map[i];
        }
        out
    }

    /// The largest `n` for which [`Perm::all`] will enumerate the
    /// symmetric group: `8! = 40 320` permutations. Beyond that the
    /// factorial blow-up would silently eat memory and wall-clock long
    /// before producing anything useful, so [`Perm::all`] refuses with
    /// a hard error instead.
    ///
    /// The cap bounds *only* this explicit-enumeration API (used by
    /// tests, audits and orbit-census diagnostics). Canonicalization no
    /// longer enumerates the group at all — the signature-sort
    /// canonical form in `system::packed` is `O(n log n)` per state
    /// (DESIGN §2.1.6) — so quotient exploration works at any `n` the
    /// failed-set bitmask supports, far beyond this constant.
    pub const MAX_ENUMERATED: usize = 8;

    /// All `n!` permutations of `0..n`, in lexicographic order of
    /// their one-line notation. The identity comes first.
    ///
    /// Deterministic by construction — quotient graphs built from this
    /// enumeration are bit-identical across runs and thread counts.
    ///
    /// # Panics
    ///
    /// Panics if `n > Perm::MAX_ENUMERATED` (= 8): `9!` is already
    /// 362 880 permutations, so enumeration past 8 is a factorial OOM
    /// in waiting, not a slow path. This bounds only explicit group
    /// enumeration; the canonicalization hot path sorts slot signatures
    /// instead of probing permutations and is unaffected by the cap.
    pub fn all(n: usize) -> Vec<Perm> {
        assert!(
            n <= Self::MAX_ENUMERATED,
            "Perm::all({n}) would materialize {n}! permutations; explicit \
             symmetric-group enumeration is capped at n = {} (8! = 40320). \
             Canonicalization does not enumerate the group (signature-sort \
             canonical form, DESIGN §2.1.6) — only enumeration-based \
             diagnostics need this API, and they must stay below the cap.",
            Self::MAX_ENUMERATED
        );
        let mut out = Vec::new();
        let mut current: Vec<u32> = (0..n as u32).collect();
        loop {
            out.push(Perm {
                map: current.clone().into(),
            });
            // Next lexicographic permutation (classic pivot/swap/reverse).
            let Some(pivot) = current.windows(2).rposition(|w| w[0] < w[1]) else {
                break;
            };
            let succ = current
                .iter()
                .rposition(|&x| x > current[pivot])
                .expect("a successor exists right of a pivot");
            current.swap(pivot, succ);
            current[pivot + 1..].reverse();
            if n == 0 {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_identity() {
        let id = Perm::identity(4);
        assert!(id.is_identity());
        for i in 0..4 {
            assert_eq!(id.apply(i), i);
        }
    }

    #[test]
    fn all_enumerates_the_symmetric_group() {
        assert_eq!(Perm::all(0).len(), 1);
        assert_eq!(Perm::all(1).len(), 1);
        assert_eq!(Perm::all(3).len(), 6);
        assert_eq!(Perm::all(4).len(), 24);
        // Identity first, lexicographic thereafter, all distinct.
        let perms = Perm::all(3);
        assert!(perms[0].is_identity());
        let set: std::collections::BTreeSet<Vec<usize>> = perms
            .iter()
            .map(|p| (0..3).map(|i| p.apply(i)).collect())
            .collect();
        assert_eq!(set.len(), 6);
    }

    #[test]
    fn inverse_and_compose_round_trip() {
        for p in Perm::all(4) {
            let inv = p.inverse();
            assert!(p.compose(&inv).is_identity());
            assert!(inv.compose(&p).is_identity());
        }
        // compose(a, b) applies b first.
        let a = Perm::from_map([1, 2, 0]);
        let b = Perm::from_map([0, 2, 1]);
        let ab = a.compose(&b);
        for i in 0..3 {
            assert_eq!(ab.apply(i), a.apply(b.apply(i)));
        }
    }

    #[test]
    fn mask_permutation_moves_bits() {
        let p = Perm::from_map([2, 0, 1]);
        // bit 0 -> bit 2, bit 1 -> bit 0.
        assert_eq!(p.permute_mask(0b011), 0b101);
        assert_eq!(p.permute_mask(0), 0);
        // Permuting a mask by π then π⁻¹ is the identity.
        for mask in 0..8u32 {
            assert_eq!(p.inverse().permute_mask(p.permute_mask(mask)), mask);
        }
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn from_map_rejects_non_permutations() {
        let _ = Perm::from_map([0, 0, 2]);
    }

    #[test]
    fn all_enumerates_up_to_the_cap() {
        // 8 is the documented ceiling: 8! = 40320 permutations is the
        // largest group the enumerator will materialize.
        let perms = Perm::all(Perm::MAX_ENUMERATED);
        assert_eq!(perms.len(), 40_320);
        assert!(perms[0].is_identity());
    }

    #[test]
    #[should_panic(expected = "capped at n = 8")]
    fn all_refuses_factorial_blowup() {
        // Regression: this used to silently attempt 362880 allocations.
        let _ = Perm::all(9);
    }

    #[test]
    fn from_env_parses_full() {
        // Only exercises the parsing contract indirectly via default.
        assert_eq!(SymmetryMode::default(), SymmetryMode::Off);
        assert!(SymmetryMode::Full.is_full());
        assert!(!SymmetryMode::Off.is_full());
    }

    #[test]
    fn values_mode_reduces_and_wants_values() {
        assert!(SymmetryMode::Values.reduces());
        assert!(SymmetryMode::Values.is_full());
        assert!(SymmetryMode::Values.wants_values());
        assert!(SymmetryMode::Full.reduces());
        assert!(!SymmetryMode::Full.wants_values());
        assert!(!SymmetryMode::Off.reduces());
        assert!(!SymmetryMode::Off.wants_values());
    }
}
