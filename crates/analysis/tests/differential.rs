//! Differential tests for the analysis layer on the interned
//! exploration core: the id-indexed [`ValenceMap`] must classify the
//! doomed-atomic system (Theorem 2's candidate: consensus processes
//! over an `f`-resilient atomic object) exactly as a naive state-keyed
//! valence computation does, and the downstream proof machinery
//! (Lemma 4 bivalent init, Lemma 5 hook, Theorem 2 witness) must keep
//! producing the same proof objects as the seed.
//!
//! The naive reference reimplements the seed algorithm verbatim:
//! `HashMap<SystemState, …>` keyed successor lists and a backward
//! fixpoint over cloned states.

use analysis::graph::census;
use analysis::hook::{find_hook, HookOutcome};
use analysis::init::{find_bivalent_init, InitOutcome};
use analysis::similarity::Refutation;
use analysis::valence::{classify, Valence, ValenceMap};
use analysis::witness::{find_witness, Bounds, ImpossibilityWitness};
use ioa::automaton::Automaton;
use services::atomic::CanonicalAtomicObject;
use spec::seq::BinaryConsensus;
use spec::{ProcId, SvcId, Val};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::Arc;
use system::build::{CompleteSystem, SystemState};
use system::consensus::InputAssignment;
use system::process::direct::DirectConsensus;
use system::sched::initialize;

/// The doomed-atomic candidate system: `n` direct-consensus processes
/// sharing one canonical `f`-resilient atomic consensus object
/// (`protocols::doomed::doomed_atomic`, replicated here because
/// `analysis` cannot depend on `protocols`).
fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
}

type State = SystemState<<DirectConsensus as system::process::ProcessAutomaton>::State>;

/// The seed's valence computation: state-keyed forward exploration
/// (skipping stuttering steps), then a backward reachable-decisions
/// fixpoint over cloned-state hash maps.
fn naive_valences(sys: &CompleteSystem<DirectConsensus>, root: &State) -> HashMap<State, Valence> {
    let tasks = sys.tasks();
    let mut succs: HashMap<State, Vec<State>> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::from([root.clone()]);
    succs.insert(root.clone(), Vec::new());
    while let Some(s) = queue.pop_front() {
        let mut out = Vec::new();
        for t in &tasks {
            for (_, s2) in sys.succ_all(t, &s) {
                if s2 != s {
                    if !succs.contains_key(&s2) {
                        succs.insert(s2.clone(), Vec::new());
                        queue.push_back(s2.clone());
                    }
                    out.push(s2);
                }
            }
        }
        succs.insert(s, out);
    }

    let mut decided: HashMap<State, BTreeSet<Val>> = succs
        .keys()
        .map(|s| (s.clone(), sys.decided_values(s)))
        .collect();
    let mut preds: HashMap<State, Vec<State>> = HashMap::new();
    for (s, outs) in &succs {
        for s2 in outs {
            preds.entry(s2.clone()).or_default().push(s.clone());
        }
    }
    let mut work: VecDeque<State> = succs.keys().cloned().collect();
    while let Some(s) = work.pop_front() {
        let vals = decided[&s].clone();
        if vals.is_empty() {
            continue;
        }
        for p in preds.get(&s).cloned().unwrap_or_default() {
            let entry = decided.get_mut(&p).expect("preds are explored");
            let before = entry.len();
            entry.extend(vals.iter().cloned());
            if entry.len() > before {
                work.push_back(p);
            }
        }
    }
    decided
        .into_iter()
        .map(|(s, d)| (s, classify(&d)))
        .collect()
}

#[test]
fn valence_map_matches_the_naive_reference_on_doomed_atomic() {
    for (n, f, ones) in [(2, 0, 1), (2, 1, 1), (2, 0, 0)] {
        let sys = direct(n, f);
        let root = initialize(&sys, &InputAssignment::monotone(n, ones));
        let naive = naive_valences(&sys, &root);
        let map = ValenceMap::build(&sys, root, 1_000_000).unwrap();

        assert_eq!(map.state_count(), naive.len(), "n={n} f={f} ones={ones}");
        for (s, v) in &naive {
            assert!(map.contains(s));
            assert_eq!(map.valence(s), *v, "n={n} f={f} ones={ones} state {s:?}");
        }
        // The census is a flat scan of the same table, so the per-class
        // totals must match a recount of the naive classification.
        let c = census(&map);
        let bivalent = naive.values().filter(|v| **v == Valence::Bivalent).count();
        let zero = naive.values().filter(|v| **v == Valence::Zero).count();
        let one = naive.values().filter(|v| **v == Valence::One).count();
        assert_eq!(
            (c.bivalent, c.zero, c.one, c.total()),
            (bivalent, zero, one, naive.len())
        );
    }
}

#[test]
fn lemma4_bivalent_init_is_unchanged() {
    // Lemma 4 on the doomed 2-process system: the monotone sweep finds
    // a bivalent initialization, and it is the mixed-input one.
    let sys = direct(2, 0);
    let InitOutcome::Bivalent { assignment, map } = find_bivalent_init(&sys, 1_000_000).unwrap()
    else {
        panic!("the doomed system has a bivalent initialization")
    };
    assert_eq!(assignment, InputAssignment::monotone(2, 1));
    assert_eq!(map.valence(map.root()), Valence::Bivalent);
    // The naive reference agrees on the root's bivalence.
    let root = initialize(&sys, &assignment);
    assert_eq!(naive_valences(&sys, &root)[&root], Valence::Bivalent);
}

#[test]
fn lemma5_hook_endpoints_agree_with_the_naive_valences() {
    let sys = direct(2, 0);
    let InitOutcome::Bivalent { map, assignment } = find_bivalent_init(&sys, 1_000_000).unwrap()
    else {
        panic!()
    };
    let HookOutcome::Hook(hook) = find_hook(&sys, &map, 10_000) else {
        panic!("the Fig. 3 construction terminates on the doomed system")
    };
    // The interned map's classification of the hook endpoints…
    assert_eq!(map.valence(&hook.s0), hook.v);
    assert_eq!(map.valence(&hook.s1), hook.v.opposite());
    // …matches the naive reference state-for-state.
    let root = initialize(&sys, &assignment);
    let naive = naive_valences(&sys, &root);
    assert_eq!(naive[&hook.s0], hook.v);
    assert_eq!(naive[&hook.s1], hook.v.opposite());
    assert_eq!(naive[&hook.alpha], Valence::Bivalent);
}

#[test]
fn theorem2_witness_kind_is_unchanged() {
    // The end-to-end pipeline still refutes the doomed system the same
    // way: a hook whose similar pair yields a termination violation.
    let witness = find_witness(&direct(2, 0), 0, Bounds::default()).unwrap();
    let ImpossibilityWitness::HookRefutation { refutation, .. } = witness else {
        panic!("expected a hook refutation, got {witness:?}")
    };
    assert!(
        matches!(refutation, Refutation::TerminationViolation { .. }),
        "expected a termination violation, got {refutation:?}"
    );
}

/// Asserts two valence maps were built over bit-identical graphs:
/// same id assignment, states, edge lists, BFS-tree parents, roots,
/// stats — and therefore the same valence and decided tables.
fn assert_maps_bit_identical<P: system::process::ProcessAutomaton>(
    a: &ValenceMap<P>,
    b: &ValenceMap<P>,
    ctx: &str,
) {
    assert_eq!(a.stats(), b.stats(), "stats differ: {ctx}");
    assert_eq!(a.root_id(), b.root_id(), "roots differ: {ctx}");
    assert_eq!(
        a.state_count(),
        b.state_count(),
        "state count differs: {ctx}"
    );
    for id in a.ids() {
        assert_eq!(a.resolve(id), b.resolve(id), "state {id:?}: {ctx}");
        assert_eq!(a.successors(id), b.successors(id), "edges {id:?}: {ctx}");
        assert_eq!(
            a.discovered_by(id),
            b.discovered_by(id),
            "parent {id:?}: {ctx}"
        );
        assert_eq!(a.valence_id(id), b.valence_id(id), "valence {id:?}: {ctx}");
        assert_eq!(
            a.reachable_decisions_id(id),
            b.reachable_decisions_id(id),
            "decided {id:?}: {ctx}"
        );
    }
}

/// The component-interned explorer ([`system::packed::PackedSystem`])
/// must reproduce the deep-clone explorer's graph bit for bit — same
/// `StateId` assignment, states (after decoding), edge lists, BFS-tree
/// parents and stats — on all three paper substrates, at every thread
/// count, both exhaustively and under tight truncation budgets.
#[test]
fn packed_exploration_matches_deep_exploration_bit_for_bit() {
    use ioa::explore::{ExploreOptions, ExploredGraph};
    use system::packed::PackedSystem;

    fn check_at<P: system::process::ProcessAutomaton>(
        name: &str,
        sys: &CompleteSystem<P>,
        root: &SystemState<P::State>,
        cap: usize,
    ) {
        for threads in [1, 2, 4] {
            let opts = ExploreOptions {
                max_states: cap,
                skip_self_loops: true,
                threads,
                symmetry: ioa::SymmetryMode::Off,
                // Pinned layered: these differentials include truncated
                // budgets, where only the layer-synchronous merge
                // promises a bit-identical admitted set (the
                // work-stealing frontier's truncated subset is
                // scheduling-dependent; tests/ws_differential.rs covers
                // it with the isomorphism oracle instead).
                frontier: ioa::FrontierMode::Layered,
            };
            let deep = ExploredGraph::explore_with(sys, vec![root.clone()], opts);
            let packed = PackedSystem::with_symmetry(sys, ioa::SymmetryMode::Off);
            let packed_root = packed.encode(root);
            let pk = ExploredGraph::explore_with(&packed, vec![packed_root], opts);
            let ctx = format!("{name} cap={cap} threads={threads}");
            assert_eq!(deep.stats(), pk.stats(), "stats differ: {ctx}");
            assert_eq!(deep.roots(), pk.roots(), "roots differ: {ctx}");
            for id in deep.ids() {
                assert_eq!(
                    deep.resolve(id),
                    &packed.decode(pk.resolve(id)),
                    "state {id:?}: {ctx}"
                );
                assert_eq!(
                    deep.successors(id),
                    pk.successors(id),
                    "edges {id:?}: {ctx}"
                );
                assert_eq!(
                    deep.discovered_by(id),
                    pk.discovered_by(id),
                    "parent {id:?}: {ctx}"
                );
            }
        }
    }

    fn check<P: system::process::ProcessAutomaton>(name: &str, sys: &CompleteSystem<P>) {
        let n = sys.process_count();
        let root = initialize(sys, &InputAssignment::monotone(n, 1));
        let total = ValenceMap::build(sys, root.clone(), 1_000_000)
            .unwrap()
            .state_count();
        check_at(name, sys, &root, 1_000_000);
        // Budgets strictly inside the reachable space: truncation must
        // cut at the same state with the same dropped-edge census in
        // both representations.
        for cap in [1 + total / 7, 1 + total / 3] {
            check_at(name, sys, &root, cap);
        }
    }

    check("doomed-atomic(2,0)", &direct(2, 0));
    check("doomed-atomic(3,1)", &direct(3, 1));
    check("tob(2,0)", &protocols::doomed::doomed_oblivious(2, 0));
    check("fd(2)", &protocols::fd_boost::build(2));
}

/// Parallel exploration at threads ∈ {2, 4} over the three paper
/// substrates — doomed-atomic (Theorem 2), totally-ordered broadcast
/// (Theorem 9's candidate) and the failure-detector system (Theorem
/// 10's candidate) — must reproduce the sequential valence map bit for
/// bit.
#[test]
fn parallel_valence_maps_are_bit_identical_on_paper_substrates() {
    fn check<P: system::process::ProcessAutomaton>(name: &str, sys: &CompleteSystem<P>) {
        let n = sys.process_count();
        for ones in 0..=n {
            let root = initialize(sys, &InputAssignment::monotone(n, ones));
            let seq = ValenceMap::build_with(sys, root.clone(), 1_000_000, 1).unwrap();
            for threads in [2, 4] {
                let par = ValenceMap::build_with(sys, root.clone(), 1_000_000, threads).unwrap();
                let ctx = format!("{name} ones={ones} threads={threads}");
                assert_maps_bit_identical(&seq, &par, &ctx);
            }
        }
    }
    check("doomed-atomic(2,0)", &direct(2, 0));
    check("doomed-atomic(3,1)", &direct(3, 1));
    check("tob(2,0)", &protocols::doomed::doomed_oblivious(2, 0));
    check("fd(2)", &protocols::fd_boost::build(2));
}

/// Tight truncation budgets: mid-layer budget exhaustion must truncate
/// at exactly the same state, with the same dropped-edge count, for
/// every thread count.
#[test]
fn parallel_truncation_is_bit_identical_on_paper_substrates() {
    use ioa::explore::{ExploreOptions, ExploredGraph};
    fn check<P: system::process::ProcessAutomaton>(name: &str, sys: &CompleteSystem<P>) {
        let n = sys.process_count();
        let root = initialize(sys, &InputAssignment::monotone(n, 1));
        let total = ValenceMap::build(sys, root.clone(), 1_000_000)
            .unwrap()
            .state_count();
        // Budgets strictly inside the reachable space, so every one
        // truncates mid-exploration.
        for cap in [1 + total / 7, 1 + total / 3, (2 * total) / 3 + 1] {
            let opts = ExploreOptions {
                max_states: cap,
                skip_self_loops: true,
                threads: 1,
                symmetry: ioa::SymmetryMode::Off,
                // Pinned layered: these differentials include truncated
                // budgets, where only the layer-synchronous merge
                // promises a bit-identical admitted set (the
                // work-stealing frontier's truncated subset is
                // scheduling-dependent; tests/ws_differential.rs covers
                // it with the isomorphism oracle instead).
                frontier: ioa::FrontierMode::Layered,
            };
            let seq = ExploredGraph::explore_with(sys, vec![root.clone()], opts);
            assert!(seq.stats().truncated(), "{name} cap={cap} not tight");
            for threads in [2, 4] {
                let par = ExploredGraph::explore_with(
                    sys,
                    vec![root.clone()],
                    opts.with_threads(threads),
                );
                let ctx = format!("{name} cap={cap} threads={threads}");
                assert_eq!(seq.stats(), par.stats(), "stats differ: {ctx}");
                assert_eq!(seq.roots(), par.roots(), "roots differ: {ctx}");
                for id in seq.ids() {
                    assert_eq!(seq.resolve(id), par.resolve(id), "state {id:?}: {ctx}");
                    assert_eq!(
                        seq.successors(id),
                        par.successors(id),
                        "edges {id:?}: {ctx}"
                    );
                    assert_eq!(
                        seq.discovered_by(id),
                        par.discovered_by(id),
                        "parent {id:?}: {ctx}"
                    );
                }
            }
        }
    }
    check("doomed-atomic(2,0)", &direct(2, 0));
    check("tob(2,0)", &protocols::doomed::doomed_oblivious(2, 0));
    check("fd(2)", &protocols::fd_boost::build(2));
}

/// The transition-effect cache (DESIGN §2.1.3) must be invisible in
/// the produced graph: exploring with `PackedSystem::new` (cached) and
/// `PackedSystem::new_uncached` (the PR 3 reference path) must yield
/// the same ids, states, edge rows, BFS-tree parents and stats on all
/// three paper substrates, at every thread count, both exhaustively
/// and under tight truncation budgets. Only the `cache` census field
/// may differ — present on the cached run, absent on the reference.
#[test]
fn cached_exploration_matches_uncached_bit_for_bit() {
    use ioa::explore::{ExploreOptions, ExploredGraph};
    use system::packed::PackedSystem;

    fn check_at<P: system::process::ProcessAutomaton>(
        name: &str,
        sys: &CompleteSystem<P>,
        root: &SystemState<P::State>,
        cap: usize,
    ) {
        for threads in [1, 2, 4] {
            let opts = ExploreOptions {
                max_states: cap,
                skip_self_loops: true,
                threads,
                symmetry: ioa::SymmetryMode::Off,
                // Pinned layered: these differentials include truncated
                // budgets, where only the layer-synchronous merge
                // promises a bit-identical admitted set (the
                // work-stealing frontier's truncated subset is
                // scheduling-dependent; tests/ws_differential.rs covers
                // it with the isomorphism oracle instead).
                frontier: ioa::FrontierMode::Layered,
            };
            let reference = PackedSystem::new_uncached(sys);
            let ref_root = reference.encode(root);
            let base = ExploredGraph::explore_with(&reference, vec![ref_root], opts);
            let cached = PackedSystem::with_symmetry(sys, ioa::SymmetryMode::Off);
            let cached_root = cached.encode(root);
            let ck = ExploredGraph::explore_with(&cached, vec![cached_root], opts);
            let ctx = format!("{name} cap={cap} threads={threads}");
            assert_eq!(base.stats(), ck.stats(), "stats differ: {ctx}");
            assert_eq!(base.stats().cache, None, "uncached run reported stats");
            let cs = ck
                .stats()
                .cache
                .unwrap_or_else(|| panic!("cached run reported no cache census: {ctx}"));
            assert!(cs.lookups() > 0, "cache never consulted: {ctx}");
            assert_eq!(base.roots(), ck.roots(), "roots differ: {ctx}");
            for id in base.ids() {
                assert_eq!(
                    &cached.decode(ck.resolve(id)),
                    &reference.decode(base.resolve(id)),
                    "state {id:?}: {ctx}"
                );
                assert_eq!(
                    base.successors(id),
                    ck.successors(id),
                    "edges {id:?}: {ctx}"
                );
                assert_eq!(
                    base.discovered_by(id),
                    ck.discovered_by(id),
                    "parent {id:?}: {ctx}"
                );
            }
        }
    }

    fn check<P: system::process::ProcessAutomaton>(name: &str, sys: &CompleteSystem<P>) {
        let n = sys.process_count();
        let root = initialize(sys, &InputAssignment::monotone(n, 1));
        let total = ValenceMap::build(sys, root.clone(), 1_000_000)
            .unwrap()
            .state_count();
        check_at(name, sys, &root, 1_000_000);
        for cap in [1 + total / 7, 1 + total / 3] {
            check_at(name, sys, &root, cap);
        }
    }

    check("doomed-atomic(2,0)", &direct(2, 0));
    check("doomed-atomic(3,1)", &direct(3, 1));
    check("tob(2,0)", &protocols::doomed::doomed_oblivious(2, 0));
    check("fd(2)", &protocols::fd_boost::build(2));
}

/// The CSR edge arena must hold exactly the adjacency the transition
/// function defines: row `id` = the non-self-loop `(task, action,
/// successor)` triples of `succ_all`, in task order — and the reverse
/// CSR must be its exact transpose, predecessors listed in
/// `(source id, edge position)` order.
#[test]
fn csr_rows_match_direct_succ_all_and_reverse_is_the_transpose() {
    for (name, sys) in [
        ("doomed-atomic(2,0)", direct(2, 0)),
        ("doomed-atomic(3,1)", direct(3, 1)),
    ] {
        let n = sys.process_count();
        let root = initialize(&sys, &InputAssignment::monotone(n, 1));
        let map = ValenceMap::build(&sys, root, 1_000_000).unwrap();
        let tasks = sys.tasks();

        let mut naive_preds: Vec<Vec<ioa::StateId>> = vec![Vec::new(); map.state_count()];
        for id in map.ids() {
            // Forward row: recompute from the transition function.
            let mut expect = Vec::new();
            let s = map.resolve(id).clone();
            for t in &tasks {
                for (a, s2) in sys.succ_all(t, &s) {
                    if s2 != s {
                        let id2 = map.id_of(&s2).expect("successors are explored");
                        expect.push((t.clone(), a, id2));
                    }
                }
            }
            assert_eq!(map.successors(id), expect.as_slice(), "{name} row {id:?}");
            for (_, _, id2) in map.successors(id) {
                naive_preds[id2.index()].push(id);
            }
        }
        // Reverse rows: scanning sources in id order and pushing per
        // edge reproduces (source, position) order exactly.
        for id in map.ids() {
            assert_eq!(
                map.predecessors(id),
                naive_preds[id.index()].as_slice(),
                "{name} reverse row {id:?}"
            );
        }
    }
}

/// The Fig. 3 hook construction must be indifferent to cache state:
/// a map built on a cold shared [`PackedSystem`], one built on the
/// same system warmed by a previous build, and one built uncached all
/// yield the same hook, corner for corner.
#[test]
fn hook_is_identical_on_cold_warm_and_uncached_maps() {
    use system::packed::PackedSystem;
    let sys = direct(2, 0);
    let root = initialize(&sys, &InputAssignment::monotone(2, 1));

    let shared = PackedSystem::new(&sys);
    let cold = ValenceMap::build_in(&sys, &shared, root.clone(), 1_000_000, 1).unwrap();
    let warm = ValenceMap::build_in(&sys, &shared, root.clone(), 1_000_000, 1).unwrap();
    assert_maps_bit_identical(&cold, &warm, "cold vs warm");
    let warm_cache = warm.stats().cache.expect("cached run");
    assert!(
        warm_cache.hit_rate() >= 0.9,
        "warm build hit rate {:.4} below floor",
        warm_cache.hit_rate()
    );

    let reference = PackedSystem::new_uncached(&sys);
    let uncached = ValenceMap::build_in(&sys, &reference, root, 1_000_000, 1).unwrap();
    assert_maps_bit_identical(&warm, &uncached, "warm vs uncached");

    let h_warm = find_hook(&sys, &warm, 10_000);
    let h_uncached = find_hook(&sys, &uncached, 10_000);
    assert_eq!(format!("{h_warm:?}"), format!("{h_uncached:?}"));
    assert!(matches!(h_warm, HookOutcome::Hook(_)));
}

/// The Theorem 2 proof object — bivalent initialization, hook, Lemma 8
/// similarity, Lemma 6/7 refutation run — must be identical whether
/// the valence maps underneath were explored sequentially or in
/// parallel. Debug formatting covers every field of every stage.
#[test]
fn theorem2_proof_objects_are_identical_under_parallel_explore() {
    for (name, sys) in [
        ("doomed-atomic(2,0)", direct(2, 0)),
        ("doomed-atomic(3,1)", direct(3, 1)),
    ] {
        let seq = find_witness(&sys, 0, Bounds::default().with_threads(1)).unwrap();
        for threads in [2, 4] {
            let par = find_witness(&sys, 0, Bounds::default().with_threads(threads)).unwrap();
            assert_eq!(
                format!("{seq:?}"),
                format!("{par:?}"),
                "{name} threads={threads}"
            );
        }
    }
}
