//! Randomized-but-deterministic tests for the analysis machinery:
//! similarity is a tolerance relation, valence maps are
//! schedule-independent, and the witness pipeline is deterministic.
//!
//! Formerly proptest-based; rewritten onto the in-tree
//! [`ioa::rng::SplitMix64`] generator so the suite runs hermetically
//! (no registry dependency) and every case is replayable from its seed.

use analysis::similarity::{find_similarities, j_similar, k_similar};
use analysis::valence::{Valence, ValenceMap};
use ioa::rng::{RandomSource, SplitMix64};
use services::atomic::CanonicalAtomicObject;
use spec::seq::BinaryConsensus;
use spec::{ProcId, SvcId, Val};
use std::sync::Arc;
use system::build::CompleteSystem;
use system::consensus::InputAssignment;
use system::process::direct::DirectConsensus;
use system::sched::{initialize, run_random};

fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
    let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
    let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
    CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
}

fn random_bits(g: &mut SplitMix64, n: usize) -> InputAssignment {
    InputAssignment::of((0..n).map(|i| (ProcId(i), Val::Int(i64::from(g.gen_bool())))))
}

#[test]
fn similarity_is_reflexive_and_symmetric() {
    let mut g = SplitMix64::seed_from_u64(0xa9a1_0001);
    for _ in 0..32 {
        let seed_a = g.next_u64();
        let seed_b = g.next_u64();
        let sys = direct(3, 1);
        let a = random_bits(&mut g, 3);
        let s0 = {
            let run = run_random(&sys, initialize(&sys, &a), seed_a, &[], 40, |_| false);
            run.exec.last_state().clone()
        };
        let s1 = {
            let run = run_random(&sys, initialize(&sys, &a), seed_b, &[], 40, |_| false);
            run.exec.last_state().clone()
        };
        // Reflexivity: every similarity kind holds between s and s.
        assert_eq!(find_similarities(&sys, &s0, &s0).len(), 3 + 1);
        // Symmetry on an arbitrary pair.
        for i in 0..3 {
            assert_eq!(
                j_similar(&sys, &s0, &s1, ProcId(i)),
                j_similar(&sys, &s1, &s0, ProcId(i))
            );
        }
        assert_eq!(
            k_similar(&sys, &s0, &s1, SvcId(0)),
            k_similar(&sys, &s1, &s0, SvcId(0))
        );
    }
}

#[test]
fn valence_is_monotone_along_any_schedule() {
    // Once univalent, always that same valence; bivalence can only
    // resolve, never flip.
    let sys = direct(2, 0);
    let mut g = SplitMix64::seed_from_u64(0xa9a1_0002);
    for _ in 0..32 {
        let seed = g.next_u64();
        let a = random_bits(&mut g, 2);
        let root = initialize(&sys, &a);
        let map = ValenceMap::build(&sys, root.clone(), 500_000).unwrap();
        let run = run_random(&sys, root, seed, &[], 60, |_| false);
        let mut committed: Option<Valence> = None;
        for st in run.exec.states() {
            let v = map.valence(st);
            match (committed, v) {
                (Some(c), v) => assert_eq!(c, v, "valence flipped after commitment"),
                (None, Valence::Zero) => committed = Some(Valence::Zero),
                (None, Valence::One) => committed = Some(Valence::One),
                (None, _) => {}
            }
        }
    }
}

#[test]
fn reachable_decisions_shrink_along_edges() {
    // decided(s) ⊇ decided(s') for every edge s → s' is false in
    // general (it's the union over successors); the true invariant
    // is decided(s) ⊇ decided(s') for s' a successor. Check it.
    let sys = direct(2, 0);
    let a = InputAssignment::monotone(2, 1);
    let root = initialize(&sys, &a);
    let map = ValenceMap::build(&sys, root.clone(), 500_000).unwrap();
    let mut g = SplitMix64::seed_from_u64(0xa9a1_0003);
    for _ in 0..32 {
        let seed = g.next_u64();
        let run = run_random(&sys, root.clone(), seed, &[], 60, |_| false);
        for w in run.exec.states().windows(2) {
            let before = map.reachable_decisions(w[0]);
            let after = map.reachable_decisions(w[1]);
            assert!(
                after.is_subset(before),
                "a step cannot create new reachable decisions"
            );
        }
    }
}

#[test]
fn lemma3_every_input_first_execution_is_univalent_or_bivalent() {
    // Lemma 3 for the direct candidates: the Undecided class is empty
    // across the entire reachable space of every monotone
    // initialization.
    for (n, f) in [(2usize, 0usize), (3, 1)] {
        let sys = direct(n, f);
        for ones in 0..=n {
            let a = InputAssignment::monotone(n, ones);
            let root = initialize(&sys, &a);
            let map = ValenceMap::build(&sys, root.clone(), 2_000_000).unwrap();
            let census = analysis::graph::census(&map);
            assert_eq!(census.undecided, 0, "n={n}, f={f}, ones={ones}");
        }
    }
}

#[test]
fn witness_headlines_are_deterministic_across_runs() {
    use analysis::witness::{find_witness, Bounds};
    let sys = direct(3, 1);
    let h1 = find_witness(&sys, 1, Bounds::default()).unwrap().headline();
    let h2 = find_witness(&sys, 1, Bounds::default()).unwrap().headline();
    assert_eq!(h1, h2);
}
