//! Differential pinning of the property DSL against the hand-written
//! legacy checks it re-expresses, over the real paper substrates
//! (doomed-atomic, doomed-oblivious, doomed-general) at exploration
//! thread counts 1 and 4.
//!
//! Three layers of agreement:
//!
//! * **verdicts** — every DSL verdict matches a naive reference
//!   computed directly on the explored graph (id-order safety scan,
//!   forward BFS reachability, backward `AF` least fixpoint);
//! * **witnesses** — id-based witness paths are bit-identical to the
//!   legacy discovery chains (`discovered_by` parent walks), which are
//!   the shortest paths the seed reported;
//! * **fusion** — the batch evaluator returns exactly the singleton
//!   evaluations while spending at most one forward and one backward
//!   CSR traversal per graph (the pass-counter gate CI runs).

use analysis::prop::{
    atoms, evaluate, evaluate_batch, parse_props, system_vocab, Prop, SystemGraph, Verdict, Witness,
};
use analysis::valence::{Valence, ValenceMap};
use ioa::store::StateId;
use protocols::doomed::{doomed_atomic, doomed_general, doomed_oblivious};
use std::collections::VecDeque;
use system::build::CompleteSystem;
use system::consensus::{check_safety, InputAssignment};
use system::process::ProcessAutomaton;
use system::sched::initialize;

const BUDGET: usize = 500_000;

/// Forward BFS over the map's id graph: distance from the root to
/// every id, in the same successor order the exploration used.
fn naive_distances<P: ProcessAutomaton>(map: &ValenceMap<P>) -> Vec<Option<usize>> {
    let mut dist: Vec<Option<usize>> = vec![None; map.state_count()];
    let root = map.root_id();
    dist[root.index()] = Some(0);
    let mut queue = VecDeque::from([root]);
    while let Some(u) = queue.pop_front() {
        let d = dist[u.index()].unwrap();
        for (_, _, v) in map.successors(u) {
            if dist[v.index()].is_none() {
                dist[v.index()] = Some(d + 1);
                queue.push_back(*v);
            }
        }
    }
    dist
}

/// Backward `AF` least fixpoint, naively iterated to stability:
/// `af(s) = goal(s) ∨ (s has successors ∧ every successor is af)`.
fn naive_af<P: ProcessAutomaton>(map: &ValenceMap<P>, goal: &[bool]) -> Vec<bool> {
    let mut af = goal.to_vec();
    loop {
        let mut changed = false;
        for id in map.ids() {
            if af[id.index()] {
                continue;
            }
            let succs = map.successors(id);
            if !succs.is_empty() && succs.iter().all(|(_, _, v)| af[v.index()]) {
                af[id.index()] = true;
                changed = true;
            }
        }
        if !changed {
            return af;
        }
    }
}

/// The legacy discovery chain to `id`: the `discovered_by` parent walk
/// the seed's path reconstruction used.
fn legacy_chain<P: ProcessAutomaton>(map: &ValenceMap<P>, id: StateId) -> Vec<StateId> {
    let mut path = vec![id];
    let mut cur = id;
    while let Some((parent, _, _)) = map.discovered_by(cur) {
        cur = *parent;
        path.push(cur);
    }
    path.reverse();
    path
}

/// Every pinned comparison for one substrate at one thread count.
fn pin_system<P: ProcessAutomaton>(sys: &CompleteSystem<P>, ones: usize, threads: usize) {
    let n = sys.process_count();
    let assignment = InputAssignment::monotone(n, ones);
    let root = initialize(sys, &assignment);
    let map = ValenceMap::build_with(sys, root, BUDGET, threads).expect("budget is ample");
    let graph = SystemGraph::new(sys, &map);
    let dist = naive_distances(&map);

    // --- Atom layer: valence atoms agree with the map, state by state.
    let bivalent = atoms::bivalent::<P>();
    let zero = atoms::zero_valent::<P>();
    let one = atoms::one_valent::<P>();
    for id in map.ids() {
        assert_eq!(
            bivalent.holds_at(&graph, id),
            map.valence_id(id) == Valence::Bivalent
        );
        assert_eq!(
            zero.holds_at(&graph, id),
            map.valence_id(id) == Valence::Zero
        );
        assert_eq!(one.holds_at(&graph, id), map.valence_id(id) == Valence::One);
    }

    // --- always(safe): the stage-1 safety scan, verdict and absence of
    // a counterexample pinned against the legacy id-order scan.
    let legacy_violation = map
        .ids()
        .find(|&id| check_safety(sys, map.resolve(id), &assignment).is_some());
    let ev = evaluate(&graph, &Prop::always(atoms::safe(assignment.clone())));
    match legacy_violation {
        None => assert_eq!(ev.verdict, Verdict::Holds),
        Some(bad) => {
            assert_eq!(ev.verdict, Verdict::Fails);
            assert_eq!(ev.witness, Some(Witness::Path(legacy_chain(&map, bad))));
        }
    }

    // --- always(undecided) fails (the system decides somewhere); the
    // counterexample ends at the first decided id in discovery order,
    // reached along the legacy discovery chain.
    let first_decided = map
        .ids()
        .find(|&id| {
            map.valence_id(id) != Valence::Bivalent && map.valence_id(id) != Valence::Undecided
        })
        .or_else(|| {
            map.ids()
                .find(|&id| !map.reachable_decisions_id(id).is_empty())
        });
    let ev = evaluate(&graph, &Prop::always(atoms::undecided()));
    let legacy_bad = map
        .ids()
        .find(|&id| !atoms::undecided::<P>().holds_at(&graph, id));
    match legacy_bad {
        Some(bad) => {
            assert_eq!(ev.verdict, Verdict::Fails, "{first_decided:?}");
            assert_eq!(ev.witness, Some(Witness::Path(legacy_chain(&map, bad))));
        }
        None => assert_eq!(ev.verdict, Verdict::Holds),
    }

    // --- exists_path(decided(v)): reachability of each decision value,
    // pinned against the valence map's root decision set; the witness
    // is the legacy chain to the first satisfying id.
    for v in [0i64, 1] {
        let a = atoms::decided_value::<P>(v);
        let target = map.ids().find(|&id| a.holds_at(&graph, id));
        let ev = evaluate(&graph, &Prop::exists_path(a));
        match target {
            Some(t) => {
                assert_eq!(ev.verdict, Verdict::Holds);
                let path = match ev.witness {
                    Some(Witness::Path(p)) => p,
                    other => panic!("expected path witness, got {other:?}"),
                };
                assert_eq!(path, legacy_chain(&map, t));
                // The chain is a genuine shortest path.
                assert_eq!(path.len() - 1, dist[t.index()].unwrap());
            }
            None => assert_eq!(ev.verdict, Verdict::Fails),
        }
    }

    // --- eventually(decided): verdict against the naive backward
    // fixpoint; a failing witness must be a genuine goal-avoiding
    // maximal path.
    let decided = atoms::decided::<P>();
    let goal: Vec<bool> = map.ids().map(|id| decided.holds_at(&graph, id)).collect();
    let af = naive_af(&map, &goal);
    let ev = evaluate(&graph, &Prop::eventually(decided.clone()));
    assert_eq!(
        ev.verdict,
        if af[map.root_id().index()] {
            Verdict::Holds
        } else {
            Verdict::Fails
        }
    );
    if ev.verdict == Verdict::Fails {
        let (path, cycle_start) = match ev.witness {
            Some(Witness::Path(ref p)) => (p.clone(), None),
            Some(Witness::Lasso {
                ref path,
                cycle_start,
            }) => (path.clone(), Some(cycle_start)),
            ref other => panic!("expected path or lasso, got {other:?}"),
        };
        assert_eq!(path[0], map.root_id());
        for w in path.windows(2) {
            assert!(
                map.successors(w[0]).iter().any(|(_, _, v)| *v == w[1]),
                "witness step not an edge"
            );
        }
        assert!(path.iter().all(|&id| !goal[id.index()]));
        match cycle_start {
            None => assert!(map.successors(*path.last().unwrap()).is_empty()),
            Some(k) => {
                let last = *path.last().unwrap();
                assert!(map.successors(last).iter().any(|(_, _, v)| *v == path[k]));
            }
        }
    }

    // --- leads_to(bivalent, decided): AG(bivalent ⇒ AF decided),
    // against the same naive fixpoint.
    let ev = evaluate(&graph, &Prop::leads_to(atoms::bivalent(), decided.clone()));
    let naive = map
        .ids()
        .all(|id| map.valence_id(id) != Valence::Bivalent || af[id.index()]);
    assert_eq!(
        ev.verdict,
        if naive {
            Verdict::Holds
        } else {
            Verdict::Fails
        }
    );
}

/// Batch evaluation over a parsed textual property set: fused results
/// equal the singleton evaluations, within the traversal budget.
fn pin_batch<P: ProcessAutomaton>(sys: &CompleteSystem<P>, ones: usize, threads: usize) {
    let n = sys.process_count();
    let assignment = InputAssignment::monotone(n, ones);
    let root = initialize(sys, &assignment);
    let map = ValenceMap::build_with(sys, root, BUDGET, threads).expect("budget is ample");
    let graph = SystemGraph::new(sys, &map);
    let vocab = system_vocab::<P>(assignment);
    let props = parse_props(
        "always(safe); \
         ef(bivalent); \
         ef(decided(0)) & ef(decided(1)); \
         af(decided); \
         af_fair(decided); \
         leads_to(bivalent, decided); \
         !ef(failed(0)); \
         no_failures",
        &vocab,
    )
    .expect("property script parses");
    assert!(props.len() >= 6);
    let report = evaluate_batch(&graph, &props);
    assert_eq!(report.passes.forward, 1, "one fused forward scan");
    assert!(report.passes.backward <= 1, "at most one backward sweep");
    for (p, fused) in props.iter().zip(&report.results) {
        let solo = evaluate(&graph, p);
        assert_eq!(solo, *fused, "fused != sequential for {p}");
    }
    // Failure-free exploration never reaches a failed state, and the
    // bivalence structure of the doomed substrates is fixed.
    assert_eq!(report.results[0].verdict, Verdict::Holds, "safety");
    assert_eq!(report.results[6].verdict, Verdict::Holds, "!ef(failed)");
    assert_eq!(report.results[7].verdict, Verdict::Holds, "no_failures");
}

#[test]
fn doomed_atomic_2_matches_legacy() {
    for threads in [1, 4] {
        let sys = doomed_atomic(2, 0);
        pin_system(&sys, 1, threads);
        pin_batch(&sys, 1, threads);
    }
}

#[test]
fn doomed_atomic_3_matches_legacy() {
    for threads in [1, 4] {
        let sys = doomed_atomic(3, 1);
        pin_system(&sys, 1, threads);
        pin_batch(&sys, 1, threads);
    }
}

#[test]
fn doomed_oblivious_matches_legacy() {
    for threads in [1, 4] {
        let sys = doomed_oblivious(2, 0);
        pin_system(&sys, 1, threads);
        pin_batch(&sys, 1, threads);
    }
}

#[test]
fn doomed_general_matches_legacy() {
    for threads in [1, 4] {
        let sys = doomed_general(2, 0);
        pin_system(&sys, 1, threads);
        pin_batch(&sys, 1, threads);
    }
}

#[test]
fn thread_counts_agree_bit_for_bit() {
    let sys = doomed_atomic(2, 0);
    let assignment = InputAssignment::monotone(2, 1);
    let root = initialize(&sys, &assignment);
    let m1 = ValenceMap::build_with(&sys, root.clone(), BUDGET, 1).unwrap();
    let m4 = ValenceMap::build_with(&sys, root, BUDGET, 4).unwrap();
    let g1 = SystemGraph::new(&sys, &m1);
    let g4 = SystemGraph::new(&sys, &m4);
    let vocab = system_vocab::<_>(assignment);
    let props = parse_props(
        "always(safe); ef(bivalent); af(decided); leads_to(bivalent, decided); \
         ef(decided(0)); ef(decided(1))",
        &vocab,
    )
    .unwrap();
    let r1 = evaluate_batch(&g1, &props);
    let r4 = evaluate_batch(&g4, &props);
    assert_eq!(r1.results, r4.results);
    assert_eq!(r1.passes, r4.passes);
}

/// The CI traversal gate: a batch of many properties over one graph
/// spends exactly one forward scan and at most one backward sweep —
/// the instrumented counters are the same ones `evaluate_batch`
/// reports, mirroring the PR-4 effect-cache gate.
#[test]
fn pass_counter_gate() {
    let sys = doomed_atomic(2, 0);
    let assignment = InputAssignment::monotone(2, 1);
    let root = initialize(&sys, &assignment);
    let map = ValenceMap::build(&sys, root, BUDGET).unwrap();
    let graph = SystemGraph::new(&sys, &map);
    let vocab = system_vocab::<_>(assignment);
    let props = parse_props(
        "always(safe); always(no_failures); ef(bivalent); ef(decided(0)); \
         ef(decided(1)); af(decided); leads_to(bivalent, decided); \
         leads_to(decided(0), decided(0)); !ef(failed(0)); now(undecided)",
        &vocab,
    )
    .unwrap();
    let report = evaluate_batch(&graph, &props);
    assert_eq!(
        report.passes.forward, 1,
        "fused batch must share a single forward CSR scan"
    );
    assert!(
        report.passes.backward <= 1,
        "fused batch must share at most one backward fixpoint"
    );
}
