//! Evaluator edge cases: empty graphs, truncated graphs (where
//! `eventually` must answer "unknown / frontier open", never a false
//! verdict), single-state graphs, and properties over failed-process
//! masks.

use analysis::prop::{atoms, evaluate, evaluate_batch, Atom, Prop, SystemGraph, Verdict, Witness};
use analysis::valence::ValenceMap;
use ioa::automaton::{ActionKind, Automaton};
use ioa::explore::{ExploreOptions, ExploredGraph};
use protocols::doomed::doomed_atomic;
use spec::ProcId;
use system::consensus::InputAssignment;
use system::sched::initialize;

/// A bounded counter: state `k` steps to `k + 1` until `limit`.
#[derive(Clone, Debug)]
struct Counter {
    limit: usize,
}

impl Automaton for Counter {
    type State = usize;
    type Action = usize;
    type Task = usize;

    fn initial_states(&self) -> Vec<usize> {
        vec![0]
    }
    fn tasks(&self) -> Vec<usize> {
        vec![0]
    }
    fn succ_all(&self, _t: &usize, s: &usize) -> Vec<(usize, usize)> {
        if *s < self.limit {
            vec![(*s, s + 1)]
        } else {
            Vec::new()
        }
    }
    fn apply_input(&self, _s: &usize, _a: &usize) -> Option<usize> {
        None
    }
    fn kind(&self, _a: &usize) -> ActionKind {
        ActionKind::Internal
    }
}

fn explore(limit: usize, budget: usize) -> ExploredGraph<Counter> {
    ExploredGraph::explore_with(
        &Counter { limit },
        vec![0],
        ExploreOptions {
            max_states: budget,
            skip_self_loops: false,
            threads: 1,
            symmetry: ioa::SymmetryMode::Off,
            frontier: ioa::FrontierMode::Auto,
        },
    )
}

fn at(k: usize) -> Atom<'static, ExploredGraph<Counter>> {
    Atom::on_state(format!("at({k})"), move |s: &usize| *s == k)
}

#[test]
fn empty_graph_every_universal_holds_every_existential_fails() {
    // No roots: the graph has no states at all.
    let g = ExploredGraph::explore_with(
        &Counter { limit: 3 },
        Vec::new(),
        ExploreOptions {
            max_states: 10,
            skip_self_loops: false,
            threads: 1,
            symmetry: ioa::SymmetryMode::Off,
            frontier: ioa::FrontierMode::Auto,
        },
    );
    assert_eq!(g.len(), 0);
    assert_eq!(evaluate(&g, &Prop::always(at(0))).verdict, Verdict::Holds);
    assert_eq!(
        evaluate(&g, &Prop::eventually(at(0))).verdict,
        Verdict::Holds
    );
    assert_eq!(
        evaluate(&g, &Prop::exists_path(at(0))).verdict,
        Verdict::Fails
    );
    assert_eq!(evaluate(&g, &Prop::now(at(0))).verdict, Verdict::Holds);
    let report = evaluate_batch(&g, &[Prop::always(at(0)), Prop::exists_path(at(1))]);
    assert!(report.passes.forward <= 1, "zero states need no real scan");
    assert_eq!(report.passes.backward, 0, "nothing to sweep backward");
}

#[test]
fn truncated_graph_eventually_is_unknown_not_false() {
    // The counter reaches 9 but the budget keeps only {0..4}: the
    // frontier is open, so "eventually at(9)" is not refutable — the
    // missing suffix could decide it either way.
    let g = explore(9, 5);
    assert!(g.stats().truncated());
    let ev = evaluate(&g, &Prop::eventually(at(9)));
    assert_eq!(ev.verdict, Verdict::Unknown);
    assert!(
        ev.reason.as_deref().unwrap_or("").contains("frontier open"),
        "reason must name the open frontier, got {:?}",
        ev.reason
    );
    // Same for a goal that *is* inside the kept prefix but not at the
    // root: a kept path reaches it, yet some unexplored branch might
    // not — with one task here it actually must, but the evaluator may
    // not assume that, so Unknown is the only sound answer.
    assert_eq!(
        evaluate(&g, &Prop::eventually(at(3))).verdict,
        Verdict::Unknown
    );
    // A root that already satisfies the goal is decided despite the
    // truncation.
    assert_eq!(
        evaluate(&g, &Prop::eventually(at(0))).verdict,
        Verdict::Holds
    );
    // Explored facts stay decisive; absences go unknown.
    assert_eq!(
        evaluate(&g, &Prop::exists_path(at(3))).verdict,
        Verdict::Holds
    );
    assert_eq!(
        evaluate(&g, &Prop::exists_path(at(9))).verdict,
        Verdict::Unknown
    );
    assert_eq!(
        evaluate(&g, &Prop::always(at(0))).verdict,
        Verdict::Fails,
        "an explored violation refutes the invariant even when open"
    );
    assert_eq!(
        evaluate(
            &g,
            &Prop::always(Atom::on_state("low", |s: &usize| *s < 100))
        )
        .verdict,
        Verdict::Unknown
    );
    // The backward sweep is skipped entirely on open frontiers.
    let report = evaluate_batch(&g, &[Prop::eventually(at(9)), Prop::leads_to(at(1), at(3))]);
    assert_eq!(report.passes.backward, 0);
    assert!(report.results.iter().all(|e| e.verdict == Verdict::Unknown));
}

#[test]
fn single_state_graph() {
    let g = explore(0, 10);
    assert_eq!(g.len(), 1);
    assert!(!g.stats().truncated());
    // The lone state is terminal: every maximal path is just it.
    assert_eq!(evaluate(&g, &Prop::always(at(0))).verdict, Verdict::Holds);
    assert_eq!(
        evaluate(&g, &Prop::eventually(at(0))).verdict,
        Verdict::Holds
    );
    let miss = evaluate(&g, &Prop::eventually(at(1)));
    assert_eq!(miss.verdict, Verdict::Fails);
    assert_eq!(
        miss.witness,
        Some(Witness::Path(vec![g.roots()[0]])),
        "the counterexample is the root itself, already terminal"
    );
    let hit = evaluate(&g, &Prop::exists_path(at(0)));
    assert_eq!(hit.verdict, Verdict::Holds);
    assert_eq!(hit.witness, Some(Witness::Path(vec![g.roots()[0]])));
    assert_eq!(
        evaluate(&g, &Prop::leads_to(at(0), at(0))).verdict,
        Verdict::Holds
    );
    assert_eq!(
        evaluate(&g, &Prop::leads_to(at(0), at(1))).verdict,
        Verdict::Fails
    );
}

#[test]
fn failed_process_masks() {
    // Explore from a root where process 0 has already failed: the
    // failure mask is part of the state and persists along every path.
    let sys = doomed_atomic(2, 0);
    let assignment = InputAssignment::monotone(2, 1);
    let healthy = initialize(&sys, &assignment);
    let crashed = sys.fail(&healthy, ProcId(0));
    let map = ValenceMap::build(&sys, crashed, 500_000).expect("small system");
    let graph = SystemGraph::new(&sys, &map);

    let report = evaluate_batch(
        &graph,
        &[
            Prop::always(atoms::failed(0)),
            Prop::not(Prop::exists_path(atoms::no_failures())),
            Prop::exists_path(atoms::failed(1)),
            Prop::always(atoms::safe(assignment)),
        ],
    );
    assert_eq!(
        report.results[0].verdict,
        Verdict::Holds,
        "fail_0 is permanent: every reachable state keeps the mask"
    );
    assert_eq!(
        report.results[1].verdict,
        Verdict::Holds,
        "no reachable state drops back to a failure-free mask"
    );
    assert_eq!(
        report.results[2].verdict,
        Verdict::Fails,
        "no fail_1 input occurs during exploration"
    );
    assert_eq!(
        report.results[3].verdict,
        Verdict::Holds,
        "safety is not violated merely by the crash"
    );

    // Differential: the atom agrees with the raw mask on every state.
    let failed0 = atoms::failed::<_>(0);
    let no_fail = atoms::no_failures::<_>();
    for id in map.ids() {
        assert_eq!(
            failed0.holds_at(&graph, id),
            map.resolve(id).failed.contains(&ProcId(0))
        );
        assert_eq!(
            no_fail.holds_at(&graph, id),
            map.resolve(id).failed.is_empty()
        );
    }
}
