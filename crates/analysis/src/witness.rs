//! The top-level impossibility pipeline (Theorems 2, 9 and 10,
//! executed).
//!
//! Given a candidate system claiming to solve `(f+1)`-resilient binary
//! consensus over `f`-resilient services, [`find_witness`] reproduces
//! the proof of the matching theorem on that concrete candidate:
//!
//! 1. exhaustively model-check failure-free safety (agreement,
//!    validity) from every monotone initialization;
//! 2. find a bivalent initialization (Lemma 4) — or, if all are
//!    univalent, take the adjacent flip pair its proof uses;
//! 3. run the Fig. 3 construction to a hook (Lemma 5);
//! 4. run the Lemma 8 case analysis to locate the j-/k-similar pair
//!    with opposite valences;
//! 5. execute the Lemma 6/7 failure argument on that pair, producing a
//!    concrete violating run.
//!
//! Exactly one [`ImpossibilityWitness`] comes out — a machine-checked
//! demonstration that *this* candidate does not solve
//! `(f+1)`-resilient consensus. The theorems say every candidate
//! yields one; the test-suites and benches run the pipeline across the
//! paper's three service classes.

use crate::hook::{find_hook, Hook, HookOutcome};
use crate::init::{find_bivalent_init_sym, InitOutcome};
use crate::prop;
use crate::similarity::{
    analyze_hook, refute_adjacent_pair, refute_similar_pair, HookSimilarity, Refutation,
};
use crate::valence::{Truncated, ValenceMap};
use ioa::automaton::Automaton;
use ioa::canon::SymmetryMode;
use spec::ProcId;
use system::build::{CompleteSystem, SystemState};
use system::consensus::{check_safety, InputAssignment, SafetyViolation};
use system::process::ProcessAutomaton;
use system::sched::initialize;

/// Search bounds for the pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Bounds {
    /// Distinct states per valence map.
    pub max_states: usize,
    /// Fig. 3 construction iterations.
    pub max_hook_iterations: usize,
    /// Steps per refutation run.
    pub max_run_steps: usize,
    /// Exploration worker threads per valence map (`0` = auto, see
    /// [`ioa::explore::ExploreOptions::threads`]). The witness is
    /// bit-identical for every count.
    pub threads: usize,
    /// Symmetry reduction for the valence maps (see
    /// [`ioa::canon::SymmetryMode`]). Under [`SymmetryMode::Full`] on
    /// an id-symmetric candidate the maps are orbit quotients — same
    /// theorem verdicts, far fewer interned states — and every
    /// returned witness is still a concrete, replayable execution.
    /// Defaults to the `SYMMETRY` environment variable.
    pub symmetry: SymmetryMode,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            max_states: 2_000_000,
            max_hook_iterations: 20_000,
            max_run_steps: 500_000,
            threads: 0,
            symmetry: SymmetryMode::from_env(),
        }
    }
}

impl Bounds {
    /// The same bounds with an explicit exploration worker count.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The same bounds with an explicit symmetry mode (overriding the
    /// `SYMMETRY` environment default).
    #[must_use]
    pub fn with_symmetry(mut self, symmetry: SymmetryMode) -> Self {
        self.symmetry = symmetry;
        self
    }
}

/// A machine-checked demonstration that the candidate system does not
/// solve `(f+1)`-resilient binary consensus.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)] // the hook/refutation payloads are the point
pub enum ImpossibilityWitness<P: ProcessAutomaton> {
    /// A failure-free reachable state already violates agreement or
    /// validity.
    Safety {
        /// The initialization that reaches the violation.
        assignment: InputAssignment,
        /// The violated condition.
        violation: SafetyViolation,
    },
    /// Some initialization decides nothing in any failure-free
    /// extension: failure-free termination is violated outright.
    FailureFreeNonTermination {
        /// The undeciding initialization.
        assignment: InputAssignment,
    },
    /// The full Theorem 2/9/10 argument: bivalent initialization →
    /// hook → similar pair with opposite valences → failing run.
    HookRefutation {
        /// The bivalent initialization (Lemma 4).
        assignment: InputAssignment,
        /// The hook (Lemma 5 / Fig. 2).
        hook: Hook<P>,
        /// Which similarity the Lemma 8 case analysis found.
        similarity: HookSimilarity,
        /// The Lemma 6/7 violation run.
        refutation: Refutation<P>,
    },
    /// All initializations were univalent; the Lemma 4 adjacent-pair
    /// argument produced the violation directly.
    AdjacentRefutation {
        /// The 0-valent initialization.
        zero: InputAssignment,
        /// The adjacent 1-valent initialization.
        one: InputAssignment,
        /// The process whose input differs.
        differing: ProcId,
        /// The Lemma 6-style violation run.
        refutation: Refutation<P>,
    },
    /// The Fig. 3 construction stayed bivalent past its bound — a fair
    /// bivalent region with no decision in sight.
    EndlessBivalence {
        /// The bivalent initialization.
        assignment: InputAssignment,
        /// Where the construction was abandoned.
        state: SystemState<P::State>,
    },
}

impl<P: ProcessAutomaton> ImpossibilityWitness<P> {
    /// A one-line summary of what was demonstrated.
    pub fn headline(&self) -> String {
        match self {
            ImpossibilityWitness::Safety { violation, .. } => {
                format!("failure-free safety violation: {violation}")
            }
            ImpossibilityWitness::FailureFreeNonTermination { assignment } => {
                format!("failure-free termination violation from initialization {assignment}")
            }
            ImpossibilityWitness::HookRefutation {
                hook, refutation, ..
            } => format!(
                "hook at tasks e={}, e'={}; {}",
                hook.e,
                hook.e_prime,
                refutation_headline(refutation)
            ),
            ImpossibilityWitness::AdjacentRefutation {
                differing,
                refutation,
                ..
            } => format!(
                "adjacent univalent initializations differing at {differing}; {}",
                refutation_headline(refutation)
            ),
            ImpossibilityWitness::EndlessBivalence { .. } => {
                "endless bivalence: fair undecided region".to_string()
            }
        }
    }
}

fn refutation_headline<P: ProcessAutomaton>(r: &Refutation<P>) -> String {
    match r {
        Refutation::TerminationViolation { side, failed, run } => format!(
            "failing {failed:?} starves side {side} forever ({} fair steps, no decision)",
            run.exec.len()
        ),
        Refutation::SameDecision {
            value, valences, ..
        } => format!(
            "both sides decide {value} although their valences are {valences:?} — \
             one side's failure-free valence is contradicted"
        ),
        Refutation::DivergentDecisions { v0, v1, .. } => {
            format!("sides diverged ({v0} vs {v1}) despite similarity")
        }
        Refutation::AlreadyDecided { survivor } => format!(
            "survivor {} had already decided {} on both sides, contradicting opposite valences",
            survivor.0, survivor.1
        ),
    }
}

/// Errors from [`find_witness`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WitnessError {
    /// A valence map exceeded the state budget.
    Truncated(Truncated),
    /// The pipeline could not classify the candidate within bounds.
    Inconclusive(String),
}

impl std::fmt::Display for WitnessError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WitnessError::Truncated(t) => write!(f, "{t}"),
            WitnessError::Inconclusive(s) => write!(f, "inconclusive: {s}"),
        }
    }
}

impl std::error::Error for WitnessError {}

impl From<Truncated> for WitnessError {
    fn from(t: Truncated) -> Self {
        WitnessError::Truncated(t)
    }
}

/// Scans every state of `map` for an agreement/validity violation.
///
/// Expressed as the invariant `always(safe)` over the explored graph
/// and evaluated by [`crate::prop`]: the counterexample witness ends
/// at the first violating id in discovery order — exactly the state
/// the legacy linear id-scan returned — and `check_safety` on that
/// state re-derives the violation payload.
fn safety_scan<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    assignment: &InputAssignment,
    map: &ValenceMap<P>,
) -> Option<SafetyViolation> {
    let graph = prop::SystemGraph::new(sys, map);
    let invariant = prop::Prop::always(prop::atoms::safe(assignment.clone()));
    match prop::evaluate(&graph, &invariant).witness {
        Some(prop::Witness::Path(path)) => {
            let bad = *path.last().expect("counterexample paths are non-empty");
            check_safety(sys, map.resolve(bad), assignment)
        }
        _ => None,
    }
}

/// Runs the full pipeline against `sys`, which claims to solve
/// `(f+1)`-resilient binary consensus built from `f`-resilient
/// services.
///
/// # Errors
///
/// [`WitnessError::Truncated`] when a valence map blows the state
/// budget; [`WitnessError::Inconclusive`] when every stage completed
/// yet no violation was found — which, per the theorems, does not
/// happen for genuine `f`-resilient-services candidates (and indeed
/// the Section 4 k-set systems exercise exactly this path in the
/// ablation benches, via the k-safety variant that does *not* treat
/// k-agreement as a violation).
pub fn find_witness<P: ProcessAutomaton>(
    sys: &CompleteSystem<P>,
    f: usize,
    bounds: Bounds,
) -> Result<ImpossibilityWitness<P>, WitnessError> {
    let n = sys.process_count();

    // Stage 1: failure-free safety over every monotone initialization.
    // The scan checks validity against each concrete assignment — an
    // observation the 0 ↔ 1 relabeling does *not* preserve (a rep
    // deciding 1 may stand for a concrete state deciding 0), so the
    // scan quotients only by the value-blind part of the requested
    // group. Stages 2–5 are relabeling-invariant and keep the full
    // composed quotient.
    for ones in 0..=n {
        let assignment = InputAssignment::monotone(n, ones);
        let root = initialize(sys, &assignment);
        let map = ValenceMap::build_with_symmetry(
            sys,
            root,
            bounds.max_states,
            bounds.threads,
            bounds.symmetry.value_blind(),
        )?;
        if let Some(violation) = safety_scan(sys, &assignment, &map) {
            return Ok(ImpossibilityWitness::Safety {
                assignment,
                violation,
            });
        }
    }

    // Stage 2: Lemma 4.
    match find_bivalent_init_sym(sys, bounds.max_states, bounds.threads, bounds.symmetry)? {
        InitOutcome::Bivalent { assignment, map } => {
            // Stage 3: Lemma 5 / Fig. 3.
            match find_hook(sys, &map, bounds.max_hook_iterations) {
                HookOutcome::Hook(hook) => {
                    // Stage 4: Lemma 8 case analysis.
                    let similarity = analyze_hook(sys, &hook);
                    let (x0, x1, kind) = match &similarity {
                        HookSimilarity::Direct(kind) => (hook.s0.clone(), hook.s1.clone(), *kind),
                        HookSimilarity::AfterEPrime(kind) => {
                            let (_, after) = sys
                                .succ_det(&hook.e_prime, &hook.s0)
                                .expect("e' applicable at s0 for this case");
                            (after, hook.s1.clone(), *kind)
                        }
                        HookSimilarity::Commute => {
                            return Err(WitnessError::Inconclusive(
                                "hook endpoints commute — impossible for opposite valences".into(),
                            ))
                        }
                        HookSimilarity::None => {
                            return Err(WitnessError::Inconclusive(
                                "no similarity between hook endpoints".into(),
                            ))
                        }
                    };
                    // Stage 5: Lemma 6/7, executed.
                    let refutation = refute_similar_pair(
                        sys,
                        &x0,
                        &x1,
                        kind,
                        (hook.v, hook.v.opposite()),
                        f,
                        bounds.max_run_steps,
                    );
                    Ok(ImpossibilityWitness::HookRefutation {
                        assignment,
                        hook,
                        similarity,
                        refutation,
                    })
                }
                HookOutcome::EndlessBivalence { state, .. } => {
                    Ok(ImpossibilityWitness::EndlessBivalence { assignment, state })
                }
                HookOutcome::UndecidedRegion { .. } => {
                    Ok(ImpossibilityWitness::FailureFreeNonTermination { assignment })
                }
            }
        }
        InitOutcome::AdjacentContradiction {
            zero,
            one,
            differing,
        } => {
            let refutation =
                refute_adjacent_pair(sys, &zero, &one, differing, f, bounds.max_run_steps);
            Ok(ImpossibilityWitness::AdjacentRefutation {
                zero,
                one,
                differing,
                refutation,
            })
        }
        InitOutcome::Undecided { assignment } => {
            Ok(ImpossibilityWitness::FailureFreeNonTermination { assignment })
        }
        InitOutcome::ValidityBroken { assignment, .. } => {
            let root = initialize(sys, &assignment);
            let map = ValenceMap::build_with_symmetry(
                sys,
                root,
                bounds.max_states,
                bounds.threads,
                bounds.symmetry,
            )?;
            let violation = safety_scan(sys, &assignment, &map).ok_or_else(|| {
                WitnessError::Inconclusive(
                    "valence says validity broken but no state violates it".into(),
                )
            })?;
            Ok(ImpossibilityWitness::Safety {
                assignment,
                violation,
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::similarity::Refutation;
    use services::atomic::CanonicalAtomicObject;
    use spec::seq::BinaryConsensus;
    use spec::SvcId;
    use std::sync::Arc;
    use system::process::direct::DirectConsensus;

    fn direct(n: usize, f: usize) -> CompleteSystem<DirectConsensus> {
        let endpoints: Vec<ProcId> = (0..n).map(ProcId).collect();
        let obj = CanonicalAtomicObject::new(Arc::new(BinaryConsensus), endpoints, f);
        CompleteSystem::new(DirectConsensus::new(SvcId(0)), n, vec![Arc::new(obj)])
    }

    #[test]
    fn theorem_2_witness_for_the_two_process_direct_system() {
        // The direct protocol over a 0-resilient consensus object
        // claims (implicitly) 1-resilient consensus; the pipeline must
        // refute it.
        let sys = direct(2, 0);
        let w = find_witness(&sys, 0, Bounds::default()).unwrap();
        match &w {
            ImpossibilityWitness::HookRefutation { refutation, .. } => {
                assert!(
                    matches!(refutation, Refutation::TerminationViolation { .. }),
                    "expected starvation, got {refutation:?}"
                );
            }
            other => panic!("expected a hook refutation, got {}", other.headline()),
        }
        assert!(w.headline().contains("hook"));
    }

    #[test]
    fn theorem_2_witness_for_three_processes_f1() {
        // 1-resilient object, three processes, claiming 2-resilient
        // consensus: same shape, one level up — the generalization
        // beyond FLP (which is the f = 0 row).
        let sys = direct(3, 1);
        let w = find_witness(&sys, 1, Bounds::default()).unwrap();
        match &w {
            ImpossibilityWitness::HookRefutation { refutation, .. } => match refutation {
                Refutation::TerminationViolation { failed, .. } => {
                    assert_eq!(failed.len(), 2, "f + 1 = 2 processes must fail");
                }
                other => panic!("expected starvation, got {other:?}"),
            },
            other => panic!("expected a hook refutation, got {}", other.headline()),
        }
    }
}
